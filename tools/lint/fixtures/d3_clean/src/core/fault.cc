// D3 clean fixture: code registry and README table agree exactly.
#include <string>
#include <vector>

const std::vector<std::string> &
knownPoints()
{
    static const std::vector<std::string> points = {
        "engine.task",
        "service.admit",
    };
    return points;
}
