// D2 fixture: a dataset-emitting file iterating unordered containers.
#include <string>
#include <unordered_map>

struct Ctx
{
    void emit(int) {}
};

void
emitCounts(Ctx &ctx)
{
    std::unordered_map<std::string, int> counts;
    counts["a"] = 1;
    for (const auto &entry : counts) // D2: hash order leaks into rows
        ctx.emit(entry.second);
}
