// D1 fixture: ambient randomness / wall clock in a result-path file.
#include <chrono>
#include <cstdlib>

int
jitteredSample()
{
    const auto now = std::chrono::steady_clock::now(); // D1: clock
    (void)now;
    return rand(); // D1: unseeded randomness
}
