// D5 fixture: a cross-thread signal flag as volatile sig_atomic_t.
#include <csignal>

volatile sig_atomic_t g_stop = 0; // D5: not thread-safe

void
onSignal(int)
{
    g_stop = 1;
}
