// D3 fixture: knownPoints() out of sync with the README table —
// "engine.task" is registered but undocumented, and the README below
// documents "sink.render" which is not registered here.
#include <string>
#include <vector>

const std::vector<std::string> &
knownPoints()
{
    static const std::vector<std::string> points = {
        "engine.task",    // D3: missing from the README table
        "service.admit",  // documented: fine
    };
    return points;
}
