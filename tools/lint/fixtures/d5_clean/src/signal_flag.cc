// D5 clean fixture: a lock-free atomic is both async-signal-safe and
// thread-safe (the PR 7 serve-signal pattern).
#include <atomic>

std::atomic<int> g_stop{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free latch");

void
onSignal(int)
{
    g_stop.store(1, std::memory_order_relaxed);
}
