// D1 clean fixture: seeded hashing only; the one sanctioned escape
// carries a lint:allow with a reason.
#include <chrono>
#include <cstdint>

std::uint64_t
seededSample(std::uint64_t seed, std::uint64_t index)
{
    return seed * 0x9e3779b97f4a7c15ULL + index;
}

double
debugOnlyTimestamp()
{
    // Never reaches an artifact: debug logging.
    const auto t =
        std::chrono::steady_clock::now(); // lint:allow D1 debug log only
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}
