// D2 clean fixture: the emitting path iterates an ordered container;
// the unordered map is used only for lookups, never iterated.
#include <map>
#include <string>
#include <unordered_map>

struct Ctx
{
    void emit(int) {}
};

void
emitCounts(Ctx &ctx)
{
    std::unordered_map<std::string, int> lookup;
    lookup["a"] = 1;
    std::map<std::string, int> counts(lookup.begin(), lookup.end());
    for (const auto &entry : counts) // ordered: deterministic rows
        ctx.emit(entry.second);
}
