// D6 fixture: raw std synchronization primitives outside src/core/.
// Each declaration below must produce one D6 finding.
#include <condition_variable>
#include <mutex>

namespace fixture {

struct WorkerPool
{
    std::mutex m;                 // D6: invisible to TSA
    std::condition_variable cv;   // D6: pairs with the raw mutex

    void
    poke()
    {
        std::lock_guard<std::mutex> lock(m); // D6: raw guard
        cv.notify_one();
    }

    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lock(m); // D6: raw unique_lock
        cv.wait(lock);
    }
};

} // namespace fixture
