// D6 clean fixture: the annotated core wrappers, not the std types.
// A comment mentioning std::mutex must not trip the rule, and neither
// may an escape-hatched line.
#include "core/thread_annotations.h"

namespace fixture {

struct WorkerPool
{
    rp::core::Mutex m;
    rp::core::CondVar cv;
    int pending = 0; // would be RP_GUARDED_BY(m) in real code

    void
    poke()
    {
        rp::core::LockGuard lock(m);
        ++pending;
        cv.notify_one();
    }

    void
    drain()
    {
        rp::core::UniqueLock lock(m);
        while (pending > 0)
            cv.wait(lock);
    }
};

// Interop with a std API that demands the raw type, escape-hatched:
std::mutex &nativeHandle(rp::core::Mutex &m) // lint:allow D6 std API interop
{
    return m.native();
}

} // namespace fixture
