// D6 clean fixture: src/core/ is exempt — the annotated wrappers
// themselves are built on the raw std types, so these must NOT fire.
#include <condition_variable>
#include <mutex>

namespace fixture_core {

struct AnnotatedWrapperImpl
{
    std::mutex m;
    std::condition_variable cv;

    void
    signal()
    {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
    }
};

} // namespace fixture_core
