// D4 clean fixture: every registered id is documented in README.md.
#define REGISTER_EXPERIMENT(id, title, ref, cat, fn) int reg_##id = 0

REGISTER_EXPERIMENT(fig99, "t", "r", "c", run);

struct ExperimentRegistrar
{
    ExperimentRegistrar(const char *, const char *);
};

const ExperimentRegistrar reg_perf_zz(
    {"perf.zz",
     "t"});
