// D4 fixture: registered experiment ids missing from README.md.
#define REGISTER_EXPERIMENT(id, title, ref, cat, fn) int reg_##id = 0

REGISTER_EXPERIMENT(fig99, "t", "r", "c", run); // D4: undocumented

struct ExperimentRegistrar
{
    ExperimentRegistrar(const char *, const char *);
};

const ExperimentRegistrar reg_perf_zz(
    {"perf.zz", // D4: undocumented dotted id
     "t"});
