#!/usr/bin/env python3
"""Self-test for the determinism/invariant linter (ctest `lint_test`).

For each rule D1-D6, a `fixtures/dN_bad` mini-tree must produce at
least one finding of exactly that rule, and the matching `dN_clean`
tree must lint clean — so the linter itself cannot silently rot.
Finally the real repo (RP_LINT_ROOT, default: this repo) must lint
clean, which is what the CI static-analysis job enforces.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
RULES = ["D1", "D2", "D3", "D4", "D5", "D6"]


def run_lint(root):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def main():
    failures = []

    for rule in RULES:
        tag = rule.lower()
        bad = os.path.join(FIXTURES, f"{tag}_bad")
        clean = os.path.join(FIXTURES, f"{tag}_clean")

        rc, out = run_lint(bad)
        if rc == 0:
            failures.append(f"{rule}: {tag}_bad fixture produced no "
                            f"findings (rule is dead)")
        elif not any(line.startswith(rule + " ")
                     for line in out.splitlines()):
            failures.append(f"{rule}: {tag}_bad fixture fired, but "
                            f"not rule {rule}:\n{out}")
        else:
            print(f"PASS {rule}: bad fixture caught\n"
                  + "".join(f"  {l}\n" for l in out.splitlines()
                            if l.startswith(rule + " ")), end="")

        rc, out = run_lint(clean)
        if rc != 0:
            failures.append(f"{rule}: {tag}_clean fixture has "
                            f"findings (false positive):\n{out}")
        else:
            print(f"PASS {rule}: clean fixture lints clean")

    repo_root = os.environ.get(
        "RP_LINT_ROOT", os.path.dirname(os.path.dirname(HERE)))
    rc, out = run_lint(repo_root)
    if rc != 0:
        failures.append(f"tree: the repo at {repo_root} does not lint "
                        f"clean:\n{out}")
    else:
        print(f"PASS tree: {repo_root} lints clean")

    if failures:
        print("\n".join(f"FAIL {f}" for f in failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
