#!/usr/bin/env python3
"""Determinism/invariant linter for the rowpress tree.

The repo's load-bearing guarantee is that every result artifact is a
pure function of (experiment, resolved config, seed) — bit-identical
at any thread count.  These rules mechanically enforce the coding
conventions that guarantee rests on, plus two registry<->docs
consistency invariants.  Findings print as

    rule-id file:line message

and the process exits nonzero when there are any.

Rules
-----
D1  No wall-clock / ambient-randomness calls (rand, random,
    std::random_device, time(), gettimeofday,
    std::chrono::*_clock::now) outside the allowlist.  Seeded hashes
    (common/rng.h) are the only sanctioned randomness; wall-clock time
    is allowed only where it never reaches a result (bench timing,
    deadline monitor, retry backoff).
D2  No iteration over std::unordered_map/std::unordered_set in a file
    that emits datasets/artifacts (contains `.emit(` / `dataset(`):
    hash-order leaks straight into result rows.  Iterate a sorted
    container, or sort first.
D3  Every FaultInjector point string registered in
    src/core/fault.cc::knownPoints() appears in README.md's
    fault-point table (`| point | injects into |`), and vice versa.
D4  Every registered experiment id (REGISTER_EXPERIMENT /
    REGISTER_EXPERIMENT_OPTS / direct ExperimentRegistrar or
    registry.add with a dotted id) appears in README.md, the schema
    documentation of `rowpress list --format json`.
D5  No `volatile sig_atomic_t` for cross-thread flags: signal
    handlers shared with threads need lock-free std::atomic (volatile
    sig_atomic_t is only async-signal-safe, not thread-safe).
D6  No raw std::mutex / std::lock_guard / std::unique_lock /
    std::scoped_lock / std::condition_variable outside src/core/:
    mutex-guarded state must use core::Mutex + RP_GUARDED_BY (and
    core::LockGuard / core::UniqueLock / core::CondVar) so Clang's
    Thread Safety Analysis — which CI compiles with -Werror — can see
    every acquisition.  A raw std::mutex is invisible to the analysis
    and silently exempts its critical sections.  src/core/ is exempt:
    that is where the annotated wrappers themselves live.

Escape hatch: a line ending in `// lint:allow DN <reason>` suppresses
rule DN for that line (D1/D2/D5/D6).  Use sparingly; the reason is
mandatory and reviewed.
"""

import argparse
import os
import re
import sys

# Directories scanned for per-line rules, relative to the root.
SCAN_DIRS = ("src", "bench", "examples")
SOURCE_EXT = (".cc", ".h")

# D1 file-level allowlist: path (relative to root) -> why wall-clock
# use is sound there.  Keep this list short and justified.
D1_ALLOWLIST = {
    "src/api/service.cc":
        "job deadlines, retry backoff, elapsed-ms metadata: wall "
        "clock feeds scheduling and status only, never result rows",
    "bench/bench_perf.cc":
        "benchmark timing is the measurement itself",
}

D1_PATTERNS = [
    (re.compile(r"(?<![A-Za-z0-9_:])rand\s*\("), "rand()"),
    (re.compile(r"(?<![A-Za-z0-9_:])random\s*\("), "random()"),
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"(?<![A-Za-z0-9_:])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"(?<![A-Za-z0-9_])gettimeofday"), "gettimeofday()"),
    (re.compile(
        r"(steady_clock|system_clock|high_resolution_clock)\s*::\s*now"),
     "std::chrono::*_clock::now()"),
]

ALLOW_RE = re.compile(r"//\s*lint:allow\s+(D\d)\b")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;]*>\s*&?\s*(\w+)\s*[;({=]")
RANGE_FOR_RE = re.compile(r"for\s*\(.*?:\s*\*?&?([A-Za-z_]\w*)")
EMITTER_RE = re.compile(r"\.emit\w*\(|[^a-zA-Z_]dataset\(")

D5_RE = re.compile(r"volatile\s+(std\s*::\s*)?sig_atomic_t")

D6_RE = re.compile(
    r"std\s*::\s*(mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|condition_variable|"
    r"condition_variable_any)\b")

# D6 exemption: the annotated wrappers themselves wrap std types.
D6_EXEMPT_PREFIX = os.path.join("src", "core") + os.sep


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.rule} {self.path}:{self.line} {self.message}"


def iter_sources(root):
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXT):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root)


def read_lines(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8",
              errors="replace") as f:
        return f.read().splitlines()


def allowed(line, rule):
    m = ALLOW_RE.search(line)
    return bool(m and m.group(1) == rule)


def code_of(line):
    """The line with comment text removed: prose about a forbidden
    construct (e.g. a comment explaining why volatile sig_atomic_t is
    wrong) must not trip the rule for it.  Handles // tails and the
    repo's block-comment style, where continuation lines start with
    `*` (a full multi-line lexer is overkill for a style this code
    base actually follows)."""
    stripped = line.lstrip()
    if stripped.startswith(("*", "/*")):
        return ""
    return line.split("//", 1)[0]


def check_d1(root, rel, lines, findings):
    if rel in D1_ALLOWLIST:
        return
    for i, line in enumerate(lines, 1):
        if allowed(line, "D1"):
            continue
        for pattern, what in D1_PATTERNS:
            if pattern.search(code_of(line)):
                findings.append(Finding(
                    "D1", rel, i,
                    f"{what} in a result-path file: results must be "
                    f"pure in (config, seed); use seeded hashes "
                    f"(common/rng.h) or add the file to the D1 "
                    f"allowlist with a justification"))


def check_d2(root, rel, lines, findings):
    text = "\n".join(lines)
    if not EMITTER_RE.search(text):
        return
    unordered_vars = set()
    for line in lines:
        m = UNORDERED_DECL_RE.search(line)
        if m:
            unordered_vars.add(m.group(1))
    for i, line in enumerate(lines, 1):
        if allowed(line, "D2"):
            continue
        code = code_of(line)
        m = RANGE_FOR_RE.search(code)
        if not m:
            continue
        direct = "unordered_map" in code or "unordered_set" in code
        if direct or m.group(1) in unordered_vars:
            findings.append(Finding(
                "D2", rel, i,
                "iteration over an unordered container in a "
                "dataset-emitting file: hash order leaks into "
                "artifacts; iterate a sorted container or sort the "
                "keys first"))


def fault_points_in_code(root):
    """Point strings of knownPoints() in src/core/fault.cc."""
    rel = os.path.join("src", "core", "fault.cc")
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return None, rel
    points = {}
    in_block = False
    for i, line in enumerate(read_lines(root, rel), 1):
        if "knownPoints" in line and points:
            break
        if re.search(r"points\s*=\s*\{", line):
            in_block = True
            continue
        if in_block:
            if re.search(r"\}\s*;", line):
                break
            m = re.search(r'"([^"]+)"', line)
            if m:
                points[m.group(1)] = i
    return points, rel


def fault_points_in_readme(root):
    """Point strings of README.md's `| point | injects into |` table."""
    rel = "README.md"
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return None, rel
    lines = read_lines(root, rel)
    points = {}
    in_table = False
    for i, line in enumerate(lines, 1):
        stripped = line.strip()
        if re.match(r"\|\s*point\s*\|\s*injects into\s*\|", stripped):
            in_table = True
            continue
        if in_table:
            if not stripped.startswith("|"):
                break
            m = re.search(r"\|\s*`([^`]+)`", stripped)
            if m:
                points[m.group(1)] = i
    return points, rel


def check_d3(root, findings):
    code, code_rel = fault_points_in_code(root)
    docs, docs_rel = fault_points_in_readme(root)
    if code is None or docs is None:
        return  # nothing to cross-check in this tree
    for point, line in sorted(code.items()):
        if point not in docs:
            findings.append(Finding(
                "D3", code_rel, line,
                f"fault point '{point}' is registered in code but "
                f"missing from README.md's fault-point table"))
    for point, line in sorted(docs.items()):
        if point not in code:
            findings.append(Finding(
                "D3", docs_rel, line,
                f"fault point '{point}' is documented in README.md "
                f"but not registered in knownPoints()"))


EXPERIMENT_ID_RES = [
    # REGISTER_EXPERIMENT(id, ...) / REGISTER_EXPERIMENT_OPTS(id, ...)
    re.compile(r"REGISTER_EXPERIMENT(?:_OPTS)?\(\s*([A-Za-z_]\w*)"),
    # const api::ExperimentRegistrar reg(...{"dotted.id", ...
    re.compile(r"ExperimentRegistrar\s+\w+\(\s*\{\s*\"([^\"]+)\""),
    # registry.add({{"dotted.id", ...
    re.compile(r"\.add\(\s*\{\s*\{\s*\"([^\"]+)\""),
]


def check_d4(root, findings):
    readme_path = os.path.join(root, "README.md")
    if not os.path.exists(readme_path):
        return
    with open(readme_path, encoding="utf-8", errors="replace") as f:
        readme = f.read()
    for rel in iter_sources(root):
        lines = read_lines(root, rel)
        text = "\n".join(lines)
        for pattern in EXPERIMENT_ID_RES:
            for m in pattern.finditer(text):
                exp_id = m.group(1)
                line = text[:m.start()].count("\n") + 1
                # The macro definitions themselves, not registrations.
                if lines[line - 1].lstrip().startswith("#define"):
                    continue
                if exp_id in readme:
                    continue
                findings.append(Finding(
                    "D4", rel, line,
                    f"experiment id '{exp_id}' is registered but not "
                    f"documented in README.md (the `rowpress list "
                    f"--format json` schema docs)"))


def check_d5(root, rel, lines, findings):
    for i, line in enumerate(lines, 1):
        if allowed(line, "D5"):
            continue
        if D5_RE.search(code_of(line)):
            findings.append(Finding(
                "D5", rel, i,
                "volatile sig_atomic_t is not thread-safe (only "
                "async-signal-safe); use a lock-free std::atomic for "
                "flags shared between a signal handler and threads"))


def check_d6(root, rel, lines, findings):
    if rel.startswith(D6_EXEMPT_PREFIX):
        return
    for i, line in enumerate(lines, 1):
        if allowed(line, "D6"):
            continue
        m = D6_RE.search(code_of(line))
        if m:
            findings.append(Finding(
                "D6", rel, i,
                f"raw std::{m.group(1)} outside src/core/: use the "
                f"annotated core::Mutex / core::LockGuard / "
                f"core::UniqueLock / core::CondVar "
                f"(core/thread_annotations.h) so Thread Safety "
                f"Analysis sees the acquisition"))


def lint(root):
    findings = []
    for rel in iter_sources(root):
        # The linter's own rule fixtures intentionally violate rules.
        if "fixtures" in rel.split(os.sep):
            continue
        lines = read_lines(root, rel)
        check_d1(root, rel, lines, findings)
        check_d2(root, rel, lines, findings)
        check_d5(root, rel, lines, findings)
        check_d6(root, rel, lines, findings)
    check_d3(root, findings)
    check_d4(root, findings)
    findings.sort(key=lambda f: (f.rule, f.path, f.line))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="rowpress determinism/invariant linter (D1-D6)")
    parser.add_argument(
        "--root", default=None,
        help="tree to lint (default: the repo containing this script)")
    args = parser.parse_args(argv)

    root = args.root
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))

    findings = lint(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
