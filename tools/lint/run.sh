#!/bin/sh
# Run the determinism/invariant linter (rules D1-D5) over the repo.
# Exits nonzero on any finding; each finding prints as
#   rule-id file:line message
set -eu
script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
exec python3 "$script_dir/lint.py" "$@"
