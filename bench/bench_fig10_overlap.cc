/**
 * @file
 * Figs. 10 and 11: overlap of RowPress-vulnerable cells with
 * RowHammer-vulnerable cells and with retention failures, at ACmin
 * and at the maximum activation count.  Obsv. 7: for
 * tAggON >= tREFI, overlap with RowHammer < 0.013 % and with
 * retention < 0.34 %.
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

const std::vector<Time> kSweep = {66_ns,    636_ns, 7800_ns,
                                  70200_ns, 1_ms,   30_ms};

void
emitOverlap(api::ExperimentContext &ctx, const char *title,
            bool at_max)
{
    for (const auto &die : ctx.dies()) {
        const auto mc = ctx.moduleConfig(die, 50.0);
        auto results =
            at_max ? chr::overlapAtMaxAc(mc, ctx.engine(), kSweep,
                                         chr::AccessKind::SingleSided)
                   : chr::overlapAtAcmin(mc, ctx.engine(), kSweep,
                                         chr::AccessKind::SingleSided);
        api::Dataset table(std::string(title) + " - " + die.name);
        table.header({"tAggON", "RP cells", "overlap w/ RowHammer",
                      "overlap w/ retention"});
        for (const auto &r : results) {
            table.row({formatTime(r.tAggOn), api::cell(r.rpCells),
                       api::cell(r.withRowHammer),
                       api::cell(r.withRetention)});
        }
        ctx.emit(table);
        ctx.emitOverlapRaw(std::string("raw_overlap_") +
                               (at_max ? "acmax_" : "acmin_") + die.id,
                           die.id, results);
        ctx.note("\n");
    }
}

void
runFig10(api::ExperimentContext &ctx)
{
    emitOverlap(ctx, "Fig. 10 overlap @ ACmin", /*at_max=*/false);
    emitOverlap(ctx, "Fig. 11 overlap @ ACmax", /*at_max=*/true);
    ctx.note("Paper shape (Obsv. 7): overlap with RowHammer and "
             "retention failures is\nnear zero for tAggON >= tREFI "
             "- different failure mechanisms.\n\n");
}

REGISTER_EXPERIMENT(
    fig10, "Figs. 10/11: RowPress vs RowHammer/retention cell overlap",
    "Fig. 10 (@ACmin), Fig. 11 (@ACmax)", "characterization",
    runFig10);

void
BM_OverlapAnalysis(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    for (auto _ : state) {
        auto res = chr::overlapAtAcmin(module, {7800_ns},
                                       chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_OverlapAnalysis)->Unit(benchmark::kMillisecond);

} // namespace
