/**
 * @file
 * Figs. 10 and 11: overlap of RowPress-vulnerable cells with
 * RowHammer-vulnerable cells and with retention failures, at ACmin
 * and at the maximum activation count.  Obsv. 7: for
 * tAggON >= tREFI, overlap with RowHammer < 0.013 % and with
 * retention < 0.34 %.
 */

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

const std::vector<Time> kSweep = {66_ns,    636_ns, 7800_ns,
                                  70200_ns, 1_ms,   30_ms};

void
printOverlap(core::ExperimentEngine &engine, const char *title,
             bool at_max)
{
    for (const auto &die : rpb::benchDies()) {
        const auto mc = rpb::moduleConfig(die, 50.0);
        auto results =
            at_max ? chr::overlapAtMaxAc(mc, engine, kSweep,
                                         chr::AccessKind::SingleSided)
                   : chr::overlapAtAcmin(mc, engine, kSweep,
                                         chr::AccessKind::SingleSided);
        Table table(std::string(title) + " - " + die.name);
        table.header({"tAggON", "RP cells", "overlap w/ RowHammer",
                      "overlap w/ retention"});
        for (const auto &r : results) {
            table.row({formatTime(r.tAggOn), Table::toCell(r.rpCells),
                       Table::toCell(r.withRowHammer),
                       Table::toCell(r.withRetention)});
        }
        table.print();
        std::printf("\n");
    }
}

void
printFig10(core::ExperimentEngine &engine)
{
    printOverlap(engine, "Fig. 10 overlap @ ACmin", /*at_max=*/false);
    printOverlap(engine, "Fig. 11 overlap @ ACmax", /*at_max=*/true);
    std::printf("Paper shape (Obsv. 7): overlap with RowHammer and "
                "retention failures is\nnear zero for tAggON >= tREFI "
                "- different failure mechanisms.\n\n");
}

void
BM_OverlapAnalysis(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    for (auto _ : state) {
        auto res = chr::overlapAtAcmin(module, {7800_ns},
                                       chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_OverlapAnalysis)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Figs. 10/11: RowPress vs RowHammer/retention cell overlap",
         "Fig. 10 (@ACmin), Fig. 11 (@ACmax)"},
        printFig10);
}
