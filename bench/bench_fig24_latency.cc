/**
 * @file
 * Fig. 24: verification that accessing consecutive cache blocks of a
 * DRAM row keeps the row open - latency histogram of the first vs the
 * remaining cache-block accesses (the paper reports a ~30-cycle
 * median gap on the i5-10400 system).
 */

#include "bench_runner.h"

using namespace rp;

namespace {

void
printFig24(core::ExperimentEngine &)
{
    const int trials =
        std::max(2000, int(50000 * rpb::benchScale()));
    auto probe = sys::rowOpenLatencyProbe(trials);

    std::printf("Access to FIRST cache block (row must be "
                "activated):\n%s\n",
                probe.first.render(46).c_str());
    std::printf("Subsequent accesses to remaining cache blocks (row "
                "open):\n%s\n",
                probe.rest.render(46).c_str());
    std::printf("median first  = %.1f cycles\n",
                probe.medianFirstCycles);
    std::printf("median rest   = %.1f cycles\n", probe.medianRestCycles);
    std::printf("median gap    = %.1f cycles (paper: ~30 cycles)\n\n",
                probe.medianFirstCycles - probe.medianRestCycles);
}

void
BM_LatencyProbe(benchmark::State &state)
{
    for (auto _ : state) {
        auto probe = sys::rowOpenLatencyProbe(1000);
        benchmark::DoNotOptimize(probe);
    }
}
BENCHMARK(BM_LatencyProbe)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Fig. 24: row-open-time verification probe",
         "Fig. 24 (latency histogram, 100K trials)"},
        printFig24);
}
