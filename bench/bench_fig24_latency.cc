/**
 * @file
 * Fig. 24: verification that accessing consecutive cache blocks of a
 * DRAM row keeps the row open - latency histogram of the first vs the
 * remaining cache-block accesses (the paper reports a ~30-cycle
 * median gap on the i5-10400 system).
 */

#include <algorithm>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;

namespace {

void
runFig24(api::ExperimentContext &ctx)
{
    const int trials = std::max(2000, int(50000 * ctx.scale()));
    auto probe = sys::rowOpenLatencyProbe(trials);

    ctx.notef("Access to FIRST cache block (row must be "
              "activated):\n%s\n",
              probe.first.render(46).c_str());
    ctx.notef("Subsequent accesses to remaining cache blocks (row "
              "open):\n%s\n",
              probe.rest.render(46).c_str());

    api::Dataset table("Row-open latency medians (cycles)");
    table.header({"metric", "cycles"});
    table.row({"median first", api::cell(probe.medianFirstCycles)});
    table.row({"median rest", api::cell(probe.medianRestCycles)});
    table.row({"median gap", api::cell(probe.medianFirstCycles -
                                       probe.medianRestCycles)});
    ctx.emit(table);
    ctx.notef("median gap    = %.1f cycles (paper: ~30 cycles)\n\n",
              probe.medianFirstCycles - probe.medianRestCycles);
}

REGISTER_EXPERIMENT(fig24, "Fig. 24: row-open-time verification probe",
                    "Fig. 24 (latency histogram, 100K trials)",
                    "system", runFig24);

void
BM_LatencyProbe(benchmark::State &state)
{
    for (auto _ : state) {
        auto probe = sys::rowOpenLatencyProbe(1000);
        benchmark::DoNotOptimize(probe);
    }
}
BENCHMARK(BM_LatencyProbe)->Unit(benchmark::kMillisecond);

} // namespace
