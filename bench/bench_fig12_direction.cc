/**
 * @file
 * Fig. 12: fraction of 1 -> 0 bitflips as tAggON increases.
 * Obsv. 8: RowHammer and RowPress flip in opposite directions; the
 * Mfr. M 16Gb E-die inverts the trend (anti-cell layout).
 */

#include "bench_common.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printFig12()
{
    rpb::printHeader("Fig. 12: bitflip direction",
                     "Fig. 12 (fraction of 1->0 flips, checkerboard)");

    std::vector<device::DieConfig> dies = {
        device::dieById("S-8Gb-D"), device::dieById("H-16Gb-A"),
        device::dieById("M-16Gb-F"), device::dieById("M-16Gb-E")};
    if (rpb::envInt("ROWPRESS_ALL_DIES", 0))
        dies = device::allDies();

    Table table("Fraction of 1->0 bitflips (single-sided @ 50C)");
    std::vector<std::string> head = {"tAggON"};
    for (const auto &d : dies)
        head.push_back(d.id);
    table.header(head);

    std::vector<chr::Module> modules;
    for (const auto &d : dies)
        modules.push_back(rpb::makeModule(d, 50.0));

    for (Time t : {36_ns, 186_ns, 1536_ns, 7800_ns, 70200_ns, 3_ms,
                   30_ms}) {
        std::vector<std::string> row = {formatTime(t)};
        for (auto &m : modules) {
            auto point =
                chr::acminPoint(m, t, chr::AccessKind::SingleSided);
            row.push_back(point.acminSummary().count
                              ? Table::toCell(point.fractionOneToZero())
                              : "No Bitflip");
        }
        table.row(std::move(row));
    }
    table.print();
    std::printf("\nPaper shape: RowHammer (36 ns) flips are dominantly "
                "0->1, RowPress flips\nreach ~100%% 1->0 for S/H dies, "
                "~75%% for M B/F dies; the M 16Gb E-die trend\nis "
                "inverted (true-/anti-cell layout).\n\n");
}

void
BM_DirectionPoint(benchmark::State &state)
{
    chr::Module module =
        rpb::makeModule(device::dieById("M-16Gb-E"), 50.0);
    for (auto _ : state) {
        auto point = chr::acminPoint(module, 7800_ns,
                                     chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point.fractionOneToZero());
    }
}
BENCHMARK(BM_DirectionPoint)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig12();
    return rpb::runBenchmarkMain(argc, argv);
}
