/**
 * @file
 * Fig. 12: fraction of 1 -> 0 bitflips as tAggON increases.
 * Obsv. 8: RowHammer and RowPress flip in opposite directions; the
 * Mfr. M 16Gb E-die inverts the trend (anti-cell layout).
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runFig12(api::ExperimentContext &ctx)
{
    const auto dies = ctx.dies({device::dieById("S-8Gb-D"),
                                device::dieById("H-16Gb-A"),
                                device::dieById("M-16Gb-F"),
                                device::dieById("M-16Gb-E")});

    api::Dataset table("Fraction of 1->0 bitflips (single-sided @ 50C)");
    std::vector<std::string> head = {"tAggON"};
    for (const auto &d : dies)
        head.push_back(d.id);
    table.header(head);

    const std::vector<Time> sweep = {36_ns,    186_ns, 1536_ns,
                                     7800_ns, 70200_ns, 3_ms, 30_ms};
    std::vector<std::vector<chr::SweepPoint>> columns;
    columns.reserve(dies.size());
    for (const auto &d : dies)
        columns.push_back(chr::acminSweep(ctx.moduleConfig(d, 50.0),
                                          ctx.engine(), sweep,
                                          chr::AccessKind::SingleSided));

    for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
        std::vector<std::string> row = {formatTime(sweep[ti])};
        for (const auto &column : columns) {
            const auto &point = column[ti];
            row.push_back(point.acminSummary().count
                              ? api::cell(point.fractionOneToZero())
                              : "No Bitflip");
        }
        table.row(std::move(row));
    }
    ctx.emit(table);
    ctx.note("\nPaper shape: RowHammer (36 ns) flips are dominantly "
             "0->1, RowPress flips\nreach ~100% 1->0 for S/H dies, "
             "~75% for M B/F dies; the M 16Gb E-die trend\nis "
             "inverted (true-/anti-cell layout).\n\n");
}

REGISTER_EXPERIMENT(fig12, "Fig. 12: bitflip direction",
                    "Fig. 12 (fraction of 1->0 flips, checkerboard)",
                    "characterization", runFig12);

void
BM_DirectionPoint(benchmark::State &state)
{
    chr::Module module =
        rpb::makeModule(device::dieById("M-16Gb-E"), 50.0);
    for (auto _ : state) {
        auto point = chr::acminPoint(module, 7800_ns,
                                     chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point.fractionOneToZero());
    }
}
BENCHMARK(BM_DirectionPoint)->Unit(benchmark::kMillisecond);

} // namespace
