/**
 * @file
 * Static-initializer anchor that pulls the fuzz.* experiments
 * (src/fuzz/experiments.cc) into the `rowpress` binary.  The run
 * functions live in the library so the test suite can drive them
 * through api::runCli too.
 */

#include "fuzz/experiments.h"

namespace {

[[maybe_unused]] const bool registered =
    (rp::fuzz::registerFuzzExperiments(), true);

} // namespace
