/**
 * @file
 * Shared runner for the per-figure/table bench binaries.
 *
 * Every binary describes its data series as a function that runs a
 * task set on the shared rp::core::ExperimentEngine; the runner prints
 * the banner, times the series (reporting wall-clock and the thread
 * count, so `RP_THREADS=1` vs `RP_THREADS=N` gives a direct speedup
 * measurement), then hands over to the google-benchmark
 * micro-measurements.
 *
 * Scaled-down defaults; set ROWPRESS_BENCH_LOCATIONS /
 * ROWPRESS_ALL_DIES / ROWPRESS_BENCH_SCALE to enlarge, RP_THREADS to
 * choose the engine's worker count.
 */

#ifndef ROWPRESS_BENCH_RUNNER_H
#define ROWPRESS_BENCH_RUNNER_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rowpress.h"

namespace rpb {

int envInt(const char *name, int def);

/** Tested locations per module (paper: 3072 rows; default: 10). */
int benchLocations();

/** Global effort multiplier for the heavier benches. */
double benchScale();

/** Die set: one representative per manufacturer, or all twelve. */
std::vector<rp::device::DieConfig> benchDies();

/** ModuleConfig for a bench module (the engine drivers' task input). */
rp::chr::ModuleConfig moduleConfig(const rp::device::DieConfig &die,
                                   double temp_c,
                                   std::uint64_t seed = 1);

/** A live Module (serial paths and micro-benchmarks). */
rp::chr::Module makeModule(const rp::device::DieConfig &die,
                           double temp_c, std::uint64_t seed = 1);

std::string fmtCount(double v);

/**
 * SystemJob mitigation factory building a fresh PARA (or Graphene,
 * with the paper's 64 ms window / 45 ns CAS / 32-entry table) instance
 * per run at threshold @p trh.
 */
std::function<std::unique_ptr<rp::mitigation::Mitigation>()>
mitigationFactory(bool use_para, std::uint32_t trh);

void printHeader(const char *experiment, const char *paper_ref);

int runBenchmarkMain(int argc, char **argv);

/** Banner of a figure/table binary. */
struct FigureSpec
{
    const char *title;
    const char *paperRef;
};

/**
 * Entry point of a bench binary: print the banner, run the figure's
 * task set on the shared engine (timed), then run the registered
 * google-benchmark measurements.
 */
int figureMain(
    int argc, char **argv, const FigureSpec &spec,
    const std::function<void(rp::core::ExperimentEngine &)> &emit);

} // namespace rpb

#endif // ROWPRESS_BENCH_RUNNER_H
