/**
 * @file
 * Figs. 46-48 (Appendix F): 65 C results - ACmin at 65 C normalized
 * to 50 C, ACmin at 80 C normalized to 65 C, and the single-minus-
 * double-sided difference across all three temperatures.
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

const std::vector<Time> kSweep = {36_ns, 636_ns, 7800_ns, 70200_ns,
                                  1_ms, 30_ms};

void
runFig46(api::ExperimentContext &ctx)
{
    for (const auto &die : ctx.dies()) {
        auto p50s = chr::acminSweep(ctx.moduleConfig(die, 50.0),
                                    ctx.engine(), kSweep,
                                    chr::AccessKind::SingleSided);
        auto p65s = chr::acminSweep(ctx.moduleConfig(die, 65.0),
                                    ctx.engine(), kSweep,
                                    chr::AccessKind::SingleSided);
        auto p80s = chr::acminSweep(ctx.moduleConfig(die, 80.0),
                                    ctx.engine(), kSweep,
                                    chr::AccessKind::SingleSided);
        auto d65s = chr::acminSweep(ctx.moduleConfig(die, 65.0),
                                    ctx.engine(), kSweep,
                                    chr::AccessKind::DoubleSided);

        api::Dataset table(die.name +
                           " (single-sided mean ACmin ratios)");
        table.header({"tAggON", "65C/50C", "80C/65C", "SS-DS@65C"});
        for (std::size_t ti = 0; ti < kSweep.size(); ++ti) {
            auto ratio = [](double num, double den) -> std::string {
                return (num > 0 && den > 0) ? api::cell(num / den)
                                            : std::string("-");
            };
            std::string diff = "-";
            if (p65s[ti].meanAcmin() > 0 && d65s[ti].meanAcmin() > 0)
                diff = api::cell(p65s[ti].meanAcmin() -
                                 d65s[ti].meanAcmin());
            table.row({formatTime(kSweep[ti]),
                       ratio(p65s[ti].meanAcmin(), p50s[ti].meanAcmin()),
                       ratio(p80s[ti].meanAcmin(), p65s[ti].meanAcmin()),
                       diff});
        }
        ctx.emit(table);
        ctx.note("\n");
    }
    ctx.note("Paper shape: ACmin shrinks consistently at each "
             "temperature step for\nRowPress-regime tAggON; the "
             "single-sided advantage at long tAggON holds\nat 65C "
             "as well.\n\n");
}

REGISTER_EXPERIMENT(fig46, "Figs. 46-48: 65C temperature step",
                    "Appendix F (normalized ACmin at 65C and 80C)",
                    "characterization", runFig46);

void
BM_Temp65Point(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 65.0);
    for (auto _ : state) {
        auto p = chr::acminPoint(module, 7800_ns,
                                 chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_Temp65Point)->Unit(benchmark::kMillisecond);

} // namespace
