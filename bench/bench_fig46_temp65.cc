/**
 * @file
 * Figs. 46-48 (Appendix F): 65 C results - ACmin at 65 C normalized
 * to 50 C, ACmin at 80 C normalized to 65 C, and the single-minus-
 * double-sided difference across all three temperatures.
 */

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

const std::vector<Time> kSweep = {36_ns, 636_ns, 7800_ns, 70200_ns,
                                  1_ms, 30_ms};

void
printFig46(core::ExperimentEngine &engine)
{
    for (const auto &die : rpb::benchDies()) {
        auto p50s = chr::acminSweep(rpb::moduleConfig(die, 50.0),
                                    engine, kSweep,
                                    chr::AccessKind::SingleSided);
        auto p65s = chr::acminSweep(rpb::moduleConfig(die, 65.0),
                                    engine, kSweep,
                                    chr::AccessKind::SingleSided);
        auto p80s = chr::acminSweep(rpb::moduleConfig(die, 80.0),
                                    engine, kSweep,
                                    chr::AccessKind::SingleSided);
        auto d65s = chr::acminSweep(rpb::moduleConfig(die, 65.0),
                                    engine, kSweep,
                                    chr::AccessKind::DoubleSided);

        Table table(die.name + " (single-sided mean ACmin ratios)");
        table.header({"tAggON", "65C/50C", "80C/65C", "SS-DS@65C"});
        for (std::size_t ti = 0; ti < kSweep.size(); ++ti) {
            auto ratio = [](double num, double den) -> std::string {
                return (num > 0 && den > 0) ? Table::toCell(num / den)
                                            : std::string("-");
            };
            std::string diff = "-";
            if (p65s[ti].meanAcmin() > 0 && d65s[ti].meanAcmin() > 0)
                diff = Table::toCell(p65s[ti].meanAcmin() -
                                     d65s[ti].meanAcmin());
            table.row({formatTime(kSweep[ti]),
                       ratio(p65s[ti].meanAcmin(), p50s[ti].meanAcmin()),
                       ratio(p80s[ti].meanAcmin(), p65s[ti].meanAcmin()),
                       diff});
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Paper shape: ACmin shrinks consistently at each "
                "temperature step for\nRowPress-regime tAggON; the "
                "single-sided advantage at long tAggON holds\nat 65C "
                "as well.\n\n");
}

void
BM_Temp65Point(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 65.0);
    for (auto _ : state) {
        auto p = chr::acminPoint(module, 7800_ns,
                                 chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_Temp65Point)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Figs. 46-48: 65C temperature step",
         "Appendix F (normalized ACmin at 65C and 80C)"},
        printFig46);
}
