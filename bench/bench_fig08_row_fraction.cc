/**
 * @file
 * Fig. 8: fraction of tested rows with at least one RowPress bitflip
 * as tAggON increases (single-sided, 50 C).  Obsv. 4: the more
 * advanced the technology node, the more rows are vulnerable.
 */

#include "bench_common.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printFig08()
{
    rpb::printHeader("Fig. 8: fraction of rows with bitflips",
                     "Fig. 8 (single-sided @ 50C)");

    // Compare die revisions within Mfr. S to show the node-scaling
    // trend (B -> C -> D), plus one die per other manufacturer.
    std::vector<device::DieConfig> dies = {
        device::dieById("S-8Gb-B"), device::dieById("S-8Gb-C"),
        device::dieById("S-8Gb-D"), device::dieH16GbA(),
        device::dieM16GbF()};
    if (rpb::envInt("ROWPRESS_ALL_DIES", 0))
        dies = device::allDies();

    Table table("Fraction of rows with >=1 bitflip");
    std::vector<std::string> head = {"tAggON"};
    for (const auto &d : dies)
        head.push_back(d.id);
    table.header(head);

    std::vector<std::vector<double>> columns(dies.size());
    std::vector<chr::Module> modules;
    modules.reserve(dies.size());
    for (const auto &d : dies)
        modules.push_back(rpb::makeModule(d, 50.0));

    for (Time t : chr::standardTAggOnSweep()) {
        std::vector<std::string> row = {formatTime(t)};
        for (std::size_t i = 0; i < dies.size(); ++i) {
            auto point = chr::acminPoint(modules[i], t,
                                         chr::AccessKind::SingleSided);
            row.push_back(Table::toCell(point.fractionFlipped()));
        }
        table.row(std::move(row));
    }
    table.print();
    std::printf("\nPaper shape (Obsv. 4): later die revisions (more "
                "advanced nodes) have\nhigher vulnerable-row fractions; "
                "S 8Gb D > C > B.\n\n");
}

void
BM_RowFractionPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    for (auto _ : state) {
        auto point = chr::acminPoint(module, 30_ms,
                                     chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point);
    }
}
BENCHMARK(BM_RowFractionPoint)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig08();
    return rpb::runBenchmarkMain(argc, argv);
}
