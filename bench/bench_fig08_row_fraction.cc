/**
 * @file
 * Fig. 8: fraction of tested rows with at least one RowPress bitflip
 * as tAggON increases (single-sided, 50 C).  Obsv. 4: the more
 * advanced the technology node, the more rows are vulnerable.
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runFig08(api::ExperimentContext &ctx)
{
    // Compare die revisions within Mfr. S to show the node-scaling
    // trend (B -> C -> D), plus one die per other manufacturer.
    const auto dies = ctx.dies({device::dieById("S-8Gb-B"),
                                device::dieById("S-8Gb-C"),
                                device::dieById("S-8Gb-D"),
                                device::dieH16GbA(),
                                device::dieM16GbF()});

    api::Dataset table("Fraction of rows with >=1 bitflip");
    std::vector<std::string> head = {"tAggON"};
    for (const auto &d : dies)
        head.push_back(d.id);
    table.header(head);

    // One engine sweep per die column.
    const auto &sweep = chr::standardTAggOnSweep();
    std::vector<std::vector<chr::SweepPoint>> columns;
    columns.reserve(dies.size());
    for (const auto &d : dies)
        columns.push_back(chr::acminSweep(ctx.moduleConfig(d, 50.0),
                                          ctx.engine(), sweep,
                                          chr::AccessKind::SingleSided));

    for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
        std::vector<std::string> row = {formatTime(sweep[ti])};
        for (std::size_t i = 0; i < dies.size(); ++i)
            row.push_back(
                api::cell(columns[i][ti].fractionFlipped()));
        table.row(std::move(row));
    }
    ctx.emit(table);
    ctx.note("\nPaper shape (Obsv. 4): later die revisions (more "
             "advanced nodes) have\nhigher vulnerable-row fractions; "
             "S 8Gb D > C > B.\n\n");
}

REGISTER_EXPERIMENT(fig08, "Fig. 8: fraction of rows with bitflips",
                    "Fig. 8 (single-sided @ 50C)", "characterization",
                    runFig08);

void
BM_RowFractionPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    for (auto _ : state) {
        auto point = chr::acminPoint(module, 30_ms,
                                     chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point);
    }
}
BENCHMARK(BM_RowFractionPoint)->Unit(benchmark::kMillisecond);

} // namespace
