/**
 * @file
 * Fig. 8: fraction of tested rows with at least one RowPress bitflip
 * as tAggON increases (single-sided, 50 C).  Obsv. 4: the more
 * advanced the technology node, the more rows are vulnerable.
 */

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printFig08(core::ExperimentEngine &engine)
{
    // Compare die revisions within Mfr. S to show the node-scaling
    // trend (B -> C -> D), plus one die per other manufacturer.
    std::vector<device::DieConfig> dies = {
        device::dieById("S-8Gb-B"), device::dieById("S-8Gb-C"),
        device::dieById("S-8Gb-D"), device::dieH16GbA(),
        device::dieM16GbF()};
    if (rpb::envInt("ROWPRESS_ALL_DIES", 0))
        dies = device::allDies();

    Table table("Fraction of rows with >=1 bitflip");
    std::vector<std::string> head = {"tAggON"};
    for (const auto &d : dies)
        head.push_back(d.id);
    table.header(head);

    // One engine sweep per die column.
    const auto &sweep = chr::standardTAggOnSweep();
    std::vector<std::vector<chr::SweepPoint>> columns;
    columns.reserve(dies.size());
    for (const auto &d : dies)
        columns.push_back(chr::acminSweep(rpb::moduleConfig(d, 50.0),
                                          engine, sweep,
                                          chr::AccessKind::SingleSided));

    for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
        std::vector<std::string> row = {formatTime(sweep[ti])};
        for (std::size_t i = 0; i < dies.size(); ++i)
            row.push_back(
                Table::toCell(columns[i][ti].fractionFlipped()));
        table.row(std::move(row));
    }
    table.print();
    std::printf("\nPaper shape (Obsv. 4): later die revisions (more "
                "advanced nodes) have\nhigher vulnerable-row fractions; "
                "S 8Gb D > C > B.\n\n");
}

void
BM_RowFractionPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    for (auto _ : state) {
        auto point = chr::acminPoint(module, 30_ms,
                                     chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point);
    }
}
BENCHMARK(BM_RowFractionPoint)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Fig. 8: fraction of rows with bitflips",
         "Fig. 8 (single-sided @ 50C)"},
        printFig08);
}
