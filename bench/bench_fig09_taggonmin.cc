/**
 * @file
 * Fig. 9: minimum tAggON to induce at least one bitflip (tAggONmin)
 * as the activation count grows from 1 to 10 K (single-sided, 50 C).
 * Obsv. 5: slope ~ -1; Obsv. 6: single-activation flips below 10 ms
 * exist in the newest dies.
 */

#include <cmath>

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;

namespace {

void
printFig09(core::ExperimentEngine &engine)
{
    const std::vector<std::uint64_t> acts = {1, 10, 100, 1000, 10000};

    for (const auto &die : rpb::benchDies()) {
        const auto mc = rpb::moduleConfig(die, 50.0);
        Table table(die.name);
        table.header({"AC", "mean tAggONmin", "min", "max",
                      "AC*mean(ms)"});
        std::vector<double> lx, ly;
        for (std::uint64_t ac : acts) {
            auto point = chr::tAggOnMinPoint(
                mc, engine, ac, chr::AccessKind::SingleSided);
            auto s = point.summary();
            if (s.count == 0) {
                table.row({Table::toCell(ac), "No Bitflip", "-", "-",
                           "-"});
                continue;
            }
            table.row({Table::toCell(ac),
                       formatTime(Time(s.mean * double(units::US))),
                       formatTime(Time(s.min * double(units::US))),
                       formatTime(Time(s.max * double(units::US))),
                       Table::toCell(double(ac) * s.mean / 1000.0)});
            lx.push_back(std::log10(double(ac)));
            ly.push_back(std::log10(s.mean));
        }
        table.print();
        std::printf("log-log slope: %.3f (paper: -0.999 to -1.000)\n\n",
                    linearSlope(lx, ly));
    }
}

void
BM_TAggOnMinSearch(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    chr::RowLayout layout =
        chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
    for (auto _ : state) {
        auto res = chr::findTAggOnMin(module.platform(), layout,
                                      chr::DataPattern::CheckerBoard,
                                      100);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_TAggOnMinSearch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Fig. 9: tAggONmin vs activation count",
         "Fig. 9 (single-sided @ 50C)"},
        printFig09);
}
