/**
 * @file
 * Fig. 9: minimum tAggON to induce at least one bitflip (tAggONmin)
 * as the activation count grows from 1 to 10 K (single-sided, 50 C).
 * Obsv. 5: slope ~ -1; Obsv. 6: single-activation flips below 10 ms
 * exist in the newest dies.
 */

#include <cmath>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;

namespace {

void
runFig09(api::ExperimentContext &ctx)
{
    const std::vector<std::uint64_t> acts = {1, 10, 100, 1000, 10000};
    const double temp = ctx.config().getDouble("temp");

    for (const auto &die : ctx.dies()) {
        const auto mc = ctx.moduleConfig(die, temp);
        api::Dataset table(die.name);
        table.header({"AC", "mean tAggONmin", "min", "max",
                      "AC*mean(ms)"});
        std::vector<double> lx, ly;
        std::vector<chr::TAggOnMinPoint> points;
        for (std::uint64_t ac : acts) {
            auto point = chr::tAggOnMinPoint(
                mc, ctx.engine(), ac, chr::AccessKind::SingleSided);
            auto s = point.summary();
            points.push_back(std::move(point));
            if (s.count == 0) {
                table.row({api::cell(ac), "No Bitflip", "-", "-",
                           "-"});
                continue;
            }
            table.row({api::cell(ac),
                       formatTime(Time(s.mean * double(units::US))),
                       formatTime(Time(s.min * double(units::US))),
                       formatTime(Time(s.max * double(units::US))),
                       api::cell(double(ac) * s.mean / 1000.0)});
            lx.push_back(std::log10(double(ac)));
            ly.push_back(std::log10(s.mean));
        }
        ctx.emit(table);
        ctx.emitTAggOnMinRaw("raw_taggonmin_ss_" + die.id, die.id,
                             temp, points);
        ctx.notef("log-log slope: %.3f (paper: -0.999 to -1.000)\n\n",
                  linearSlope(lx, ly));
    }
}

REGISTER_EXPERIMENT_OPTS(
    fig09, "Fig. 9: tAggONmin vs activation count",
    "Fig. 9 (single-sided @ 50C)", "characterization",
    [](api::ConfigSchema &schema) {
        schema.add({"temp", api::OptionType::Double, "50", "",
                    "module temperature (C)", 0.0, true});
    },
    runFig09);

void
BM_TAggOnMinSearch(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    chr::RowLayout layout =
        chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
    for (auto _ : state) {
        auto res = chr::findTAggOnMin(module.platform(), layout,
                                      chr::DataPattern::CheckerBoard,
                                      100);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_TAggOnMinSearch)->Unit(benchmark::kMillisecond);

} // namespace
