/**
 * @file
 * Fig. 1: ACmin distributions of conventional RowHammer vs three
 * representative RowPress cases (tAggON = tREFI, 9 x tREFI, 30 ms) at
 * 80 C, single- and double-sided, per manufacturer.
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runFig01(api::ExperimentContext &ctx)
{
    const std::vector<Time> t_agg_ons = {36_ns, 7800_ns, 70200_ns, 30_ms};
    const double temp = ctx.config().getDouble("temp");

    for (const auto &die : ctx.dies()) {
        api::Dataset table(die.name + " @ " + api::cell(temp) +
                           "C (ACmin: min / Q1 / median / Q3 / max)");
        table.header({"tAggON", "pattern", "min", "q1", "median", "q3",
                      "max", "rows-flipped"});
        const auto mc = ctx.moduleConfig(die, temp);
        for (auto kind : {chr::AccessKind::SingleSided,
                          chr::AccessKind::DoubleSided}) {
            auto points =
                chr::acminSweep(mc, ctx.engine(), t_agg_ons, kind);
            for (const auto &point : points) {
                auto s = point.acminSummary();
                table.row({formatTime(point.tAggOn),
                           chr::accessKindName(kind),
                           api::fmtCount(s.min), api::fmtCount(s.q1),
                           api::fmtCount(s.median), api::fmtCount(s.q3),
                           api::fmtCount(s.max),
                           api::cell(point.fractionFlipped())});
            }
        }
        ctx.emit(table);
        ctx.note("\n");
    }
    ctx.note("Paper shape: RowPress reduces ACmin by 1-2 orders of "
             "magnitude vs RowHammer;\nat tAggON = 30 ms the minimum "
             "reaches a single activation (dashed red boxes).\n\n");
}

REGISTER_EXPERIMENT_OPTS(
    fig01, "Fig. 1: ACmin overview, RowHammer vs RowPress",
    "Fig. 1 (box-and-whiskers at 80C)", "characterization",
    [](api::ConfigSchema &schema) {
        schema.add({"temp", api::OptionType::Double, "80", "",
                    "module temperature (C)", 0.0, true});
    },
    runFig01);

void
BM_AcminSearch(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 80.0);
    chr::RowLayout layout =
        chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
    for (auto _ : state) {
        auto res = chr::findAcmin(module.platform(), layout,
                                  chr::DataPattern::CheckerBoard,
                                  7800_ns);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_AcminSearch)->Unit(benchmark::kMillisecond);

} // namespace
