/**
 * @file
 * Fig. 1: ACmin distributions of conventional RowHammer vs three
 * representative RowPress cases (tAggON = tREFI, 9 x tREFI, 30 ms) at
 * 80 C, single- and double-sided, per manufacturer.
 */

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printFig01(core::ExperimentEngine &engine)
{
    const std::vector<Time> t_agg_ons = {36_ns, 7800_ns, 70200_ns, 30_ms};

    for (const auto &die : rpb::benchDies()) {
        Table table(die.name + " @ 80C (ACmin: min / Q1 / median / Q3 "
                               "/ max)");
        table.header({"tAggON", "pattern", "min", "q1", "median", "q3",
                      "max", "rows-flipped"});
        const auto mc = rpb::moduleConfig(die, 80.0);
        for (auto kind : {chr::AccessKind::SingleSided,
                          chr::AccessKind::DoubleSided}) {
            auto points = chr::acminSweep(mc, engine, t_agg_ons, kind);
            for (const auto &point : points) {
                auto s = point.acminSummary();
                table.row({formatTime(point.tAggOn),
                           chr::accessKindName(kind),
                           rpb::fmtCount(s.min), rpb::fmtCount(s.q1),
                           rpb::fmtCount(s.median), rpb::fmtCount(s.q3),
                           rpb::fmtCount(s.max),
                           Table::toCell(point.fractionFlipped())});
            }
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Paper shape: RowPress reduces ACmin by 1-2 orders of "
                "magnitude vs RowHammer;\nat tAggON = 30 ms the minimum "
                "reaches a single activation (dashed red boxes).\n\n");
}

void
BM_AcminSearch(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 80.0);
    chr::RowLayout layout =
        chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
    for (auto _ : state) {
        auto res = chr::findAcmin(module.platform(), layout,
                                  chr::DataPattern::CheckerBoard,
                                  7800_ns);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_AcminSearch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Fig. 1: ACmin overview, RowHammer vs RowPress",
         "Fig. 1 (box-and-whiskers at 80C)"},
        printFig01);
}
