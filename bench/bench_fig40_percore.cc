/**
 * @file
 * Fig. 40 (Appendix D.2): per-workload single-core IPC of
 * Graphene-RP and PARA-RP normalized to Graphene and PARA, across
 * t_mro configurations.
 */

#include "bench_common.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printFig40()
{
    rpb::printHeader("Fig. 40: per-workload normalized IPC",
                     "Fig. 40 (single-core, LLC-MPKI > 5 subset)");

    const std::vector<Time> tmros = {36_ns, 96_ns, 336_ns, 636_ns};
    const std::uint64_t instrs = std::max<std::uint64_t>(
        40000, std::uint64_t(100000 * rpb::benchScale()));
    const auto profile = mitigation::paperTable3Profile();

    std::vector<std::string> names = {
        "429.mcf", "433.milc", "462.libquantum", "470.lbm",
        "510.parest", "483.xalancbmk", "h264_decode", "tpch17"};

    for (bool use_para : {false, true}) {
        Table table(use_para ? "PARA-RP IPC normalized to PARA"
                             : "Graphene-RP IPC normalized to Graphene");
        std::vector<std::string> head = {"workload"};
        for (Time t : tmros)
            head.push_back("t_mro=" + formatTime(t));
        table.header(head);

        for (const auto &name : names) {
            const auto w = workloads::workloadByName(name);

            // Baseline: the unadapted mechanism, open-row policy.
            double base_ipc;
            {
                sim::SystemConfig cfg;
                cfg.core.instrLimit = instrs;
                cfg.workloads = {w};
                std::unique_ptr<mitigation::Mitigation> mit;
                if (use_para)
                    mit = std::make_unique<mitigation::Para>(
                        mitigation::paraFor(1000));
                else
                    mit = std::make_unique<mitigation::Graphene>(
                        mitigation::grapheneFor(1000, 64_ms, 45_ns,
                                                32));
                cfg.mem.mitigation = mit.get();
                base_ipc = sim::runSystem(cfg).ipcOf(0);
            }

            std::vector<std::string> row = {name};
            for (Time t : tmros) {
                const auto a =
                    mitigation::adaptThreshold(profile, 1000, t);
                sim::SystemConfig cfg;
                cfg.core.instrLimit = instrs;
                cfg.workloads = {w};
                cfg.mem.tMro = t;
                std::unique_ptr<mitigation::Mitigation> mit;
                if (use_para)
                    mit = std::make_unique<mitigation::Para>(
                        mitigation::paraFor(a.adaptedTrh));
                else
                    mit = std::make_unique<mitigation::Graphene>(
                        mitigation::grapheneFor(a.adaptedTrh, 64_ms,
                                                45_ns, 32));
                cfg.mem.mitigation = mit.get();
                const double ipc = sim::runSystem(cfg).ipcOf(0);
                row.push_back(Table::toCell(ipc / base_ipc));
            }
            table.row(std::move(row));
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Paper shape: low-row-locality workloads (429.mcf) "
                "speed up under small t_mro;\nhigh-locality ones "
                "(462.libquantum, 510.parest) slow down; PARA-RP "
                "overheads\nexceed Graphene-RP's.\n\n");
}

void
BM_MitigatedRun(benchmark::State &state)
{
    const auto w = workloads::workloadByName("429.mcf");
    mitigation::Graphene g(mitigation::grapheneFor(724, 64_ms, 45_ns,
                                                   32));
    for (auto _ : state) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 40000;
        cfg.mem.tMro = 96_ns;
        cfg.mem.mitigation = &g;
        cfg.workloads = {w};
        auto r = sim::runSystem(cfg);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MitigatedRun)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig40();
    return rpb::runBenchmarkMain(argc, argv);
}
