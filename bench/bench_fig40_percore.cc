/**
 * @file
 * Fig. 40 (Appendix D.2): per-workload single-core IPC of
 * Graphene-RP and PARA-RP normalized to Graphene and PARA, across
 * t_mro configurations.
 */

#include <algorithm>

#include "api/context.h"

#include "bench_support.h"
#include "mitigation/defaults.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runFig40(api::ExperimentContext &ctx)
{
    const std::vector<Time> tmros = {36_ns, 96_ns, 336_ns, 636_ns};
    const std::uint64_t instrs = std::max<std::uint64_t>(
        40000, std::uint64_t(100000 * ctx.scale()));
    const auto profile = mitigation::paperTable3Profile();

    std::vector<std::string> names = {
        "429.mcf", "433.milc", "462.libquantum", "470.lbm",
        "510.parest", "483.xalancbmk", "h264_decode", "tpch17"};

    for (bool use_para : {false, true}) {
        // One job per workload x (baseline + t_mro configs), each with
        // its own freshly built mitigation instance.
        std::vector<sim::SystemJob> jobs;
        for (const auto &name : names) {
            const auto w = workloads::workloadByName(name);

            sim::SystemJob base;
            base.cfg.core.instrLimit = instrs;
            base.cfg.workloads = {w};
            base.mitigationFactory =
                mitigation::standardMitigationFactory(use_para, 1000);
            jobs.push_back(base);

            for (Time t : tmros) {
                const auto a =
                    mitigation::adaptThreshold(profile, 1000, t);
                sim::SystemJob job;
                job.cfg.core.instrLimit = instrs;
                job.cfg.workloads = {w};
                job.cfg.mem.tMro = t;
                job.mitigationFactory =
                    mitigation::standardMitigationFactory(
                        use_para, a.adaptedTrh);
                jobs.push_back(job);
            }
        }
        auto results = sim::runSystems(jobs, ctx.engine());

        api::Dataset table(use_para
                               ? "PARA-RP IPC normalized to PARA"
                               : "Graphene-RP IPC normalized to "
                                 "Graphene");
        std::vector<std::string> head = {"workload"};
        for (Time t : tmros)
            head.push_back("t_mro=" + formatTime(t));
        table.header(head);

        const std::size_t stride = 1 + tmros.size();
        for (std::size_t wi = 0; wi < names.size(); ++wi) {
            const double base_ipc = results[wi * stride].ipcOf(0);
            std::vector<std::string> row = {names[wi]};
            for (std::size_t ti = 0; ti < tmros.size(); ++ti) {
                const double ipc =
                    results[wi * stride + 1 + ti].ipcOf(0);
                row.push_back(api::cell(ipc / base_ipc));
            }
            table.row(std::move(row));
        }
        ctx.emit(table);
        ctx.note("\n");
    }
    ctx.note("Paper shape: low-row-locality workloads (429.mcf) "
             "speed up under small t_mro;\nhigh-locality ones "
             "(462.libquantum, 510.parest) slow down; PARA-RP "
             "overheads\nexceed Graphene-RP's.\n\n");
}

REGISTER_EXPERIMENT(fig40, "Fig. 40: per-workload normalized IPC",
                    "Fig. 40 (single-core, LLC-MPKI > 5 subset)",
                    "simulator", runFig40);

void
BM_MitigatedRun(benchmark::State &state)
{
    const auto w = workloads::workloadByName("429.mcf");
    mitigation::Graphene g(mitigation::standardGrapheneFor(724));
    for (auto _ : state) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 40000;
        cfg.mem.tMro = 96_ns;
        cfg.mem.mitigation = &g;
        cfg.workloads = {w};
        auto r = sim::runSystem(cfg);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MitigatedRun)->Unit(benchmark::kMillisecond);

} // namespace
