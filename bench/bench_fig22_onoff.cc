/**
 * @file
 * Fig. 22 (and appendix Figs. 27-37): BER of the RowPress-ONOFF
 * pattern, sweeping the ACT-to-ACT slack (delta tA2A) and the fraction
 * of the slack that contributes to tAggON, single- and double-sided,
 * at 50 C and 80 C.  Obsv. 16-18.
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
emitOnOff(api::ExperimentContext &ctx, const device::DieConfig &die)
{
    const std::vector<Time> deltas = {240_ns, 600_ns, 1200_ns, 2400_ns,
                                      6000_ns};
    const std::vector<double> fracs = {0.0, 0.25, 0.5, 0.75, 1.0};

    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        for (double temp : {50.0, 80.0}) {
            const auto mc = ctx.moduleConfig(die, temp);

            // Flattened (delta x on-fraction) BER grid; each cell runs
            // on its own module.
            auto bers = ctx.engine().map<double>(
                deltas.size() * fracs.size(),
                [&](const core::TaskContext &tc) {
                    const Time d = deltas[tc.index / fracs.size()];
                    const double f = fracs[tc.index % fracs.size()];
                    chr::Module local(mc);
                    return chr::onOffBer(local, 0, kind, d, f, 2);
                });

            api::Dataset table(die.name + " " +
                               chr::accessKindName(kind) + " @ " +
                               api::cell(temp) +
                               "C (max BER over victims)");
            std::vector<std::string> head = {"dtA2A \\ on-frac"};
            for (double f : fracs)
                head.push_back(api::cell(f * 100.0) + "%");
            table.header(head);
            for (std::size_t di = 0; di < deltas.size(); ++di) {
                std::vector<std::string> row = {formatTime(deltas[di])};
                for (std::size_t fi = 0; fi < fracs.size(); ++fi)
                    row.push_back(api::cell(
                        bers[di * fracs.size() + fi]));
                table.row(std::move(row));
            }
            ctx.emit(table);
            ctx.note("\n");
        }
    }
}

void
runFig22(api::ExperimentContext &ctx)
{
    for (const auto &die : ctx.dies({device::dieS8GbD()}))
        emitOnOff(ctx, die);

    ctx.note("Paper shape (Obsv. 16-18): single-sided BER falls "
             "with on-fraction at small\ndtA2A but rises at large "
             "dtA2A; temperature amplifies the large-dtA2A, "
             "high-on\ncorner; double-sided BER rises with "
             "on-fraction for every dtA2A.\n\n");
}

REGISTER_EXPERIMENT(fig22, "Fig. 22: RowPress-ONOFF pattern BER",
                    "Fig. 22 (S 8Gb D-die; Figs. 27-37 for the rest "
                    "with --dies all)",
                    "characterization", runFig22);

void
BM_OnOffBer(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    for (auto _ : state) {
        double ber = chr::onOffBer(module, 0,
                                   chr::AccessKind::SingleSided,
                                   2400_ns, 0.75, 1);
        benchmark::DoNotOptimize(ber);
    }
}
BENCHMARK(BM_OnOffBer)->Unit(benchmark::kMillisecond);

} // namespace
