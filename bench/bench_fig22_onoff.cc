/**
 * @file
 * Fig. 22 (and appendix Figs. 27-37): BER of the RowPress-ONOFF
 * pattern, sweeping the ACT-to-ACT slack (delta tA2A) and the fraction
 * of the slack that contributes to tAggON, single- and double-sided,
 * at 50 C and 80 C.  Obsv. 16-18.
 */

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printOnOff(core::ExperimentEngine &engine,
           const device::DieConfig &die)
{
    const std::vector<Time> deltas = {240_ns, 600_ns, 1200_ns, 2400_ns,
                                      6000_ns};
    const std::vector<double> fracs = {0.0, 0.25, 0.5, 0.75, 1.0};

    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        for (double temp : {50.0, 80.0}) {
            const auto mc = rpb::moduleConfig(die, temp);

            // Flattened (delta x on-fraction) BER grid; each cell runs
            // on its own module.
            auto bers = engine.map<double>(
                deltas.size() * fracs.size(),
                [&](const core::TaskContext &ctx) {
                    const Time d = deltas[ctx.index / fracs.size()];
                    const double f = fracs[ctx.index % fracs.size()];
                    chr::Module local(mc);
                    return chr::onOffBer(local, 0, kind, d, f, 2);
                });

            Table table(die.name + " " + chr::accessKindName(kind) +
                        " @ " + Table::toCell(temp) +
                        "C (max BER over victims)");
            std::vector<std::string> head = {"dtA2A \\ on-frac"};
            for (double f : fracs)
                head.push_back(Table::toCell(f * 100.0) + "%");
            table.header(head);
            for (std::size_t di = 0; di < deltas.size(); ++di) {
                std::vector<std::string> row = {formatTime(deltas[di])};
                for (std::size_t fi = 0; fi < fracs.size(); ++fi)
                    row.push_back(Table::toCell(
                        bers[di * fracs.size() + fi]));
                table.row(std::move(row));
            }
            table.print();
            std::printf("\n");
        }
    }
}

void
printFig22(core::ExperimentEngine &engine)
{
    if (rpb::envInt("ROWPRESS_ALL_DIES", 0)) {
        for (const auto &die : device::allDies())
            printOnOff(engine, die);
    } else {
        printOnOff(engine, device::dieS8GbD());
    }

    std::printf("Paper shape (Obsv. 16-18): single-sided BER falls "
                "with on-fraction at small\ndtA2A but rises at large "
                "dtA2A; temperature amplifies the large-dtA2A, "
                "high-on\ncorner; double-sided BER rises with "
                "on-fraction for every dtA2A.\n\n");
}

void
BM_OnOffBer(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    for (auto _ : state) {
        double ber = chr::onOffBer(module, 0,
                                   chr::AccessKind::SingleSided,
                                   2400_ns, 0.75, 1);
        benchmark::DoNotOptimize(ber);
    }
}
BENCHMARK(BM_OnOffBer)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Fig. 22: RowPress-ONOFF pattern BER",
         "Fig. 22 (S 8Gb D-die; Figs. 27-37 for the rest with "
         "ROWPRESS_ALL_DIES=1)"},
        printFig22);
}
