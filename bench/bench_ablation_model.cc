/**
 * @file
 * Ablation bench for the device-model structural choices called out
 * in DESIGN.md section 5:
 *  (a) the tAggOFF hammer-recovery time constant (drives Obsv. 16);
 *  (b) the double-sided RowHammer synergy kappa (drives the SS/DS
 *      RowHammer gap);
 *  (c) the RowPress side-asymmetry rho (drives Obsv. 13's crossover);
 *  (d) the charge-domain direction mapping (drives Obsv. 8);
 *  (e) the word-correlated threshold clustering (drives the ECC
 *      multi-bit words of Figs. 25/26).
 */

#include <array>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runAblation(api::ExperimentContext &ctx)
{
    // (b)/(c): sweep kappa and rho, watch the SS vs DS ACmin ratios
    // in the RowHammer regime (36 ns) and RowPress regime (70.2 us).
    // Each (kappa, rho) cell mutates its own private module, so the
    // grid fans out as one task set.
    const std::vector<double> kappas = {0.0, 3.0, 8.0};
    const std::vector<double> rhos = {0.0, 0.06, 1.0};
    const int locations = ctx.locations();
    const std::uint64_t seed = ctx.seed();

    auto module_for = [&](const device::DieConfig &die, double temp) {
        chr::ModuleConfig cfg;
        cfg.die = die;
        cfg.numLocations = locations;
        cfg.temperatureC = temp;
        cfg.seed = seed;
        return chr::Module(cfg);
    };

    struct KappaRhoCell
    {
        std::array<double, 4> means; // ss36, ds36, ssRp, dsRp
    };
    auto cells = ctx.engine().map<KappaRhoCell>(
        kappas.size() * rhos.size(), [&](const core::TaskContext &tc) {
            const double kappa = kappas[tc.index / rhos.size()];
            const double rho = rhos[tc.index % rhos.size()];
            chr::Module module = module_for(device::dieS8GbD(), 50.0);
            auto &params =
                module.platform().chip().fault().cells().mutableParams();
            params.kappaDs = kappa;
            params.rhoWeakSide = rho;
            module.platform().chip().fault().cells().invalidateCaches();

            KappaRhoCell cell;
            cell.means[0] =
                chr::acminPoint(module, 36_ns,
                                chr::AccessKind::SingleSided)
                    .meanAcmin();
            cell.means[1] =
                chr::acminPoint(module, 36_ns,
                                chr::AccessKind::DoubleSided)
                    .meanAcmin();
            cell.means[2] =
                chr::acminPoint(module, 70200_ns,
                                chr::AccessKind::SingleSided)
                    .meanAcmin();
            cell.means[3] =
                chr::acminPoint(module, 70200_ns,
                                chr::AccessKind::DoubleSided)
                    .meanAcmin();
            return cell;
        });

    api::Dataset table("kappa/rho ablation: DS/SS mean-ACmin ratio");
    table.header({"kappa", "rho", "DS/SS @36ns", "DS/SS @70.2us"});
    auto ratio = [](double ds, double ss) -> std::string {
        return (ds > 0 && ss > 0) ? api::cell(ds / ss)
                                  : std::string("-");
    };
    for (std::size_t ki = 0; ki < kappas.size(); ++ki) {
        for (std::size_t ri = 0; ri < rhos.size(); ++ri) {
            const auto &m = cells[ki * rhos.size() + ri].means;
            table.row({api::cell(kappas[ki]), api::cell(rhos[ri]),
                       ratio(m[1], m[0]), ratio(m[3], m[2])});
        }
    }
    ctx.emit(table);
    ctx.note("Expected: kappa > 0 makes DS RowHammer stronger "
             "(ratio < 1 at 36 ns); rho < 1\nmakes DS RowPress "
             "weaker (ratio > 1 at 70.2 us) - the Obsv. 13 "
             "crossover needs both.\n\n");

    // (a): tauOff ablation via the ONOFF pattern.
    const std::vector<Time> taus = {50_ns, 500_ns, 5000_ns};
    auto tau_cells = ctx.engine().map<std::array<double, 2>>(
        taus.size(), [&](const core::TaskContext &tc) {
            chr::Module module = module_for(device::dieS8GbD(), 50.0);
            auto &params =
                module.platform().chip().fault().cells().mutableParams();
            params.tauOff = taus[tc.index];
            module.platform().chip().fault().cells().invalidateCaches();
            return std::array<double, 2>{
                chr::onOffBer(module, 0, chr::AccessKind::SingleSided,
                              240_ns, 0.0, 1),
                chr::onOffBer(module, 0, chr::AccessKind::SingleSided,
                              240_ns, 1.0, 1)};
        });

    api::Dataset t2("tauOff ablation: SS ONOFF BER at dtA2A=240ns, "
                    "on-frac 0% vs 100%");
    t2.header({"tauOff", "BER @ 0%", "BER @ 100%"});
    for (std::size_t i = 0; i < taus.size(); ++i)
        t2.row({formatTime(taus[i]), api::cell(tau_cells[i][0]),
                api::cell(tau_cells[i][1])});
    ctx.emit(t2);
    ctx.note("Expected: larger tauOff widens the gap between "
             "max-off and max-on BER\n(Obsv. 16's small-dtA2A "
             "branch).\n\n");

    // (e): word clustering ablation via the ECC word histogram.
    const std::vector<double> sws = {0.0, 0.3, 0.6};
    auto word_stats = ctx.engine().map<chr::WordErrorStats>(
        sws.size(), [&](const core::TaskContext &tc) {
            chr::Module module = module_for(device::dieS8GbD(), 80.0);
            auto &params =
                module.platform().chip().fault().cells().mutableParams();
            params.sigmaWordP = sws[tc.index];
            module.platform().chip().fault().cells().invalidateCaches();
            auto attempt = chr::maxActivationAttempt(
                module, 0, chr::AccessKind::SingleSided,
                chr::DataPattern::CheckerBoard, 7800_ns);
            return chr::analyzeWordErrors(attempt.flips);
        });

    api::Dataset t3("Word-clustering ablation: words with >2 flips @ "
                    "7.8us SS 80C");
    t3.header({"sigmaWordP", "words 3-8", "words >8", "max/word"});
    for (std::size_t i = 0; i < sws.size(); ++i)
        t3.row({api::cell(sws[i]),
                api::cell(word_stats[i].words3to8),
                api::cell(word_stats[i].wordsOver8),
                api::cell(word_stats[i].maxFlipsPerWord)});
    ctx.emit(t3);
    ctx.note("Expected: the multi-bit words that defeat SECDED/"
             "Chipkill require the\nword-correlated threshold "
             "component.\n\n");
}

REGISTER_EXPERIMENT(ablation, "Model ablations", "DESIGN.md section 5",
                    "ablation", runAblation);

void
BM_AblationPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    for (auto _ : state) {
        auto p = chr::acminPoint(module, 36_ns,
                                 chr::AccessKind::DoubleSided);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_AblationPoint)->Unit(benchmark::kMillisecond);

} // namespace
