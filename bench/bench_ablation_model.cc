/**
 * @file
 * Ablation bench for the device-model structural choices called out
 * in DESIGN.md section 5:
 *  (a) the tAggOFF hammer-recovery time constant (drives Obsv. 16);
 *  (b) the double-sided RowHammer synergy kappa (drives the SS/DS
 *      RowHammer gap);
 *  (c) the RowPress side-asymmetry rho (drives Obsv. 13's crossover);
 *  (d) the charge-domain direction mapping (drives Obsv. 8);
 *  (e) the word-correlated threshold clustering (drives the ECC
 *      multi-bit words of Figs. 25/26).
 */

#include "bench_common.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printAblation()
{
    rpb::printHeader("Model ablations", "DESIGN.md section 5");

    // (b)/(c): sweep kappa and rho, watch the SS vs DS ACmin ratios
    // in the RowHammer regime (36 ns) and RowPress regime (70.2 us).
    Table table("kappa/rho ablation: DS/SS mean-ACmin ratio");
    table.header({"kappa", "rho", "DS/SS @36ns", "DS/SS @70.2us"});
    for (double kappa : {0.0, 3.0, 8.0}) {
        for (double rho : {0.0, 0.06, 1.0}) {
            chr::Module module = rpb::makeModule(device::dieS8GbD(),
                                                 50.0);
            auto &params =
                module.platform().chip().fault().cells().mutableParams();
            params.kappaDs = kappa;
            params.rhoWeakSide = rho;
            module.platform().chip().fault().cells().invalidateCaches();

            auto r36_ss = chr::acminPoint(
                module, 36_ns, chr::AccessKind::SingleSided);
            auto r36_ds = chr::acminPoint(
                module, 36_ns, chr::AccessKind::DoubleSided);
            auto rp_ss = chr::acminPoint(
                module, 70200_ns, chr::AccessKind::SingleSided);
            auto rp_ds = chr::acminPoint(
                module, 70200_ns, chr::AccessKind::DoubleSided);

            auto ratio = [](double ds, double ss) -> std::string {
                return (ds > 0 && ss > 0) ? Table::toCell(ds / ss)
                                          : std::string("-");
            };
            table.row({Table::toCell(kappa), Table::toCell(rho),
                       ratio(r36_ds.meanAcmin(), r36_ss.meanAcmin()),
                       ratio(rp_ds.meanAcmin(), rp_ss.meanAcmin())});
        }
    }
    table.print();
    std::printf("Expected: kappa > 0 makes DS RowHammer stronger "
                "(ratio < 1 at 36 ns); rho < 1\nmakes DS RowPress "
                "weaker (ratio > 1 at 70.2 us) - the Obsv. 13 "
                "crossover needs both.\n\n");

    // (a): tauOff ablation via the ONOFF pattern.
    Table t2("tauOff ablation: SS ONOFF BER at dtA2A=240ns, "
             "on-frac 0%% vs 100%%");
    t2.header({"tauOff", "BER @ 0%", "BER @ 100%"});
    for (Time tau : {50_ns, 500_ns, 5000_ns}) {
        chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
        auto &params =
            module.platform().chip().fault().cells().mutableParams();
        params.tauOff = tau;
        module.platform().chip().fault().cells().invalidateCaches();
        t2.row({formatTime(tau),
                Table::toCell(chr::onOffBer(
                    module, 0, chr::AccessKind::SingleSided, 240_ns,
                    0.0, 1)),
                Table::toCell(chr::onOffBer(
                    module, 0, chr::AccessKind::SingleSided, 240_ns,
                    1.0, 1))});
    }
    t2.print();
    std::printf("Expected: larger tauOff widens the gap between "
                "max-off and max-on BER\n(Obsv. 16's small-dtA2A "
                "branch).\n\n");

    // (e): word clustering ablation via the ECC word histogram.
    Table t3("Word-clustering ablation: words with >2 flips @ "
             "7.8us SS 80C");
    t3.header({"sigmaWordP", "words 3-8", "words >8", "max/word"});
    for (double sw : {0.0, 0.3, 0.6}) {
        chr::Module module = rpb::makeModule(device::dieS8GbD(), 80.0);
        auto &params =
            module.platform().chip().fault().cells().mutableParams();
        params.sigmaWordP = sw;
        module.platform().chip().fault().cells().invalidateCaches();
        auto attempt = chr::maxActivationAttempt(
            module, 0, chr::AccessKind::SingleSided,
            chr::DataPattern::CheckerBoard, 7800_ns);
        auto stats = chr::analyzeWordErrors(attempt.flips);
        t3.row({Table::toCell(sw), Table::toCell(stats.words3to8),
                Table::toCell(stats.wordsOver8),
                Table::toCell(stats.maxFlipsPerWord)});
    }
    t3.print();
    std::printf("Expected: the multi-bit words that defeat SECDED/"
                "Chipkill require the\nword-correlated threshold "
                "component.\n\n");
}

void
BM_AblationPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    for (auto _ : state) {
        auto p = chr::acminPoint(module, 36_ns,
                                 chr::AccessKind::DoubleSided);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_AblationPoint)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    return rpb::runBenchmarkMain(argc, argv);
}
