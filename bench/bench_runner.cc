#include "bench_runner.h"

#include <chrono>

namespace rpb {

int
envInt(const char *name, int def)
{
    const char *v = std::getenv(name);
    return v ? std::atoi(v) : def;
}

int
benchLocations()
{
    return envInt("ROWPRESS_BENCH_LOCATIONS", 10);
}

double
benchScale()
{
    const char *v = std::getenv("ROWPRESS_BENCH_SCALE");
    return v ? std::atof(v) : 1.0;
}

std::vector<rp::device::DieConfig>
benchDies()
{
    if (envInt("ROWPRESS_ALL_DIES", 0))
        return rp::device::allDies();
    return {rp::device::dieS8GbB(), rp::device::dieH16GbA(),
            rp::device::dieM16GbF()};
}

rp::chr::ModuleConfig
moduleConfig(const rp::device::DieConfig &die, double temp_c,
             std::uint64_t seed)
{
    rp::chr::ModuleConfig cfg;
    cfg.die = die;
    cfg.numLocations = benchLocations();
    cfg.temperatureC = temp_c;
    cfg.seed = seed;
    return cfg;
}

rp::chr::Module
makeModule(const rp::device::DieConfig &die, double temp_c,
           std::uint64_t seed)
{
    return rp::chr::Module(moduleConfig(die, temp_c, seed));
}

std::function<std::unique_ptr<rp::mitigation::Mitigation>()>
mitigationFactory(bool use_para, std::uint32_t trh)
{
    using namespace rp::literals;
    return [use_para,
            trh]() -> std::unique_ptr<rp::mitigation::Mitigation> {
        if (use_para)
            return std::make_unique<rp::mitigation::Para>(
                rp::mitigation::paraFor(trh));
        return std::make_unique<rp::mitigation::Graphene>(
            rp::mitigation::grapheneFor(trh, 64_ms, 45_ns, 32));
    };
}

std::string
fmtCount(double v)
{
    char buf[32];
    if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

void
printHeader(const char *experiment, const char *paper_ref)
{
    std::printf("================================================="
                "==============\n");
    std::printf("RowPress reproduction - %s\n", experiment);
    std::printf("Paper reference: %s\n", paper_ref);
    std::printf("================================================="
                "==============\n");
}

int
runBenchmarkMain(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

int
figureMain(int argc, char **argv, const FigureSpec &spec,
           const std::function<void(rp::core::ExperimentEngine &)> &emit)
{
    printHeader(spec.title, spec.paperRef);

    auto &engine = rp::core::defaultEngine();
    const auto start = std::chrono::steady_clock::now();
    emit(engine);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("[bench_runner] data series completed in %.2f s on %d "
                "engine thread(s)\n\n",
                secs, engine.numThreads());

    return runBenchmarkMain(argc, argv);
}

} // namespace rpb
