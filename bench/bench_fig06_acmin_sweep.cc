/**
 * @file
 * Figs. 6 and 7: ACmin as tAggON increases (single-sided, 50 C),
 * including the log-log trend-line slopes (paper: -1.020 / -1.013 /
 * -1.013 for Mfrs. S / H / M) and the linear-region reduction rates.
 */

#include <cmath>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runFig06(api::ExperimentContext &ctx)
{
    const double temp = ctx.config().getDouble("temp");
    for (const auto &die : ctx.dies()) {
        const auto mc = ctx.moduleConfig(die, temp);
        api::Dataset table(die.name + " single-sided @ " +
                           api::cell(temp) + "C");
        table.header({"tAggON", "mean ACmin", "min", "max",
                      "mean*tAggON(ms)"});

        auto points = chr::acminSweep(mc, ctx.engine(),
                                      chr::standardTAggOnSweep(),
                                      chr::AccessKind::SingleSided);

        std::vector<double> log_t, log_ac;
        for (const auto &point : points) {
            const Time t = point.tAggOn;
            auto s = point.acminSummary();
            if (s.count == 0) {
                table.row({formatTime(t), "No Bitflip", "-", "-", "-"});
                continue;
            }
            table.row({formatTime(t), api::fmtCount(s.mean),
                       api::fmtCount(s.min), api::fmtCount(s.max),
                       api::cell(s.mean * toMs(t))});
            if (t >= 7800_ns) {
                log_t.push_back(std::log10(toUs(t)));
                log_ac.push_back(std::log10(s.mean));
            }
        }
        ctx.emit(table);
        ctx.emitAcminSweepRaw("raw_acmin_sweep_ss_" + die.id, die.id,
                              temp, chr::AccessKind::SingleSided,
                              chr::DataPattern::CheckerBoard, points);
        const double slope = linearSlope(log_t, log_ac);
        ctx.notef("log-log slope for tAggON >= tREFI: %.3f "
                  "(paper: ~-1.01 to -1.02)\n\n",
                  slope);
    }
}

REGISTER_EXPERIMENT_OPTS(
    fig06, "Figs. 6/7: ACmin vs tAggON sweep",
    "Fig. 6 (log-log), Fig. 7 (linear region)", "characterization",
    [](api::ConfigSchema &schema) {
        schema.add({"temp", api::OptionType::Double, "50", "",
                    "module temperature (C)", 0.0, true});
    },
    runFig06);

void
BM_AcminSweepPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    for (auto _ : state) {
        auto point = chr::acminPoint(module, 70200_ns,
                                     chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point);
    }
}
BENCHMARK(BM_AcminSweepPoint)->Unit(benchmark::kMillisecond);

} // namespace
