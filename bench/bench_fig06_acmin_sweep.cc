/**
 * @file
 * Figs. 6 and 7: ACmin as tAggON increases (single-sided, 50 C),
 * including the log-log trend-line slopes (paper: -1.020 / -1.013 /
 * -1.013 for Mfrs. S / H / M) and the linear-region reduction rates.
 */

#include <cmath>

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printFig06(core::ExperimentEngine &engine)
{
    for (const auto &die : rpb::benchDies()) {
        const auto mc = rpb::moduleConfig(die, 50.0);
        Table table(die.name + " single-sided @ 50C");
        table.header({"tAggON", "mean ACmin", "min", "max",
                      "mean*tAggON(ms)"});

        auto points = chr::acminSweep(mc, engine,
                                      chr::standardTAggOnSweep(),
                                      chr::AccessKind::SingleSided);

        std::vector<double> log_t, log_ac;
        for (const auto &point : points) {
            const Time t = point.tAggOn;
            auto s = point.acminSummary();
            if (s.count == 0) {
                table.row({formatTime(t), "No Bitflip", "-", "-", "-"});
                continue;
            }
            table.row({formatTime(t), rpb::fmtCount(s.mean),
                       rpb::fmtCount(s.min), rpb::fmtCount(s.max),
                       Table::toCell(s.mean * toMs(t))});
            if (t >= 7800_ns) {
                log_t.push_back(std::log10(toUs(t)));
                log_ac.push_back(std::log10(s.mean));
            }
        }
        table.print();
        const double slope = linearSlope(log_t, log_ac);
        std::printf("log-log slope for tAggON >= tREFI: %.3f "
                    "(paper: ~-1.01 to -1.02)\n\n",
                    slope);
    }
}

void
BM_AcminSweepPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    for (auto _ : state) {
        auto point = chr::acminPoint(module, 70200_ns,
                                     chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point);
    }
}
BENCHMARK(BM_AcminSweepPoint)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Figs. 6/7: ACmin vs tAggON sweep",
         "Fig. 6 (log-log), Fig. 7 (linear region)"},
        printFig06);
}
