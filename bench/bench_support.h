/**
 * @file
 * Support for the google-benchmark micro-measurement path of the
 * `rowpress` multi-tool (`rowpress bench [--benchmark_... args]`).
 *
 * The figure/table data series themselves run through the
 * rp::api::ExperimentRegistry (`rowpress run <id>`); the helpers here
 * only serve the BENCHMARK() bodies, which are standalone
 * micro-measurements of single experiment steps and honour the same
 * ROWPRESS_BENCH_LOCATIONS knob (strictly validated via api::envInt).
 */

#ifndef ROWPRESS_BENCH_SUPPORT_H
#define ROWPRESS_BENCH_SUPPORT_H

#include <benchmark/benchmark.h>

#include "core/rowpress.h"

namespace rpb {

/** ModuleConfig for a micro-benchmark module. */
rp::chr::ModuleConfig moduleConfig(const rp::device::DieConfig &die,
                                   double temp_c,
                                   std::uint64_t seed = 1);

/** A live Module for a micro-benchmark body. */
rp::chr::Module makeModule(const rp::device::DieConfig &die,
                           double temp_c, std::uint64_t seed = 1);

/** google-benchmark driver behind `rowpress bench`. */
int runBenchmarkMain(int argc, char **argv);

} // namespace rpb

#endif // ROWPRESS_BENCH_SUPPORT_H
