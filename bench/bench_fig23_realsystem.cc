/**
 * @file
 * Fig. 23 and Fig. 49: real-system demonstration.  Bitflip counts and
 * rows-with-bitflips of the user-level program as NUM_READS (cache
 * blocks read per aggressor activation) and NUM_AGGR_ACTS vary, with
 * Algorithm 1 and the more aggressive Algorithm 2 (Appendix G), on a
 * TRR-protected DDR4 system model.
 */

#include <algorithm>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;

namespace {

void
emitGrid(api::ExperimentContext &ctx, bool interleaved)
{
    const std::vector<int> reads = {1, 4, 16, 32, 48, 64};
    const std::vector<int> acts = {2, 3, 4};
    const double scale = ctx.scale();

    // Every (NUM_AGGR_ACTS, NUM_READS) cell is one independent demo
    // run; fan the grid out through the engine.
    auto results = ctx.engine().map<sys::DemoResult>(
        acts.size() * reads.size(), [&](const core::TaskContext &tc) {
            sys::DemoConfig cfg;
            cfg.numAggrActs = acts[tc.index / reads.size()];
            cfg.numReads = reads[tc.index % reads.size()];
            cfg.interleavedFlush = interleaved;
            cfg.numVictims = std::max(4, int(10 * scale));
            cfg.numIters = std::max(4000, int(16000 * scale));
            cfg.seed = 3;
            return sys::runDemo(cfg);
        });

    api::Dataset table(interleaved
                           ? std::string("Algorithm 2 (interleaved "
                                         "flush, Fig. 49)")
                           : std::string("Algorithm 1 (Fig. 23)"));
    table.header({"NUM_AGGR_ACTS", "NUM_READS", "bitflips",
                  "rows w/ bitflips", "avg tAggON (ns)"});

    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
        for (std::size_t ri = 0; ri < reads.size(); ++ri) {
            const auto &res = results[ai * reads.size() + ri];
            table.row({api::cell(acts[ai]), api::cell(reads[ri]),
                       api::cell(res.totalBitflips),
                       api::cell(res.rowsWithBitflips),
                       api::cell(res.avgTAggOnNs)});
        }
    }
    ctx.emit(table);
    ctx.note("\n");
}

void
runFig23(api::ExperimentContext &ctx)
{
    emitGrid(ctx, /*interleaved=*/false);
    emitGrid(ctx, /*interleaved=*/true);

    ctx.note("Paper shape (Obsv. 19-21, 23): NUM_READS = 1 "
             "(RowHammer) cannot flip; flips\nrise with NUM_READS, "
             "peak around 16-32, then collapse once the aggressor\n"
             "phase outgrows the tREFI slot and TRR catches the "
             "aggressors; Algorithm 2\ninduces more bitflips than "
             "Algorithm 1.\n\n");
}

REGISTER_EXPERIMENT(fig23, "Figs. 23/49: real-system RowPress demonstration",
                    "Fig. 23 (Algorithm 1), Fig. 49 (Algorithm 2); "
                    "paper: 1500 victims, 800K iters - scaled here",
                    "system", runFig23);

void
BM_DemoIterationBatch(benchmark::State &state)
{
    for (auto _ : state) {
        sys::DemoConfig cfg;
        cfg.numVictims = 1;
        cfg.numIters = 500;
        cfg.numReads = 32;
        auto res = sys::runDemo(cfg);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_DemoIterationBatch)->Unit(benchmark::kMillisecond);

} // namespace
