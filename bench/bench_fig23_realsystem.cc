/**
 * @file
 * Fig. 23 and Fig. 49: real-system demonstration.  Bitflip counts and
 * rows-with-bitflips of the user-level program as NUM_READS (cache
 * blocks read per aggressor activation) and NUM_AGGR_ACTS vary, with
 * Algorithm 1 and the more aggressive Algorithm 2 (Appendix G), on a
 * TRR-protected DDR4 system model.
 */

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;

namespace {

void
printGrid(core::ExperimentEngine &engine, bool interleaved)
{
    const std::vector<int> reads = {1, 4, 16, 32, 48, 64};
    const std::vector<int> acts = {2, 3, 4};

    // Every (NUM_AGGR_ACTS, NUM_READS) cell is one independent demo
    // run; fan the grid out through the engine.
    auto results = engine.map<sys::DemoResult>(
        acts.size() * reads.size(), [&](const core::TaskContext &ctx) {
            sys::DemoConfig cfg;
            cfg.numAggrActs = acts[ctx.index / reads.size()];
            cfg.numReads = reads[ctx.index % reads.size()];
            cfg.interleavedFlush = interleaved;
            cfg.numVictims = std::max(4, int(10 * rpb::benchScale()));
            cfg.numIters = std::max(4000, int(16000 * rpb::benchScale()));
            cfg.seed = 3;
            return sys::runDemo(cfg);
        });

    Table table(interleaved
                    ? std::string("Algorithm 2 (interleaved flush, "
                                  "Fig. 49)")
                    : std::string("Algorithm 1 (Fig. 23)"));
    table.header({"NUM_AGGR_ACTS", "NUM_READS", "bitflips",
                  "rows w/ bitflips", "avg tAggON (ns)"});

    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
        for (std::size_t ri = 0; ri < reads.size(); ++ri) {
            const auto &res = results[ai * reads.size() + ri];
            table.row({Table::toCell(acts[ai]), Table::toCell(reads[ri]),
                       Table::toCell(res.totalBitflips),
                       Table::toCell(res.rowsWithBitflips),
                       Table::toCell(res.avgTAggOnNs)});
        }
    }
    table.print();
    std::printf("\n");
}

void
printFig23(core::ExperimentEngine &engine)
{
    printGrid(engine, /*interleaved=*/false);
    printGrid(engine, /*interleaved=*/true);

    std::printf("Paper shape (Obsv. 19-21, 23): NUM_READS = 1 "
                "(RowHammer) cannot flip; flips\nrise with NUM_READS, "
                "peak around 16-32, then collapse once the aggressor\n"
                "phase outgrows the tREFI slot and TRR catches the "
                "aggressors; Algorithm 2\ninduces more bitflips than "
                "Algorithm 1.\n\n");
}

void
BM_DemoIterationBatch(benchmark::State &state)
{
    for (auto _ : state) {
        sys::DemoConfig cfg;
        cfg.numVictims = 1;
        cfg.numIters = 500;
        cfg.numReads = 32;
        auto res = sys::runDemo(cfg);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_DemoIterationBatch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Figs. 23/49: real-system RowPress demonstration",
         "Fig. 23 (Algorithm 1), Fig. 49 (Algorithm 2); paper: 1500 "
         "victims, 800K iters - scaled here"},
        printFig23);
}
