/**
 * @file
 * Fig. 23 and Fig. 49: real-system demonstration.  Bitflip counts and
 * rows-with-bitflips of the user-level program as NUM_READS (cache
 * blocks read per aggressor activation) and NUM_AGGR_ACTS vary, with
 * Algorithm 1 and the more aggressive Algorithm 2 (Appendix G), on a
 * TRR-protected DDR4 system model.
 */

#include "bench_common.h"

#include "common/table.h"

using namespace rp;

namespace {

void
printGrid(bool interleaved)
{
    const std::vector<int> reads = {1, 4, 16, 32, 48, 64};
    const std::vector<int> acts = {2, 3, 4};

    Table table(interleaved
                    ? std::string("Algorithm 2 (interleaved flush, "
                                  "Fig. 49)")
                    : std::string("Algorithm 1 (Fig. 23)"));
    table.header({"NUM_AGGR_ACTS", "NUM_READS", "bitflips",
                  "rows w/ bitflips", "avg tAggON (ns)"});

    for (int a : acts) {
        for (int r : reads) {
            sys::DemoConfig cfg;
            cfg.numAggrActs = a;
            cfg.numReads = r;
            cfg.interleavedFlush = interleaved;
            cfg.numVictims =
                std::max(4, int(10 * rpb::benchScale()));
            cfg.numIters =
                std::max(4000, int(16000 * rpb::benchScale()));
            cfg.seed = 3;
            auto res = sys::runDemo(cfg);
            table.row({Table::toCell(a), Table::toCell(r),
                       Table::toCell(res.totalBitflips),
                       Table::toCell(res.rowsWithBitflips),
                       Table::toCell(res.avgTAggOnNs)});
        }
    }
    table.print();
    std::printf("\n");
}

void
printFig23()
{
    rpb::printHeader("Figs. 23/49: real-system RowPress demonstration",
                     "Fig. 23 (Algorithm 1), Fig. 49 (Algorithm 2); "
                     "paper: 1500 victims, 800K iters - scaled here");

    printGrid(/*interleaved=*/false);
    printGrid(/*interleaved=*/true);

    std::printf("Paper shape (Obsv. 19-21, 23): NUM_READS = 1 "
                "(RowHammer) cannot flip; flips\nrise with NUM_READS, "
                "peak around 16-32, then collapse once the aggressor\n"
                "phase outgrows the tREFI slot and TRR catches the "
                "aggressors; Algorithm 2\ninduces more bitflips than "
                "Algorithm 1.\n\n");
}

void
BM_DemoIterationBatch(benchmark::State &state)
{
    for (auto _ : state) {
        sys::DemoConfig cfg;
        cfg.numVictims = 1;
        cfg.numIters = 500;
        cfg.numReads = 32;
        auto res = sys::runDemo(cfg);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_DemoIterationBatch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig23();
    return rpb::runBenchmarkMain(argc, argv);
}
