/**
 * @file
 * Shared helpers for the per-figure/table bench binaries.
 *
 * Every binary prints the paper-style data series first (scaled-down
 * defaults; set ROWPRESS_BENCH_LOCATIONS / ROWPRESS_ALL_DIES /
 * ROWPRESS_BENCH_SCALE to enlarge), then runs its google-benchmark
 * micro-measurements.
 */

#ifndef ROWPRESS_BENCH_COMMON_H
#define ROWPRESS_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/rowpress.h"

namespace rpb {

inline int
envInt(const char *name, int def)
{
    const char *v = std::getenv(name);
    return v ? std::atoi(v) : def;
}

/** Tested locations per module (paper: 3072 rows; default: 10). */
inline int
benchLocations()
{
    return envInt("ROWPRESS_BENCH_LOCATIONS", 10);
}

/** Global effort multiplier for the heavier benches. */
inline double
benchScale()
{
    const char *v = std::getenv("ROWPRESS_BENCH_SCALE");
    return v ? std::atof(v) : 1.0;
}

/** Die set: one representative per manufacturer, or all twelve. */
inline std::vector<rp::device::DieConfig>
benchDies()
{
    if (envInt("ROWPRESS_ALL_DIES", 0))
        return rp::device::allDies();
    return {rp::device::dieS8GbB(), rp::device::dieH16GbA(),
            rp::device::dieM16GbF()};
}

inline rp::chr::Module
makeModule(const rp::device::DieConfig &die, double temp_c,
           std::uint64_t seed = 1)
{
    rp::chr::ModuleConfig cfg;
    cfg.die = die;
    cfg.numLocations = benchLocations();
    cfg.temperatureC = temp_c;
    cfg.seed = seed;
    return rp::chr::Module(cfg);
}

inline std::string
fmtCount(double v)
{
    char buf[32];
    if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

inline void
printHeader(const char *experiment, const char *paper_ref)
{
    std::printf("================================================="
                "==============\n");
    std::printf("RowPress reproduction - %s\n", experiment);
    std::printf("Paper reference: %s\n", paper_ref);
    std::printf("================================================="
                "==============\n");
}

inline int
runBenchmarkMain(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace rpb

#endif // ROWPRESS_BENCH_COMMON_H
