/**
 * @file
 * perf.* — macro benchmarks of the characterization search fast path.
 *
 * Unlike the figure/table experiments (whose artifacts must be
 * byte-deterministic), these measure wall-clock time of the three
 * macro workloads the shared ThresholdStore and AttemptOracle
 * optimize: the full ACmin-vs-tAggON sweep, tAggONmin searches over a
 * range of activation counts, and the overlap analysis.  Each run
 * writes a `BENCH_<workload>.json` artifact into the `--out`
 * directory (independent of --format, so `rowpress run 'perf.*' --out
 * perf-artifacts` always produces machine-readable numbers for CI to
 * archive).  The committed perf trajectory lives in `bench/results/`.
 */

#include <chrono>
#include <filesystem>
#include <fstream>

#include "api/context.h"

using namespace rp;
using namespace rp::literals;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

chr::ModuleConfig
perfModule(api::ExperimentContext &ctx)
{
    return ctx.moduleConfig(device::dieS8GbB(), 50.0);
}

/** Write one BENCH_*.json artifact and mirror it into the sinks. */
void
emitBench(api::ExperimentContext &ctx, const std::string &workload,
          double elapsed_ms, std::size_t units,
          const std::string &unit_name)
{
    api::Dataset table(ctx.info().title);
    table.header({"workload", "elapsed ms", unit_name,
                  "ms per " + unit_name, "threads"});
    table.row({workload, api::cell(elapsed_ms),
               std::to_string(units),
               api::cell(elapsed_ms / double(units)),
               std::to_string(ctx.engine().numThreads())});
    ctx.emit(table);

    std::filesystem::create_directories(ctx.outDir());
    const auto path = ctx.outDir() / ("BENCH_" + workload + ".json");
    std::ofstream os(path);
    os << "{\n"
       << "  \"name\": \"" << ctx.info().id << "\",\n"
       << "  \"workload\": \"" << workload << "\",\n"
       << "  \"die\": \"" << device::dieS8GbB().id << "\",\n"
       << "  \"locations\": " << ctx.locations() << ",\n"
       << "  \"threads\": " << ctx.engine().numThreads() << ",\n"
       << "  \"" << unit_name << "\": " << units << ",\n"
       << "  \"elapsed_ms\": " << elapsed_ms << ",\n"
       << "  \"ms_per_" << unit_name
       << "\": " << elapsed_ms / double(units) << "\n"
       << "}\n";
    ctx.notef("wrote %s\n", path.string().c_str());
}

void
runPerfAcminSweep(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const auto &sweep = chr::standardTAggOnSweep();
    const auto t0 = std::chrono::steady_clock::now();
    auto points = chr::acminSweep(mc, ctx.engine(), sweep,
                                  chr::AccessKind::SingleSided);
    const double ms = msSince(t0);
    emitBench(ctx, "acmin_sweep", ms, sweep.size(), "points");
}

void
runPerfTAggOnMin(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const std::vector<std::uint64_t> acts = {1, 8, 64, 512, 4096};
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t a : acts) {
        auto point = chr::tAggOnMinPoint(mc, ctx.engine(), a,
                                         chr::AccessKind::SingleSided);
        (void)point;
    }
    const double ms = msSince(t0);
    emitBench(ctx, "taggonmin", ms, acts.size(), "points");
}

void
runPerfOverlap(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const std::vector<Time> t_ons = {36_ns, 7800_ns, 70200_ns, 300_us};
    const auto t0 = std::chrono::steady_clock::now();
    auto results = chr::overlapAtAcmin(mc, ctx.engine(), t_ons,
                                       chr::AccessKind::SingleSided,
                                       chr::SearchConfig{});
    (void)results;
    const double ms = msSince(t0);
    emitBench(ctx, "overlap", ms, t_ons.size(), "points");
}

// Registered directly (not via REGISTER_EXPERIMENT) because the perf
// ids contain a dot, which the macro cannot use as a C++ identifier.
const api::ExperimentRegistrar reg_perf_acmin_sweep(
    {"perf.acmin_sweep",
     "Perf: ACmin-vs-tAggON sweep macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfAcminSweep);

const api::ExperimentRegistrar reg_perf_taggonmin(
    {"perf.taggonmin", "Perf: tAggONmin search macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfTAggOnMin);

const api::ExperimentRegistrar reg_perf_overlap(
    {"perf.overlap", "Perf: overlap analysis macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfOverlap);

} // namespace
