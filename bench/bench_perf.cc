/**
 * @file
 * perf.* — macro benchmarks of the characterization search fast path.
 *
 * Unlike the figure/table experiments (whose artifacts must be
 * byte-deterministic), these measure wall-clock time of the macro
 * workloads the shared ThresholdStore, AttemptOracle, and word-mask
 * full-scan tier optimize: the full ACmin-vs-tAggON sweep, tAggONmin
 * searches over a range of activation counts, the overlap analysis,
 * and the BER/ECC full-scan workload.  Each run
 * writes a `BENCH_<workload>.json` artifact into the `--out`
 * directory (independent of --format, so `rowpress run 'perf.*' --out
 * perf-artifacts` always produces machine-readable numbers for CI to
 * archive).  The committed perf trajectory lives in `bench/results/`.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "api/context.h"
#include "api/service.h"
#include "chr/ecc.h"
#include "core/thread_annotations.h"
#include "device/cell_model.h"
#include "device/threshold_store.h"
#include "fuzz/search.h"
#include "persist/snapshot.h"

using namespace rp;
using namespace rp::literals;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

chr::ModuleConfig
perfModule(api::ExperimentContext &ctx)
{
    return ctx.moduleConfig(device::dieS8GbB(), 50.0);
}

/** Write one BENCH_*.json artifact and mirror it into the sinks. */
void
emitBench(api::ExperimentContext &ctx, const std::string &workload,
          double elapsed_ms, std::size_t units,
          const std::string &unit_name, int locations)
{
    api::Dataset table(ctx.info().title);
    table.header({"workload", "elapsed ms", unit_name,
                  "ms per " + unit_name, "threads"});
    table.row({workload, api::cell(elapsed_ms),
               std::to_string(units),
               api::cell(elapsed_ms / double(units)),
               std::to_string(ctx.engine().numThreads())});
    ctx.emit(table);

    std::filesystem::create_directories(ctx.outDir());
    const auto path = ctx.outDir() / ("BENCH_" + workload + ".json");
    std::ofstream os(path);
    os << "{\n"
       << "  \"name\": \"" << ctx.info().id << "\",\n"
       << "  \"workload\": \"" << workload << "\",\n"
       << "  \"die\": \"" << device::dieS8GbB().id << "\",\n"
       << "  \"locations\": " << locations << ",\n"
       << "  \"threads\": " << ctx.engine().numThreads() << ",\n"
       << "  \"" << unit_name << "\": " << units << ",\n"
       << "  \"elapsed_ms\": " << elapsed_ms << ",\n"
       << "  \"ms_per_" << unit_name
       << "\": " << elapsed_ms / double(units) << "\n"
       << "}\n";
    ctx.notef("wrote %s\n", path.string().c_str());
}

void
runPerfAcminSweep(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const auto &sweep = chr::standardTAggOnSweep();
    const auto t0 = std::chrono::steady_clock::now();
    auto points = chr::acminSweep(mc, ctx.engine(), sweep,
                                  chr::AccessKind::SingleSided);
    const double ms = msSince(t0);
    emitBench(ctx, "acmin_sweep", ms, sweep.size(), "points",
              ctx.locations());
}

void
runPerfTAggOnMin(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const std::vector<std::uint64_t> acts = {1, 8, 64, 512, 4096};
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t a : acts) {
        auto point = chr::tAggOnMinPoint(mc, ctx.engine(), a,
                                         chr::AccessKind::SingleSided);
        (void)point;
    }
    const double ms = msSince(t0);
    emitBench(ctx, "taggonmin", ms, acts.size(), "points",
              ctx.locations());
}

void
runPerfOverlap(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const std::vector<Time> t_ons = {36_ns, 7800_ns, 70200_ns, 300_us};
    const auto t0 = std::chrono::steady_clock::now();
    auto results = chr::overlapAtAcmin(mc, ctx.engine(), t_ons,
                                       chr::AccessKind::SingleSided,
                                       chr::SearchConfig{});
    (void)results;
    const double ms = msSince(t0);
    emitBench(ctx, "overlap", ms, t_ons.size(), "points",
              ctx.locations());
}

void
runPerfBerFullScan(api::ExperimentContext &ctx)
{
    // The BER/ECC workload shape (fig25 / table 6): max-activation
    // attempts with full-scan victim inspection, repeated across
    // tAggON values, access kinds, and data patterns that all share
    // one module configuration — exactly the reuse profile the
    // word-mask full-scan tier amortizes its per-row build over.
    auto mc = ctx.moduleConfig(device::dieS8GbB(), 80.0);
    mc.numLocations = std::min(mc.numLocations, 4);
    const auto rows = chr::baseRowsOf(mc);

    const std::vector<Time> t_ons = {7800_ns, 70200_ns};
    const std::vector<chr::AccessKind> kinds = {
        chr::AccessKind::SingleSided, chr::AccessKind::DoubleSided};
    const std::vector<chr::DataPattern> patterns = {
        chr::DataPattern::CheckerBoard, chr::DataPattern::RowStripe,
        chr::DataPattern::ColStripe};

    std::size_t attempts = 0;
    chr::WordErrorStats total;
    const auto t0 = std::chrono::steady_clock::now();
    for (Time t : t_ons) {
        for (auto kind : kinds) {
            for (auto pattern : patterns) {
                auto results = chr::maxActivationAttempts(
                    mc, ctx.engine(), rows, kind, pattern, t);
                for (const auto &attempt : results) {
                    auto stats = chr::analyzeWordErrors(attempt.flips);
                    auto secded = chr::evaluateSecded(attempt.flips);
                    auto chipkill =
                        chr::evaluateChipkill(attempt.flips, 8);
                    (void)secded;
                    (void)chipkill;
                    total.merge(stats);
                    ++attempts;
                }
            }
        }
    }
    const double ms = msSince(t0);
    ctx.notef("error words across all attempts: %llu\n",
              (unsigned long long)total.totalErrorWords);
    emitBench(ctx, "ber_fullscan", ms, attempts, "attempts",
              mc.numLocations);
}

void
runPerfFuzzEval(api::ExperimentContext &ctx)
{
    // The fuzz objective-layer workload: evaluate a batch of random
    // genomes against Graphene, each on a private platform through
    // the segmented fast-forward execution path.
    fuzz::EvalConfig ec;
    ec.module = perfModule(ctx);
    ec.budget = 2 * units::MS;
    const fuzz::Evaluator evaluator(ec, fuzz::MitigationKind::Graphene);
    const fuzz::Searcher searcher(evaluator, ctx.engine());

    const int n = 24;
    std::vector<fuzz::PatternSpec> genomes;
    for (int i = 0; i < n; ++i) {
        Rng rng(hashU64(ctx.seed(), std::uint64_t(i)));
        genomes.push_back(fuzz::randomPattern(rng, ec.module.bank,
                                              ec.module.firstRow));
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto results = searcher.evaluateAll(genomes);
    (void)results;
    const double ms = msSince(t0);
    emitBench(ctx, "fuzz_eval", ms, std::size_t(n), "patterns",
              ctx.locations());
}

/**
 * The unit of serve-load work: a tiny deterministic run (16 trivial
 * engine tasks, one small dataset) whose cost is dominated by the
 * Service's own per-job overhead — exactly what perf.serve_load wants
 * to measure.
 */
void
runPerfServeUnit(api::ExperimentContext &ctx)
{
    const auto vals = ctx.engine().map<std::uint64_t>(
        16, [](const core::TaskContext &t) {
            return t.seed ^ std::uint64_t(t.index);
        });
    std::uint64_t sum = 0;
    for (std::uint64_t v : vals)
        sum += v;
    api::Dataset d("serve unit");
    d.header({"tasks", "checksum"});
    d.row({std::to_string(vals.size()), std::to_string(sum)});
    ctx.emit(d);
}

void
runPerfServeLoad(api::ExperimentContext &ctx)
{
    // Concurrent-serve load generator: kSessions client threads, each
    // submitting kBursts bursts of kBurstJobs perf.serve_unit jobs
    // against one in-process Service with a bounded queue, then
    // awaiting the burst.  Bursts intentionally exceed workers+queue,
    // so admission backpressure (queue_full) is part of the measured
    // workload: a rejected submit backs off 1 ms and retries, like a
    // well-behaved protocol client.
    constexpr int kSessions = 4;
    constexpr int kBursts = 5;
    constexpr int kBurstJobs = 5;
    constexpr int kWorkers = 2;
    constexpr std::size_t kQueueMax = 8;

    api::Service service(api::Service::Options{kWorkers, kQueueMax});
    const std::filesystem::path job_root =
        ctx.outDir() / "serve_load_jobs";

    core::Mutex m;
    std::vector<double> latencies; // submit-accept -> terminal, ms
    std::atomic<std::size_t> rejected{0};
    std::atomic<std::size_t> failed{0};

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> sessions;
    for (int s = 0; s < kSessions; ++s) {
        sessions.emplace_back([&, s] {
            for (int burst = 0; burst < kBursts; ++burst) {
                std::vector<std::pair<
                    std::uint64_t,
                    std::chrono::steady_clock::time_point>>
                    inflight;
                for (int j = 0; j < kBurstJobs; ++j) {
                    api::JobRequest req;
                    req.experiment = "perf.serve_unit";
                    req.overlay = {{"threads", "1"}};
                    req.formats = {"json"};
                    req.outDir = job_root /
                                 (std::to_string(s) + "_" +
                                  std::to_string(burst) + "_" +
                                  std::to_string(j));
                    req.clientId = std::uint64_t(s + 1);
                    for (;;) {
                        const auto tj =
                            std::chrono::steady_clock::now();
                        try {
                            inflight.emplace_back(
                                service.submit(req), tj);
                            break;
                        } catch (const api::AdmissionError &) {
                            rejected.fetch_add(
                                1, std::memory_order_relaxed);
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(1));
                        }
                    }
                }
                for (const auto &[id, tj] : inflight) {
                    const api::JobStatus st = service.wait(id);
                    const double lat = msSince(tj);
                    if (st.state == api::JobState::Finished) {
                        core::LockGuard lock(m);
                        latencies.push_back(lat);
                    } else {
                        failed.fetch_add(1,
                                         std::memory_order_relaxed);
                    }
                }
            }
        });
    }
    for (auto &t : sessions)
        t.join();
    const double ms = msSince(t0);
    service.shutdown();

    std::sort(latencies.begin(), latencies.end());
    const std::size_t n = latencies.size();
    const double p50 = n ? latencies[n / 2] : 0.0;
    const double p99 = n ? latencies[std::min(n - 1, n * 99 / 100)]
                         : 0.0;
    const double jobs_per_s = ms > 0.0 ? 1000.0 * double(n) / ms : 0.0;

    api::Dataset table(ctx.info().title);
    table.header({"jobs", "elapsed ms", "jobs/s", "p50 ms", "p99 ms",
                  "rejected", "failed"});
    table.row({std::to_string(n), api::cell(ms),
               api::cell(jobs_per_s), api::cell(p50), api::cell(p99),
               std::to_string(rejected.load()),
               std::to_string(failed.load())});
    ctx.emit(table);

    std::filesystem::create_directories(ctx.outDir());
    const auto path = ctx.outDir() / "BENCH_serve_load.json";
    std::ofstream os(path);
    os << "{\n"
       << "  \"name\": \"" << ctx.info().id << "\",\n"
       << "  \"sessions\": " << kSessions << ",\n"
       << "  \"jobs\": " << n << ",\n"
       << "  \"workers\": " << kWorkers << ",\n"
       << "  \"queue_max\": " << kQueueMax << ",\n"
       << "  \"elapsed_ms\": " << ms << ",\n"
       << "  \"jobs_per_s\": " << jobs_per_s << ",\n"
       << "  \"p50_ms\": " << p50 << ",\n"
       << "  \"p99_ms\": " << p99 << ",\n"
       << "  \"rejected\": " << rejected.load() << ",\n"
       << "  \"failed\": " << failed.load() << "\n"
       << "}\n";
    ctx.notef("wrote %s\n", path.string().c_str());
}

void
runPerfWarmStart(api::ExperimentContext &ctx)
{
    // The src/persist value proposition, measured: building both
    // tiers of N rows cold (full candidate enumeration) vs adopting
    // the same tiers from a snapshot file (read + validate + memcpy).
    // Both sides use private stores, so the benchmark is hermetic —
    // no shared registry or cache-directory state.
    const int rows = std::max(1, int(16 * ctx.scale()));
    device::CellModel model(device::dieS8GbB(), 65536, ctx.seed());
    const std::string key = "perf-warm-start-key";

    const auto t_cold = std::chrono::steady_clock::now();
    const auto cold = device::ThresholdStore::makePrivate(
        model.params(), 65536, ctx.seed());
    for (int r = 0; r < rows; ++r) {
        cold->row(0, 100 + r);
        cold->wordMasks(0, 100 + r);
    }
    const double cold_ms = msSince(t_cold);

    std::filesystem::create_directories(ctx.outDir());
    const auto probe = ctx.outDir() / "warm_start_probe.rpsnap";
    {
        const std::vector<std::uint8_t> blob =
            persist::writeSnapshot(*cold, key);
        std::ofstream os(probe, std::ios::binary);
        os.write(reinterpret_cast<const char *>(blob.data()),
                 std::streamsize(blob.size()));
    }

    const auto t_warm = std::chrono::steady_clock::now();
    const auto warm = device::ThresholdStore::makePrivate(
        model.params(), 65536, ctx.seed());
    std::size_t bytes = 0;
    {
        std::ifstream in(probe, std::ios::binary);
        const std::vector<std::uint8_t> blob(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        persist::loadSnapshot(blob.data(), blob.size(), key, *warm);
        bytes = blob.size();
    }
    const double warm_ms = msSince(t_warm);
    std::filesystem::remove(probe);

    const auto warm_stats = warm->stats();
    if (int(warm_stats.candidateRows) != rows ||
        int(warm_stats.wordMaskRows) != rows)
        throw std::runtime_error(
            "perf.warm_start: snapshot did not restore every tier");

    const double speedup = cold_ms / std::max(warm_ms, 1e-6);
    api::Dataset table(ctx.info().title);
    table.header({"rows", "cold build ms", "snapshot load ms",
                  "speedup", "snapshot bytes"});
    table.row({std::to_string(rows), api::cell(cold_ms),
               api::cell(warm_ms), api::cell(speedup),
               std::to_string(bytes)});
    ctx.emit(table);

    const auto path = ctx.outDir() / "BENCH_warm_start.json";
    std::ofstream os(path);
    os << "{\n"
       << "  \"name\": \"" << ctx.info().id << "\",\n"
       << "  \"workload\": \"warm_start\",\n"
       << "  \"die\": \"" << device::dieS8GbB().id << "\",\n"
       << "  \"rows\": " << rows << ",\n"
       << "  \"snapshot_bytes\": " << bytes << ",\n"
       << "  \"cold_build_ms\": " << cold_ms << ",\n"
       << "  \"snapshot_load_ms\": " << warm_ms << ",\n"
       << "  \"speedup\": " << speedup << "\n"
       << "}\n";
    ctx.notef("wrote %s\n", path.string().c_str());
}

// Registered directly (not via REGISTER_EXPERIMENT) because the perf
// ids contain a dot, which the macro cannot use as a C++ identifier.
const api::ExperimentRegistrar reg_perf_acmin_sweep(
    {"perf.acmin_sweep",
     "Perf: ACmin-vs-tAggON sweep macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfAcminSweep);

const api::ExperimentRegistrar reg_perf_taggonmin(
    {"perf.taggonmin", "Perf: tAggONmin search macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfTAggOnMin);

const api::ExperimentRegistrar reg_perf_overlap(
    {"perf.overlap", "Perf: overlap analysis macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfOverlap);

const api::ExperimentRegistrar reg_perf_ber_fullscan(
    {"perf.ber_fullscan",
     "Perf: BER/ECC full-scan macro benchmark",
     "word-mask full-scan fast path + chunked attempt tasks", "perf"},
    nullptr, runPerfBerFullScan);

const api::ExperimentRegistrar reg_perf_fuzz_eval(
    {"perf.fuzz_eval",
     "Perf: fuzz objective-evaluation macro benchmark",
     "segmented mitigation-aware pattern evaluation", "perf"},
    nullptr, runPerfFuzzEval);

const api::ExperimentRegistrar reg_perf_serve_unit(
    {"perf.serve_unit",
     "Perf: serve-load unit job (tiny deterministic run)",
     "per-job Service overhead isolation", "perf"},
    nullptr, runPerfServeUnit);

const api::ExperimentRegistrar reg_perf_warm_start(
    {"perf.warm_start",
     "Perf: snapshot warm start vs cold tier build",
     "persist snapshot load against candidate enumeration", "perf"},
    nullptr, runPerfWarmStart);

const api::ExperimentRegistrar reg_perf_serve_load(
    {"perf.serve_load",
     "Perf: concurrent-serve load generator macro benchmark",
     "job scheduling, admission backpressure, per-job engines",
     "perf"},
    nullptr, runPerfServeLoad);

} // namespace
