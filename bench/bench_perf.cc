/**
 * @file
 * perf.* — macro benchmarks of the characterization search fast path.
 *
 * Unlike the figure/table experiments (whose artifacts must be
 * byte-deterministic), these measure wall-clock time of the macro
 * workloads the shared ThresholdStore, AttemptOracle, and word-mask
 * full-scan tier optimize: the full ACmin-vs-tAggON sweep, tAggONmin
 * searches over a range of activation counts, the overlap analysis,
 * and the BER/ECC full-scan workload.  Each run
 * writes a `BENCH_<workload>.json` artifact into the `--out`
 * directory (independent of --format, so `rowpress run 'perf.*' --out
 * perf-artifacts` always produces machine-readable numbers for CI to
 * archive).  The committed perf trajectory lives in `bench/results/`.
 */

#include <chrono>
#include <filesystem>
#include <fstream>

#include "api/context.h"
#include "chr/ecc.h"
#include "fuzz/search.h"

using namespace rp;
using namespace rp::literals;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

chr::ModuleConfig
perfModule(api::ExperimentContext &ctx)
{
    return ctx.moduleConfig(device::dieS8GbB(), 50.0);
}

/** Write one BENCH_*.json artifact and mirror it into the sinks. */
void
emitBench(api::ExperimentContext &ctx, const std::string &workload,
          double elapsed_ms, std::size_t units,
          const std::string &unit_name, int locations)
{
    api::Dataset table(ctx.info().title);
    table.header({"workload", "elapsed ms", unit_name,
                  "ms per " + unit_name, "threads"});
    table.row({workload, api::cell(elapsed_ms),
               std::to_string(units),
               api::cell(elapsed_ms / double(units)),
               std::to_string(ctx.engine().numThreads())});
    ctx.emit(table);

    std::filesystem::create_directories(ctx.outDir());
    const auto path = ctx.outDir() / ("BENCH_" + workload + ".json");
    std::ofstream os(path);
    os << "{\n"
       << "  \"name\": \"" << ctx.info().id << "\",\n"
       << "  \"workload\": \"" << workload << "\",\n"
       << "  \"die\": \"" << device::dieS8GbB().id << "\",\n"
       << "  \"locations\": " << locations << ",\n"
       << "  \"threads\": " << ctx.engine().numThreads() << ",\n"
       << "  \"" << unit_name << "\": " << units << ",\n"
       << "  \"elapsed_ms\": " << elapsed_ms << ",\n"
       << "  \"ms_per_" << unit_name
       << "\": " << elapsed_ms / double(units) << "\n"
       << "}\n";
    ctx.notef("wrote %s\n", path.string().c_str());
}

void
runPerfAcminSweep(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const auto &sweep = chr::standardTAggOnSweep();
    const auto t0 = std::chrono::steady_clock::now();
    auto points = chr::acminSweep(mc, ctx.engine(), sweep,
                                  chr::AccessKind::SingleSided);
    const double ms = msSince(t0);
    emitBench(ctx, "acmin_sweep", ms, sweep.size(), "points",
              ctx.locations());
}

void
runPerfTAggOnMin(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const std::vector<std::uint64_t> acts = {1, 8, 64, 512, 4096};
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t a : acts) {
        auto point = chr::tAggOnMinPoint(mc, ctx.engine(), a,
                                         chr::AccessKind::SingleSided);
        (void)point;
    }
    const double ms = msSince(t0);
    emitBench(ctx, "taggonmin", ms, acts.size(), "points",
              ctx.locations());
}

void
runPerfOverlap(api::ExperimentContext &ctx)
{
    const auto mc = perfModule(ctx);
    const std::vector<Time> t_ons = {36_ns, 7800_ns, 70200_ns, 300_us};
    const auto t0 = std::chrono::steady_clock::now();
    auto results = chr::overlapAtAcmin(mc, ctx.engine(), t_ons,
                                       chr::AccessKind::SingleSided,
                                       chr::SearchConfig{});
    (void)results;
    const double ms = msSince(t0);
    emitBench(ctx, "overlap", ms, t_ons.size(), "points",
              ctx.locations());
}

void
runPerfBerFullScan(api::ExperimentContext &ctx)
{
    // The BER/ECC workload shape (fig25 / table 6): max-activation
    // attempts with full-scan victim inspection, repeated across
    // tAggON values, access kinds, and data patterns that all share
    // one module configuration — exactly the reuse profile the
    // word-mask full-scan tier amortizes its per-row build over.
    auto mc = ctx.moduleConfig(device::dieS8GbB(), 80.0);
    mc.numLocations = std::min(mc.numLocations, 4);
    const auto rows = chr::baseRowsOf(mc);

    const std::vector<Time> t_ons = {7800_ns, 70200_ns};
    const std::vector<chr::AccessKind> kinds = {
        chr::AccessKind::SingleSided, chr::AccessKind::DoubleSided};
    const std::vector<chr::DataPattern> patterns = {
        chr::DataPattern::CheckerBoard, chr::DataPattern::RowStripe,
        chr::DataPattern::ColStripe};

    std::size_t attempts = 0;
    chr::WordErrorStats total;
    const auto t0 = std::chrono::steady_clock::now();
    for (Time t : t_ons) {
        for (auto kind : kinds) {
            for (auto pattern : patterns) {
                auto results = chr::maxActivationAttempts(
                    mc, ctx.engine(), rows, kind, pattern, t);
                for (const auto &attempt : results) {
                    auto stats = chr::analyzeWordErrors(attempt.flips);
                    auto secded = chr::evaluateSecded(attempt.flips);
                    auto chipkill =
                        chr::evaluateChipkill(attempt.flips, 8);
                    (void)secded;
                    (void)chipkill;
                    total.merge(stats);
                    ++attempts;
                }
            }
        }
    }
    const double ms = msSince(t0);
    ctx.notef("error words across all attempts: %llu\n",
              (unsigned long long)total.totalErrorWords);
    emitBench(ctx, "ber_fullscan", ms, attempts, "attempts",
              mc.numLocations);
}

void
runPerfFuzzEval(api::ExperimentContext &ctx)
{
    // The fuzz objective-layer workload: evaluate a batch of random
    // genomes against Graphene, each on a private platform through
    // the segmented fast-forward execution path.
    fuzz::EvalConfig ec;
    ec.module = perfModule(ctx);
    ec.budget = 2 * units::MS;
    const fuzz::Evaluator evaluator(ec, fuzz::MitigationKind::Graphene);
    const fuzz::Searcher searcher(evaluator, ctx.engine());

    const int n = 24;
    std::vector<fuzz::PatternSpec> genomes;
    for (int i = 0; i < n; ++i) {
        Rng rng(hashU64(ctx.seed(), std::uint64_t(i)));
        genomes.push_back(fuzz::randomPattern(rng, ec.module.bank,
                                              ec.module.firstRow));
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto results = searcher.evaluateAll(genomes);
    (void)results;
    const double ms = msSince(t0);
    emitBench(ctx, "fuzz_eval", ms, std::size_t(n), "patterns",
              ctx.locations());
}

// Registered directly (not via REGISTER_EXPERIMENT) because the perf
// ids contain a dot, which the macro cannot use as a C++ identifier.
const api::ExperimentRegistrar reg_perf_acmin_sweep(
    {"perf.acmin_sweep",
     "Perf: ACmin-vs-tAggON sweep macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfAcminSweep);

const api::ExperimentRegistrar reg_perf_taggonmin(
    {"perf.taggonmin", "Perf: tAggONmin search macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfTAggOnMin);

const api::ExperimentRegistrar reg_perf_overlap(
    {"perf.overlap", "Perf: overlap analysis macro benchmark",
     "threshold store + attempt oracle fast path", "perf"},
    nullptr, runPerfOverlap);

const api::ExperimentRegistrar reg_perf_ber_fullscan(
    {"perf.ber_fullscan",
     "Perf: BER/ECC full-scan macro benchmark",
     "word-mask full-scan fast path + chunked attempt tasks", "perf"},
    nullptr, runPerfBerFullScan);

const api::ExperimentRegistrar reg_perf_fuzz_eval(
    {"perf.fuzz_eval",
     "Perf: fuzz objective-evaluation macro benchmark",
     "segmented mitigation-aware pattern evaluation", "perf"},
    nullptr, runPerfFuzzEval);

} // namespace
