/**
 * @file
 * Entry point of the `rowpress` multi-tool binary.
 *
 * Every figure/table experiment is linked in and registers itself
 * with rp::api::ExperimentRegistry; the CLI (`list` / `run`) lives in
 * src/api/cli.cc.  The one extra command handled here is `bench`,
 * which forwards to google-benchmark (the micro-measurements declared
 * next to each experiment) — it stays out of the library so the api
 * layer carries no benchmark dependency.
 */

#include <cstring>
#include <string>
#include <vector>

#include "api/cli.h"

#include "bench_support.h"

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "bench") == 0) {
        // `rowpress bench [--benchmark_filter=...]`: forward the
        // remaining args under the original argv[0].
        std::vector<char *> args;
        args.push_back(argv[0]);
        for (int i = 2; i < argc; ++i)
            args.push_back(argv[i]);
        int n = int(args.size());
        return rpb::runBenchmarkMain(n, args.data());
    }
    return rp::api::cliMain(argc, argv);
}
