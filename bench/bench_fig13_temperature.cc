/**
 * @file
 * Figs. 13 and 14: temperature sensitivity.  ACmin at 80 C normalized
 * to 50 C (Obsv. 9: RowPress worsens with temperature) and the
 * fraction of rows with bitflips at 80 C (Obsv. 10).
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runFig13(api::ExperimentContext &ctx)
{
    const std::vector<Time> sweep = {36_ns,    636_ns,   7800_ns,
                                     70200_ns, 1_ms,     30_ms};

    for (const auto &die : ctx.dies()) {
        auto p50s = chr::acminSweep(ctx.moduleConfig(die, 50.0),
                                    ctx.engine(), sweep,
                                    chr::AccessKind::SingleSided);
        auto p80s = chr::acminSweep(ctx.moduleConfig(die, 80.0),
                                    ctx.engine(), sweep,
                                    chr::AccessKind::SingleSided);

        api::Dataset table(die.name);
        table.header({"tAggON", "ACmin@50C", "ACmin@80C",
                      "80C/50C ratio", "rows@80C"});
        for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
            const double a50 = p50s[ti].meanAcmin();
            const double a80 = p80s[ti].meanAcmin();
            table.row({formatTime(sweep[ti]),
                       a50 > 0 ? api::fmtCount(a50) : "No Bitflip",
                       a80 > 0 ? api::fmtCount(a80) : "No Bitflip",
                       (a50 > 0 && a80 > 0)
                           ? api::cell(a80 / a50)
                           : std::string("-"),
                       api::cell(p80s[ti].fractionFlipped())});
        }
        ctx.emit(table);
        ctx.note("\n");
    }
    ctx.note("Paper shape: the normalized ratio drops well below "
             "1.0 for RowPress-regime\ntAggON (e.g. 0.32x-0.59x at "
             "tREFI) while staying near 1.0 for RowHammer;\nrow "
             "fractions approach 100% at 80C.\n\n");
}

REGISTER_EXPERIMENT(fig13, "Figs. 13/14: temperature sensitivity",
                    "Fig. 13 (ACmin@80C / ACmin@50C), Fig. 14 (row "
                    "fraction @80C)",
                    "characterization", runFig13);

void
BM_TemperaturePoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieH16GbA(), 80.0);
    for (auto _ : state) {
        auto point = chr::acminPoint(module, 7800_ns,
                                     chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point);
    }
}
BENCHMARK(BM_TemperaturePoint)->Unit(benchmark::kMillisecond);

} // namespace
