/**
 * @file
 * Figs. 42-45 (Appendix E): repeatability of RowPress bitflips.  Runs
 * the same press attempt five times and histograms how many of the
 * five iterations each observed bitflip occurs in (the paper finds
 * the majority of bitflips repeat in all five iterations).
 */

#include <algorithm>
#include <map>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
emitRepeatability(api::ExperimentContext &ctx, chr::AccessKind kind,
                  double temp)
{
    ctx.notef("--- %s @ %.0fC ---\n", chr::accessKindName(kind),
              temp);
    const auto mc = ctx.moduleConfig(device::dieS8GbD(), temp);
    const auto rows = chr::baseRowsOf(mc);

    api::Dataset table("Bitflip occurrence count across 5 iterations "
                       "(%)");
    table.header({"tAggON", "1", "2", "3", "4", "5", "total flips"});

    const std::vector<Time> sweep = {36_ns,   336_ns,   1536_ns,
                                     7800_ns, 70200_ns, 10_ms};

    // One task per (tAggON, location): the five iterations run
    // back-to-back on the task's module (repeatability is about
    // re-running on the *same* device state), but different locations
    // and sweep points are independent.
    using Occurrence = std::map<std::uint64_t, int>;
    auto occurrences = ctx.engine().map<Occurrence>(
        sweep.size() * rows.size(), [&](const core::TaskContext &tc) {
            const Time t = sweep[tc.index / rows.size()];
            const int row = rows[tc.index % rows.size()];
            Occurrence occurrence;

            chr::Module local(chr::locationConfig(mc, row));
            auto &platform = local.platform();
            const auto layout = chr::makeLayout(kind, mc.bank, row);
            // Run at ~1.3x the budget-limited count's ACmin-scale
            // dose: use the max count within a reduced budget so
            // near-threshold and solid flips both appear.
            const std::uint64_t acts = chr::maxActsWithinBudget(
                t, platform.timing(), platform.cmdGap(), 20_ms);
            if (acts == 0)
                return occurrence;
            for (int iter = 0; iter < 5; ++iter) {
                auto attempt = chr::runPressAttempt(
                    platform, layout, chr::DataPattern::CheckerBoard,
                    t, acts);
                for (const auto &f : attempt.flips)
                    ++occurrence[f.id()];
            }
            return occurrence;
        });

    for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
        Occurrence merged;
        for (std::size_t ri = 0; ri < rows.size(); ++ri) {
            for (const auto &[id, n] :
                 occurrences[ti * rows.size() + ri])
                merged[id] += n;
        }
        int histo[6] = {0, 0, 0, 0, 0, 0};
        for (const auto &[id, n] : merged) {
            (void)id;
            ++histo[std::min(5, n)];
        }
        const double total = double(merged.size());
        std::vector<std::string> row = {formatTime(sweep[ti])};
        for (int i = 1; i <= 5; ++i)
            row.push_back(total > 0
                              ? api::cell(100.0 * histo[i] / total)
                              : std::string("-"));
        row.push_back(api::cell(std::uint64_t(total)));
        table.row(std::move(row));
    }
    ctx.emit(table);
    ctx.note("\n");
}

void
runFig42(api::ExperimentContext &ctx)
{
    emitRepeatability(ctx, chr::AccessKind::SingleSided, 50.0);
    emitRepeatability(ctx, chr::AccessKind::SingleSided, 80.0);
    emitRepeatability(ctx, chr::AccessKind::DoubleSided, 50.0);
    ctx.note("Paper shape (Obsv. 22): the majority (>50-60%) of "
             "bitflips occur in all\nfive iterations - RowPress "
             "bitflips are repeatable.\n\n");
}

REGISTER_EXPERIMENT(fig42, "Figs. 42-45: repeatability of RowPress bitflips",
                    "Appendix E (5-iteration occurrence histograms)",
                    "characterization", runFig42);

void
BM_RepeatAttempt(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    auto layout = chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
    for (auto _ : state) {
        auto attempt = chr::runPressAttempt(
            module.platform(), layout, chr::DataPattern::CheckerBoard,
            7800_ns, 2000);
        benchmark::DoNotOptimize(attempt);
    }
}
BENCHMARK(BM_RepeatAttempt)->Unit(benchmark::kMillisecond);

} // namespace
