/**
 * @file
 * Figs. 42-45 (Appendix E): repeatability of RowPress bitflips.  Runs
 * the same press attempt five times and histograms how many of the
 * five iterations each observed bitflip occurs in (the paper finds
 * the majority of bitflips repeat in all five iterations).
 */

#include <map>

#include "bench_common.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
printRepeatability(chr::AccessKind kind, double temp)
{
    std::printf("--- %s @ %.0fC ---\n", chr::accessKindName(kind),
                temp);
    chr::Module module = rpb::makeModule(device::dieS8GbD(), temp);
    auto &platform = module.platform();

    Table table("Bitflip occurrence count across 5 iterations (%)");
    table.header({"tAggON", "1", "2", "3", "4", "5", "total flips"});

    for (Time t : {36_ns, 336_ns, 1536_ns, 7800_ns, 70200_ns, 10_ms}) {
        std::map<std::uint64_t, int> occurrence;
        for (int iter = 0; iter < 5; ++iter) {
            for (int row : module.baseRows()) {
                auto layout =
                    chr::makeLayout(kind, module.config().bank, row);
                // Run at ~1.3x the budget-limited count's ACmin-scale
                // dose: use the max count within a reduced budget so
                // near-threshold and solid flips both appear.
                const std::uint64_t acts = chr::maxActsWithinBudget(
                    t, platform.timing(), platform.cmdGap(),
                    20_ms);
                if (acts == 0)
                    continue;
                auto attempt = chr::runPressAttempt(
                    platform, layout, chr::DataPattern::CheckerBoard,
                    t, acts);
                for (const auto &f : attempt.flips)
                    ++occurrence[f.id()];
            }
        }
        int histo[6] = {0, 0, 0, 0, 0, 0};
        for (const auto &[id, n] : occurrence) {
            (void)id;
            ++histo[std::min(5, n)];
        }
        const double total = double(occurrence.size());
        std::vector<std::string> row = {formatTime(t)};
        for (int i = 1; i <= 5; ++i)
            row.push_back(total > 0
                              ? Table::toCell(100.0 * histo[i] / total)
                              : std::string("-"));
        row.push_back(Table::toCell(std::uint64_t(total)));
        table.row(std::move(row));
    }
    table.print();
    std::printf("\n");
}

void
printFig42()
{
    rpb::printHeader("Figs. 42-45: repeatability of RowPress bitflips",
                     "Appendix E (5-iteration occurrence histograms)");
    printRepeatability(chr::AccessKind::SingleSided, 50.0);
    printRepeatability(chr::AccessKind::SingleSided, 80.0);
    printRepeatability(chr::AccessKind::DoubleSided, 50.0);
    std::printf("Paper shape (Obsv. 22): the majority (>50-60%%) of "
                "bitflips occur in all\nfive iterations - RowPress "
                "bitflips are repeatable.\n\n");
}

void
BM_RepeatAttempt(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 50.0);
    auto layout = chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
    for (auto _ : state) {
        auto attempt = chr::runPressAttempt(
            module.platform(), layout, chr::DataPattern::CheckerBoard,
            7800_ns, 2000);
        benchmark::DoNotOptimize(attempt);
    }
}
BENCHMARK(BM_RepeatAttempt)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig42();
    return rpb::runBenchmarkMain(argc, argv);
}
