/**
 * @file
 * Figs. 19 and 20: data-pattern sensitivity.  Mean ACmin of each data
 * pattern normalized to the checkerboard pattern across representative
 * tAggON values, at 50 C and 80 C, single- and double-sided.
 * Obsv. 14/15: checkerboard is the most robustly effective RowPress
 * pattern; RowStripe (the best RowHammer pattern) stops producing any
 * bitflip at long tAggON.
 */

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;

namespace {

void
printPatternTable(core::ExperimentEngine &engine,
                  const device::DieConfig &die, chr::AccessKind kind,
                  double temp)
{
    const auto mc = rpb::moduleConfig(die, temp);
    const auto &sweep = chr::dataPatternTAggOnSweep();

    Table table(die.name + " " + chr::accessKindName(kind) + " @ " +
                Table::toCell(temp) + "C (ACmin normalized to CB)");
    std::vector<std::string> head = {"pattern"};
    for (Time t : sweep)
        head.push_back(formatTime(t));
    table.header(head);

    // Baseline: checkerboard means per tAggON.
    auto cb_points = chr::acminSweep(mc, engine, sweep, kind,
                                     chr::DataPattern::CheckerBoard);
    std::vector<double> cb_means;
    for (const auto &p : cb_points)
        cb_means.push_back(p.meanAcmin());

    for (auto pattern : chr::allDataPatterns()) {
        auto points = chr::acminSweep(mc, engine, sweep, kind, pattern);
        std::vector<std::string> row = {chr::dataPatternName(pattern)};
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const double mean = points[i].meanAcmin();
            if (mean <= 0)
                row.push_back("NoFlip");
            else if (cb_means[i] <= 0)
                row.push_back("CB-NoFlip");
            else
                row.push_back(Table::toCell(mean / cb_means[i]));
        }
        table.row(std::move(row));
    }
    table.print();
    std::printf("\n");
}

void
printFig19(core::ExperimentEngine &engine)
{
    // Default: the paper's three representative dies at 50C plus the
    // S 8Gb B-die's 80C and double-sided variants; ROWPRESS_ALL_DIES=1
    // adds the 80C column for all dies.
    const bool all = rpb::envInt("ROWPRESS_ALL_DIES", 0);
    std::vector<device::DieConfig> dies = {device::dieS8GbB(),
                                           device::dieH16GbA(),
                                           device::dieM16GbF()};
    for (const auto &die : dies) {
        printPatternTable(engine, die, chr::AccessKind::SingleSided,
                          50.0);
        if (all || die.id == "S-8Gb-B")
            printPatternTable(engine, die, chr::AccessKind::SingleSided,
                              80.0);
    }
    // Fig. 20: double-sided for the S 8Gb B-die.
    printPatternTable(engine, device::dieS8GbB(),
                      chr::AccessKind::DoubleSided, 50.0);

    std::printf("Paper shape: RS/RSI (victim rows all-0/all-1) stop "
                "flipping at long tAggON\n(RowPress can only drain "
                "charged victim cells); CB always flips; values\nnear "
                "1.00 elsewhere with modest pattern effects.\n\n");
}

void
BM_DataPatternPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    for (auto _ : state) {
        auto p = chr::acminPoint(module, 7800_ns,
                                 chr::AccessKind::SingleSided,
                                 chr::DataPattern::ColStripeI);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_DataPatternPoint)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Figs. 19/20: data-pattern sensitivity",
         "Fig. 19 (single-sided), Fig. 20 (double-sided, S 8Gb B)"},
        printFig19);
}
