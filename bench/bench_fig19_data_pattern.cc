/**
 * @file
 * Figs. 19 and 20: data-pattern sensitivity.  Mean ACmin of each data
 * pattern normalized to the checkerboard pattern across representative
 * tAggON values, at 50 C and 80 C, single- and double-sided.
 * Obsv. 14/15: checkerboard is the most robustly effective RowPress
 * pattern; RowStripe (the best RowHammer pattern) stops producing any
 * bitflip at long tAggON.
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;

namespace {

void
emitPatternTable(api::ExperimentContext &ctx,
                 const device::DieConfig &die, chr::AccessKind kind,
                 double temp)
{
    const auto mc = ctx.moduleConfig(die, temp);
    const auto &sweep = chr::dataPatternTAggOnSweep();

    api::Dataset table(die.name + " " + chr::accessKindName(kind) +
                       " @ " + api::cell(temp) +
                       "C (ACmin normalized to CB)");
    std::vector<std::string> head = {"pattern"};
    for (Time t : sweep)
        head.push_back(formatTime(t));
    table.header(head);

    // Baseline: checkerboard means per tAggON.
    auto cb_points = chr::acminSweep(mc, ctx.engine(), sweep, kind,
                                     chr::DataPattern::CheckerBoard);
    std::vector<double> cb_means;
    for (const auto &p : cb_points)
        cb_means.push_back(p.meanAcmin());

    for (auto pattern : chr::allDataPatterns()) {
        auto points =
            chr::acminSweep(mc, ctx.engine(), sweep, kind, pattern);
        std::vector<std::string> row = {chr::dataPatternName(pattern)};
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const double mean = points[i].meanAcmin();
            if (mean <= 0)
                row.push_back("NoFlip");
            else if (cb_means[i] <= 0)
                row.push_back("CB-NoFlip");
            else
                row.push_back(api::cell(mean / cb_means[i]));
        }
        table.row(std::move(row));
    }
    ctx.emit(table);
    ctx.note("\n");
}

void
runFig19(api::ExperimentContext &ctx)
{
    // Default: the paper's three representative dies at 50C plus the
    // S 8Gb B-die's 80C and double-sided variants; --dies all (or
    // ROWPRESS_ALL_DIES=1) adds the 80C column for all dies.
    const auto dies = ctx.dies();
    const bool all = ctx.allDiesSelected();
    for (const auto &die : dies) {
        emitPatternTable(ctx, die, chr::AccessKind::SingleSided, 50.0);
        if (all || die.id == "S-8Gb-B")
            emitPatternTable(ctx, die, chr::AccessKind::SingleSided,
                             80.0);
    }
    // Fig. 20: double-sided for the S 8Gb B-die.
    emitPatternTable(ctx, device::dieS8GbB(),
                     chr::AccessKind::DoubleSided, 50.0);

    ctx.note("Paper shape: RS/RSI (victim rows all-0/all-1) stop "
             "flipping at long tAggON\n(RowPress can only drain "
             "charged victim cells); CB always flips; values\nnear "
             "1.00 elsewhere with modest pattern effects.\n\n");
}

REGISTER_EXPERIMENT(fig19, "Figs. 19/20: data-pattern sensitivity",
                    "Fig. 19 (single-sided), Fig. 20 (double-sided, "
                    "S 8Gb B)",
                    "characterization", runFig19);

void
BM_DataPatternPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    for (auto _ : state) {
        auto p = chr::acminPoint(module, 7800_ns,
                                 chr::AccessKind::SingleSided,
                                 chr::DataPattern::ColStripeI);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_DataPatternPoint)->Unit(benchmark::kMillisecond);

} // namespace
