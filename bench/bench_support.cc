#include "bench_support.h"

#include "api/env.h"

namespace rpb {

rp::chr::ModuleConfig
moduleConfig(const rp::device::DieConfig &die, double temp_c,
             std::uint64_t seed)
{
    rp::chr::ModuleConfig cfg;
    cfg.die = die;
    cfg.numLocations =
        rp::api::envInt("ROWPRESS_BENCH_LOCATIONS", 10, 1);
    cfg.temperatureC = temp_c;
    cfg.seed = seed;
    return cfg;
}

rp::chr::Module
makeModule(const rp::device::DieConfig &die, double temp_c,
           std::uint64_t seed)
{
    return rp::chr::Module(moduleConfig(die, temp_c, seed));
}

int
runBenchmarkMain(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace rpb
