/**
 * @file
 * Figs. 38 and 39 (Appendix D.1): the minimally-open-row policy.
 * Increase in per-row activation counts (potentially turning benign
 * workloads into RowHammer-like patterns) and the IPC cost relative
 * to the open-row baseline.
 */

#include <algorithm>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runFig38(api::ExperimentContext &ctx)
{
    const std::uint64_t instrs = std::max<std::uint64_t>(
        50000, std::uint64_t(150000 * ctx.scale()));

    std::vector<std::string> names = {
        "429.mcf",   "433.milc",      "436.cactusADM",
        "462.libquantum", "470.lbm",  "482.sphinx3",
        "483.xalancbmk", "510.parest", "h264_encode",
        "wc_8443",   "ycsb_bserver",  "tpch17"};

    // Two configs per workload (open-row, minimally-open-row), all
    // run concurrently as one batch.
    std::vector<sim::SystemConfig> cfgs;
    for (const auto &name : names) {
        sim::SystemConfig open_cfg;
        open_cfg.core.instrLimit = instrs;
        open_cfg.workloads = {workloads::workloadByName(name)};
        cfgs.push_back(open_cfg);

        sim::SystemConfig min_cfg = open_cfg;
        min_cfg.mem.tMro = min_cfg.mem.timing.tRAS;
        cfgs.push_back(min_cfg);
    }
    auto results = sim::runSystems(cfgs, ctx.engine());

    api::Dataset table("Minimally-open-row (t_mro = tRAS) vs open-row");
    table.header({"workload", "IPC open", "IPC min-open",
                  "normalized IPC", "maxRowActs open",
                  "maxRowActs min-open", "ACT increase"});

    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &open_res = results[2 * i];
        const auto &min_res = results[2 * i + 1];
        const double incr =
            open_res.mem.maxRowActs
                ? double(min_res.mem.maxRowActs) /
                      double(open_res.mem.maxRowActs)
                : 0.0;
        table.row({names[i], api::cell(open_res.ipcOf(0)),
                   api::cell(min_res.ipcOf(0)),
                   api::cell(min_res.ipcOf(0) / open_res.ipcOf(0)),
                   api::cell(open_res.mem.maxRowActs),
                   api::cell(min_res.mem.maxRowActs),
                   api::cell(incr) + "x"});
    }
    ctx.emit(table);
    ctx.note("\nPaper shape: row-activation counts to single rows "
             "grow by up to ~370x\n(benign workloads become "
             "hammer-like) and high-row-locality workloads\n(e.g., "
             "462.libquantum) lose up to ~34% IPC.\n\n");
}

REGISTER_EXPERIMENT(fig38, "Figs. 38/39: minimally-open-row policy",
                    "Fig. 38 (max per-row ACT increase), Fig. 39 "
                    "(normalized IPC)",
                    "simulator", runFig38);

void
BM_MinOpenRun(benchmark::State &state)
{
    const auto w = workloads::workloadByName("462.libquantum");
    for (auto _ : state) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 50000;
        cfg.mem.tMro = cfg.mem.timing.tRAS;
        cfg.workloads = {w};
        auto r = sim::runSystem(cfg);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MinOpenRun)->Unit(benchmark::kMillisecond);

} // namespace
