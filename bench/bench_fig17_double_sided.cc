/**
 * @file
 * Figs. 17, 18, and 48: double-sided RowPress ACmin and the
 * single-minus-double difference at 50 C and 80 C.  Obsv. 13: beyond
 * a crossover tAggON, single-sided RowPress becomes more effective
 * than double-sided (unlike RowHammer).
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

const std::vector<Time> kSweep = {36_ns,   186_ns,  636_ns,  1536_ns,
                                  7800_ns, 70200_ns, 1_ms,   10_ms};

void
runFig17(api::ExperimentContext &ctx)
{
    for (const auto &die : ctx.dies()) {
        for (double temp : {50.0, 80.0}) {
            const auto mc = ctx.moduleConfig(die, temp);
            auto ss_points = chr::acminSweep(
                mc, ctx.engine(), kSweep, chr::AccessKind::SingleSided);
            auto ds_points = chr::acminSweep(
                mc, ctx.engine(), kSweep, chr::AccessKind::DoubleSided);

            api::Dataset table(die.name + " @ " + api::cell(temp) +
                               "C");
            table.header({"tAggON", "SS mean ACmin", "DS mean ACmin",
                          "SS - DS", "more effective"});
            for (std::size_t ti = 0; ti < kSweep.size(); ++ti) {
                const double a_ss = ss_points[ti].meanAcmin();
                const double a_ds = ds_points[ti].meanAcmin();
                if (a_ss <= 0 && a_ds <= 0) {
                    table.row({formatTime(kSweep[ti]), "No Bitflip",
                               "No Bitflip", "-", "-"});
                    continue;
                }
                std::string winner = "-";
                if (a_ss > 0 && a_ds > 0)
                    winner = a_ss < a_ds ? "single" : "double";
                else
                    winner = a_ss > 0 ? "single" : "double";
                table.row({formatTime(kSweep[ti]),
                           a_ss > 0 ? api::fmtCount(a_ss)
                                    : std::string("No Bitflip"),
                           a_ds > 0 ? api::fmtCount(a_ds)
                                    : std::string("No Bitflip"),
                           (a_ss > 0 && a_ds > 0)
                               ? api::cell(a_ss - a_ds)
                               : std::string("-"),
                           winner});
            }
            ctx.emit(table);
            ctx.note("\n");
        }
    }
    ctx.note("Paper shape (Obsv. 13): double-sided wins at small "
             "tAggON (RowHammer regime);\nsingle-sided needs fewer "
             "total activations once tAggON grows past the\n"
             "crossover (~1.5 us at 50C, earlier at 80C).\n\n");
}

REGISTER_EXPERIMENT(fig17, "Figs. 17/18: single- vs double-sided RowPress",
                    "Fig. 17 (DS ACmin @50C), Fig. 18 (SS - DS "
                    "difference @50C/80C)",
                    "characterization", runFig17);

void
BM_DoubleSidedSearch(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbB(), 50.0);
    chr::RowLayout layout =
        chr::makeLayout(chr::AccessKind::DoubleSided, 1, 64);
    for (auto _ : state) {
        auto res = chr::findAcmin(module.platform(), layout,
                                  chr::DataPattern::CheckerBoard,
                                  7800_ns);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_DoubleSidedSearch)->Unit(benchmark::kMillisecond);

} // namespace
