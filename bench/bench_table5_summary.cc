/**
 * @file
 * Tables 5 and 6: per-die-revision summary of RowHammer and RowPress
 * vulnerabilities - ACmin at representative tAggON values, tAggONmin
 * at AC = 1 and AC = 10K, and maximum BER - at 50 C and 80 C.
 */

#include <algorithm>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runTable5(api::ExperimentContext &ctx)
{
    auto dies = ctx.dies();

    api::Dataset t5("Table 5 analogue: ACmin (mean) and tAggONmin "
                    "(mean)");
    t5.header({"die", "AC@36ns 50C", "AC@7.8us 50C", "AC@70.2us 50C",
               "AC@7.8us 80C", "tOnMin@AC=1 50C", "tOnMin@AC=1 80C"});

    api::Dataset t6("Table 6 analogue: max BER @ max activation count "
                    "(SS)");
    t6.header({"die", "BER@36ns 50C", "BER@7.8us 50C",
               "BER@7.8us 80C"});

    for (const auto &die : dies) {
        const auto mc50 = ctx.moduleConfig(die, 50.0);
        const auto mc80 = ctx.moduleConfig(die, 80.0);

        auto cell = [&](const chr::ModuleConfig &mc,
                        Time t) -> std::string {
            // Table 5 reports the stronger of SS and DS.
            auto ss = chr::acminPoint(mc, ctx.engine(), t,
                                      chr::AccessKind::SingleSided);
            auto ds = chr::acminPoint(mc, ctx.engine(), t,
                                      chr::AccessKind::DoubleSided);
            double best = 0.0;
            if (ss.meanAcmin() > 0)
                best = ss.meanAcmin();
            if (ds.meanAcmin() > 0)
                best = best > 0 ? std::min(best, ds.meanAcmin())
                                : ds.meanAcmin();
            return best > 0 ? api::fmtCount(best)
                            : std::string("No Bitflip");
        };
        auto ton = [&](const chr::ModuleConfig &mc) -> std::string {
            auto p = chr::tAggOnMinPoint(mc, ctx.engine(), 1,
                                         chr::AccessKind::SingleSided);
            auto s = p.summary();
            return s.count
                       ? formatTime(Time(s.mean * double(units::US)))
                       : std::string("No Bitflip");
        };

        t5.row({die.id, cell(mc50, 36_ns), cell(mc50, 7800_ns),
                cell(mc50, 70200_ns), cell(mc80, 7800_ns), ton(mc50),
                ton(mc80)});

        auto ber = [&](const chr::ModuleConfig &mc, Time t) {
            chr::Module m(mc);
            auto attempt = chr::maxActivationAttempt(
                m, 0, chr::AccessKind::SingleSided,
                chr::DataPattern::CheckerBoard, t);
            return api::cell(double(attempt.flips.size()) /
                             double(chr::bitsPerRow(m)));
        };
        t6.row({die.id, ber(mc50, 36_ns), ber(mc50, 7800_ns),
                ber(mc80, 7800_ns)});
    }
    ctx.emit(t5);
    ctx.note("\n");
    ctx.emit(t6);
    ctx.note("\nCompare against the calibration targets recorded in "
             "device/die_config.cc\n(transcribed from paper Tables "
             "5/6).\n\n");
}

REGISTER_EXPERIMENT(table5, "Tables 5/6: module summary",
                    "Table 5 (ACmin / tAggONmin), Table 6 (max BER); "
                    "all 12 dies with --dies all",
                    "characterization", runTable5);

void
BM_SummaryDie(benchmark::State &state)
{
    for (auto _ : state) {
        chr::Module m = rpb::makeModule(device::dieM16GbF(), 50.0);
        auto p =
            chr::acminPoint(m, 7800_ns, chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_SummaryDie)->Unit(benchmark::kMillisecond);

} // namespace
