/**
 * @file
 * Fig. 15 (and Figs. 46/47): tAggONmin at a single activation as
 * temperature sweeps from 50 C to 80 C in 5 C steps.  Obsv. 11:
 * tAggONmin decreases significantly with temperature.
 */

#include "api/context.h"

#include "bench_support.h"

using namespace rp;

namespace {

void
runFig15(api::ExperimentContext &ctx)
{
    const int step = ctx.config().getInt("temp-step");

    for (const auto &die : ctx.dies()) {
        api::Dataset table(die.name + " (tAggONmin in ms, AC = 1)");
        table.header({"temp(C)", "mean", "min", "max", "flipped-frac"});
        for (int temp = 50; temp <= 80; temp += step) {
            auto point = chr::tAggOnMinPoint(
                ctx.moduleConfig(die, double(temp)), ctx.engine(), 1,
                chr::AccessKind::SingleSided);
            auto s = point.summary();
            std::size_t flipped = 0;
            for (const auto &[row, res] : point.locations) {
                (void)row;
                flipped += res.flipped ? 1 : 0;
            }
            const double frac =
                double(flipped) / double(point.locations.size());
            if (s.count == 0) {
                table.row({api::cell(temp), "No Bitflip", "-", "-",
                           api::cell(frac)});
                continue;
            }
            table.row({api::cell(temp),
                       api::cell(s.mean / 1000.0),
                       api::cell(s.min / 1000.0),
                       api::cell(s.max / 1000.0),
                       api::cell(frac)});
        }
        ctx.emit(table);
        ctx.note("\n");
    }
    ctx.note("Paper shape (Obsv. 11): mean tAggONmin shrinks by "
             "1.6x-2.8x from 50C to 80C\n(largest for Mfr. H).\n\n");
}

REGISTER_EXPERIMENT_OPTS(
    fig15, "Fig. 15: tAggONmin @ AC=1 vs temperature",
    "Fig. 15 (50-80C, 5C steps, single-sided)", "characterization",
    [](api::ConfigSchema &schema) {
        schema.add({"temp-step", api::OptionType::Int, "5",
                    "ROWPRESS_TEMP_STEP",
                    "temperature sweep step (C)", 1.0, true});
    },
    runFig15);

void
BM_TempSweepPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieH16GbA(), 65.0);
    for (auto _ : state) {
        auto point =
            chr::tAggOnMinPoint(module, 1, chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point);
    }
}
BENCHMARK(BM_TempSweepPoint)->Unit(benchmark::kMillisecond);

} // namespace
