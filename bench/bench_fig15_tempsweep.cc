/**
 * @file
 * Fig. 15 (and Figs. 46/47): tAggONmin at a single activation as
 * temperature sweeps from 50 C to 80 C in 5 C steps.  Obsv. 11:
 * tAggONmin decreases significantly with temperature.
 */

#include "bench_runner.h"

#include "common/table.h"

using namespace rp;

namespace {

void
printFig15(core::ExperimentEngine &engine)
{
    const int step = rpb::envInt("ROWPRESS_TEMP_STEP", 5);

    for (const auto &die : rpb::benchDies()) {
        Table table(die.name + " (tAggONmin in ms, AC = 1)");
        table.header({"temp(C)", "mean", "min", "max", "flipped-frac"});
        for (int temp = 50; temp <= 80; temp += step) {
            auto point = chr::tAggOnMinPoint(
                rpb::moduleConfig(die, double(temp)), engine, 1,
                chr::AccessKind::SingleSided);
            auto s = point.summary();
            std::size_t flipped = 0;
            for (const auto &[row, res] : point.locations) {
                (void)row;
                flipped += res.flipped ? 1 : 0;
            }
            const double frac =
                double(flipped) / double(point.locations.size());
            if (s.count == 0) {
                table.row({Table::toCell(temp), "No Bitflip", "-", "-",
                           Table::toCell(frac)});
                continue;
            }
            table.row({Table::toCell(temp),
                       Table::toCell(s.mean / 1000.0),
                       Table::toCell(s.min / 1000.0),
                       Table::toCell(s.max / 1000.0),
                       Table::toCell(frac)});
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Paper shape (Obsv. 11): mean tAggONmin shrinks by "
                "1.6x-2.8x from 50C to 80C\n(largest for Mfr. H).\n\n");
}

void
BM_TempSweepPoint(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieH16GbA(), 65.0);
    for (auto _ : state) {
        auto point =
            chr::tAggOnMinPoint(module, 1, chr::AccessKind::SingleSided);
        benchmark::DoNotOptimize(point);
    }
}
BENCHMARK(BM_TempSweepPoint)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return rpb::figureMain(
        argc, argv,
        {"Fig. 15: tAggONmin @ AC=1 vs temperature",
         "Fig. 15 (50-80C, 5C steps, single-sided)"},
        printFig15);
}
