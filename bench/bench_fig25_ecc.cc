/**
 * @file
 * Figs. 25 and 26: ECC implications.  Distribution of bitflips per
 * 64-bit word at maximum activation count for tAggON = tREFI and
 * 9 x tREFI, single- and double-sided, plus SECDED / Chipkill
 * correction outcomes (section 7.1).
 */

#include <algorithm>

#include "api/context.h"

#include "bench_support.h"

using namespace rp;
using namespace rp::literals;

namespace {

void
runFig25(api::ExperimentContext &ctx)
{
    for (Time t : {7800_ns, 70200_ns}) {
        api::Dataset table("tAggON = " + formatTime(t) +
                           " (words with 1-2 / 3-8 / >8 flips; SECDED "
                           "& Chipkill-x8 outcomes)");
        table.header({"die", "pattern", "1-2", "3-8", ">8", "max/word",
                      "SECDED silent", "Chipkill silent"});
        for (const auto &die : ctx.dies()) {
            const auto mc = ctx.moduleConfig(die, 80.0);
            const auto rows = chr::baseRowsOf(mc);
            const std::size_t locs =
                std::min<std::size_t>(4, rows.size());
            for (auto kind : {chr::AccessKind::SingleSided,
                              chr::AccessKind::DoubleSided}) {
                // Max-activation attempts over the tested locations,
                // chunked into (location, victim-slice) engine tasks
                // so the full scans scale past the location count.
                const std::vector<int> tested(
                    rows.begin(), rows.begin() + std::ptrdiff_t(locs));
                auto attempts = chr::maxActivationAttempts(
                    mc, ctx.engine(), tested, kind,
                    chr::DataPattern::CheckerBoard, t);

                std::vector<chr::VictimFlip> flips;
                for (auto &attempt : attempts)
                    flips.insert(flips.end(), attempt.flips.begin(),
                                 attempt.flips.end());
                auto stats = chr::analyzeWordErrors(flips);
                auto secded = chr::evaluateSecded(flips);
                auto chipkill = chr::evaluateChipkill(flips, 8);
                table.row({die.id, chr::accessKindName(kind),
                           api::cell(stats.words1to2),
                           api::cell(stats.words3to8),
                           api::cell(stats.wordsOver8),
                           api::cell(stats.maxFlipsPerWord),
                           api::cell(secded.silent),
                           api::cell(chipkill.silent)});
            }
        }
        ctx.emit(table);
        ctx.note("\n");
    }
    ctx.note("Paper shape: a significant fraction of erroneous "
             "words carries >2 flips\n(up to 25 per 64-bit word), "
             "beyond SECDED and Chipkill guarantees ->\nsilent data "
             "corruption risk.\n\n");
}

REGISTER_EXPERIMENT(fig25, "Figs. 25/26: bitflips per 64-bit word vs ECC",
                    "Fig. 25 (tAggON = 7.8us), Fig. 26 (70.2us) @ "
                    "80C, max activation count",
                    "characterization", runFig25);

void
BM_EccAnalysis(benchmark::State &state)
{
    chr::Module module = rpb::makeModule(device::dieS8GbD(), 80.0);
    for (auto _ : state) {
        auto attempt = chr::maxActivationAttempt(
            module, 0, chr::AccessKind::SingleSided,
            chr::DataPattern::CheckerBoard, 7800_ns);
        auto stats = chr::analyzeWordErrors(attempt.flips);
        benchmark::DoNotOptimize(stats);
    }
}
BENCHMARK(BM_EccAnalysis)->Unit(benchmark::kMillisecond);

} // namespace
