/**
 * @file
 * Table 3 (and Tables 8/9): Graphene-RP and PARA-RP configurations
 * and performance overheads vs their RowHammer-only baselines, as the
 * enforced maximum row-open time t_mro sweeps from tRAS to 636 ns
 * with a base T_RH of 1000.
 */

#include <memory>

#include "bench_common.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

const std::vector<Time> kTmros = {36_ns, 66_ns, 96_ns,
                                  186_ns, 336_ns, 636_ns};

struct RunSet
{
    std::vector<workloads::WorkloadParams> workloads;
    std::uint64_t instrs;
};

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / double(v.size()));
}

/** Mean IPC-normalized performance across workloads for a config. */
std::vector<double>
runAll(const RunSet &set, Time t_mro, mitigation::Mitigation *mit)
{
    std::vector<double> ipcs;
    for (const auto &w : set.workloads) {
        sim::SystemConfig cfg;
        cfg.mem.tMro = t_mro;
        cfg.mem.mitigation = mit;
        cfg.core.instrLimit = set.instrs;
        cfg.workloads = {w};
        ipcs.push_back(sim::runSystem(cfg).ipcOf(0));
    }
    return ipcs;
}

void
printTable3()
{
    rpb::printHeader("Table 3: Graphene-RP / PARA-RP configuration "
                     "and overhead",
                     "Table 3 / Tables 8, 9 (T_RH = 1000, S 8Gb B-die "
                     "profile)");

    const auto profile = mitigation::paperTable3Profile();
    const std::uint32_t base_trh = 1000;

    // Configuration rows (exact reproduction of Table 3's derivation).
    Table cfg_table("Adapted configurations");
    cfg_table.header({"t_mro", "T'_RH", "Graphene-RP T", "PARA-RP p"});
    for (Time t : kTmros) {
        const auto a = mitigation::adaptThreshold(profile, base_trh, t);
        const auto g = mitigation::grapheneFor(a.adaptedTrh, 64_ms,
                                               45_ns, 32);
        const auto p = mitigation::paraFor(a.adaptedTrh);
        cfg_table.row({formatTime(t), Table::toCell(a.adaptedTrh),
                       Table::toCell(g.threshold),
                       Table::toCell(p.p)});
    }
    cfg_table.print();
    std::printf("(paper T'_RH: 1000 809 724 619 555 419; Graphene T: "
                "333 269 241 206 185 139;\n PARA p: .034 .042 .047 "
                ".054 .061 .079)\n\n");

    // Performance overheads on a workload subset.
    RunSet set;
    set.instrs =
        std::max<std::uint64_t>(50000,
                                std::uint64_t(150000 * rpb::benchScale()));
    for (const char *name :
         {"429.mcf", "462.libquantum", "510.parest", "h264_encode",
          "470.lbm", "483.xalancbmk", "tpch17", "ycsb_bserver"})
        set.workloads.push_back(workloads::workloadByName(name));

    // Baselines: Graphene / PARA with the original T_RH, open row.
    auto g_base_cfg = mitigation::grapheneFor(base_trh, 64_ms, 45_ns, 32);
    mitigation::Graphene g_base(g_base_cfg);
    auto g_base_ipcs = runAll(set, 0, &g_base);

    mitigation::Para p_base(mitigation::paraFor(base_trh));
    auto p_base_ipcs = runAll(set, 0, &p_base);

    Table perf("Average / max additional slowdown vs the RowHammer-"
               "only baseline (single-core)");
    perf.header({"t_mro", "Graphene-RP avg", "Graphene-RP max",
                 "PARA-RP avg", "PARA-RP max"});
    for (Time t : kTmros) {
        const auto a = mitigation::adaptThreshold(profile, base_trh, t);

        mitigation::Graphene g_rp(
            mitigation::grapheneFor(a.adaptedTrh, 64_ms, 45_ns, 32));
        auto g_ipcs = runAll(set, t, &g_rp);

        mitigation::Para p_rp(mitigation::paraFor(a.adaptedTrh));
        auto p_ipcs = runAll(set, t, &p_rp);

        std::vector<double> g_ratio, p_ratio;
        double g_max = 0.0, p_max = 0.0;
        for (std::size_t i = 0; i < set.workloads.size(); ++i) {
            g_ratio.push_back(g_ipcs[i] / g_base_ipcs[i]);
            p_ratio.push_back(p_ipcs[i] / p_base_ipcs[i]);
            g_max = std::max(g_max, 1.0 - g_ratio.back());
            p_max = std::max(p_max, 1.0 - p_ratio.back());
        }
        perf.row({formatTime(t),
                  Table::toCell((1.0 - geomean(g_ratio)) * 100.0) + "%",
                  Table::toCell(g_max * 100.0) + "%",
                  Table::toCell((1.0 - geomean(p_ratio)) * 100.0) + "%",
                  Table::toCell(p_max * 100.0) + "%"});
    }
    perf.print();
    std::printf("\nPaper shape: Graphene-RP overhead stays within a "
                "few percent (sometimes a\nspeedup); PARA-RP overhead "
                "grows as t_mro (and thus p) increases.\n\n");
}

void
BM_SingleCoreRun(benchmark::State &state)
{
    const auto w = workloads::workloadByName("429.mcf");
    for (auto _ : state) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 50000;
        cfg.workloads = {w};
        auto r = sim::runSystem(cfg);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SingleCoreRun)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printTable3();
    return rpb::runBenchmarkMain(argc, argv);
}
