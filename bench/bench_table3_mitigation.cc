/**
 * @file
 * Table 3 (and Tables 8/9): Graphene-RP and PARA-RP configurations
 * and performance overheads vs their RowHammer-only baselines, as the
 * enforced maximum row-open time t_mro sweeps from tRAS to 636 ns
 * with a base T_RH of 1000.
 */

#include <algorithm>
#include <cmath>
#include <memory>

#include "api/context.h"

#include "bench_support.h"
#include "mitigation/defaults.h"

using namespace rp;
using namespace rp::literals;

namespace {

const std::vector<Time> kTmros = {36_ns, 66_ns, 96_ns,
                                  186_ns, 336_ns, 636_ns};

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / double(v.size()));
}

void
runTable3(api::ExperimentContext &ctx)
{
    const auto profile = mitigation::paperTable3Profile();
    const std::uint32_t base_trh =
        std::uint32_t(ctx.config().getInt("trh"));

    // Configuration rows (exact reproduction of Table 3's derivation).
    api::Dataset cfg_table("Adapted configurations");
    cfg_table.header({"t_mro", "T'_RH", "Graphene-RP T", "PARA-RP p"});
    for (Time t : kTmros) {
        const auto a = mitigation::adaptThreshold(profile, base_trh, t);
        const auto g = mitigation::standardGrapheneFor(a.adaptedTrh);
        const auto p = mitigation::paraFor(a.adaptedTrh);
        cfg_table.row({formatTime(t), api::cell(a.adaptedTrh),
                       api::cell(g.threshold),
                       api::cell(p.p)});
    }
    ctx.emit(cfg_table);
    ctx.note("(paper T'_RH: 1000 809 724 619 555 419; Graphene T: "
             "333 269 241 206 185 139;\n PARA p: .034 .042 .047 "
             ".054 .061 .079)\n\n");

    // Performance overheads on a workload subset.
    const std::uint64_t instrs = std::max<std::uint64_t>(
        50000, std::uint64_t(150000 * ctx.scale()));
    std::vector<workloads::WorkloadParams> set;
    for (const char *name :
         {"429.mcf", "462.libquantum", "510.parest", "h264_encode",
          "470.lbm", "483.xalancbmk", "tpch17", "ycsb_bserver"})
        set.push_back(workloads::workloadByName(name));

    // One job per (mechanism, t_mro step incl. baseline, workload);
    // every run gets a freshly built mitigation instance so no state
    // leaks between workloads or across concurrent tasks.
    auto jobs_for = [&](bool use_para) {
        std::vector<sim::SystemJob> jobs;
        auto add = [&](Time t_mro, std::uint32_t trh) {
            for (const auto &w : set) {
                sim::SystemJob job;
                job.cfg.mem.tMro = t_mro;
                job.cfg.core.instrLimit = instrs;
                job.cfg.workloads = {w};
                job.mitigationFactory =
                    mitigation::standardMitigationFactory(use_para,
                                                          trh);
                jobs.push_back(job);
            }
        };
        add(0, base_trh); // baseline: open row, unadapted T_RH
        for (Time t : kTmros)
            add(t, mitigation::adaptThreshold(profile, base_trh, t)
                       .adaptedTrh);
        return jobs;
    };

    auto g_results = sim::runSystems(jobs_for(false), ctx.engine());
    auto p_results = sim::runSystems(jobs_for(true), ctx.engine());

    auto ipcs_at = [&](const std::vector<sim::SystemResult> &results,
                       std::size_t step) {
        std::vector<double> ipcs;
        for (std::size_t i = 0; i < set.size(); ++i)
            ipcs.push_back(results[step * set.size() + i].ipcOf(0));
        return ipcs;
    };

    auto g_base_ipcs = ipcs_at(g_results, 0);
    auto p_base_ipcs = ipcs_at(p_results, 0);

    api::Dataset perf("Average / max additional slowdown vs the "
                      "RowHammer-only baseline (single-core)");
    perf.header({"t_mro", "Graphene-RP avg", "Graphene-RP max",
                 "PARA-RP avg", "PARA-RP max"});
    for (std::size_t ti = 0; ti < kTmros.size(); ++ti) {
        auto g_ipcs = ipcs_at(g_results, ti + 1);
        auto p_ipcs = ipcs_at(p_results, ti + 1);

        std::vector<double> g_ratio, p_ratio;
        double g_max = 0.0, p_max = 0.0;
        for (std::size_t i = 0; i < set.size(); ++i) {
            g_ratio.push_back(g_ipcs[i] / g_base_ipcs[i]);
            p_ratio.push_back(p_ipcs[i] / p_base_ipcs[i]);
            g_max = std::max(g_max, 1.0 - g_ratio.back());
            p_max = std::max(p_max, 1.0 - p_ratio.back());
        }
        perf.row({formatTime(kTmros[ti]),
                  api::cell((1.0 - geomean(g_ratio)) * 100.0) + "%",
                  api::cell(g_max * 100.0) + "%",
                  api::cell((1.0 - geomean(p_ratio)) * 100.0) + "%",
                  api::cell(p_max * 100.0) + "%"});
    }
    ctx.emit(perf);
    ctx.note("\nPaper shape: Graphene-RP overhead stays within a "
             "few percent (sometimes a\nspeedup); PARA-RP overhead "
             "grows as t_mro (and thus p) increases.\n\n");
}

REGISTER_EXPERIMENT_OPTS(
    table3, "Table 3: Graphene-RP / PARA-RP configuration and overhead",
    "Table 3 / Tables 8, 9 (T_RH = 1000, S 8Gb B-die profile)",
    "simulator",
    [](api::ConfigSchema &schema) {
        schema.add({"trh", api::OptionType::Int, "1000", "",
                    "base RowHammer threshold T_RH", 1.0, true});
    },
    runTable3);

void
BM_SingleCoreRun(benchmark::State &state)
{
    const auto w = workloads::workloadByName("429.mcf");
    for (auto _ : state) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 50000;
        cfg.workloads = {w};
        auto r = sim::runSystem(cfg);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SingleCoreRun)->Unit(benchmark::kMillisecond);

} // namespace
