/**
 * @file
 * Fig. 41 (Appendix D.2): weighted speedups of Graphene-RP and
 * PARA-RP on four-core homogeneous and heterogeneous (HHHH..LLLL)
 * workload mixes, normalized to Graphene and PARA.
 */

#include <algorithm>
#include <memory>

#include "api/context.h"

#include "bench_support.h"
#include "mitigation/defaults.h"

using namespace rp;
using namespace rp::literals;

namespace {

sim::SystemJob
mixJob(const std::vector<workloads::WorkloadParams> &mix, Time t_mro,
       bool use_para, std::uint32_t trh, std::uint64_t instrs)
{
    sim::SystemJob job;
    job.cfg.core.instrLimit = instrs;
    job.cfg.workloads = mix;
    job.cfg.mem.tMro = t_mro;
    job.mitigationFactory =
        mitigation::standardMitigationFactory(use_para, trh);
    return job;
}

void
runFig41(api::ExperimentContext &ctx)
{
    const std::uint64_t instrs = std::max<std::uint64_t>(
        25000, std::uint64_t(60000 * ctx.scale()));
    const auto profile = mitigation::paperTable3Profile();
    const std::vector<Time> tmros = {36_ns, 96_ns, 636_ns};

    // Homogeneous mixes (4 copies) + heterogeneous compositions.
    std::vector<std::pair<std::string,
                          std::vector<workloads::WorkloadParams>>>
        mixes;
    for (const char *name : {"429.mcf", "462.libquantum",
                             "h264_encode"}) {
        const auto w = workloads::workloadByName(name);
        mixes.emplace_back(std::string("4x ") + name,
                           std::vector<workloads::WorkloadParams>(4, w));
    }
    int mix_seed = 11;
    for (const char *comp : {"HHHH", "HHHL", "HHLL", "HLLL", "LLLL"})
        mixes.emplace_back(comp,
                           workloads::makeMix(comp,
                                              std::uint64_t(mix_seed++)));

    // Alone-IPC baselines: one engine task per (mix, core slot).
    std::vector<workloads::WorkloadParams> all_alone;
    for (const auto &[label, mix] : mixes) {
        (void)label;
        all_alone.insert(all_alone.end(), mix.begin(), mix.end());
    }
    auto alone_flat = sim::aloneIpcs(all_alone, sim::ControllerConfig{},
                                     sim::CoreConfig{128, 4, instrs},
                                     ctx.engine());

    for (bool use_para : {false, true}) {
        // One job per mix x (baseline + t_mro configs).
        std::vector<sim::SystemJob> jobs;
        for (const auto &[label, mix] : mixes) {
            (void)label;
            jobs.push_back(mixJob(mix, 0, use_para, 1000, instrs));
            for (Time t : tmros) {
                const auto a =
                    mitigation::adaptThreshold(profile, 1000, t);
                jobs.push_back(
                    mixJob(mix, t, use_para, a.adaptedTrh, instrs));
            }
        }
        auto results = sim::runSystems(jobs, ctx.engine());

        api::Dataset table(use_para
                               ? std::string("PARA-RP WS normalized "
                                             "to PARA")
                               : std::string("Graphene-RP WS "
                                             "normalized to Graphene"));
        std::vector<std::string> head = {"mix"};
        for (Time t : tmros)
            head.push_back("t_mro=" + formatTime(t));
        table.header(head);

        const std::size_t stride = 1 + tmros.size();
        std::size_t alone_off = 0;
        for (std::size_t mi = 0; mi < mixes.size(); ++mi) {
            const auto &mix = mixes[mi].second;
            const std::vector<double> alone(
                alone_flat.begin() + long(alone_off),
                alone_flat.begin() + long(alone_off + mix.size()));
            alone_off += mix.size();

            const double base_ws =
                results[mi * stride].weightedSpeedup(alone);
            std::vector<std::string> row = {mixes[mi].first};
            for (std::size_t ti = 0; ti < tmros.size(); ++ti) {
                const double ws =
                    results[mi * stride + 1 + ti].weightedSpeedup(alone);
                row.push_back(api::cell(ws / base_ws));
            }
            table.row(std::move(row));
        }
        ctx.emit(table);
        ctx.note("\n");
    }
    ctx.note("Paper shape: Graphene-RP stays within ~1-2% of "
             "Graphene (sometimes faster\ndue to fairness); "
             "PARA-RP's overhead grows with t_mro.\n\n");
}

REGISTER_EXPERIMENT(fig41, "Fig. 41: four-core weighted speedups",
                    "Fig. 41 (homogeneous + HHHH..LLLL mixes)",
                    "simulator", runFig41);

void
BM_FourCoreRun(benchmark::State &state)
{
    auto mix = workloads::makeMix("HHLL", 7);
    for (auto _ : state) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 20000;
        cfg.workloads = mix;
        auto r = sim::runSystem(cfg);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FourCoreRun)->Unit(benchmark::kMillisecond);

} // namespace
