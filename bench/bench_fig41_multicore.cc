/**
 * @file
 * Fig. 41 (Appendix D.2): weighted speedups of Graphene-RP and
 * PARA-RP on four-core homogeneous and heterogeneous (HHHH..LLLL)
 * workload mixes, normalized to Graphene and PARA.
 */

#include <memory>

#include "bench_common.h"

#include "common/table.h"

using namespace rp;
using namespace rp::literals;

namespace {

std::unique_ptr<mitigation::Mitigation>
makeMitigation(bool use_para, std::uint32_t trh)
{
    if (use_para)
        return std::make_unique<mitigation::Para>(
            mitigation::paraFor(trh));
    return std::make_unique<mitigation::Graphene>(
        mitigation::grapheneFor(trh, 64_ms, 45_ns, 32));
}

double
runMixWs(const std::vector<workloads::WorkloadParams> &mix, Time t_mro,
         bool use_para, std::uint32_t trh, std::uint64_t instrs,
         const std::vector<double> &alone)
{
    sim::SystemConfig cfg;
    cfg.core.instrLimit = instrs;
    cfg.workloads = mix;
    cfg.mem.tMro = t_mro;
    auto mit = makeMitigation(use_para, trh);
    cfg.mem.mitigation = mit.get();
    return sim::runSystem(cfg).weightedSpeedup(alone);
}

void
printFig41()
{
    rpb::printHeader("Fig. 41: four-core weighted speedups",
                     "Fig. 41 (homogeneous + HHHH..LLLL mixes)");

    const std::uint64_t instrs = std::max<std::uint64_t>(
        25000, std::uint64_t(60000 * rpb::benchScale()));
    const auto profile = mitigation::paperTable3Profile();
    const std::vector<Time> tmros = {36_ns, 96_ns, 636_ns};

    // Homogeneous mixes (4 copies) + heterogeneous compositions.
    std::vector<std::pair<std::string,
                          std::vector<workloads::WorkloadParams>>>
        mixes;
    for (const char *name : {"429.mcf", "462.libquantum",
                             "h264_encode"}) {
        const auto w = workloads::workloadByName(name);
        mixes.emplace_back(std::string("4x ") + name,
                           std::vector<workloads::WorkloadParams>(4, w));
    }
    int mix_seed = 11;
    for (const char *comp : {"HHHH", "HHHL", "HHLL", "HLLL", "LLLL"})
        mixes.emplace_back(comp,
                           workloads::makeMix(comp,
                                              std::uint64_t(mix_seed++)));

    for (bool use_para : {false, true}) {
        Table table(use_para
                        ? std::string("PARA-RP WS normalized to PARA")
                        : std::string(
                              "Graphene-RP WS normalized to Graphene"));
        std::vector<std::string> head = {"mix"};
        for (Time t : tmros)
            head.push_back("t_mro=" + formatTime(t));
        table.header(head);

        for (const auto &[label, mix] : mixes) {
            // Alone IPCs (baseline memory config).
            std::vector<double> alone;
            for (const auto &w : mix) {
                alone.push_back(sim::aloneIpc(w, sim::ControllerConfig{},
                                              sim::CoreConfig{
                                                  128, 4, instrs}));
            }
            const double base_ws =
                runMixWs(mix, 0, use_para, 1000, instrs, alone);

            std::vector<std::string> row = {label};
            for (Time t : tmros) {
                const auto a =
                    mitigation::adaptThreshold(profile, 1000, t);
                const double ws = runMixWs(mix, t, use_para,
                                           a.adaptedTrh, instrs, alone);
                row.push_back(Table::toCell(ws / base_ws));
            }
            table.row(std::move(row));
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Paper shape: Graphene-RP stays within ~1-2%% of "
                "Graphene (sometimes faster\ndue to fairness); "
                "PARA-RP's overhead grows with t_mro.\n\n");
}

void
BM_FourCoreRun(benchmark::State &state)
{
    auto mix = workloads::makeMix("HHLL", 7);
    for (auto _ : state) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 20000;
        cfg.workloads = mix;
        auto r = sim::runSystem(cfg);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FourCoreRun)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig41();
    return rpb::runBenchmarkMain(argc, argv);
}
