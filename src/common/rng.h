/**
 * @file
 * Deterministic random number generation.
 *
 * Two flavours are provided:
 *  - Rng: a sequential xoshiro256** stream for experiment-level choices;
 *  - hash-based "counter" randomness (hashU64 / HashRng) used by the
 *    device model so that per-cell properties (thresholds, retention
 *    times, dominant disturbance side, ...) are pure functions of
 *    (seed, bank, row, column, property-tag).  This keeps the fault
 *    model stateless and reproducible: experiments may query billions
 *    of cells lazily without allocating per-cell storage.
 */

#ifndef ROWPRESS_COMMON_RNG_H
#define ROWPRESS_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace rp {

/** SplitMix64 finalizer; good avalanche, used as the hash core. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine up to five 64-bit words into one well-mixed word. */
constexpr std::uint64_t
hashU64(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
        std::uint64_t d = 0, std::uint64_t e = 0)
{
    std::uint64_t h = splitmix64(a);
    h = splitmix64(h ^ b);
    h = splitmix64(h ^ c);
    h = splitmix64(h ^ d);
    h = splitmix64(h ^ e);
    return h;
}

/** Map a 64-bit hash to a double uniform in [0, 1). */
constexpr double
toUnitDouble(std::uint64_t h)
{
    return double(h >> 11) * 0x1.0p-53;
}

/**
 * Counter-based generator: derive any number of independent uniform /
 * normal / lognormal variates from a fixed key.  Cheap enough to call
 * per cell per query.
 */
class HashRng
{
  public:
    explicit constexpr HashRng(std::uint64_t key) : key_(key) {}

    /** Uniform in [0,1); @p tag selects an independent stream. */
    constexpr double
    uniform(std::uint64_t tag) const
    {
        return toUnitDouble(splitmix64(key_ ^ splitmix64(tag)));
    }

    /** Standard normal via Box-Muller (uses tags tag and tag+1). */
    double
    normal(std::uint64_t tag) const
    {
        double u1 = uniform(tag);
        double u2 = uniform(tag + 0x9e37ULL);
        // Guard against log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(6.283185307179586 * u2);
    }

    /** Lognormal with the given log-space mean and sigma. */
    double
    lognormal(std::uint64_t tag, double mu_log, double sigma_log) const
    {
        return std::exp(mu_log + sigma_log * normal(tag));
    }

  private:
    std::uint64_t key_;
};

/** xoshiro256** sequential PRNG for experiment-level randomness. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        for (auto &word : s_) {
            seed = splitmix64(seed);
            word = seed;
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0,1). */
    double uniform() { return toUnitDouble(next()); }

    /** Uniform integer in [0, n). */
    std::uint64_t
    below(std::uint64_t n)
    {
        return n ? next() % n : 0;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + std::int64_t(below(std::uint64_t(hi - lo + 1)));
    }

    /** Standard normal variate. */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(6.283185307179586 * u2);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace rp

#endif // ROWPRESS_COMMON_RNG_H
