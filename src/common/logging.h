/**
 * @file
 * Minimal gem5-style status/error reporting: inform/warn for user-facing
 * status, fatal for user errors (bad configuration), panic for internal
 * invariant violations.
 */

#ifndef ROWPRESS_COMMON_LOGGING_H
#define ROWPRESS_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rp {

namespace detail {
[[noreturn]] void fatalExit(const std::string &msg);
[[noreturn]] void panicAbort(const std::string &msg);
void emit(const char *tag, const std::string &msg);

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace detail

/** Print an informative status line. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::emit("info", detail::formatMessage(fmt, args...));
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::emit("warn", detail::formatMessage(fmt, args...));
}

/** Terminate due to a user error (bad configuration / arguments). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::fatalExit(detail::formatMessage(fmt, args...));
}

/** Terminate due to an internal bug (invariant violation). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::panicAbort(detail::formatMessage(fmt, args...));
}

} // namespace rp

#endif // ROWPRESS_COMMON_LOGGING_H
