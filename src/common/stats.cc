#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rp {

void
OnlineStats::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
OnlineStats::variance() const
{
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

namespace {

/** Median of the sorted range [first, last). */
double
medianOf(const std::vector<double> &v, std::size_t first, std::size_t last)
{
    std::size_t n = last - first;
    if (n == 0)
        return 0.0;
    std::size_t mid = first + n / 2;
    if (n % 2 == 1)
        return v[mid];
    return 0.5 * (v[mid - 1] + v[mid]);
}

} // namespace

BoxSummary
summarize(std::vector<double> values)
{
    BoxSummary s;
    s.count = values.size();
    if (values.empty())
        return s;

    std::sort(values.begin(), values.end());
    s.min = values.front();
    s.max = values.back();
    s.median = medianOf(values, 0, values.size());

    // Quartiles as medians of the lower/upper halves (paper footnote 2).
    std::size_t half = values.size() / 2;
    s.q1 = medianOf(values, 0, half);
    s.q3 = medianOf(values, values.size() % 2 ? half + 1 : half,
                    values.size());

    double sum = 0.0;
    for (double v : values)
        sum += v;
    s.mean = sum / double(values.size());
    return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0)
{
    if (!(hi > lo) || bins == 0)
        fatal("Histogram: invalid range [%g, %g) with %zu bins",
              lo, hi, bins);
}

void
Histogram::add(double x, double weight)
{
    if (std::isnan(x)) {
        // NaN fails both range guards below and would reach the
        // double -> size_t bin cast, which is undefined behavior.
        // Treat it as out-of-range mass so totals stay auditable.
        overflow_ += weight;
        return;
    }
    if (x < lo_) {
        underflow_ += weight;
        return;
    }
    if (x >= hi_) {
        overflow_ += weight;
        return;
    }
    auto idx = std::size_t((x - lo_) / (hi_ - lo_) * double(counts_.size()));
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    counts_[idx] += weight;
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * double(i) / double(counts_.size());
}

double
Histogram::binHi(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * double(i + 1) / double(counts_.size());
}

double
Histogram::total() const
{
    double t = underflow_ + overflow_;
    for (double c : counts_)
        t += c;
    return t;
}

double
Histogram::fraction(std::size_t i) const
{
    double t = total();
    return t > 0.0 ? counts_[i] / t : 0.0;
}

std::string
Histogram::render(std::size_t width) const
{
    double peak = 0.0;
    for (double c : counts_)
        peak = std::max(peak, c);
    std::string out;
    char line[256];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        auto bar = std::size_t(peak > 0.0
                                   ? counts_[i] / peak * double(width)
                                   : 0.0);
        std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8.0f |",
                      binLo(i), binHi(i), counts_[i]);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

double
probit(double p)
{
    // Peter Acklam's inverse-normal-CDF approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00, 2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double plow = 0.02425;

    if (p <= 0.0)
        return -38.0;       // ~smallest double-representable quantile
    if (p >= 1.0)
        return 38.0;

    if (p < plow) {
        double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - plow) {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                     q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    double q = p - 0.5;
    double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
}

double
normCdf(double z)
{
    return 0.5 * std::erfc(-z * 0.7071067811865476);
}

double
linearSlope(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size() || x.size() < 2)
        return 0.0;
    double n = double(x.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
    }
    double denom = n * sxx - sx * sx;
    return denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
}

} // namespace rp
