#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rp {

Table &
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
    return *this;
}

Table &
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
    return *this;
}

std::string
Table::toCell(double v)
{
    char buf[64];
    // NaN marks "no value" (e.g. the min/max of an empty series) and
    // renders as an empty cell; it must also never reach the integer
    // cast below (undefined behavior on NaN).
    if (std::isnan(v))
        return "";
    double a = v < 0 ? -v : v;
    if (v == 0.0)
        std::snprintf(buf, sizeof(buf), "0");
    else if (a >= 1e6 || a < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3g", v);
    else if (a == double(static_cast<long long>(v)))
        std::snprintf(buf, sizeof(buf), "%lld", (long long)v);
    else
        std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

std::string
Table::toCell(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
Table::toCell(unsigned long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", v);
    return buf;
}

std::string
Table::render() const
{
    // Compute column widths.
    std::vector<std::size_t> widths;
    auto account = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header_);
    for (const auto &r : rows_)
        account(r);

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i]
                                                       : std::string();
            line += cell;
            line.append(widths[i] - cell.size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        line += '\n';
        return line;
    };

    std::string out;
    if (!title_.empty())
        out += "== " + title_ + " ==\n";
    if (!header_.empty()) {
        out += renderRow(header_);
        std::size_t rule = 0;
        for (std::size_t w : widths)
            rule += w + 2;
        out.append(rule > 2 ? rule - 2 : rule, '-');
        out += '\n';
    }
    for (const auto &r : rows_)
        out += renderRow(r);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace rp
