/**
 * @file
 * Descriptive statistics used by the characterization suite: running
 * summaries, quartile/box-plot summaries (the paper reports most
 * distributions as box-and-whiskers), and fixed-bin histograms.
 */

#ifndef ROWPRESS_COMMON_STATS_H
#define ROWPRESS_COMMON_STATS_H

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace rp {

/** Streaming mean/min/max/stddev accumulator (Welford). */
class OnlineStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /**
     * NaN when empty (an empty series used to render as min = 0 /
     * max = 0, indistinguishable from real zeros; the table/CSV cell
     * formatter prints NaN as an empty cell).
     */
    double
    min() const
    {
        return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
    }
    double
    max() const
    {
        return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
    }
    double variance() const;
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Five-number summary matching the paper's box-and-whiskers convention:
 * whiskers at min/max, box at first/third quartiles, line at median.
 */
struct BoxSummary
{
    std::size_t count = 0;
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;

    double iqr() const { return q3 - q1; }
};

/** Compute a BoxSummary; @p values is copied and sorted internally. */
BoxSummary summarize(std::vector<double> values);

/** Fixed-width histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x, double weight = 1.0);

    std::size_t bins() const { return counts_.size(); }
    double binLo(std::size_t i) const;
    double binHi(std::size_t i) const;
    double count(std::size_t i) const { return counts_[i]; }
    double underflow() const { return underflow_; }
    double overflow() const { return overflow_; }
    double total() const;

    /** Fraction of total mass in bin i (0 if empty histogram). */
    double fraction(std::size_t i) const;

    /** Render as a compact ASCII bar chart. */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<double> counts_;
    double underflow_ = 0.0;
    double overflow_ = 0.0;
};

/**
 * Least-squares slope of y against x; used to report the log-log
 * ACmin-vs-tAggON trend-line slopes the paper quotes (about -1.0).
 */
double linearSlope(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Inverse standard-normal CDF (Acklam's rational approximation,
 * relative error < 1.15e-9).  Used to derive per-cell thresholds from
 * calibration quantiles.
 */
double probit(double p);

/** Standard-normal CDF (via erfc; accurate deep into both tails). */
double normCdf(double z);

} // namespace rp

#endif // ROWPRESS_COMMON_STATS_H
