#include "common/logging.h"

#include <cstdarg>
#include <vector>

#include "common/units.h"

namespace rp {
namespace detail {

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::vector<char> buf(needed > 0 ? std::size_t(needed) + 1 : 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data());
}

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
fatalExit(const std::string &msg)
{
    emit("fatal", msg);
    std::exit(1);
}

void
panicAbort(const std::string &msg)
{
    emit("panic", msg);
    std::abort();
}

} // namespace detail

std::string
formatTime(Time t)
{
    char buf[64];
    auto fmt = [&](double v, const char *unit) {
        // Trim trailing zeros for compact labels like the paper's axes.
        if (v == double(std::int64_t(v)))
            std::snprintf(buf, sizeof(buf), "%lld%s",
                          (long long)(std::int64_t)v, unit);
        else
            std::snprintf(buf, sizeof(buf), "%.4g%s", v, unit);
        return std::string(buf);
    };
    Time a = t < 0 ? -t : t;
    if (a < units::NS)
        return fmt(double(t), "ps");
    if (a < units::US)
        return fmt(toNs(t), "ns");
    if (a < units::MS)
        return fmt(toUs(t), "us");
    if (a < units::SEC)
        return fmt(toMs(t), "ms");
    return fmt(toSec(t), "s");
}

} // namespace rp
