/**
 * @file
 * Time and size units used throughout the RowPress library.
 *
 * All absolute times and durations are expressed as 64-bit signed
 * picosecond counts.  Picoseconds give exact representation of DDR4
 * clock periods (e.g., tCK = 625 ps at DDR4-3200) while still covering
 * +/- 106 days of simulated time, far beyond the 64 ms refresh windows
 * and 60 ms experiment budgets the paper works with.
 */

#ifndef ROWPRESS_COMMON_UNITS_H
#define ROWPRESS_COMMON_UNITS_H

#include <cstdint>
#include <string>

namespace rp {

/** Time duration / timestamp in picoseconds. */
using Time = std::int64_t;

namespace units {

inline constexpr Time PS = 1;
inline constexpr Time NS = 1000 * PS;
inline constexpr Time US = 1000 * NS;
inline constexpr Time MS = 1000 * US;
inline constexpr Time SEC = 1000 * MS;

} // namespace units

/** User-defined literals so timing tables read like the JEDEC spec. */
inline namespace literals {

constexpr Time operator""_ps(unsigned long long v) { return Time(v); }
constexpr Time operator""_ns(unsigned long long v) { return Time(v) * units::NS; }
constexpr Time operator""_us(unsigned long long v) { return Time(v) * units::US; }
constexpr Time operator""_ms(unsigned long long v) { return Time(v) * units::MS; }
constexpr Time operator""_s(unsigned long long v) { return Time(v) * units::SEC; }

constexpr Time operator""_ns(long double v) { return Time(v * units::NS); }
constexpr Time operator""_us(long double v) { return Time(v * units::US); }
constexpr Time operator""_ms(long double v) { return Time(v * units::MS); }
constexpr Time operator""_s(long double v) { return Time(v * units::SEC); }

} // namespace literals

/** Convert a picosecond duration to floating-point convenience units. */
constexpr double toNs(Time t) { return double(t) / double(units::NS); }
constexpr double toUs(Time t) { return double(t) / double(units::US); }
constexpr double toMs(Time t) { return double(t) / double(units::MS); }
constexpr double toSec(Time t) { return double(t) / double(units::SEC); }

/**
 * Render a duration with an auto-selected human unit, as used in the
 * paper's axis labels (e.g., "36ns", "7.8us", "30ms").
 */
std::string formatTime(Time t);

} // namespace rp

#endif // ROWPRESS_COMMON_UNITS_H
