/**
 * @file
 * ASCII table printer used by the benchmark harnesses to emit the
 * paper's tables and figure data series in aligned, readable form.
 */

#ifndef ROWPRESS_COMMON_TABLE_H
#define ROWPRESS_COMMON_TABLE_H

#include <string>
#include <vector>

namespace rp {

/** Column-aligned ASCII table with an optional title and header rule. */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set header cells; must be called before rows are added. */
    Table &header(std::vector<std::string> cells);

    /** Append a data row (ragged rows are padded with empty cells). */
    Table &row(std::vector<std::string> cells);

    /** Convenience: format doubles/ints/strings into a row. */
    template <typename... Args>
    Table &
    rowf(Args... args)
    {
        return row({toCell(args)...});
    }

    std::string render() const;

    /** Render to stdout. */
    void print() const;

    static std::string toCell(const std::string &s) { return s; }
    static std::string toCell(const char *s) { return s; }
    static std::string toCell(double v);
    static std::string toCell(long long v);
    static std::string toCell(unsigned long long v);
    static std::string toCell(int v) { return toCell((long long)v); }
    static std::string toCell(long v) { return toCell((long long)v); }
    static std::string toCell(unsigned v) { return toCell((unsigned long long)v); }
    static std::string toCell(std::size_t v) { return toCell((unsigned long long)v); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rp

#endif // ROWPRESS_COMMON_TABLE_H
