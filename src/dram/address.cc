#include "dram/address.h"

#include <cstdio>

#include "common/logging.h"

namespace rp::dram {

std::string
Address::str() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "ra%d bg%d ba%d row%d col%d",
                  rank, bankGroup, bank, row, column);
    return buf;
}

int
AddressMapper::log2i(std::int64_t v)
{
    int b = 0;
    while ((std::int64_t(1) << b) < v)
        ++b;
    return b;
}

AddressMapper::AddressMapper(Organization org, bool xor_bank_hash)
    : org_(org), xorBankHash_(xor_bank_hash)
{
    offsetBits_ = log2i(org_.blockBytes);
    columnBits_ = log2i(org_.columns);
    bgBits_ = log2i(org_.bankGroups);
    bankBits_ = log2i(org_.banksPerGroup);
    rankBits_ = log2i(org_.ranks);
    rowBits_ = log2i(org_.rows);

    if ((1 << columnBits_) != org_.columns ||
        (1 << bgBits_) != org_.bankGroups ||
        (1 << bankBits_) != org_.banksPerGroup ||
        (1 << rankBits_) != org_.ranks ||
        (1 << rowBits_) != org_.rows) {
        fatal("AddressMapper requires power-of-two organization fields");
    }
}

Address
AddressMapper::decode(std::uint64_t phys_addr) const
{
    std::uint64_t a = phys_addr >> offsetBits_;
    Address out;
    out.column = int(a & ((1u << columnBits_) - 1));
    a >>= columnBits_;
    out.bankGroup = int(a & ((1u << bgBits_) - 1));
    a >>= bgBits_;
    out.bank = int(a & ((1u << bankBits_) - 1));
    a >>= bankBits_;
    out.rank = int(a & ((1u << rankBits_) - 1));
    a >>= rankBits_;
    out.row = int(a & ((1u << rowBits_) - 1));

    if (xorBankHash_) {
        // Fold low row bits into the bank-group bits (DRAMA-style hash).
        out.bankGroup ^= out.row & ((1 << bgBits_) - 1);
    }
    return out;
}

std::uint64_t
AddressMapper::encode(const Address &a) const
{
    int bg = a.bankGroup;
    if (xorBankHash_)
        bg ^= a.row & ((1 << bgBits_) - 1);

    std::uint64_t out = std::uint64_t(a.row);
    out = (out << rankBits_) | std::uint64_t(a.rank);
    out = (out << bankBits_) | std::uint64_t(a.bank);
    out = (out << bgBits_) | std::uint64_t(bg);
    out = (out << columnBits_) | std::uint64_t(a.column);
    out <<= offsetBits_;
    return out;
}

RowScrambler::RowScrambler(Scheme scheme, int rows)
    : scheme_(scheme), rows_(rows)
{
    if (rows_ <= 0 || (rows_ & (rows_ - 1)) != 0)
        fatal("RowScrambler requires a power-of-two row count, got %d",
              rows_);
}

int
RowScrambler::logicalToPhysical(int logical_row) const
{
    switch (scheme_) {
      case Scheme::None:
        return logical_row;
      case Scheme::FoldedPair:
        // Within each aligned group of 4, swap the middle pair:
        // 0 1 2 3 -> 0 2 1 3.  Self-inverse.
        {
            int group = logical_row & ~3;
            int pos = logical_row & 3;
            static constexpr int perm[4] = {0, 2, 1, 3};
            return group | perm[pos];
        }
    }
    return logical_row;
}

int
RowScrambler::physicalToLogical(int physical_row) const
{
    // Both supported schemes are involutions.
    return logicalToPhysical(physical_row);
}

} // namespace rp::dram
