#include "dram/bank.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace rp::dram {

Time
Bank::earliest(Command cmd) const
{
    switch (cmd) {
      case Command::ACT:
        return open_ ? std::numeric_limits<Time>::max() : earliestAct_;
      case Command::PRE:
        return open_ ? earliestPre_ : earliestAct_;
      case Command::RD:
        return open_ ? earliestRead_ : std::numeric_limits<Time>::max();
      case Command::WR:
        return open_ ? earliestWrite_ : std::numeric_limits<Time>::max();
      case Command::REF:
        return open_ ? std::numeric_limits<Time>::max() : earliestAct_;
      default:
        return 0;
    }
}

void
Bank::act(int row, Time now)
{
    if (open_)
        panic("ACT to open bank (row %d open since %s)", openRow_,
              formatTime(openedAt_).c_str());
    if (now < earliestAct_)
        panic("ACT at %s violates tRP/tRFC (earliest %s)",
              formatTime(now).c_str(), formatTime(earliestAct_).c_str());

    open_ = true;
    openRow_ = row;
    openedAt_ = now;
    earliestPre_ = now + timing_->tRAS;
    earliestRead_ = now + timing_->tRCD;
    earliestWrite_ = now + timing_->tRCD;
}

Time
Bank::read(Time now)
{
    if (!open_)
        panic("RD to closed bank at %s", formatTime(now).c_str());
    if (now < earliestRead_)
        panic("RD at %s violates tRCD/tCCD (earliest %s)",
              formatTime(now).c_str(), formatTime(earliestRead_).c_str());

    earliestRead_ = now + timing_->tCCDL;
    earliestWrite_ = std::max(earliestWrite_, now + timing_->tCCDL);
    earliestPre_ = std::max(earliestPre_, now + timing_->tRTP);
    return now + timing_->tCL + timing_->tBL;
}

Time
Bank::write(Time now)
{
    if (!open_)
        panic("WR to closed bank at %s", formatTime(now).c_str());
    if (now < earliestWrite_)
        panic("WR at %s violates tRCD/tCCD (earliest %s)",
              formatTime(now).c_str(), formatTime(earliestWrite_).c_str());

    Time done = now + timing_->tCWL + timing_->tBL + timing_->tWR;
    earliestWrite_ = now + timing_->tCCDL;
    earliestRead_ = std::max(earliestRead_,
                             now + timing_->tCWL + timing_->tBL +
                                 timing_->tWTRL);
    earliestPre_ = std::max(earliestPre_, done);
    return done;
}

Bank::OpenInterval
Bank::pre(Time now)
{
    if (!open_)
        panic("PRE to closed bank at %s", formatTime(now).c_str());
    if (now < earliestPre_)
        panic("PRE at %s violates tRAS/tRTP/tWR (earliest %s)",
              formatTime(now).c_str(), formatTime(earliestPre_).c_str());

    OpenInterval interval{openRow_, openedAt_, now};
    open_ = false;
    openRow_ = -1;
    earliestAct_ = now + timing_->tRP;
    return interval;
}

void
Bank::ref(Time now)
{
    if (open_)
        panic("REF with open bank (row %d) at %s", openRow_,
              formatTime(now).c_str());
    if (now < earliestAct_)
        panic("REF at %s violates tRP (earliest %s)",
              formatTime(now).c_str(), formatTime(earliestAct_).c_str());

    earliestAct_ = now + timing_->tRFC;
}

void
Bank::reset()
{
    open_ = false;
    openRow_ = -1;
    openedAt_ = 0;
    earliestAct_ = 0;
    earliestPre_ = 0;
    earliestRead_ = 0;
    earliestWrite_ = 0;
}

} // namespace rp::dram
