/**
 * @file
 * Timing-checked DRAM bank state machine.
 *
 * The bank tracks its open/closed state, the identity of the open row,
 * and the earliest legal issue time of each command class.  It is the
 * shared substrate of both the DRAM-Bender-style test platform (which
 * *enforces* timings, since characterization programs must be legal)
 * and the performance simulator's command scheduler (which *queries*
 * earliest-issue times).
 *
 * Rank-level constraints (tRRD, tFAW, tCCD across banks, tRFC) are the
 * responsibility of the containing rank/controller model.
 */

#ifndef ROWPRESS_DRAM_BANK_H
#define ROWPRESS_DRAM_BANK_H

#include "common/units.h"
#include "dram/command.h"
#include "dram/timing.h"

namespace rp::dram {

/** One DRAM bank with command timing bookkeeping. */
class Bank
{
  public:
    /** The row-open interval closed by a PRE (fed to the fault model). */
    struct OpenInterval
    {
        int row;
        Time openAt;
        Time closeAt;

        Time onTime() const { return closeAt - openAt; }
    };

    explicit Bank(const TimingParams &timing) : timing_(&timing) {}

    bool isOpen() const { return open_; }
    int openRow() const { return openRow_; }
    Time openedAt() const { return openedAt_; }

    /** Earliest legal issue time of @p cmd in the current state. */
    Time earliest(Command cmd) const;

    /** True if @p cmd may legally issue at time @p now. */
    bool
    canIssue(Command cmd, Time now) const
    {
        return now >= earliest(cmd);
    }

    /** Open @p row at time @p now.  Fails fatally on protocol errors. */
    void act(int row, Time now);

    /** Column read at @p now; returns data-ready time. */
    Time read(Time now);

    /** Column write at @p now; returns write-recovery-complete time. */
    Time write(Time now);

    /** Close the open row; returns the open interval just ended. */
    OpenInterval pre(Time now);

    /** Apply a rank-level REF (bank must be closed). */
    void ref(Time now);

    /** Forget all timing history (used when resetting a platform). */
    void reset();

  private:
    const TimingParams *timing_;

    bool open_ = false;
    int openRow_ = -1;
    Time openedAt_ = 0;

    Time earliestAct_ = 0;
    Time earliestPre_ = 0;
    Time earliestRead_ = 0;
    Time earliestWrite_ = 0;
};

} // namespace rp::dram

#endif // ROWPRESS_DRAM_BANK_H
