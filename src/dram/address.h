/**
 * @file
 * DRAM organization, logical addresses, and physical-address mapping.
 *
 * Two distinct mapping concerns appear in the paper:
 *  - the memory controller's physical-address -> (channel, rank, bank
 *    group, bank, row, column) interleaving (reverse-engineered with
 *    DRAMA in section 6.1); and
 *  - in-DRAM row remapping: the row index the controller sends is not
 *    necessarily physically adjacent to index +/- 1 (section 3.2).
 */

#ifndef ROWPRESS_DRAM_ADDRESS_H
#define ROWPRESS_DRAM_ADDRESS_H

#include <cstdint>
#include <string>

namespace rp::dram {

/** Geometry of one DRAM channel. */
struct Organization
{
    int ranks = 1;
    int bankGroups = 4;
    int banksPerGroup = 4;
    int rows = 65536;
    int columns = 128;      ///< Cache-block-sized columns per row.
    int blockBytes = 64;    ///< Bytes per column (one cache block).

    int banksPerRank() const { return bankGroups * banksPerGroup; }
    int totalBanks() const { return ranks * banksPerRank(); }
    std::int64_t rowBytes() const
    {
        return std::int64_t(columns) * blockBytes;
    }
    std::int64_t
    capacityBytes() const
    {
        return std::int64_t(totalBanks()) * rows * rowBytes();
    }
};

/** Fully decoded DRAM coordinates of one cache-block access. */
struct Address
{
    int rank = 0;
    int bankGroup = 0;
    int bank = 0;
    int row = 0;
    int column = 0;

    /** Flat bank index within the channel. */
    int
    flatBank(const Organization &org) const
    {
        return (rank * org.bankGroups + bankGroup) * org.banksPerGroup +
               bank;
    }

    bool
    sameBank(const Address &o) const
    {
        return rank == o.rank && bankGroup == o.bankGroup && bank == o.bank;
    }

    std::string str() const;
};

/**
 * Physical-address interleaving used by the performance simulator and
 * the real-system demonstration.  Bit layout (low to high):
 * block offset | column | bank group (XORed with row bits) | bank |
 * rank | row.  The XOR fold mimics the bank-hashing that DRAMA
 * reverse-engineers on Intel parts.
 */
class AddressMapper
{
  public:
    explicit AddressMapper(Organization org, bool xor_bank_hash = true);

    const Organization &org() const { return org_; }

    /** Decode a physical byte address. */
    Address decode(std::uint64_t phys_addr) const;

    /** Inverse of decode (for constructing attack pointers). */
    std::uint64_t encode(const Address &a) const;

  private:
    static int log2i(std::int64_t v);

    Organization org_;
    bool xorBankHash_;
    int columnBits_;
    int bgBits_;
    int bankBits_;
    int rankBits_;
    int rowBits_;
    int offsetBits_;
};

/**
 * In-DRAM logical-to-physical row remapping.
 *
 * Real chips scramble row addresses inside the die; the paper
 * reverse-engineers the layout so that "adjacent" means physically
 * adjacent.  We model the common folded scheme where pairs of logical
 * rows swap within 2^k-row groups, parameterized per die, plus the
 * identity scheme.  The characterization code always works in
 * *physical* row space after calling logicalToPhysical(), exactly like
 * the paper's methodology.
 */
class RowScrambler
{
  public:
    enum class Scheme
    {
        None,       ///< logical == physical.
        FoldedPair, ///< Swap rows within aligned pairs (MSB-flip fold).
    };

    RowScrambler(Scheme scheme, int rows);

    int logicalToPhysical(int logical_row) const;
    int physicalToLogical(int physical_row) const;

    Scheme scheme() const { return scheme_; }

  private:
    Scheme scheme_;
    int rows_;
};

} // namespace rp::dram

#endif // ROWPRESS_DRAM_ADDRESS_H
