#include "dram/timing.h"

namespace rp::dram {

using namespace rp::literals;

TimingParams
ddr4_2400()
{
    TimingParams t;
    t.name = "DDR4-2400R";
    t.tCK = 833_ps;
    t.tRAS = 32_ns;
    t.tRP = 13910_ps;       // 17 cycles (13.91 ns, 17-17-17 bin).
    t.tRCD = 13910_ps;
    t.tCL = 13910_ps;
    t.tCWL = 10 * t.tCK;
    t.tBL = 4 * t.tCK;
    t.tCCDS = 4 * t.tCK;
    t.tCCDL = 6 * t.tCK;
    t.tRRDS = 4 * t.tCK;
    t.tRRDL = 6 * t.tCK;
    t.tFAW = 26 * t.tCK;
    t.tWR = 15_ns;
    t.tRTP = 8 * t.tCK;
    t.tWTRS = 3 * t.tCK;
    t.tWTRL = 9 * t.tCK;
    t.tRFC = 350_ns;
    t.tREFI = 7800_ns;
    t.tREFW = 64_ms;
    return t;
}

TimingParams
ddr4_3200()
{
    TimingParams t;
    t.name = "DDR4-3200W";
    t.tCK = 625_ps;
    t.tRAS = 32_ns;
    t.tRP = 13750_ps;       // 22 cycles.
    t.tRCD = 13750_ps;
    t.tCL = 13750_ps;
    t.tCWL = 16 * t.tCK;
    t.tBL = 4 * t.tCK;
    t.tCCDS = 4 * t.tCK;
    t.tCCDL = 8 * t.tCK;
    t.tRRDS = 4 * t.tCK;
    t.tRRDL = 8 * t.tCK;
    t.tFAW = 34 * t.tCK;
    t.tWR = 15_ns;
    t.tRTP = 12 * t.tCK;
    t.tWTRS = 4 * t.tCK;
    t.tWTRL = 12 * t.tCK;
    t.tRFC = 350_ns;
    t.tREFI = 7800_ns;
    t.tREFW = 64_ms;
    return t;
}

TimingParams
benderTiming()
{
    TimingParams t = ddr4_2400();
    t.name = "DRAM-Bender";
    // Paper footnote 3: the study uses a 36 ns minimum tAggON to cover
    // the whole 32-35 ns tRAS range, and a 1.5 ns command granularity.
    t.tCK = 1500_ps;
    t.tRAS = 36_ns;
    t.tRP = 15_ns;
    t.tRCD = 15_ns;
    return t;
}

} // namespace rp::dram
