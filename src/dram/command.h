/**
 * @file
 * DRAM command set used by both the testing platform and the
 * performance simulator.
 */

#ifndef ROWPRESS_DRAM_COMMAND_H
#define ROWPRESS_DRAM_COMMAND_H

namespace rp::dram {

/** DDR4 commands relevant to the RowPress study. */
enum class Command
{
    ACT,    ///< Activate (open) a row.
    PRE,    ///< Precharge (close) the open row of one bank.
    PREA,   ///< Precharge all banks in a rank.
    RD,     ///< Column read.
    WR,     ///< Column write.
    REF,    ///< Auto-refresh.
    NOP,    ///< Idle filler (timed delay in test programs).
};

/** Human-readable command mnemonic. */
constexpr const char *
commandName(Command c)
{
    switch (c) {
      case Command::ACT: return "ACT";
      case Command::PRE: return "PRE";
      case Command::PREA: return "PREA";
      case Command::RD: return "RD";
      case Command::WR: return "WR";
      case Command::REF: return "REF";
      case Command::NOP: return "NOP";
    }
    return "???";
}

} // namespace rp::dram

#endif // ROWPRESS_DRAM_COMMAND_H
