/**
 * @file
 * JEDEC DDR4 timing parameters (JESD79-4C) and speed-bin presets.
 *
 * All parameters are stored in picoseconds.  Only the parameters the
 * RowPress study exercises are modelled; see paper section 2.3.
 */

#ifndef ROWPRESS_DRAM_TIMING_H
#define ROWPRESS_DRAM_TIMING_H

#include <string>

#include "common/units.h"

namespace rp::dram {

/** DDR4 timing parameter set. */
struct TimingParams
{
    std::string name;   ///< Speed-bin label, e.g. "DDR4-3200W".

    Time tCK;           ///< Clock period.
    Time tRAS;          ///< Minimum row open time (ACT -> PRE).
    Time tRP;           ///< Precharge latency (PRE -> ACT).
    Time tRCD;          ///< ACT -> first RD/WR.
    Time tCL;           ///< Read CAS latency.
    Time tCWL;          ///< Write CAS latency.
    Time tBL;           ///< Burst duration (BL8).
    Time tCCDS;         ///< Column-to-column, different bank group.
    Time tCCDL;         ///< Column-to-column, same bank group.
    Time tRRDS;         ///< ACT-to-ACT, different bank group.
    Time tRRDL;         ///< ACT-to-ACT, same bank group.
    Time tFAW;          ///< Four-activate window.
    Time tWR;           ///< Write recovery.
    Time tRTP;          ///< Read-to-precharge.
    Time tWTRS;         ///< Write-to-read, different bank group.
    Time tWTRL;         ///< Write-to-read, same bank group.
    Time tRFC;          ///< Refresh cycle time.
    Time tREFI;         ///< Refresh command interval (7.8 us nominal).
    Time tREFW;         ///< Refresh window per row (64 ms nominal).

    /** ACT-to-ACT on the same bank (tRAS + tRP). */
    Time tRC() const { return tRAS + tRP; }

    /** Maximum row-open time with no postponed REFs (paper: 7.8 us). */
    Time maxRowOpenNoPostpone() const { return tREFI; }

    /** Maximum row-open time with 8 postponed REFs (paper: 70.2 us). */
    Time maxRowOpenPostponed() const { return 9 * tREFI; }
};

/** DDR4-2400 (17-17-17), matching the characterized modules' class. */
TimingParams ddr4_2400();

/** DDR4-3200W (22-22-22), the paper's Ramulator configuration. */
TimingParams ddr4_3200();

/**
 * The characterization platform's idealized timing: tRAS rounded to the
 * 36 ns minimum tAggON the paper uses (footnote 3) and a 1.5 ns command
 * bus granularity like DRAM Bender.
 */
TimingParams benderTiming();

} // namespace rp::dram

#endif // ROWPRESS_DRAM_TIMING_H
