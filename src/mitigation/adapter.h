/**
 * @file
 * The paper's primary mitigation contribution (section 7.4): a
 * methodology that adapts existing RowHammer mitigations to also
 * cover RowPress.
 *
 * Key idea: from device characterization, quantify the worst-case
 * ACmin reduction caused by keeping a row open up to t_mro, translate
 * it into an equivalently reduced RowHammer threshold
 * T'_RH = (1 - Y%) T_RH, configure the underlying mitigation for
 * T'_RH, and have the memory controller enforce the maximum row-open
 * time t_mro.
 */

#ifndef ROWPRESS_MITIGATION_ADAPTER_H
#define ROWPRESS_MITIGATION_ADAPTER_H

#include <vector>

#include "common/units.h"
#include "mitigation/mitigation.h"

namespace rp::mitigation {

/**
 * Worst-case read-disturbance profile of a device: how much ACmin
 * shrinks as the row-open time grows, relative to ACmin at tRAS.
 * Values are in (0, 1]; worst case across temperature, access
 * pattern, and data pattern (section 7.4's security requirement).
 */
struct DisturbProfile
{
    struct Point
    {
        Time tAggOn;
        double acminRatio; ///< ACmin(tAggOn) / ACmin(tRAS).
    };

    std::vector<Point> points; ///< Sorted by tAggOn.

    /** Worst (smallest) ratio over all tAggOn <= @p t_mro. */
    double worstRatioUpTo(Time t_mro) const;
};

/**
 * The characterization-derived profile of the Mfr. S 8Gb B-die the
 * paper uses to configure Graphene-RP and PARA-RP (Table 3's T'_RH
 * row: 36 ns -> 1.0, 66 -> 0.809, 96 -> 0.724, 186 -> 0.619,
 * 336 -> 0.555, 636 -> 0.419).
 */
DisturbProfile paperTable3Profile();

/** One adapted operating point. */
struct AdaptedConfig
{
    Time tMro;                  ///< Enforced maximum row-open time.
    std::uint32_t baseTrh;      ///< Original RowHammer threshold.
    std::uint32_t adaptedTrh;   ///< T'_RH = worst-ratio x T_RH.
};

/** Apply the adaptation methodology at one t_mro point. */
AdaptedConfig adaptThreshold(const DisturbProfile &profile,
                             std::uint32_t base_trh, Time t_mro);

/**
 * Security check used in unit tests: the adapted threshold must never
 * exceed the base threshold, and tightening t_mro must never loosen
 * the threshold (monotonicity).
 */
bool adaptationIsSound(const DisturbProfile &profile,
                       std::uint32_t base_trh,
                       const std::vector<Time> &t_mros);

} // namespace rp::mitigation

#endif // ROWPRESS_MITIGATION_ADAPTER_H
