#include "mitigation/para.h"

namespace rp::mitigation {

ParaConfig
paraFor(std::uint32_t adapted_trh, std::uint64_t seed)
{
    ParaConfig cfg;
    cfg.p = 34.0 / double(adapted_trh);
    cfg.seed = seed;
    return cfg;
}

} // namespace rp::mitigation
