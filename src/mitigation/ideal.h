/**
 * @file
 * Ideal (exact) per-row activation tracker.
 *
 * Keeps one precise counter per activated row and preventively
 * refreshes neighbors every time a row crosses the threshold.  Not
 * implementable in real hardware at reasonable cost (that is the
 * point of Graphene's Misra-Gries summary), but valuable here as:
 *
 *  - a security reference: any approximate tracker must refresh *no
 *    later* than the ideal tracker (Graphene's overestimate
 *    guarantee, checked in mitigation_test.cc);
 *  - a lower bound on preventive-refresh overhead for a given
 *    (adapted) threshold, demonstrating that the section 7.4
 *    methodology applies to any activation-triggered mechanism.
 */

#ifndef ROWPRESS_MITIGATION_IDEAL_H
#define ROWPRESS_MITIGATION_IDEAL_H

#include <unordered_map>

#include "mitigation/mitigation.h"

namespace rp::mitigation {

/** Exact-counter mitigation (upper-bound tracker). */
class IdealCounter : public Mitigation
{
  public:
    struct Config
    {
        std::uint32_t threshold = 333; ///< Same role as Graphene's T.
        int blastRadius = 2;
    };

    explicit IdealCounter(Config cfg) : cfg_(cfg) {}

    std::string name() const override { return "IdealCounter"; }

    void
    onActivate(int flat_bank, int row,
               std::vector<int> &victims) override
    {
        const std::uint64_t key =
            (std::uint64_t(std::uint32_t(flat_bank)) << 32) |
            std::uint32_t(row);
        if (++counts_[key] % cfg_.threshold != 0)
            return;
        for (int d = 1; d <= cfg_.blastRadius; ++d) {
            victims.push_back(row - d);
            victims.push_back(row + d);
        }
        preventive_ += std::uint64_t(2 * cfg_.blastRadius);
    }

    void onRefreshWindow() override { counts_.clear(); }

    /** Exact activation count of a row in the current window. */
    std::uint64_t
    count(int flat_bank, int row) const
    {
        const std::uint64_t key =
            (std::uint64_t(std::uint32_t(flat_bank)) << 32) |
            std::uint32_t(row);
        auto it = counts_.find(key);
        return it != counts_.end() ? it->second : 0;
    }

  private:
    Config cfg_;
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

} // namespace rp::mitigation

#endif // ROWPRESS_MITIGATION_IDEAL_H
