#include "mitigation/graphene.h"

#include <algorithm>

namespace rp::mitigation {

GrapheneConfig
grapheneFor(std::uint32_t adapted_trh, Time t_refw, Time t_rc, int banks)
{
    GrapheneConfig cfg;
    cfg.threshold = std::max<std::uint32_t>(1, adapted_trh / 3);
    const double max_acts = double(t_refw) / double(t_rc);
    cfg.tableEntries = int(max_acts / double(cfg.threshold)) + 1;
    cfg.banks = banks;
    return cfg;
}

Graphene::Graphene(GrapheneConfig cfg) : cfg_(cfg)
{
    tables_.resize(std::size_t(cfg_.banks));
    for (auto &t : tables_)
        t.resize(std::size_t(cfg_.tableEntries));
    spill_.resize(std::size_t(cfg_.banks), 0);
}

void
Graphene::onActivate(int flat_bank, int row, std::vector<int> &victims)
{
    auto &table = tables_[std::size_t(flat_bank)];

    // Space-saving summary (count-estimate variant of Misra-Gries,
    // same overestimate guarantee Graphene relies on).
    Entry *hit = nullptr;
    Entry *min_entry = &table.front();
    for (auto &e : table) {
        if (e.row == row) {
            hit = &e;
            break;
        }
        if (e.count < min_entry->count)
            min_entry = &e;
    }
    if (hit) {
        ++hit->count;
    } else {
        hit = min_entry;
        hit->row = row;
        ++hit->count;
        // Re-anchor the service point so a replaced entry does not
        // trigger immediately on inherited count.
        hit->lastServed = (hit->count / cfg_.threshold) * cfg_.threshold;
    }

    if (hit->count >= hit->lastServed + cfg_.threshold) {
        hit->lastServed = hit->count;
        for (int d = 1; d <= cfg_.blastRadius; ++d) {
            victims.push_back(row - d);
            victims.push_back(row + d);
        }
        preventive_ += std::uint64_t(2 * cfg_.blastRadius);
    }
}

void
Graphene::onRefreshWindow()
{
    for (auto &table : tables_) {
        for (auto &e : table)
            e = Entry{};
    }
    std::fill(spill_.begin(), spill_.end(), 0u);
}

} // namespace rp::mitigation
