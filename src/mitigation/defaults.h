/**
 * @file
 * The paper's evaluation constants for the Graphene / PARA
 * configurations (section 7, Table 3): one named source of truth
 * shared by the experiment API layer, the simulator harnesses, and
 * the examples, instead of `64_ms / 45_ns / 32` literals scattered
 * through every caller.
 */

#ifndef ROWPRESS_MITIGATION_DEFAULTS_H
#define ROWPRESS_MITIGATION_DEFAULTS_H

#include <functional>
#include <memory>

#include "common/units.h"
#include "mitigation/graphene.h"
#include "mitigation/mitigation.h"
#include "mitigation/para.h"

namespace rp::mitigation {

/** Graphene counter reset window (tREFW, paper Table 3). */
inline constexpr Time kGrapheneResetWindow = 64 * units::MS;

/**
 * Worst-case activation interval (tRC = 45 ns) used to size the
 * Misra-Gries table for the activations one reset window can hold.
 */
inline constexpr Time kGrapheneActivationInterval = 45 * units::NS;

/** Counter-table banks of the evaluated Graphene configuration. */
inline constexpr int kGrapheneBanks = 32;

/** grapheneFor() with the paper's window/interval/bank constants. */
GrapheneConfig standardGrapheneFor(std::uint32_t adapted_trh);

/**
 * Build a fresh standard-configuration mechanism at threshold
 * @p trh: PARA (paraFor) or Graphene (standardGrapheneFor).
 */
std::unique_ptr<Mitigation> makeStandardMitigation(bool use_para,
                                                   std::uint32_t trh);

/**
 * SystemJob factory form of makeStandardMitigation — each invocation
 * builds a private instance, so concurrent simulator jobs never share
 * mitigation state.
 */
std::function<std::unique_ptr<Mitigation>()>
standardMitigationFactory(bool use_para, std::uint32_t trh);

} // namespace rp::mitigation

#endif // ROWPRESS_MITIGATION_DEFAULTS_H
