#include "mitigation/defaults.h"

namespace rp::mitigation {

GrapheneConfig
standardGrapheneFor(std::uint32_t adapted_trh)
{
    return grapheneFor(adapted_trh, kGrapheneResetWindow,
                       kGrapheneActivationInterval, kGrapheneBanks);
}

std::unique_ptr<Mitigation>
makeStandardMitigation(bool use_para, std::uint32_t trh)
{
    if (use_para)
        return std::make_unique<Para>(paraFor(trh));
    return std::make_unique<Graphene>(standardGrapheneFor(trh));
}

std::function<std::unique_ptr<Mitigation>()>
standardMitigationFactory(bool use_para, std::uint32_t trh)
{
    return [use_para, trh] {
        return makeStandardMitigation(use_para, trh);
    };
}

} // namespace rp::mitigation
