/**
 * @file
 * Graphene (Park et al., MICRO 2020): exact activation-frequency
 * tracking with Misra-Gries counter tables, low performance overhead.
 *
 * A per-bank table of counters tracks the most-activated rows within
 * each reset window.  When a row's estimated count crosses a multiple
 * of the threshold, its neighbors receive a preventive refresh.
 */

#ifndef ROWPRESS_MITIGATION_GRAPHENE_H
#define ROWPRESS_MITIGATION_GRAPHENE_H

#include <unordered_map>

#include "common/units.h"
#include "mitigation/mitigation.h"

namespace rp::mitigation {

/** Graphene configuration. */
struct GrapheneConfig
{
    /** Preventive-refresh threshold (paper Table 3's "T" row). */
    std::uint32_t threshold = 333;
    /** Counter-table entries per bank. */
    int tableEntries = 4096;
    int blastRadius = 2;    ///< Refresh +/- this many neighbors.
    int banks = 32;
};

/**
 * Derive the Graphene configuration for a (possibly RowPress-adapted)
 * RowHammer threshold, following the paper's methodology: the
 * preventive-refresh threshold is T'_RH / 3 (blast radius 2 double
 * counting) and the table is sized for the worst-case number of
 * activations per reset window.
 */
GrapheneConfig grapheneFor(std::uint32_t adapted_trh, Time t_refw,
                           Time t_rc, int banks);

/** The Graphene mechanism. */
class Graphene : public Mitigation
{
  public:
    explicit Graphene(GrapheneConfig cfg);

    std::string name() const override { return "Graphene"; }
    void onActivate(int flat_bank, int row,
                    std::vector<int> &victims) override;
    void onRefreshWindow() override;

  private:
    struct Entry
    {
        int row = -1;
        std::uint32_t count = 0;
        std::uint32_t lastServed = 0;
    };

    GrapheneConfig cfg_;
    std::vector<std::vector<Entry>> tables_; ///< Per bank.
    std::vector<std::uint32_t> spill_;       ///< Per-bank spill counter.
};

} // namespace rp::mitigation

#endif // ROWPRESS_MITIGATION_GRAPHENE_H
