#include "mitigation/adapter.h"

#include <algorithm>
#include <cmath>

namespace rp::mitigation {

using namespace rp::literals;

double
DisturbProfile::worstRatioUpTo(Time t_mro) const
{
    double worst = 1.0;
    for (const auto &p : points) {
        if (p.tAggOn <= t_mro)
            worst = std::min(worst, p.acminRatio);
    }
    return worst;
}

DisturbProfile
paperTable3Profile()
{
    DisturbProfile profile;
    profile.points = {
        {36_ns, 1.000}, {66_ns, 0.809}, {96_ns, 0.724},
        {186_ns, 0.619}, {336_ns, 0.555}, {636_ns, 0.419},
    };
    return profile;
}

AdaptedConfig
adaptThreshold(const DisturbProfile &profile, std::uint32_t base_trh,
               Time t_mro)
{
    AdaptedConfig cfg;
    cfg.tMro = t_mro;
    cfg.baseTrh = base_trh;
    const double ratio = profile.worstRatioUpTo(t_mro);
    cfg.adaptedTrh = std::uint32_t(
        std::max(1.0, std::floor(double(base_trh) * ratio)));
    return cfg;
}

bool
adaptationIsSound(const DisturbProfile &profile, std::uint32_t base_trh,
                  const std::vector<Time> &t_mros)
{
    // A profile point above 1.0 claims longer row-open time *reduces*
    // read disturbance - not a safe basis for loosening a threshold.
    for (const auto &p : profile.points) {
        if (p.acminRatio > 1.0 + 1e-9 || p.acminRatio <= 0.0)
            return false;
    }

    std::uint32_t prev = base_trh + 1;
    std::vector<Time> sorted = t_mros;
    std::sort(sorted.begin(), sorted.end());
    for (Time t : sorted) {
        const auto cfg = adaptThreshold(profile, base_trh, t);
        if (cfg.adaptedTrh > base_trh)
            return false;
        if (cfg.adaptedTrh > prev)
            return false; // larger t_mro must not raise the threshold
        prev = cfg.adaptedTrh;
    }
    return true;
}

} // namespace rp::mitigation
