/**
 * @file
 * Read-disturbance mitigation interface used by the performance
 * simulator's memory controller (paper section 7).
 *
 * A mitigation observes every row activation and may request
 * *preventive refreshes* of potential victim rows; the controller
 * models their cost (the bank is busy for one row cycle per refreshed
 * row).
 */

#ifndef ROWPRESS_MITIGATION_MITIGATION_H
#define ROWPRESS_MITIGATION_MITIGATION_H

#include <cstdint>
#include <string>
#include <vector>

namespace rp::mitigation {

/** Base class for activation-triggered mitigation mechanisms. */
class Mitigation
{
  public:
    virtual ~Mitigation() = default;

    virtual std::string name() const = 0;

    /**
     * Observe an activation of @p row in @p flat_bank; append any
     * victim rows that must be preventively refreshed to @p victims.
     */
    virtual void onActivate(int flat_bank, int row,
                            std::vector<int> &victims) = 0;

    /** Called at every refresh-window (tREFW) boundary. */
    virtual void onRefreshWindow() {}

    /** Victim-row refreshes requested so far. */
    std::uint64_t preventiveRefreshes() const { return preventive_; }

  protected:
    std::uint64_t preventive_ = 0;
};

} // namespace rp::mitigation

#endif // ROWPRESS_MITIGATION_MITIGATION_H
