/**
 * @file
 * PARA (Kim et al., ISCA 2014): probabilistic adjacent row activation.
 * On every activation, with probability p, one neighbor is refreshed.
 * Stateless and cheap in area; overhead grows as the (adapted)
 * RowHammer threshold shrinks.
 */

#ifndef ROWPRESS_MITIGATION_PARA_H
#define ROWPRESS_MITIGATION_PARA_H

#include "common/rng.h"
#include "mitigation/mitigation.h"

namespace rp::mitigation {

/** PARA configuration. */
struct ParaConfig
{
    double p = 0.034;       ///< Per-activation refresh probability.
    std::uint64_t seed = 1;
};

/**
 * Derive PARA's p for a (possibly RowPress-adapted) threshold,
 * matching the paper's Table 3 configurations (p ~= 34 / T'_RH).
 */
ParaConfig paraFor(std::uint32_t adapted_trh, std::uint64_t seed = 1);

/** The PARA mechanism. */
class Para : public Mitigation
{
  public:
    explicit Para(ParaConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

    std::string name() const override { return "PARA"; }

    void
    onActivate(int flat_bank, int row,
               std::vector<int> &victims) override
    {
        (void)flat_bank;
        if (rng_.uniform() < cfg_.p) {
            victims.push_back(rng_.uniform() < 0.5 ? row - 1 : row + 1);
            ++preventive_;
        }
    }

  private:
    ParaConfig cfg_;
    Rng rng_;
};

} // namespace rp::mitigation

#endif // ROWPRESS_MITIGATION_PARA_H
