#include "chr/ecc.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace rp::chr {

namespace {

/**
 * Group flips into 64-bit words keyed by (victim row, word index).
 *
 * The row takes the high 32 bits and the word index the low 32, so
 * keys are collision-free for any in-range bit (the old 20-bit word
 * field silently collided once bit/64 reached 2^20, i.e. rows wider
 * than 64 Mib).  Bit positions within a word are deduplicated:
 * repeated observations of the same (row, bit) — e.g. one location
 * scanned across several attempts — describe one erroneous cell, not
 * several, and must not inflate the per-word flip count the ECC
 * outcome classifiers key on.
 */
std::map<std::uint64_t, std::vector<int>>
groupByWord(const std::vector<VictimFlip> &flips)
{
    std::map<std::uint64_t, std::vector<int>> words;
    for (const auto &f : flips) {
        if (f.flip.bit < 0)
            fatal("groupByWord: negative bit index %d (row %d)",
                  f.flip.bit, f.victimRow);
        const std::uint64_t word_key =
            (std::uint64_t(std::uint32_t(f.victimRow)) << 32) |
            std::uint32_t(f.flip.bit / 64);
        words[word_key].push_back(f.flip.bit % 64);
    }
    for (auto &[key, bits] : words) {
        (void)key;
        std::sort(bits.begin(), bits.end());
        bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
    }
    return words;
}

} // namespace

void
WordErrorStats::merge(const WordErrorStats &o)
{
    words1to2 += o.words1to2;
    words3to8 += o.words3to8;
    wordsOver8 += o.wordsOver8;
    maxFlipsPerWord = std::max(maxFlipsPerWord, o.maxFlipsPerWord);
    totalErrorWords += o.totalErrorWords;
}

WordErrorStats
analyzeWordErrors(const std::vector<VictimFlip> &flips)
{
    WordErrorStats stats;
    for (const auto &[key, bits] : groupByWord(flips)) {
        (void)key;
        const std::uint64_t n = bits.size();
        ++stats.totalErrorWords;
        if (n <= 2)
            ++stats.words1to2;
        else if (n <= 8)
            ++stats.words3to8;
        else
            ++stats.wordsOver8;
        stats.maxFlipsPerWord = std::max(stats.maxFlipsPerWord, n);
    }
    return stats;
}

EccOutcome
evaluateSecded(const std::vector<VictimFlip> &flips)
{
    EccOutcome out;
    for (const auto &[key, bits] : groupByWord(flips)) {
        (void)key;
        if (bits.size() == 1)
            ++out.corrected;
        else if (bits.size() == 2)
            ++out.detected;
        else
            ++out.silent;
    }
    return out;
}

EccOutcome
evaluateChipkill(const std::vector<VictimFlip> &flips, int symbol_bits)
{
    EccOutcome out;
    for (const auto &[key, bits] : groupByWord(flips)) {
        (void)key;
        std::set<int> symbols;
        for (int b : bits)
            symbols.insert(b / symbol_bits);
        if (symbols.size() == 1)
            ++out.corrected;
        else if (symbols.size() == 2)
            ++out.detected;
        else
            ++out.silent;
    }
    return out;
}

} // namespace rp::chr
