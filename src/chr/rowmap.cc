#include "chr/rowmap.h"

#include <algorithm>

#include "chr/patterns.h"

namespace rp::chr {

using namespace rp::literals;

NeighborProbe
probeNeighbors(bender::TestPlatform &platform,
               const dram::RowScrambler &scrambler, int bank,
               int logical_row, int window)
{
    NeighborProbe probe;
    probe.logicalAggressor = logical_row;

    // Initialize the logical window with the checkerboard victim
    // pattern and the aggressor with the aggressor pattern - going
    // through the scrambler, as external software would.
    const int phys_aggr = scrambler.logicalToPhysical(logical_row);
    for (int d = -window; d <= window; ++d) {
        const int logical = logical_row + d;
        if (logical < 0 || logical >= platform.org().rows)
            continue;
        const int phys = scrambler.logicalToPhysical(logical);
        platform.fillRow(bank, phys, d == 0 ? std::uint8_t(0xAA)
                                            : std::uint8_t(0x55));
    }

    // Press the aggressor as hard as the budget allows at a large
    // tAggON so that distance-1 physical neighbors flip reliably.
    RowLayout layout;
    layout.bank = bank;
    layout.aggressors = {phys_aggr};
    const std::uint64_t acts = maxActsWithinBudget(
        7800_ns, platform.timing(), platform.cmdGap(), 60_ms);
    auto program =
        makePressProgram(layout, 7800_ns, acts, platform.timing());
    platform.run(program);

    for (int d = -window; d <= window; ++d) {
        if (d == 0)
            continue;
        const int logical = logical_row + d;
        if (logical < 0 || logical >= platform.org().rows)
            continue;
        const int phys = scrambler.logicalToPhysical(logical);
        if (!platform.checkRow(bank, phys).empty())
            probe.logicalNeighbors.push_back(logical);
    }
    std::sort(probe.logicalNeighbors.begin(),
              probe.logicalNeighbors.end());
    return probe;
}

dram::RowScrambler::Scheme
inferScheme(bender::TestPlatform &platform,
            const dram::RowScrambler &truth, int bank,
            const std::vector<int> &probe_rows)
{
    using Scheme = dram::RowScrambler::Scheme;

    // Collect observations through the true (unknown-to-us) mapping.
    std::vector<NeighborProbe> probes;
    for (int row : probe_rows)
        probes.push_back(probeNeighbors(platform, truth, bank, row));

    // A candidate scheme explains the observations if, under it, every
    // observed flipping row is at physical distance 1 from the
    // aggressor.  (Distance-2+ flips are rare at ACmin-level doses but
    // tolerated as long as most neighbors are adjacent.)
    auto explains = [&](Scheme candidate) {
        dram::RowScrambler s(candidate, platform.org().rows);
        int adjacent = 0, total = 0;
        for (const auto &p : probes) {
            const int pa = s.logicalToPhysical(p.logicalAggressor);
            for (int n : p.logicalNeighbors) {
                ++total;
                if (std::abs(s.logicalToPhysical(n) - pa) == 1)
                    ++adjacent;
            }
        }
        return total > 0 && adjacent * 4 >= total * 3;
    };

    for (Scheme candidate : {Scheme::None, Scheme::FoldedPair}) {
        if (explains(candidate))
            return candidate;
    }
    return Scheme::None;
}

} // namespace rp::chr
