/**
 * @file
 * AttemptOracle: answers ACmin / tAggONmin bisection probes without
 * re-executing the attempt program.
 *
 * For a fixed (layout, pattern, tAggON), dose accumulation is linear
 * in the activation count: every steady-state loop iteration deposits
 * the same per-victim dose increments and takes the same time.  The
 * platform's loop fast-forward already exploits this linearity one
 * level down; the oracle hoists it to the attempt level.  It runs the
 * program machinery ONCE per (tAggON, attempt-history class) — on a
 * private scratch platform, iteration by iteration, with the fault
 * model's dose-op recorder attached — to extract
 *
 *   - the warm-up (first-iteration) dose ops and duration,
 *   - the steady-state per-iteration dose ops and duration,
 *   - the fast-forward final-iteration ops (whose tAggOFF weight
 *     differs: the extrapolation jump leaves only the command gap
 *     between the virtual last PRE and the final ACT), and
 *   - the odd-count tail ops (double-sided layouts),
 *
 * and then answers any probe "does N activations flip anything?" by
 * replaying those recorded increments through exactly the arithmetic
 * the platform would have used (including the `cur += (cur - prev) *
 * extra` extrapolation and the integer clock jump), evaluating the
 * victim-row candidates directly at the resulting dose and virtual
 * timestamp.  Results — ACmin, tAggONmin, and the exact flip sets —
 * are bit-identical to executing every attempt on a fresh platform.
 *
 * Contract: the oracle models the attempt sequence `runPressAttempt`
 * would execute on a *pristine* platform (clock at zero, no prior
 * fills or commands) — which is exactly what the engine-parallel
 * search drivers give each location task.  The module platform passed
 * in is only used for its configuration and cell model; it is never
 * mutated.
 */

#ifndef ROWPRESS_CHR_ORACLE_H
#define ROWPRESS_CHR_ORACLE_H

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "chr/acmin.h"

namespace rp::chr {

class AttemptOracle
{
  public:
    /**
     * @p module supplies the platform configuration, cell model,
     * temperature, and evaluation-noise level; it is not mutated.
     */
    AttemptOracle(bender::TestPlatform &module, const RowLayout &layout,
                  DataPattern pattern);
    ~AttemptOracle();

    /**
     * Replicate `runPressAttempt(platform, layout, pattern, t_agg_on,
     * total_acts)` as the next attempt of this oracle's history,
     * appending the observed flips to @p out (cleared first).
     */
    void pressAttempt(Time t_agg_on, std::uint64_t total_acts,
                      AttemptResult &out);

  private:
    /** Ordered dose increments of one victim in one trace segment. */
    using Ops = std::vector<std::pair<int, double>>; // (comp, value)

    struct VictimTrace
    {
        Ops iter1;      ///< Warm-up iteration (history-dependent).
        Ops iter1Half;  ///< DS: first aggressor segment of iter 1.
        Ops steady;     ///< Any iteration past the first.
        Ops finalIter;  ///< Concrete iteration after the FF jump.
        Ops tail;       ///< DS odd-count tail after >= 1 iterations.
    };

    struct Profile
    {
        Time dHalf1 = 0;   ///< DS: duration of iteration 1's first half.
        Time d1 = 0;       ///< Iteration-1 duration (incl. prologue).
        Time durS = 0;     ///< Steady-state iteration duration.
        Time durFinal = 0; ///< Post-jump final iteration duration.
        Time durTail = 0;  ///< DS tail duration after >= 1 iterations.
        std::vector<VictimTrace> victims; ///< Indexed like layout.victims.
    };

    /**
     * Attempt-history class: the start state of the next attempt.
     * Fresh platform (cls 0) or "after an attempt" (cls 1); for
     * double-sided layouts the previous attempt's parity and tAggON
     * determine the aggressors' rest times entering the warm-up
     * iteration, so they are part of the class.
     */
    using StateKey = std::tuple<int, int, Time>; // (cls, oddPrev, tOnPrev)
    using ProfileKey = std::tuple<Time, int, int, Time>;

    const Profile &profileFor(Time t_agg_on);
    Profile measureProfile(Time t_agg_on);
    void positionScratch(Time t_agg_on);
    void splitOps(const std::vector<device::FaultModel::DoseOp> &ops,
                  Ops VictimTrace::*segment, Profile &prof) const;

    bender::TestPlatform &module_;
    RowLayout layout_;
    DataPattern pattern_;
    bool doubleSided_;

    std::unique_ptr<bender::TestPlatform> scratch_;
    StateKey scratchState_{0, 0, 0};

    StateKey state_{0, 0, 0}; ///< Virtual platform history class.
    Time vnow_ = 0;           ///< Virtual command clock.

    std::map<ProfileKey, Profile> profiles_;
    std::map<std::uint64_t, std::size_t> victimIndex_; ///< dose key -> idx.
    std::vector<std::pair<int, int>> actRows_;

    // Reusable per-probe buffers (no per-attempt allocation).
    std::vector<std::array<double, 4>> acc_;
    std::vector<std::array<double, 4>> prevAcc_;
    std::vector<device::FlipRecord> flipBuf_;
};

} // namespace rp::chr

#endif // ROWPRESS_CHR_ORACLE_H
