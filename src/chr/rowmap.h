/**
 * @file
 * In-DRAM row-mapping reverse engineering (paper section 3.2).
 *
 * DRAM vendors remap externally visible row addresses inside the die,
 * so "row N +/- 1" is not necessarily physically adjacent.  The paper
 * follows prior work's methodology: hammer/press a candidate
 * aggressor and observe *which* logical rows flip - the flipping rows
 * are the physical neighbors.  This module implements that recovery
 * loop against the test platform and returns the inferred
 * logical-adjacency table, which characterization code then uses to
 * address physically adjacent rows.
 */

#ifndef ROWPRESS_CHR_ROWMAP_H
#define ROWPRESS_CHR_ROWMAP_H

#include <vector>

#include "bender/platform.h"
#include "dram/address.h"

namespace rp::chr {

/** Result of probing one aggressor row. */
struct NeighborProbe
{
    int logicalAggressor = 0;
    /** Logical rows that flipped (physical distance-1 neighbors). */
    std::vector<int> logicalNeighbors;
};

/**
 * Recover the physical neighbors of @p logical_row by pressing it hard
 * (maximum activations at a large tAggON, high temperature) and
 * scanning the surrounding logical window for bitflips.
 *
 * @param scrambler the in-DRAM mapping under recovery (the platform's
 *        chip operates in physical row space; this function drives it
 *        through the scrambler exactly as external software would).
 * @param window logical rows scanned on each side of the aggressor.
 */
NeighborProbe probeNeighbors(bender::TestPlatform &platform,
                             const dram::RowScrambler &scrambler,
                             int bank, int logical_row, int window = 8);

/**
 * Classify the module's mapping scheme from a set of probes: returns
 * the candidate scheme under which every probed neighbor pair is
 * physically adjacent, or Scheme::None if the identity mapping
 * already explains the observations.
 */
dram::RowScrambler::Scheme
inferScheme(bender::TestPlatform &platform,
            const dram::RowScrambler &truth, int bank,
            const std::vector<int> &probe_rows);

} // namespace rp::chr

#endif // ROWPRESS_CHR_ROWMAP_H
