/**
 * @file
 * ACmin and tAggONmin search algorithms (paper section 4.1).
 *
 * ACmin is found with the paper's modified bisection method: start
 * from the maximum activation count that fits the 60 ms experiment
 * budget (strictly inside the 64 ms refresh window); if that produces
 * no bitflip the location is recorded as not flippable at this tAggON.
 * Otherwise bisect to 1 % relative accuracy.  Each search is repeated
 * (default five times, like the paper) and the minimum is reported.
 */

#ifndef ROWPRESS_CHR_ACMIN_H
#define ROWPRESS_CHR_ACMIN_H

#include <cstdint>
#include <vector>

#include "chr/patterns.h"
#include "device/cell_model.h"

namespace rp::chr {

/** One bitflip observed in a victim row. */
struct VictimFlip
{
    int victimRow;
    device::FlipRecord flip;

    /**
     * Stable identity for overlap analyses: row in the high 32 bits,
     * bit in the low 32 — collision-free for any in-range bit (a
     * 20-bit field would alias bits >= 2^20 into neighboring rows)
     * and ordered exactly like (victimRow, bit).
     */
    std::uint64_t
    id() const
    {
        return (std::uint64_t(std::uint32_t(victimRow)) << 32) |
               std::uint32_t(flip.bit);
    }
};

/** Outcome of running one access-pattern attempt. */
struct AttemptResult
{
    std::vector<VictimFlip> flips;
    Time elapsed = 0;

    bool any() const { return !flips.empty(); }
};

/**
 * Initialize the layout's rows per @p pattern, run the press pattern
 * with @p total_acts activations of @p t_agg_on each, and inspect all
 * victim rows.
 */
AttemptResult runPressAttempt(bender::TestPlatform &platform,
                              const RowLayout &layout, DataPattern pattern,
                              Time t_agg_on, std::uint64_t total_acts,
                              bool full_scan = false);

/**
 * runPressAttempt variant that full-scans only @p victims (a
 * contiguous slice of the layout's victim list): the unit of work of
 * the BER drivers' (location, victim-chunk) engine tasks.  Scanning a
 * subset does not change any row's result — each row's dose is
 * evaluated independently — so concatenating the slices in victim
 * order reproduces the unchunked attempt bit-for-bit.
 */
AttemptResult runPressAttemptOn(bender::TestPlatform &platform,
                                const RowLayout &layout,
                                DataPattern pattern, Time t_agg_on,
                                std::uint64_t total_acts,
                                const std::vector<int> &victims);

/** Same, for the RowPress-ONOFF pattern (section 5.4). */
AttemptResult runOnOffAttempt(bender::TestPlatform &platform,
                              const RowLayout &layout, DataPattern pattern,
                              Time t_agg_on, Time t_agg_off,
                              std::uint64_t total_acts,
                              bool full_scan = false);

/** Search configuration (paper defaults). */
struct SearchConfig
{
    Time budget = 60 * units::MS;
    double accuracy = 0.01;
    int repeats = 5;

    /**
     * Answer bisection probes through the analytic AttemptOracle
     * instead of replaying the attempt program on the platform.
     * Bit-identical to program replay on a pristine platform — the
     * engine-parallel drivers (which give every location task a fresh
     * platform) enable it; the serial Module& drivers, whose platform
     * carries history across calls, keep the replay default.  The
     * differential tests compare the two paths directly.
     */
    bool useOracle = false;
};

/** Result of an ACmin search at one (location, tAggON) point. */
struct AcminResult
{
    bool flipped = false;
    std::uint64_t acmin = 0;
    /** Flips observed at the reported ACmin. */
    std::vector<VictimFlip> flips;
};

/** Bisection ACmin search at fixed @p t_agg_on. */
AcminResult findAcmin(bender::TestPlatform &platform,
                      const RowLayout &layout, DataPattern pattern,
                      Time t_agg_on, const SearchConfig &cfg = {});

/** Result of a tAggONmin search at fixed activation count. */
struct TAggOnMinResult
{
    bool flipped = false;
    Time tAggOnMin = 0;
};

/** Bisection tAggONmin search at fixed @p total_acts (Figs. 9, 15). */
TAggOnMinResult findTAggOnMin(bender::TestPlatform &platform,
                              const RowLayout &layout, DataPattern pattern,
                              std::uint64_t total_acts,
                              const SearchConfig &cfg = {});

} // namespace rp::chr

#endif // ROWPRESS_CHR_ACMIN_H
