#include "chr/acmin.h"

#include <algorithm>

#include "common/logging.h"

namespace rp::chr {

namespace {

AttemptResult
collectVictims(bender::TestPlatform &platform, const RowLayout &layout,
               bool full_scan, Time elapsed)
{
    AttemptResult res;
    res.elapsed = elapsed;
    for (int victim : layout.victims) {
        auto flips = platform.checkRow(layout.bank, victim, full_scan);
        for (const auto &f : flips)
            res.flips.push_back({victim, f});
    }
    return res;
}

} // namespace

AttemptResult
runPressAttempt(bender::TestPlatform &platform, const RowLayout &layout,
                DataPattern pattern, Time t_agg_on,
                std::uint64_t total_acts, bool full_scan)
{
    initLayout(platform, layout, pattern);
    auto program = makePressProgram(layout, t_agg_on, total_acts,
                                    platform.timing());
    const Time elapsed = platform.run(program);
    return collectVictims(platform, layout, full_scan, elapsed);
}

AttemptResult
runOnOffAttempt(bender::TestPlatform &platform, const RowLayout &layout,
                DataPattern pattern, Time t_agg_on, Time t_agg_off,
                std::uint64_t total_acts, bool full_scan)
{
    initLayout(platform, layout, pattern);
    auto program = makeOnOffProgram(layout, t_agg_on, t_agg_off,
                                    total_acts, platform.timing());
    const Time elapsed = platform.run(program);
    return collectVictims(platform, layout, full_scan, elapsed);
}

AcminResult
findAcmin(bender::TestPlatform &platform, const RowLayout &layout,
          DataPattern pattern, Time t_agg_on, const SearchConfig &cfg)
{
    const std::uint64_t max_acts = maxActsWithinBudget(
        t_agg_on, platform.timing(), platform.cmdGap(), cfg.budget);
    if (max_acts == 0)
        return {};

    AcminResult best;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
        auto probe = runPressAttempt(platform, layout, pattern, t_agg_on,
                                     max_acts);
        if (!probe.any())
            continue;

        std::uint64_t lo = 0;
        std::uint64_t hi = max_acts;
        std::vector<VictimFlip> hi_flips = std::move(probe.flips);
        while (hi - lo > std::max<std::uint64_t>(
                             1, std::uint64_t(cfg.accuracy * double(hi)))) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            auto attempt = runPressAttempt(platform, layout, pattern,
                                           t_agg_on, mid);
            if (attempt.any()) {
                hi = mid;
                hi_flips = std::move(attempt.flips);
            } else {
                lo = mid;
            }
        }
        if (!best.flipped || hi < best.acmin) {
            best.flipped = true;
            best.acmin = hi;
            best.flips = std::move(hi_flips);
        }
    }
    return best;
}

TAggOnMinResult
findTAggOnMin(bender::TestPlatform &platform, const RowLayout &layout,
              DataPattern pattern, std::uint64_t total_acts,
              const SearchConfig &cfg)
{
    const auto &timing = platform.timing();
    // The largest per-activation on-time that keeps the whole program
    // within the budget.
    const Time overhead =
        pressActPeriod(0, timing, platform.cmdGap());
    const Time max_on = cfg.budget / Time(total_acts) - overhead;
    if (max_on <= timing.tRAS)
        return {};

    TAggOnMinResult best;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
        auto probe = runPressAttempt(platform, layout, pattern, max_on,
                                     total_acts);
        if (!probe.any())
            continue;

        Time lo = timing.tRAS;
        Time hi = max_on;
        while (hi - lo > std::max<Time>(Time(units::NS),
                                        Time(cfg.accuracy * double(hi)))) {
            const Time mid = lo + (hi - lo) / 2;
            auto attempt = runPressAttempt(platform, layout, pattern, mid,
                                           total_acts);
            if (attempt.any())
                hi = mid;
            else
                lo = mid;
        }
        if (!best.flipped || hi < best.tAggOnMin) {
            best.flipped = true;
            best.tAggOnMin = hi;
        }
    }
    return best;
}

} // namespace rp::chr
