#include "chr/acmin.h"

#include <algorithm>
#include <functional>

#include "chr/oracle.h"
#include "common/logging.h"

namespace rp::chr {

namespace {

void
collectRows(bender::TestPlatform &platform, int bank,
            const std::vector<int> &rows, bool full_scan, Time elapsed,
            AttemptResult &out)
{
    out.flips.clear();
    out.elapsed = elapsed;
    thread_local std::vector<device::FlipRecord> row_flips;
    for (int row : rows) {
        row_flips.clear();
        platform.checkRowInto(bank, row, full_scan, row_flips);
        for (const auto &f : row_flips)
            out.flips.push_back({row, f});
    }
}

void
collectVictims(bender::TestPlatform &platform, const RowLayout &layout,
               bool full_scan, Time elapsed, AttemptResult &out)
{
    collectRows(platform, layout.bank, layout.victims, full_scan,
                elapsed, out);
}

/**
 * One probe of a search: fill the dose/flip state for (t_agg_on,
 * total_acts) into @p out.  Either replays the program on the platform
 * or asks the AttemptOracle.
 */
using AttemptFn =
    std::function<void(Time, std::uint64_t, AttemptResult &)>;

/** The bisection core shared by the replay and oracle paths. */
AcminResult
findAcminWith(const AttemptFn &attempt, Time t_agg_on,
              std::uint64_t max_acts, const SearchConfig &cfg)
{
    AcminResult best;
    AttemptResult probe;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
        attempt(t_agg_on, max_acts, probe);
        if (!probe.any())
            continue;

        std::uint64_t lo = 0;
        std::uint64_t hi = max_acts;
        std::vector<VictimFlip> hi_flips = std::move(probe.flips);
        while (hi - lo > std::max<std::uint64_t>(
                             1, std::uint64_t(cfg.accuracy * double(hi)))) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            attempt(t_agg_on, mid, probe);
            if (probe.any()) {
                hi = mid;
                hi_flips = std::move(probe.flips);
            } else {
                lo = mid;
            }
        }
        if (!best.flipped || hi < best.acmin) {
            best.flipped = true;
            best.acmin = hi;
            best.flips = std::move(hi_flips);
        }
    }
    return best;
}

TAggOnMinResult
findTAggOnMinWith(const AttemptFn &attempt, std::uint64_t total_acts,
                  Time max_on, Time t_ras, const SearchConfig &cfg)
{
    TAggOnMinResult best;
    AttemptResult probe;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
        attempt(max_on, total_acts, probe);
        if (!probe.any())
            continue;

        Time lo = t_ras;
        Time hi = max_on;
        while (hi - lo > std::max<Time>(Time(units::NS),
                                        Time(cfg.accuracy * double(hi)))) {
            const Time mid = lo + (hi - lo) / 2;
            attempt(mid, total_acts, probe);
            if (probe.any())
                hi = mid;
            else
                lo = mid;
        }
        if (!best.flipped || hi < best.tAggOnMin) {
            best.flipped = true;
            best.tAggOnMin = hi;
        }
    }
    return best;
}

AttemptFn
replayAttempt(bender::TestPlatform &platform, const RowLayout &layout,
              DataPattern pattern)
{
    return [&platform, layout, pattern](Time t_on, std::uint64_t acts,
                                        AttemptResult &out) {
        initLayout(platform, layout, pattern);
        auto program =
            makePressProgram(layout, t_on, acts, platform.timing());
        const Time elapsed = platform.run(program);
        collectVictims(platform, layout, /*full_scan=*/false, elapsed,
                       out);
    };
}

AttemptFn
oracleAttempt(AttemptOracle &oracle)
{
    return [&oracle](Time t_on, std::uint64_t acts, AttemptResult &out) {
        oracle.pressAttempt(t_on, acts, out);
    };
}

} // namespace

AttemptResult
runPressAttempt(bender::TestPlatform &platform, const RowLayout &layout,
                DataPattern pattern, Time t_agg_on,
                std::uint64_t total_acts, bool full_scan)
{
    initLayout(platform, layout, pattern);
    auto program = makePressProgram(layout, t_agg_on, total_acts,
                                    platform.timing());
    const Time elapsed = platform.run(program);
    AttemptResult res;
    collectVictims(platform, layout, full_scan, elapsed, res);
    return res;
}

AttemptResult
runPressAttemptOn(bender::TestPlatform &platform,
                  const RowLayout &layout, DataPattern pattern,
                  Time t_agg_on, std::uint64_t total_acts,
                  const std::vector<int> &victims)
{
    initLayout(platform, layout, pattern);
    auto program = makePressProgram(layout, t_agg_on, total_acts,
                                    platform.timing());
    const Time elapsed = platform.run(program);
    AttemptResult res;
    collectRows(platform, layout.bank, victims, /*full_scan=*/true,
                elapsed, res);
    return res;
}

AttemptResult
runOnOffAttempt(bender::TestPlatform &platform, const RowLayout &layout,
                DataPattern pattern, Time t_agg_on, Time t_agg_off,
                std::uint64_t total_acts, bool full_scan)
{
    initLayout(platform, layout, pattern);
    auto program = makeOnOffProgram(layout, t_agg_on, t_agg_off,
                                    total_acts, platform.timing());
    const Time elapsed = platform.run(program);
    AttemptResult res;
    collectVictims(platform, layout, full_scan, elapsed, res);
    return res;
}

AcminResult
findAcmin(bender::TestPlatform &platform, const RowLayout &layout,
          DataPattern pattern, Time t_agg_on, const SearchConfig &cfg)
{
    const std::uint64_t max_acts = maxActsWithinBudget(
        t_agg_on, platform.timing(), platform.cmdGap(), cfg.budget);
    if (max_acts == 0)
        return {};

    if (cfg.useOracle) {
        AttemptOracle oracle(platform, layout, pattern);
        return findAcminWith(oracleAttempt(oracle), t_agg_on, max_acts,
                             cfg);
    }
    return findAcminWith(replayAttempt(platform, layout, pattern),
                         t_agg_on, max_acts, cfg);
}

TAggOnMinResult
findTAggOnMin(bender::TestPlatform &platform, const RowLayout &layout,
              DataPattern pattern, std::uint64_t total_acts,
              const SearchConfig &cfg)
{
    const auto &timing = platform.timing();
    // The largest per-activation on-time that keeps the whole program
    // within the budget.
    const Time overhead =
        pressActPeriod(0, timing, platform.cmdGap());
    const Time max_on = cfg.budget / Time(total_acts) - overhead;
    if (max_on <= timing.tRAS)
        return {};

    if (cfg.useOracle) {
        AttemptOracle oracle(platform, layout, pattern);
        return findTAggOnMinWith(oracleAttempt(oracle), total_acts,
                                 max_on, timing.tRAS, cfg);
    }
    return findTAggOnMinWith(replayAttempt(platform, layout, pattern),
                             total_acts, max_on, timing.tRAS, cfg);
}

} // namespace rp::chr
