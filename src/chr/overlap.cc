#include "chr/overlap.h"

#include <algorithm>

namespace rp::chr {

using namespace rp::literals;

std::vector<std::uint64_t>
flipIdSet(const std::vector<VictimFlip> &flips)
{
    std::vector<std::uint64_t> ids;
    ids.reserve(flips.size());
    for (const auto &f : flips)
        ids.push_back(f.id());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

double
overlapFraction(const std::vector<std::uint64_t> &a,
                const std::vector<std::uint64_t> &b)
{
    if (a.empty())
        return 0.0;
    std::size_t common = 0;
    auto it = b.begin();
    for (std::uint64_t id : a) {
        it = std::lower_bound(it, b.end(), id);
        if (it == b.end())
            break;
        if (*it == id)
            ++common;
    }
    return double(common) / double(a.size());
}

namespace {

std::vector<VictimFlip>
allFlipsOf(const SweepPoint &point)
{
    std::vector<VictimFlip> flips;
    for (const auto &loc : point.locations)
        flips.insert(flips.end(), loc.flips.begin(), loc.flips.end());
    return flips;
}

} // namespace

std::vector<OverlapResult>
overlapAtAcmin(Module &module, const std::vector<Time> &t_agg_ons,
               AccessKind kind, const SearchConfig &cfg)
{
    // Reference sets: RowHammer (tAggON = tRAS) and retention.
    const Time t_rh = module.platform().timing().tRAS;
    auto rh_ids = flipIdSet(allFlipsOf(
        acminPoint(module, t_rh, kind, DataPattern::CheckerBoard, cfg)));
    auto ret_ids =
        flipIdSet(retentionFailures(module, 4.0, 80.0));

    std::vector<OverlapResult> results;
    for (Time t : t_agg_ons) {
        auto point = acminPoint(module, t, kind,
                                DataPattern::CheckerBoard, cfg);
        auto rp_ids = flipIdSet(allFlipsOf(point));
        OverlapResult r;
        r.tAggOn = t;
        r.rpCells = rp_ids.size();
        r.withRowHammer = overlapFraction(rp_ids, rh_ids);
        r.withRetention = overlapFraction(rp_ids, ret_ids);
        results.push_back(r);
    }
    return results;
}

namespace {

/**
 * Shared scaffold of the engine-parallel overlap analyses: run the
 * flattened (tAggON + tRAS reference) x location grid plus the
 * retention reference as ONE engine task set (no serialization
 * barrier), with @p cell_flips measuring one (tAggON, location) cell
 * on its private module, then assemble the per-step overlap results.
 */
std::vector<OverlapResult>
overlapViaEngine(
    const ModuleConfig &mc, core::ExperimentEngine &engine,
    const std::vector<Time> &t_agg_ons, bool module_per_location,
    const std::function<std::vector<VictimFlip>(Module &, int, Time)>
        &cell_flips)
{
    const Time t_rh = dram::benderTiming().tRAS;
    std::vector<Time> grid = t_agg_ons;
    grid.push_back(t_rh);

    const std::vector<int> rows = baseRowsOf(mc);
    const std::size_t n_rows = rows.size();
    const std::size_t n_grid = grid.size() * n_rows;

    std::vector<std::vector<VictimFlip>> cells(n_grid);
    std::vector<std::uint64_t> ret_ids;
    std::vector<core::ExperimentEngine::Task> tasks;
    if (module_per_location) {
        // (location, grid-chunk) tasks (safe when cell_flips never
        // mutates the platform, i.e. the oracle-backed ACmin search):
        // each task measures a contiguous slice of the grid on a
        // private Module, so the set scales past numLocations on
        // many-core hosts (ExperimentEngine::chunksPerTask +
        // core::splitRanges, like the acmin-sweep driver).  A fresh
        // Module per slice sees the same pristine state as the old
        // one-module-per-location task — bit-identical results.
        const std::size_t split = engine.chunksPerTask(n_rows + 1);
        const auto ranges = core::splitRanges(grid.size(), split);
        tasks.reserve(n_rows * ranges.size() + 1);
        for (std::size_t ri = 0; ri < n_rows; ++ri) {
            for (const auto &[first, last] : ranges) {
                tasks.push_back([&, ri, first = first,
                                 last = last](const core::TaskContext &) {
                    const int row = rows[ri];
                    Module local(locationConfig(mc, row));
                    for (std::size_t ti = first; ti < last; ++ti)
                        cells[ti * n_rows + ri] =
                            cell_flips(local, row, grid[ti]);
                });
            }
        }
    } else {
        // One task (and one pristine Module) per grid cell, for
        // platform-mutating measurements.
        tasks.reserve(n_grid + 1);
        for (std::size_t i = 0; i < n_grid; ++i) {
            tasks.push_back([&, i](const core::TaskContext &) {
                const Time t = grid[i / n_rows];
                const int row = rows[i % n_rows];
                Module local(locationConfig(mc, row));
                cells[i] = cell_flips(local, row, t);
            });
        }
    }
    tasks.push_back([&](const core::TaskContext &) {
        Module local(mc);
        ret_ids = flipIdSet(retentionFailures(local, 4.0, 80.0));
    });
    engine.run(std::move(tasks));

    auto ids_of_step = [&](std::size_t ti) {
        std::vector<VictimFlip> flips;
        for (std::size_t ri = 0; ri < n_rows; ++ri) {
            const auto &cell = cells[ti * n_rows + ri];
            flips.insert(flips.end(), cell.begin(), cell.end());
        }
        return flipIdSet(flips);
    };

    auto rh_ids = ids_of_step(grid.size() - 1);
    std::vector<OverlapResult> results;
    for (std::size_t i = 0; i < t_agg_ons.size(); ++i) {
        auto rp_ids = ids_of_step(i);
        OverlapResult r;
        r.tAggOn = t_agg_ons[i];
        r.rpCells = rp_ids.size();
        r.withRowHammer = overlapFraction(rp_ids, rh_ids);
        r.withRetention = overlapFraction(rp_ids, ret_ids);
        results.push_back(r);
    }
    return results;
}

} // namespace

std::vector<OverlapResult>
overlapAtAcmin(const ModuleConfig &mc, core::ExperimentEngine &engine,
               const std::vector<Time> &t_agg_ons, AccessKind kind,
               const SearchConfig &cfg)
{
    SearchConfig task_cfg = cfg;
    task_cfg.useOracle = true;
    return overlapViaEngine(
        mc, engine, t_agg_ons, /*module_per_location=*/true,
        [&, task_cfg](Module &local, int row, Time t) {
            return acminAtLocation(local, row, t, kind,
                                   DataPattern::CheckerBoard, task_cfg)
                .flips;
        });
}

std::vector<OverlapResult>
overlapAtMaxAc(Module &module, const std::vector<Time> &t_agg_ons,
               AccessKind kind)
{
    const Time t_rh = module.platform().timing().tRAS;

    auto flips_at_max = [&](Time t) {
        std::vector<VictimFlip> flips;
        for (int i = 0; i < int(module.baseRows().size()); ++i) {
            auto attempt = maxActivationAttempt(
                module, i, kind, DataPattern::CheckerBoard, t);
            flips.insert(flips.end(), attempt.flips.begin(),
                         attempt.flips.end());
        }
        return flips;
    };

    auto rh_ids = flipIdSet(flips_at_max(t_rh));
    auto ret_ids = flipIdSet(retentionFailures(module, 4.0, 80.0));

    std::vector<OverlapResult> results;
    for (Time t : t_agg_ons) {
        auto rp_ids = flipIdSet(flips_at_max(t));
        OverlapResult r;
        r.tAggOn = t;
        r.rpCells = rp_ids.size();
        r.withRowHammer = overlapFraction(rp_ids, rh_ids);
        r.withRetention = overlapFraction(rp_ids, ret_ids);
        results.push_back(r);
    }
    return results;
}

std::vector<OverlapResult>
overlapAtMaxAc(const ModuleConfig &mc, core::ExperimentEngine &engine,
               const std::vector<Time> &t_agg_ons, AccessKind kind)
{
    return overlapViaEngine(
        mc, engine, t_agg_ons, /*module_per_location=*/false,
        [&](Module &local, int row, Time t) {
            (void)row;
            return maxActivationAttempt(local, 0, kind,
                                        DataPattern::CheckerBoard, t)
                .flips;
        });
}

} // namespace rp::chr
