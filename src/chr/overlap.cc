#include "chr/overlap.h"

#include <algorithm>

namespace rp::chr {

using namespace rp::literals;

std::vector<std::uint64_t>
flipIdSet(const std::vector<VictimFlip> &flips)
{
    std::vector<std::uint64_t> ids;
    ids.reserve(flips.size());
    for (const auto &f : flips)
        ids.push_back(f.id());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

double
overlapFraction(const std::vector<std::uint64_t> &a,
                const std::vector<std::uint64_t> &b)
{
    if (a.empty())
        return 0.0;
    std::size_t common = 0;
    auto it = b.begin();
    for (std::uint64_t id : a) {
        it = std::lower_bound(it, b.end(), id);
        if (it == b.end())
            break;
        if (*it == id)
            ++common;
    }
    return double(common) / double(a.size());
}

namespace {

std::vector<VictimFlip>
allFlipsOf(const SweepPoint &point)
{
    std::vector<VictimFlip> flips;
    for (const auto &loc : point.locations)
        flips.insert(flips.end(), loc.flips.begin(), loc.flips.end());
    return flips;
}

} // namespace

std::vector<OverlapResult>
overlapAtAcmin(Module &module, const std::vector<Time> &t_agg_ons,
               AccessKind kind, const SearchConfig &cfg)
{
    // Reference sets: RowHammer (tAggON = tRAS) and retention.
    const Time t_rh = module.platform().timing().tRAS;
    auto rh_ids = flipIdSet(allFlipsOf(
        acminPoint(module, t_rh, kind, DataPattern::CheckerBoard, cfg)));
    auto ret_ids =
        flipIdSet(retentionFailures(module, 4.0, 80.0));

    std::vector<OverlapResult> results;
    for (Time t : t_agg_ons) {
        auto point = acminPoint(module, t, kind,
                                DataPattern::CheckerBoard, cfg);
        auto rp_ids = flipIdSet(allFlipsOf(point));
        OverlapResult r;
        r.tAggOn = t;
        r.rpCells = rp_ids.size();
        r.withRowHammer = overlapFraction(rp_ids, rh_ids);
        r.withRetention = overlapFraction(rp_ids, ret_ids);
        results.push_back(r);
    }
    return results;
}

std::vector<OverlapResult>
overlapAtMaxAc(Module &module, const std::vector<Time> &t_agg_ons,
               AccessKind kind)
{
    const Time t_rh = module.platform().timing().tRAS;

    auto flips_at_max = [&](Time t) {
        std::vector<VictimFlip> flips;
        for (int i = 0; i < int(module.baseRows().size()); ++i) {
            auto attempt = maxActivationAttempt(
                module, i, kind, DataPattern::CheckerBoard, t);
            flips.insert(flips.end(), attempt.flips.begin(),
                         attempt.flips.end());
        }
        return flips;
    };

    auto rh_ids = flipIdSet(flips_at_max(t_rh));
    auto ret_ids = flipIdSet(retentionFailures(module, 4.0, 80.0));

    std::vector<OverlapResult> results;
    for (Time t : t_agg_ons) {
        auto rp_ids = flipIdSet(flips_at_max(t));
        OverlapResult r;
        r.tAggOn = t;
        r.rpCells = rp_ids.size();
        r.withRowHammer = overlapFraction(rp_ids, rh_ids);
        r.withRetention = overlapFraction(rp_ids, ret_ids);
        results.push_back(r);
    }
    return results;
}

} // namespace rp::chr
