#include "chr/patterns.h"

#include <algorithm>

#include "common/logging.h"

namespace rp::chr {

std::uint8_t
aggressorFill(DataPattern p)
{
    switch (p) {
      case DataPattern::CheckerBoard: return 0xAA;
      case DataPattern::CheckerBoardI: return 0x55;
      case DataPattern::RowStripe: return 0xFF;
      case DataPattern::RowStripeI: return 0x00;
      case DataPattern::ColStripe: return 0x55;
      case DataPattern::ColStripeI: return 0xAA;
    }
    return 0xAA;
}

std::uint8_t
victimFill(DataPattern p)
{
    switch (p) {
      case DataPattern::CheckerBoard: return 0x55;
      case DataPattern::CheckerBoardI: return 0xAA;
      case DataPattern::RowStripe: return 0x00;
      case DataPattern::RowStripeI: return 0xFF;
      case DataPattern::ColStripe: return 0x55;
      case DataPattern::ColStripeI: return 0xAA;
    }
    return 0x55;
}

const std::vector<DataPattern> &
allDataPatterns()
{
    static const std::vector<DataPattern> all = {
        DataPattern::CheckerBoard, DataPattern::CheckerBoardI,
        DataPattern::ColStripe,    DataPattern::ColStripeI,
        DataPattern::RowStripe,    DataPattern::RowStripeI,
    };
    return all;
}

int
RowLayout::lowRow() const
{
    int lo = aggressors.empty() ? 0 : aggressors.front();
    for (int r : aggressors)
        lo = std::min(lo, r);
    for (int r : victims)
        lo = std::min(lo, r);
    return lo;
}

int
RowLayout::highRow() const
{
    int hi = aggressors.empty() ? 0 : aggressors.front();
    for (int r : aggressors)
        hi = std::max(hi, r);
    for (int r : victims)
        hi = std::max(hi, r);
    return hi;
}

std::vector<int>
victimsOfAggressors(const std::vector<int> &aggressors)
{
    std::vector<int> victims;
    for (int a : aggressors) {
        for (int d = -3; d <= 3; ++d) {
            if (d == 0)
                continue;
            const int r = a + d;
            if (std::find(aggressors.begin(), aggressors.end(), r) ==
                aggressors.end())
                victims.push_back(r);
        }
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    return victims;
}

RowLayout
makeAggressorLayout(int bank, std::vector<int> aggressors)
{
    RowLayout layout;
    layout.bank = bank;
    layout.victims = victimsOfAggressors(aggressors);
    layout.aggressors = std::move(aggressors);
    return layout;
}

RowLayout
makeLayout(AccessKind kind, int bank, int row0)
{
    // Aggressors R0 and R2 sandwich victim R1 (paper Fig. 16) in the
    // double-sided case; victim placement is the shared blast-radius
    // rule either way.
    if (kind == AccessKind::SingleSided)
        return makeAggressorLayout(bank, {row0});
    return makeAggressorLayout(bank, {row0, row0 + 2});
}

void
initLayout(bender::TestPlatform &platform, const RowLayout &layout,
           DataPattern pattern)
{
    for (int r : layout.victims)
        platform.fillRow(layout.bank, r, victimFill(pattern));
    for (int r : layout.aggressors)
        platform.fillRow(layout.bank, r, aggressorFill(pattern));
}

bender::Program
makePressProgram(const RowLayout &layout, Time t_agg_on,
                 std::uint64_t total_acts,
                 const dram::TimingParams &timing)
{
    if (t_agg_on < timing.tRAS)
        fatal("tAggON %s below tRAS %s", formatTime(t_agg_on).c_str(),
              formatTime(timing.tRAS).c_str());

    bender::Program program;
    if (layout.aggressors.size() == 1) {
        bender::Program body;
        body.act(layout.bank, layout.aggressors[0]);
        body.wait(t_agg_on);
        body.pre(layout.bank);
        program.loop(total_acts, body);
        return program;
    }

    // Double-sided: alternate between the two aggressors; ACmin counts
    // *total* activations (paper Fig. 16).
    bender::Program body;
    body.act(layout.bank, layout.aggressors[0]);
    body.wait(t_agg_on);
    body.pre(layout.bank);
    body.act(layout.bank, layout.aggressors[1]);
    body.wait(t_agg_on);
    body.pre(layout.bank);
    program.loop(total_acts / 2, body);
    if (total_acts % 2) {
        bender::Program tail;
        tail.act(layout.bank, layout.aggressors[0]);
        tail.wait(t_agg_on);
        tail.pre(layout.bank);
        program.append(tail);
    }
    return program;
}

bender::Program
makeOnOffProgram(const RowLayout &layout, Time t_agg_on, Time t_agg_off,
                 std::uint64_t total_acts,
                 const dram::TimingParams &timing)
{
    if (t_agg_on < timing.tRAS || t_agg_off < timing.tRP)
        fatal("ONOFF pattern violates tRAS/tRP minimums");

    bender::Program program;
    const std::size_t n_aggr = layout.aggressors.size();
    bender::Program body;
    for (int r : layout.aggressors) {
        body.act(layout.bank, r);
        body.wait(t_agg_on);
        body.pre(layout.bank);
        body.wait(t_agg_off);
    }
    program.loop(total_acts / n_aggr, body);
    return program;
}

Time
pressActPeriod(Time t_agg_on, const dram::TimingParams &timing,
               Time cmd_gap)
{
    // ACT ... (t_agg_on) ... PRE ... max(tRP, gap) ... next ACT.
    return t_agg_on + std::max(timing.tRP, cmd_gap) + cmd_gap;
}

std::uint64_t
maxActsWithinBudget(Time t_agg_on, const dram::TimingParams &timing,
                    Time cmd_gap, Time budget)
{
    const Time period = pressActPeriod(t_agg_on, timing, cmd_gap);
    if (period <= 0)
        return 0;
    return std::uint64_t(budget / period);
}

} // namespace rp::chr
