/**
 * @file
 * CSV export of characterization results.
 *
 * The paper's artifact ships its raw data as processed dataframes; we
 * provide the equivalent: every sweep result can be serialized to CSV
 * for external plotting (matplotlib/gnuplot), which is how the
 * repository's figures are meant to be rendered outside the ASCII
 * bench output.
 */

#ifndef ROWPRESS_CHR_EXPORT_H
#define ROWPRESS_CHR_EXPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "chr/experiments.h"
#include "chr/overlap.h"

namespace rp::chr {

/** Escape and join one CSV record. */
std::string csvRow(const std::vector<std::string> &fields);

/**
 * Parse CSV text produced by csvRow back into records: handles quoted
 * fields, doubled quotes, and embedded commas / newlines / carriage
 * returns.  The final record may omit the trailing newline.  Used by
 * the round-trip tests of the CSV ResultSink artifacts.
 */
std::vector<std::vector<std::string>> parseCsv(const std::string &text);

/**
 * Write an ACmin sweep as tidy CSV:
 * die,temperature,kind,pattern,taggon_ns,row,flipped,acmin,flips,one_to_zero
 */
void writeAcminSweepCsv(std::ostream &os, const std::string &die_id,
                        double temperature_c, AccessKind kind,
                        DataPattern pattern,
                        const std::vector<SweepPoint> &sweep);

/**
 * Write a tAggONmin sweep as tidy CSV:
 * die,temperature,acts,row,flipped,taggonmin_us
 */
void writeTAggOnMinCsv(std::ostream &os, const std::string &die_id,
                       double temperature_c,
                       const std::vector<TAggOnMinPoint> &points);

/**
 * Write overlap results as tidy CSV:
 * die,taggon_ns,rp_cells,overlap_rowhammer,overlap_retention
 */
void writeOverlapCsv(std::ostream &os, const std::string &die_id,
                     const std::vector<OverlapResult> &results);

} // namespace rp::chr

#endif // ROWPRESS_CHR_EXPORT_H
