/**
 * @file
 * Access patterns and data patterns of the RowPress characterization
 * (paper sections 4.1, 5.2, 5.3, 5.4).
 */

#ifndef ROWPRESS_CHR_PATTERNS_H
#define ROWPRESS_CHR_PATTERNS_H

#include <cstdint>
#include <string>
#include <vector>

#include "bender/platform.h"
#include "bender/program.h"

namespace rp::chr {

/** Single- vs double-sided aggressor placement (Figs. 5 and 16). */
enum class AccessKind
{
    SingleSided,
    DoubleSided,
};

constexpr const char *
accessKindName(AccessKind k)
{
    return k == AccessKind::SingleSided ? "Single-Sided" : "Double-Sided";
}

/** Data patterns of Table 2 (I suffix = inverse). */
enum class DataPattern
{
    CheckerBoard,
    CheckerBoardI,
    RowStripe,
    RowStripeI,
    ColStripe,
    ColStripeI,
};

constexpr const char *
dataPatternName(DataPattern p)
{
    switch (p) {
      case DataPattern::CheckerBoard: return "CB";
      case DataPattern::CheckerBoardI: return "CBI";
      case DataPattern::RowStripe: return "RS";
      case DataPattern::RowStripeI: return "RSI";
      case DataPattern::ColStripe: return "CS";
      case DataPattern::ColStripeI: return "CSI";
    }
    return "?";
}

/** Aggressor-row fill byte of a data pattern (Table 2). */
std::uint8_t aggressorFill(DataPattern p);

/** Victim-row fill byte of a data pattern (Table 2). */
std::uint8_t victimFill(DataPattern p);

/** All six data patterns, in the paper's presentation order. */
const std::vector<DataPattern> &allDataPatterns();

/**
 * The aggressor/victim row layout of one tested location.
 *
 * Single-sided: one aggressor R0; victims are the three adjacent rows
 * on each side.  Double-sided: aggressors R0 and R0+2 sandwich victim
 * R0+1; victims additionally include the three rows before R0 and
 * after R0+2 (paper section 5.2).
 */
struct RowLayout
{
    int bank = 1;
    std::vector<int> aggressors;
    std::vector<int> victims;

    /** Lowest/highest row touched (for spacing tested locations). */
    int lowRow() const;
    int highRow() const;
};

/**
 * Victim rows implied by an aggressor set: every row within the
 * +/-3 blast radius of any aggressor that is not itself an aggressor,
 * sorted ascending.  Shared by makeLayout and fuzz::PatternBuilder so
 * the fixed paper patterns and fuzz genomes place victims identically.
 */
std::vector<int> victimsOfAggressors(const std::vector<int> &aggressors);

/** Build the layout of an explicit aggressor set (any arity). */
RowLayout makeAggressorLayout(int bank, std::vector<int> aggressors);

/** Build the layout for base aggressor row @p row0. */
RowLayout makeLayout(AccessKind kind, int bank, int row0);

/** Fill aggressors and victims of @p layout per @p pattern. */
void initLayout(bender::TestPlatform &platform, const RowLayout &layout,
                DataPattern pattern);

/**
 * Build the RowPress access pattern program (Fig. 5 / Fig. 16):
 * @p total_acts total aggressor activations, each holding the row open
 * for @p t_agg_on.  At t_agg_on == tRAS this degenerates to the
 * conventional RowHammer pattern.
 */
bender::Program makePressProgram(const RowLayout &layout, Time t_agg_on,
                                 std::uint64_t total_acts,
                                 const dram::TimingParams &timing);

/**
 * Build the RowPress-ONOFF pattern (Fig. 21): fixed ACT-to-ACT period
 * tA2A = t_agg_on + t_agg_off, sweeping how the slack is split between
 * on- and off-time (section 5.4).
 */
bender::Program makeOnOffProgram(const RowLayout &layout, Time t_agg_on,
                                 Time t_agg_off,
                                 std::uint64_t total_acts,
                                 const dram::TimingParams &timing);

/** Wall-clock duration of one press-pattern activation period. */
Time pressActPeriod(Time t_agg_on, const dram::TimingParams &timing,
                    Time cmd_gap);

/** Maximum activations that fit within @p budget (paper: 60 ms). */
std::uint64_t maxActsWithinBudget(Time t_agg_on,
                                  const dram::TimingParams &timing,
                                  Time cmd_gap, Time budget);

} // namespace rp::chr

#endif // ROWPRESS_CHR_PATTERNS_H
