#include "chr/oracle.h"

#include <algorithm>

#include "common/logging.h"

namespace rp::chr {

namespace {

/** Real checkRow evaluates with the victim's (empty) override map. */
const std::unordered_map<int, std::uint8_t> kNoOverrides;

} // namespace

AttemptOracle::AttemptOracle(bender::TestPlatform &module,
                             const RowLayout &layout, DataPattern pattern)
    : module_(module),
      layout_(layout),
      pattern_(pattern),
      doubleSided_(layout.aggressors.size() > 1)
{
    if (module_.fastForwardThreshold() < 4)
        fatal("AttemptOracle requires fastForwardThreshold >= 4 "
              "(got %llu): below that the final-iteration trace does "
              "not match the platform's loop extrapolation",
              (unsigned long long)module_.fastForwardThreshold());

    for (std::size_t i = 0; i < layout_.victims.size(); ++i)
        victimIndex_[device::FaultModel::doseKey(
            layout_.bank, layout_.victims[i])] = i;

    for (int a : layout_.aggressors)
        actRows_.emplace_back(layout_.bank, a);
    std::sort(actRows_.begin(), actRows_.end());
    actRows_.erase(std::unique(actRows_.begin(), actRows_.end()),
                   actRows_.end());

    scratch_ =
        std::make_unique<bender::TestPlatform>(module_.config());
    scratch_->setTemperature(module_.temperature());
}

AttemptOracle::~AttemptOracle() = default;

void
AttemptOracle::splitOps(
    const std::vector<device::FaultModel::DoseOp> &ops,
    Ops VictimTrace::*segment, Profile &prof) const
{
    for (const auto &op : ops) {
        auto it = victimIndex_.find(op.key);
        if (it == victimIndex_.end())
            continue; // deposit on a non-victim row (e.g. an aggressor)
        (prof.victims[it->second].*segment)
            .emplace_back(op.comp, op.value);
    }
}

void
AttemptOracle::positionScratch(Time t_agg_on)
{
    if (scratchState_ == state_)
        return;
    if (std::get<0>(state_) == 0) {
        scratch_->reset();
        scratchState_ = StateKey{0, 0, 0};
        return;
    }
    // Re-create the "after an attempt" start state with the shortest
    // attempt of the right parity; the aggressors' rest-time structure
    // entering the next warm-up iteration depends only on (parity,
    // previous tAggON), not on the previous activation count.
    const Time t_prev =
        doubleSided_ ? std::get<2>(state_) : t_agg_on;
    const std::uint64_t acts =
        doubleSided_ ? (std::get<1>(state_) ? 3 : 2) : 1;
    initLayout(*scratch_, layout_, pattern_);
    scratch_->run(
        makePressProgram(layout_, t_prev, acts, scratch_->timing()));
    scratchState_ = state_;
}

AttemptOracle::Profile
AttemptOracle::measureProfile(Time t_agg_on)
{
    positionScratch(t_agg_on);

    // One aggressor segment: ACT, hold open for tAggON, PRE.
    auto segmentOf = [&](int aggr) {
        bender::Program p;
        p.act(layout_.bank, aggr);
        p.wait(t_agg_on);
        p.pre(layout_.bank);
        return p;
    };
    const bender::Program half_a = segmentOf(layout_.aggressors[0]);
    const bender::Program half_b =
        doubleSided_ ? segmentOf(layout_.aggressors[1])
                     : bender::Program{};

    Profile prof;
    prof.victims.resize(layout_.victims.size());
    initLayout(*scratch_, layout_, pattern_);

    // Iteration 1 (warm-up: rest times depend on the attempt history).
    auto r1a = scratch_->runTraced(half_a);
    prof.dHalf1 = r1a.duration;
    splitOps(r1a.ops, &VictimTrace::iter1, prof);
    splitOps(r1a.ops, &VictimTrace::iter1Half, prof);
    prof.d1 = r1a.duration;
    if (doubleSided_) {
        auto r1b = scratch_->runTraced(half_b);
        splitOps(r1b.ops, &VictimTrace::iter1, prof);
        prof.d1 += r1b.duration;
    }

    // Iteration 2 = the steady state (same per-iteration dose delta
    // and duration the loop fast-forward extrapolates).
    {
        bender::Program body = half_a;
        if (doubleSided_)
            body.append(half_b);
        auto r2 = scratch_->runTraced(body);
        prof.durS = r2.duration;
        splitOps(r2.ops, &VictimTrace::steady, prof);

        // The extrapolation jump leaves only the command gap between
        // the (virtual) last PRE and the final iteration's first ACT,
        // so its rest-time weight differs from the steady state.  Any
        // jump >= tRP reproduces it; use the smallest the platform
        // would take (count == threshold -> extra == threshold - 3).
        const double extra =
            double(module_.fastForwardThreshold() - 3);
        scratch_->fastForwardBy(Time(double(prof.durS) * extra),
                                actRows_);
        auto rf = scratch_->runTraced(body);
        prof.durFinal = rf.duration;
        splitOps(rf.ops, &VictimTrace::finalIter, prof);
    }

    if (doubleSided_) {
        // Odd-count tail: one extra first-aggressor segment.  After
        // any full iteration (concrete or post-jump) the tail sees the
        // steady rest-time structure.
        auto rt = scratch_->runTraced(half_a);
        prof.durTail = rt.duration;
        splitOps(rt.ops, &VictimTrace::tail, prof);
        scratchState_ = StateKey{1, 1, t_agg_on};
    } else {
        scratchState_ = StateKey{1, 0, 0};
    }
    return prof;
}

const AttemptOracle::Profile &
AttemptOracle::profileFor(Time t_agg_on)
{
    const ProfileKey key{t_agg_on, std::get<0>(state_),
                         std::get<1>(state_), std::get<2>(state_)};
    auto it = profiles_.find(key);
    if (it == profiles_.end())
        it = profiles_.emplace(key, measureProfile(t_agg_on)).first;
    return it->second;
}

void
AttemptOracle::pressAttempt(Time t_agg_on, std::uint64_t total_acts,
                            AttemptResult &out)
{
    out.flips.clear();
    const Profile &prof = profileFor(t_agg_on);

    const std::uint64_t count =
        doubleSided_ ? total_acts / 2 : total_acts;
    const bool tail = doubleSided_ && (total_acts % 2 != 0);
    const std::uint64_t threshold = module_.fastForwardThreshold();
    const std::size_t nv = layout_.victims.size();

    acc_.assign(nv, std::array<double, 4>{0.0, 0.0, 0.0, 0.0});
    auto apply = [&](Ops VictimTrace::*seg) {
        for (std::size_t v = 0; v < nv; ++v)
            for (const auto &[comp, value] : prof.victims[v].*seg)
                acc_[v][std::size_t(comp)] += value;
    };

    Time elapsed = 0;
    if (count == 0) {
        if (tail) {
            apply(&VictimTrace::iter1Half);
            elapsed = prof.dHalf1;
        }
    } else if (count < threshold) {
        // The platform executes short loops concretely.
        apply(&VictimTrace::iter1);
        for (std::uint64_t i = 1; i < count; ++i)
            apply(&VictimTrace::steady);
        elapsed = prof.d1 + prof.durS * Time(count - 1);
        if (tail) {
            apply(&VictimTrace::tail);
            elapsed += prof.durTail;
        }
    } else {
        // Replay the loop fast-forward: warm-up, measured iteration,
        // `cur += (cur - prev) * extra` extrapolation, concrete final
        // iteration — the exact arithmetic execLoop performs.
        apply(&VictimTrace::iter1);
        prevAcc_ = acc_;
        apply(&VictimTrace::steady);
        const double extra = double(count - 3);
        for (std::size_t v = 0; v < nv; ++v)
            for (std::size_t c = 0; c < 4; ++c)
                acc_[v][c] += (acc_[v][c] - prevAcc_[v][c]) * extra;
        apply(&VictimTrace::finalIter);
        elapsed = prof.d1 + prof.durS +
                  Time(double(prof.durS) * extra) + prof.durFinal;
        if (tail) {
            apply(&VictimTrace::tail);
            elapsed += prof.durTail;
        }
    }

    // Evaluate every victim row exactly as checkRow would at the end
    // of the program: same dose, same retention, same noise nonce.
    const Time now_end = vnow_ + elapsed;
    const auto &fault = module_.chip().fault();
    const device::CellModel &cells = fault.cells();
    const double temp = fault.temperature();
    const double ret =
        elapsed <= 0
            ? 0.0
            : toSec(elapsed) * cells.retentionTempFactor(temp);

    auto fillOf = [&](int row) -> std::uint8_t {
        if (row < 0 || row >= module_.org().rows)
            return 0x00;
        for (int a : layout_.aggressors)
            if (a == row)
                return aggressorFill(pattern_);
        for (int v : layout_.victims)
            if (v == row)
                return victimFill(pattern_);
        return 0x00; // never written on a pristine platform
    };

    for (std::size_t v = 0; v < nv; ++v) {
        const int victim = layout_.victims[v];
        device::DoseState dose;
        dose.hammer[0] = acc_[v][0];
        dose.hammer[1] = acc_[v][1];
        dose.press[0] = acc_[v][2];
        dose.press[1] = acc_[v][3];

        device::RowContext ctx;
        ctx.dose = &dose;
        ctx.victimFill = victimFill(pattern_);
        ctx.victimOverrides = &kNoOverrides;
        ctx.aggrFill[0] = victim > 0 ? fillOf(victim - 1) : 0x00;
        ctx.aggrFill[1] =
            victim + 1 < module_.org().rows ? fillOf(victim + 1) : 0x00;
        ctx.retentionSeconds = ret;
        ctx.noiseSigma = fault.evalNoiseSigma();
        ctx.noiseNonce = std::uint64_t(now_end);

        flipBuf_.clear();
        cells.evaluateInto(layout_.bank, victim, ctx, false, temp,
                           flipBuf_);
        for (const auto &f : flipBuf_)
            out.flips.push_back({victim, f});
    }

    out.elapsed = elapsed;
    vnow_ = now_end;
    if (total_acts >= 1)
        state_ = StateKey{1, tail ? 1 : 0,
                          doubleSided_ ? t_agg_on : Time(0)};
}

} // namespace rp::chr
