/**
 * @file
 * Overlap analysis between RowPress-, RowHammer-, and retention-
 * vulnerable cells (paper section 4.3, Figs. 10 and 11).
 */

#ifndef ROWPRESS_CHR_OVERLAP_H
#define ROWPRESS_CHR_OVERLAP_H

#include <vector>

#include "chr/experiments.h"

namespace rp::chr {

/** Overlap of the RowPress-vulnerable cell set at one tAggON. */
struct OverlapResult
{
    Time tAggOn = 0;
    std::size_t rpCells = 0;        ///< |RowPress-vulnerable set|.
    double withRowHammer = 0.0;     ///< |RP intersect RH| / |RP|.
    double withRetention = 0.0;     ///< |RP intersect retention| / |RP|.
};

/** Set of stable flip identities from a collection of victim flips. */
std::vector<std::uint64_t> flipIdSet(const std::vector<VictimFlip> &flips);

/** Fraction of @p a's elements also present in @p b (both sorted). */
double overlapFraction(const std::vector<std::uint64_t> &a,
                       const std::vector<std::uint64_t> &b);

/**
 * Overlap at ACmin (Fig. 10): for each tAggON, the cells that flip at
 * that tAggON's ACmin are compared against the RowHammer set (cells
 * flipping at tAggON = tRAS) and the retention-failure set.
 */
std::vector<OverlapResult>
overlapAtAcmin(Module &module, const std::vector<Time> &t_agg_ons,
               AccessKind kind, const SearchConfig &cfg = {});

/**
 * Engine-parallel form: reference sets and every (tAggON, location)
 * point run as engine tasks on private per-location modules.
 */
std::vector<OverlapResult>
overlapAtAcmin(const ModuleConfig &mc, core::ExperimentEngine &engine,
               const std::vector<Time> &t_agg_ons, AccessKind kind,
               const SearchConfig &cfg = {});

/**
 * Overlap at maximum activation count (Fig. 11): same comparison with
 * all patterns driven as hard as the 60 ms budget allows.
 */
std::vector<OverlapResult>
overlapAtMaxAc(Module &module, const std::vector<Time> &t_agg_ons,
               AccessKind kind);

/** Engine-parallel form of overlapAtMaxAc. */
std::vector<OverlapResult>
overlapAtMaxAc(const ModuleConfig &mc, core::ExperimentEngine &engine,
               const std::vector<Time> &t_agg_ons, AccessKind kind);

} // namespace rp::chr

#endif // ROWPRESS_CHR_OVERLAP_H
