/**
 * @file
 * ECC implications of RowPress bitflips (paper section 7.1, Figs. 25
 * and 26): distribution of bitflips per 64-bit data word and the
 * correction/detection outcomes of SECDED and Chipkill codes.
 */

#ifndef ROWPRESS_CHR_ECC_H
#define ROWPRESS_CHR_ECC_H

#include <cstdint>
#include <map>
#include <vector>

#include "chr/acmin.h"

namespace rp::chr {

/** Bitflip counts per 64-bit word, bucketed as in Figs. 25/26. */
struct WordErrorStats
{
    std::uint64_t words1to2 = 0;
    std::uint64_t words3to8 = 0;
    std::uint64_t wordsOver8 = 0;
    std::uint64_t maxFlipsPerWord = 0;
    std::uint64_t totalErrorWords = 0;

    void merge(const WordErrorStats &o);
};

/** Histogram of flips per 64-bit word from a set of victim flips. */
WordErrorStats analyzeWordErrors(const std::vector<VictimFlip> &flips);

/** Outcome of applying an ECC scheme to the observed error words. */
struct EccOutcome
{
    std::uint64_t corrected = 0;
    std::uint64_t detected = 0;   ///< Detected but uncorrectable.
    std::uint64_t silent = 0;     ///< Beyond the code's guarantees.
};

/**
 * SECDED(72,64): corrects 1 flip per word, detects 2, anything beyond
 * escapes the code's guarantees.
 */
EccOutcome evaluateSecded(const std::vector<VictimFlip> &flips);

/**
 * Chipkill with @p symbol_bits -wide symbols (x4/x8/x16 devices):
 * corrects 1 erroneous symbol per word, detects 2 (paper footnote 24).
 */
EccOutcome evaluateChipkill(const std::vector<VictimFlip> &flips,
                            int symbol_bits);

} // namespace rp::chr

#endif // ROWPRESS_CHR_ECC_H
