#include "chr/secded.h"

namespace rp::chr {

namespace {

/**
 * Parity-check matrix H: column j is the 8-bit syndrome of codeword
 * bit j.  Data bits use columns with odd weight >= 3 (Hsiao), check
 * bit i uses the unit vector (1 << i).  Built once, deterministically:
 * enumerate odd-weight-(>=3) 8-bit values in increasing weight order.
 */
struct Matrix
{
    std::uint8_t column[72];

    Matrix()
    {
        int idx = 0;
        for (int weight = 3; weight <= 7 && idx < 64; weight += 2) {
            for (int v = 0; v < 256 && idx < 64; ++v) {
                if (__builtin_popcount(unsigned(v)) == weight)
                    column[idx++] = std::uint8_t(v);
            }
        }
        for (int i = 0; i < 8; ++i)
            column[64 + i] = std::uint8_t(1u << i);
    }
};

const Matrix &
matrix()
{
    static const Matrix m;
    return m;
}

/** Syndrome of a full codeword. */
std::uint8_t
syndromeOf(const SecdedWord &w)
{
    const Matrix &m = matrix();
    std::uint8_t s = 0;
    for (int i = 0; i < 64; ++i) {
        if ((w.data >> i) & 1)
            s ^= m.column[i];
    }
    for (int i = 0; i < 8; ++i) {
        if ((w.check >> i) & 1)
            s ^= m.column[64 + i];
    }
    return s;
}

} // namespace

std::uint8_t
Secded::encode(std::uint64_t data)
{
    const Matrix &m = matrix();
    std::uint8_t s = 0;
    for (int i = 0; i < 64; ++i) {
        if ((data >> i) & 1)
            s ^= m.column[i];
    }
    // Check bits are unit columns, so check = data syndrome makes the
    // overall syndrome zero.
    return s;
}

void
Secded::flipBit(SecdedWord &word, int bit)
{
    if (bit < 64)
        word.data ^= std::uint64_t(1) << bit;
    else
        word.check ^= std::uint8_t(1u << (bit - 64));
}

Secded::DecodeResult
Secded::decode(const SecdedWord &word, std::uint64_t original)
{
    const std::uint8_t s = syndromeOf(word);
    if (s == 0) {
        // Either error-free, or an even number of errors that aliased
        // to zero (undetected).  Classify against the truth.
        return {word.data == original ? SecdedStatus::Ok
                                      : SecdedStatus::Miscorrected,
                word.data};
    }

    // Hsiao: odd-weight syndrome -> single-bit error (correct it);
    // even-weight syndrome -> double-bit error (detected).
    if (__builtin_popcount(unsigned(s)) % 2 == 0)
        return {SecdedStatus::DetectedDouble, word.data};

    const Matrix &m = matrix();
    SecdedWord fixed = word;
    for (int i = 0; i < 72; ++i) {
        if (m.column[i] == s) {
            flipBit(fixed, i);
            return {fixed.data == original ? SecdedStatus::Corrected
                                           : SecdedStatus::Miscorrected,
                    fixed.data};
        }
    }
    // An odd-weight syndrome matching no column: detected,
    // uncorrectable (can only arise from >=3 errors).
    return {SecdedStatus::DetectedDouble, word.data};
}

} // namespace rp::chr
