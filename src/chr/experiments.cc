#include "chr/experiments.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rp::chr {

using namespace rp::literals;

std::vector<int>
baseRowsOf(const ModuleConfig &cfg)
{
    std::vector<int> rows;
    rows.reserve(std::size_t(cfg.numLocations));
    for (int i = 0; i < cfg.numLocations; ++i)
        rows.push_back(cfg.firstRow + i * cfg.rowStride);
    return rows;
}

ModuleConfig
locationConfig(const ModuleConfig &cfg, int row)
{
    ModuleConfig loc = cfg;
    loc.numLocations = 1;
    loc.firstRow = row;
    return loc;
}

Module::Module(const ModuleConfig &cfg) : cfg_(cfg)
{
    bender::PlatformConfig pc;
    pc.die = cfg_.die;
    pc.org = dram::Organization{};
    pc.seed = cfg_.seed;
    pc.temperatureC = cfg_.temperatureC;
    platform_ = std::make_unique<bender::TestPlatform>(pc);

    baseRows_ = baseRowsOf(cfg_);
}

const std::vector<Time> &
standardTAggOnSweep()
{
    static const std::vector<Time> sweep = {
        36_ns,  66_ns,   96_ns,   186_ns,  336_ns, 636_ns,
        1536_ns, 3_us,   7800_ns, 15_us,   30_us,  70200_ns,
        150_us, 300_us,  1_ms,    3_ms,    10_ms,  30_ms,
    };
    return sweep;
}

const std::vector<Time> &
dataPatternTAggOnSweep()
{
    // Paper section 5.3: 36 ns, 66 ns, 636 ns, tREFI, 9 x tREFI,
    // 300 us, 6 ms.
    static const std::vector<Time> sweep = {
        36_ns, 66_ns, 636_ns, 7800_ns, 70200_ns, 300_us, 6_ms,
    };
    return sweep;
}

BoxSummary
SweepPoint::acminSummary() const
{
    std::vector<double> values;
    for (const auto &loc : locations) {
        if (loc.flipped)
            values.push_back(double(loc.acmin));
    }
    return summarize(std::move(values));
}

double
SweepPoint::fractionFlipped() const
{
    if (locations.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &loc : locations)
        n += loc.flipped ? 1 : 0;
    return double(n) / double(locations.size());
}

double
SweepPoint::fractionOneToZero() const
{
    std::size_t one_to_zero = 0;
    std::size_t total = 0;
    for (const auto &loc : locations) {
        for (const auto &vf : loc.flips) {
            ++total;
            one_to_zero += vf.flip.oneToZero ? 1 : 0;
        }
    }
    return total ? double(one_to_zero) / double(total) : 0.0;
}

double
SweepPoint::meanAcmin() const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &loc : locations) {
        if (loc.flipped) {
            sum += double(loc.acmin);
            ++n;
        }
    }
    return n ? sum / double(n) : 0.0;
}

LocationResult
acminAtLocation(Module &module, int row, Time t_agg_on, AccessKind kind,
                DataPattern pattern, const SearchConfig &cfg)
{
    RowLayout layout = makeLayout(kind, module.config().bank, row);
    AcminResult res = findAcmin(module.platform(), layout, pattern,
                                t_agg_on, cfg);
    LocationResult loc;
    loc.row = row;
    loc.flipped = res.flipped;
    loc.acmin = res.acmin;
    loc.flips = std::move(res.flips);
    return loc;
}

SweepPoint
acminPoint(Module &module, Time t_agg_on, AccessKind kind,
           DataPattern pattern, const SearchConfig &cfg)
{
    SweepPoint point;
    point.tAggOn = t_agg_on;
    for (int row : module.baseRows())
        point.locations.push_back(
            acminAtLocation(module, row, t_agg_on, kind, pattern, cfg));
    return point;
}

SweepPoint
acminPoint(const ModuleConfig &mc, core::ExperimentEngine &engine,
           Time t_agg_on, AccessKind kind, DataPattern pattern,
           const SearchConfig &cfg)
{
    auto points = acminSweep(mc, engine, {t_agg_on}, kind, pattern, cfg);
    return std::move(points.front());
}

std::vector<SweepPoint>
acminSweep(Module &module, const std::vector<Time> &t_agg_ons,
           AccessKind kind, DataPattern pattern, const SearchConfig &cfg)
{
    std::vector<SweepPoint> points;
    points.reserve(t_agg_ons.size());
    for (Time t : t_agg_ons)
        points.push_back(acminPoint(module, t, kind, pattern, cfg));
    return points;
}

std::vector<SweepPoint>
acminSweep(const ModuleConfig &mc, core::ExperimentEngine &engine,
           const std::vector<Time> &t_agg_ons, AccessKind kind,
           DataPattern pattern, const SearchConfig &cfg)
{
    const std::vector<int> rows = baseRowsOf(mc);
    const std::size_t n_rows = rows.size();

    // (location, tAggON-chunk) tasks: when the engine has more
    // workers than locations, each location's sweep is split into
    // contiguous tAggON slices so the task set can occupy every
    // worker (the same re-chunking maxActivationAttempts uses for
    // full scans).  Each task runs its slice on a private
    // single-location Module; the oracle-backed search never mutates
    // the platform, so a fresh Module per slice sees exactly the
    // pristine state the one-module-per-location driver provided —
    // results are bit-identical at any chunk count, while the store
    // build is still shared through the keyed registry.
    SearchConfig task_cfg = cfg;
    task_cfg.useOracle = true;

    struct TaskDesc
    {
        std::size_t loc;
        std::size_t first;
        std::size_t last;
    };
    const std::size_t split = engine.chunksPerTask(n_rows);
    std::vector<TaskDesc> descs;
    for (std::size_t ri = 0; ri < n_rows; ++ri) {
        for (const auto &[first, last] :
             core::splitRanges(t_agg_ons.size(), split))
            descs.push_back({ri, first, last});
    }

    auto pieces = engine.map<std::vector<LocationResult>>(
        descs.size(), [&](const core::TaskContext &ctx) {
            const TaskDesc &d = descs[ctx.index];
            const int row = rows[d.loc];
            Module local(locationConfig(mc, row));
            std::vector<LocationResult> slice;
            slice.reserve(d.last - d.first);
            for (std::size_t ti = d.first; ti < d.last; ++ti)
                slice.push_back(acminAtLocation(
                    local, row, t_agg_ons[ti], kind, pattern,
                    task_cfg));
            return slice;
        });

    std::vector<SweepPoint> points(t_agg_ons.size());
    for (std::size_t ti = 0; ti < t_agg_ons.size(); ++ti)
        points[ti].tAggOn = t_agg_ons[ti];
    // descs iterate locations in row order, so per-point location
    // lists assemble in the same order as the serial driver.
    for (std::size_t di = 0; di < descs.size(); ++di) {
        const TaskDesc &d = descs[di];
        for (std::size_t ti = d.first; ti < d.last; ++ti)
            points[ti].locations.push_back(
                std::move(pieces[di][ti - d.first]));
    }
    return points;
}

BoxSummary
TAggOnMinPoint::summary() const
{
    std::vector<double> values;
    for (const auto &[row, res] : locations) {
        (void)row;
        if (res.flipped)
            values.push_back(toUs(res.tAggOnMin));
    }
    return summarize(std::move(values));
}

TAggOnMinPoint
tAggOnMinPoint(Module &module, std::uint64_t acts, AccessKind kind,
               DataPattern pattern, const SearchConfig &cfg)
{
    TAggOnMinPoint point;
    point.acts = acts;
    for (int row : module.baseRows()) {
        RowLayout layout = makeLayout(kind, module.config().bank, row);
        point.locations.emplace_back(
            row, findTAggOnMin(module.platform(), layout, pattern, acts,
                               cfg));
    }
    return point;
}

TAggOnMinPoint
tAggOnMinPoint(const ModuleConfig &mc, core::ExperimentEngine &engine,
               std::uint64_t acts, AccessKind kind, DataPattern pattern,
               const SearchConfig &cfg)
{
    const std::vector<int> rows = baseRowsOf(mc);
    SearchConfig task_cfg = cfg;
    task_cfg.useOracle = true;
    auto results = engine.map<std::pair<int, TAggOnMinResult>>(
        rows.size(), [&](const core::TaskContext &ctx) {
            const int row = rows[ctx.index];
            Module local(locationConfig(mc, row));
            RowLayout layout = makeLayout(kind, mc.bank, row);
            return std::make_pair(
                row, findTAggOnMin(local.platform(), layout, pattern,
                                   acts, task_cfg));
        });

    TAggOnMinPoint point;
    point.acts = acts;
    point.locations = std::move(results);
    return point;
}

std::vector<VictimFlip>
retentionFailures(Module &module, double seconds, double temp_c)
{
    auto &platform = module.platform();
    const double saved_temp = platform.temperature();
    platform.setTemperature(temp_c);

    // Initialize every victim row with the checkerboard victim fill,
    // idle with refresh disabled, then inspect (paper footnote 12).
    std::vector<int> rows;
    for (int base : module.baseRows()) {
        RowLayout layout = makeLayout(AccessKind::SingleSided,
                                      module.config().bank, base);
        for (int v : layout.victims)
            rows.push_back(v);
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

    const int bank = module.config().bank;
    for (int r : rows)
        platform.fillRow(bank, r,
                         victimFill(DataPattern::CheckerBoard));

    bender::Program idle;
    idle.wait(Time(seconds * double(units::SEC)));
    platform.run(idle);

    std::vector<VictimFlip> fails;
    for (int r : rows) {
        for (const auto &f : platform.checkRow(bank, r))
            fails.push_back({r, f});
    }
    platform.setTemperature(saved_temp);
    return fails;
}

double
onOffBer(Module &module, int location_idx, AccessKind kind,
         Time delta_a2a, double on_fraction, int repeats)
{
    auto &platform = module.platform();
    const auto &timing = platform.timing();
    const int row = module.baseRows().at(std::size_t(location_idx));
    RowLayout layout = makeLayout(kind, module.config().bank, row);

    const Time t_on =
        timing.tRAS + Time(on_fraction * double(delta_a2a));
    const Time t_off =
        timing.tRP + Time((1.0 - on_fraction) * double(delta_a2a));
    const Time period = t_on + t_off + 2 * platform.cmdGap();
    const std::uint64_t acts = std::uint64_t((60_ms) / period);

    // BER is dominated by the distance-1 victims; restrict the (full)
    // scans to them to keep the experiment fast.
    std::vector<int> scan_victims;
    for (int victim : layout.victims) {
        for (int aggr : layout.aggressors) {
            if (std::abs(victim - aggr) == 1) {
                scan_victims.push_back(victim);
                break;
            }
        }
    }

    double best = 0.0;
    const double bits = double(bitsPerRow(module));
    for (int rep = 0; rep < repeats; ++rep) {
        initLayout(platform, layout, DataPattern::CheckerBoard);
        auto program = makeOnOffProgram(layout, t_on, t_off, acts, timing);
        platform.run(program);
        for (int victim : scan_victims) {
            auto flips = platform.checkRow(module.config().bank, victim,
                                           /*full_scan=*/true);
            best = std::max(best, double(flips.size()) / bits);
        }
    }
    return best;
}

AttemptResult
maxActivationAttempt(Module &module, int location_idx, AccessKind kind,
                     DataPattern pattern, Time t_agg_on)
{
    auto &platform = module.platform();
    const int row = module.baseRows().at(std::size_t(location_idx));
    RowLayout layout = makeLayout(kind, module.config().bank, row);
    const std::uint64_t acts = maxActsWithinBudget(
        t_agg_on, platform.timing(), platform.cmdGap(), 60_ms);
    return runPressAttempt(platform, layout, pattern, t_agg_on, acts,
                           /*full_scan=*/true);
}

std::vector<AttemptResult>
maxActivationAttempts(const ModuleConfig &mc,
                      core::ExperimentEngine &engine,
                      const std::vector<int> &rows, AccessKind kind,
                      DataPattern pattern, Time t_agg_on)
{
    if (rows.empty())
        return {};

    // (location, victim-chunk) tasks: when the engine has more
    // workers than locations, each location's victim list is split
    // into contiguous slices, every task replays the (fast-forwarded,
    // cheap) attempt program on a private Module and full-scans only
    // its slice.  Row materialization is independent per row, so the
    // in-order concatenation below is bit-identical to the serial
    // per-location scan regardless of the chunk count.
    struct TaskDesc
    {
        std::size_t loc;
        std::size_t first;
        std::size_t last;
    };
    std::vector<RowLayout> layouts;
    layouts.reserve(rows.size());
    for (int row : rows)
        layouts.push_back(makeLayout(kind, mc.bank, row));

    const std::size_t split = engine.chunksPerTask(rows.size());
    std::vector<TaskDesc> tasks;
    for (std::size_t li = 0; li < rows.size(); ++li) {
        for (const auto &[first, last] :
             core::splitRanges(layouts[li].victims.size(), split))
            tasks.push_back({li, first, last});
    }

    auto pieces = engine.map<AttemptResult>(
        tasks.size(), [&](const core::TaskContext &ctx) {
            const TaskDesc &d = tasks[ctx.index];
            const RowLayout &layout = layouts[d.loc];
            Module local(locationConfig(mc, rows[d.loc]));
            auto &platform = local.platform();
            const std::uint64_t acts = maxActsWithinBudget(
                t_agg_on, platform.timing(), platform.cmdGap(), 60_ms);
            const std::vector<int> victims(
                layout.victims.begin() + std::ptrdiff_t(d.first),
                layout.victims.begin() + std::ptrdiff_t(d.last));
            return runPressAttemptOn(platform, layout, pattern,
                                     t_agg_on, acts, victims);
        });

    std::vector<AttemptResult> results(rows.size());
    for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
        AttemptResult &dst = results[tasks[ti].loc];
        AttemptResult &src = pieces[ti];
        dst.elapsed = src.elapsed;
        dst.flips.insert(dst.flips.end(),
                         std::make_move_iterator(src.flips.begin()),
                         std::make_move_iterator(src.flips.end()));
    }
    return results;
}

int
bitsPerRow(const Module &module)
{
    const auto &org = module.platform().org();
    return org.columns * org.blockBytes * 8;
}

} // namespace rp::chr
