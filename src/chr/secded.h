/**
 * @file
 * A concrete Hamming SECDED(72,64) codec (Hsiao-style construction:
 * extended Hamming code with an overall parity bit).
 *
 * The ECC discussion of paper section 7.1 argues that SECDED cannot
 * contain RowPress because erroneous words frequently carry more than
 * two bitflips.  chr/ecc.h classifies outcomes combinatorially; this
 * codec lets the test suite and benches *demonstrate* the failure
 * modes bit-exactly: single-bit errors are corrected, double-bit
 * errors are detected, and >=3-bit errors are miscorrected or pass
 * silently - i.e., silent data corruption.
 */

#ifndef ROWPRESS_CHR_SECDED_H
#define ROWPRESS_CHR_SECDED_H

#include <cstdint>

namespace rp::chr {

/** A 64-bit data word with its 8 SECDED check bits. */
struct SecdedWord
{
    std::uint64_t data = 0;
    std::uint8_t check = 0;
};

/** Decode outcome of one SECDED word. */
enum class SecdedStatus
{
    Ok,             ///< No error detected.
    Corrected,      ///< Single-bit error corrected.
    DetectedDouble, ///< Double-bit error detected (uncorrectable).
    Miscorrected,   ///< >=3 errors aliased onto a correctable
                    ///< syndrome: *silent data corruption*.
};

/** SECDED(72,64) encoder/decoder. */
class Secded
{
  public:
    /** Compute the 8 check bits of @p data. */
    static std::uint8_t encode(std::uint64_t data);

    /** Encode a data word into a codeword. */
    static SecdedWord
    encodeWord(std::uint64_t data)
    {
        return {data, encode(data)};
    }

    struct DecodeResult
    {
        SecdedStatus status;
        std::uint64_t data; ///< Possibly corrected payload.
    };

    /**
     * Decode @p word.  Note that Miscorrected cannot be distinguished
     * from Corrected by a real controller; the codec reports it
     * truthfully only because the caller may compare against the
     * original payload (as the tests and the ECC bench do).
     *
     * @param original the originally written payload, used solely to
     *        classify Corrected vs Miscorrected.
     */
    static DecodeResult decode(const SecdedWord &word,
                               std::uint64_t original);

    /** Flip bit @p bit (0..71; 64..71 are check bits) of a codeword. */
    static void flipBit(SecdedWord &word, int bit);
};

} // namespace rp::chr

#endif // ROWPRESS_CHR_SECDED_H
