#include "chr/export.h"

namespace rp::chr {

std::string
csvRow(const std::vector<std::string> &fields)
{
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out += ',';
        const std::string &f = fields[i];
        const bool needs_quotes =
            f.find_first_of(",\"\n\r") != std::string::npos;
        if (!needs_quotes) {
            out += f;
            continue;
        }
        out += '"';
        for (char c : f) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
    }
    out += '\n';
    return out;
}

std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> records;
    std::vector<std::string> record;
    std::string field;
    bool in_quotes = false;
    bool field_started = false; // current record has content

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field += c;
            }
            continue;
        }
        if (c == '"') {
            in_quotes = true;
            field_started = true;
        } else if (c == ',') {
            record.push_back(std::move(field));
            field.clear();
            field_started = true;
        } else if (c == '\n') {
            record.push_back(std::move(field));
            field.clear();
            records.push_back(std::move(record));
            record.clear();
            field_started = false;
        } else {
            field += c;
            field_started = true;
        }
    }
    if (field_started || !field.empty() || !record.empty()) {
        record.push_back(std::move(field));
        records.push_back(std::move(record));
    }
    return records;
}

void
writeAcminSweepCsv(std::ostream &os, const std::string &die_id,
                   double temperature_c, AccessKind kind,
                   DataPattern pattern,
                   const std::vector<SweepPoint> &sweep)
{
    os << csvRow({"die", "temperature_c", "kind", "pattern",
                  "taggon_ns", "row", "flipped", "acmin", "flips",
                  "one_to_zero"});
    for (const auto &point : sweep) {
        for (const auto &loc : point.locations) {
            std::size_t one_to_zero = 0;
            for (const auto &vf : loc.flips)
                one_to_zero += vf.flip.oneToZero ? 1 : 0;
            os << csvRow(
                {die_id, std::to_string(temperature_c),
                 accessKindName(kind), dataPatternName(pattern),
                 std::to_string(toNs(point.tAggOn)),
                 std::to_string(loc.row),
                 loc.flipped ? "1" : "0",
                 std::to_string(loc.acmin),
                 std::to_string(loc.flips.size()),
                 std::to_string(one_to_zero)});
        }
    }
}

void
writeTAggOnMinCsv(std::ostream &os, const std::string &die_id,
                  double temperature_c,
                  const std::vector<TAggOnMinPoint> &points)
{
    os << csvRow({"die", "temperature_c", "acts", "row", "flipped",
                  "taggonmin_us"});
    for (const auto &point : points) {
        for (const auto &[row, res] : point.locations) {
            os << csvRow({die_id, std::to_string(temperature_c),
                          std::to_string(point.acts),
                          std::to_string(row),
                          res.flipped ? "1" : "0",
                          std::to_string(toUs(res.tAggOnMin))});
        }
    }
}

void
writeOverlapCsv(std::ostream &os, const std::string &die_id,
                const std::vector<OverlapResult> &results)
{
    os << csvRow({"die", "taggon_ns", "rp_cells", "overlap_rowhammer",
                  "overlap_retention"});
    for (const auto &r : results) {
        os << csvRow({die_id, std::to_string(toNs(r.tAggOn)),
                      std::to_string(r.rpCells),
                      std::to_string(r.withRowHammer),
                      std::to_string(r.withRetention)});
    }
}

} // namespace rp::chr
