/**
 * @file
 * Characterization experiment drivers (paper sections 4 and 5).
 *
 * A Module wraps one simulated DIMM (platform + the set of tested row
 * locations); the free functions below run the paper's experiments
 * over it and return structured results that the bench binaries format
 * into the corresponding tables/figures.
 */

#ifndef ROWPRESS_CHR_EXPERIMENTS_H
#define ROWPRESS_CHR_EXPERIMENTS_H

#include <memory>
#include <vector>

#include "chr/acmin.h"
#include "chr/patterns.h"
#include "common/stats.h"
#include "core/engine.h"

namespace rp::chr {

/** Construction parameters of a module under test. */
struct ModuleConfig
{
    device::DieConfig die;
    int numLocations = 32;      ///< Tested aggressor locations.
    int bank = 1;               ///< Paper: bank 1.
    double temperatureC = 50.0;
    std::uint64_t seed = 1;
    int rowStride = 16;         ///< Spacing between tested locations.
    int firstRow = 64;
};

/** Tested base rows implied by a module configuration. */
std::vector<int> baseRowsOf(const ModuleConfig &cfg);

/**
 * Copy of @p cfg that tests only the single location @p row.  The
 * engine-parallel drivers below run every location task on a private
 * Module built from such a config, so each task is a pure function of
 * (config, row, experiment parameters) — independent of scheduling
 * and thread count.
 */
ModuleConfig locationConfig(const ModuleConfig &cfg, int row);

/** One simulated DIMM under characterization. */
class Module
{
  public:
    explicit Module(const ModuleConfig &cfg);

    bender::TestPlatform &platform() { return *platform_; }
    const bender::TestPlatform &platform() const { return *platform_; }
    const ModuleConfig &config() const { return cfg_; }
    const device::DieConfig &die() const { return cfg_.die; }

    /** Base rows of the tested locations. */
    const std::vector<int> &baseRows() const { return baseRows_; }

    void setTemperature(double c) { platform_->setTemperature(c); }

  private:
    ModuleConfig cfg_;
    std::unique_ptr<bender::TestPlatform> platform_;
    std::vector<int> baseRows_;
};

/** The tAggON values swept by the characterization (paper x-axes). */
const std::vector<Time> &standardTAggOnSweep();

/** The representative tAggON subset of the data-pattern study. */
const std::vector<Time> &dataPatternTAggOnSweep();

/** Per-location outcome of an ACmin search. */
struct LocationResult
{
    int row = 0;
    bool flipped = false;
    std::uint64_t acmin = 0;
    std::vector<VictimFlip> flips; ///< Flips at the reported ACmin.
};

/** All locations of a module at one (tAggON, pattern) point. */
struct SweepPoint
{
    Time tAggOn = 0;
    std::vector<LocationResult> locations;

    /** Box summary of ACmin over locations that flipped. */
    BoxSummary acminSummary() const;
    /** Fraction of tested locations with at least one flip. */
    double fractionFlipped() const;
    /** Fraction of observed flips whose direction is 1 -> 0. */
    double fractionOneToZero() const;
    /** Mean ACmin over flipped locations (0 if none). */
    double meanAcmin() const;
};

/** ACmin search for one location (the per-location task body). */
LocationResult acminAtLocation(Module &module, int row, Time t_agg_on,
                               AccessKind kind, DataPattern pattern,
                               const SearchConfig &cfg);

/** ACmin at one tAggON for every tested location. */
SweepPoint acminPoint(Module &module, Time t_agg_on, AccessKind kind,
                      DataPattern pattern = DataPattern::CheckerBoard,
                      const SearchConfig &cfg = {});

/**
 * Engine-parallel form: (location, tAggON-chunk) tasks, each on a
 * private single-location Module (see locationConfig and the
 * re-chunking notes on acminSweep).
 */
SweepPoint acminPoint(const ModuleConfig &mc,
                      core::ExperimentEngine &engine, Time t_agg_on,
                      AccessKind kind,
                      DataPattern pattern = DataPattern::CheckerBoard,
                      const SearchConfig &cfg = {});

/** Full ACmin-vs-tAggON sweep (Figs. 6, 8, 12, 13, 14, 17). */
std::vector<SweepPoint>
acminSweep(Module &module, const std::vector<Time> &t_agg_ons,
           AccessKind kind,
           DataPattern pattern = DataPattern::CheckerBoard,
           const SearchConfig &cfg = {});

/**
 * Engine-parallel sweep: (location, tAggON-chunk) tasks — when the
 * engine has more workers than locations, each location's sweep is
 * split into contiguous tAggON slices (ExperimentEngine::chunksPerTask
 * + core::splitRanges) so sweep jobs scale past numLocations on
 * many-core hosts.  Each task runs on a private single-location
 * Module and the oracle-backed search never mutates the platform, so
 * any chunking is bit-identical to the serial per-location sweep.
 */
std::vector<SweepPoint>
acminSweep(const ModuleConfig &mc, core::ExperimentEngine &engine,
           const std::vector<Time> &t_agg_ons, AccessKind kind,
           DataPattern pattern = DataPattern::CheckerBoard,
           const SearchConfig &cfg = {});

/** Per-location tAggONmin at a fixed activation count (Figs. 9, 15). */
struct TAggOnMinPoint
{
    std::uint64_t acts = 0;
    std::vector<std::pair<int, TAggOnMinResult>> locations;

    BoxSummary summary() const;   ///< Over flipped locations (us).
};

TAggOnMinPoint tAggOnMinPoint(Module &module, std::uint64_t acts,
                              AccessKind kind,
                              DataPattern pattern =
                                  DataPattern::CheckerBoard,
                              const SearchConfig &cfg = {});

/** Engine-parallel form: one task per tested location. */
TAggOnMinPoint tAggOnMinPoint(const ModuleConfig &mc,
                              core::ExperimentEngine &engine,
                              std::uint64_t acts, AccessKind kind,
                              DataPattern pattern =
                                  DataPattern::CheckerBoard,
                              const SearchConfig &cfg = {});

/**
 * Retention-failure test: fill the victim rows, disable refresh for
 * @p seconds at @p temp_c, and report the failed cells (paper
 * footnote 12 methodology).
 */
std::vector<VictimFlip> retentionFailures(Module &module, double seconds,
                                          double temp_c);

/**
 * BER of the ONOFF pattern at maximum activation count (Fig. 22):
 * returns the highest per-victim-row bit error rate over
 * @p repeats attempts.
 */
double onOffBer(Module &module, int location_idx, AccessKind kind,
                Time delta_a2a, double on_fraction, int repeats = 3);

/**
 * Max-activation-count press attempt (used by BER/ECC experiments);
 * full-scan inspection of all victim rows.
 */
AttemptResult maxActivationAttempt(Module &module, int location_idx,
                                   AccessKind kind, DataPattern pattern,
                                   Time t_agg_on);

/**
 * Engine-parallel max-activation attempts over @p rows (one result
 * per row, in order).  Tasks are (location, victim-chunk) pairs —
 * when the engine has more workers than locations, each location's
 * full-scan victim inspection is split across several tasks that each
 * replay the (cheap, fast-forwarded) attempt program on a private
 * Module and scan only their chunk of victim rows.  Row evaluation is
 * independent and the ThresholdStore is read-only, so any chunking is
 * bit-identical to the serial per-location scan.
 */
std::vector<AttemptResult>
maxActivationAttempts(const ModuleConfig &mc,
                      core::ExperimentEngine &engine,
                      const std::vector<int> &rows, AccessKind kind,
                      DataPattern pattern, Time t_agg_on);

/** Bits per victim row of a module (BER denominators). */
int bitsPerRow(const Module &module);

} // namespace rp::chr

#endif // ROWPRESS_CHR_EXPERIMENTS_H
