/**
 * @file
 * Functional cache-presence model for the real-system demonstration.
 *
 * The demo only needs to know whether a load hits the cache hierarchy
 * (no DRAM traffic) or misses (DRAM access), and to honour
 * clflushopt's invalidate semantics.  Aggressor rows are read-only
 * after initialization, so flushed lines are clean and flushing
 * produces no write-back traffic.
 */

#ifndef ROWPRESS_SYS_CACHE_H
#define ROWPRESS_SYS_CACHE_H

#include <cstdint>
#include <unordered_set>

namespace rp::sys {

/** Presence-set cache model with clflushopt support. */
class CacheModel
{
  public:
    /** Load a line; returns true on hit, inserts on miss. */
    bool
    load(std::uint64_t line_addr)
    {
        auto [it, inserted] = lines_.insert(line_addr);
        (void)it;
        return !inserted;
    }

    /** clflushopt: drop the line (clean lines write nothing back). */
    void
    clflush(std::uint64_t line_addr)
    {
        lines_.erase(line_addr);
    }

    void clear() { lines_.clear(); }
    std::size_t residentLines() const { return lines_.size(); }

  private:
    std::unordered_set<std::uint64_t> lines_;
};

} // namespace rp::sys

#endif // ROWPRESS_SYS_CACHE_H
