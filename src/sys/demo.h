/**
 * @file
 * Real-system demonstration of RowPress (paper section 6 and
 * Appendix G): user-level access patterns (Algorithms 1 and 2) driven
 * through a cache model and an adaptive-open-row memory controller
 * against a TRR-protected DDR4 chip model.
 */

#ifndef ROWPRESS_SYS_DEMO_H
#define ROWPRESS_SYS_DEMO_H

#include <cstdint>

#include "common/stats.h"
#include "device/chip.h"
#include "sys/memctrl.h"

namespace rp::sys {

/** Parameters of the demonstration program (Algorithm 1 / 2). */
struct DemoConfig
{
    /** The demo system's module: Samsung 8Gb C-die (section 6.1). */
    std::string dieId = "S-8Gb-C";
    /** DIMM temperature of the loaded system under sustained attack. */
    double temperatureC = 65.0;

    int numAggrActs = 4;      ///< NUM_AGGR_ACTS.
    int numReads = 16;        ///< NUM_READS (cache blocks per ACT).
    int numIters = 24000;     ///< NUM_ITER (scaled from the paper's 800K).
    int numVictims = 12;      ///< Victim rows tested (paper: 1500).

    int numDummies = 16;      ///< TRR-bypass dummy rows (section 6.2).
    int dummyActsPerIter = 4; ///< Activations per dummy per iteration.

    /** Algorithm 2: flush each block right after reading it. */
    bool interleavedFlush = false;
    bool trrEnabled = true;
    bool syncWithRefresh = true;

    // Core-side timing.  The effective per-read row-open contribution
    // (~24 ns: uncore + fill-buffer contention with the in-loop
    // flushes) is set so that the aggressor phase outgrows a tREFI
    // slot between NUM_READS = 32 and 48, where the paper's bitflip
    // counts collapse (Obsv. 21).  Each dummy access is a flushed,
    // fenced read (~150 ns).
    Time readSpacing = 24 * units::NS;
    Time flushCost = 6 * units::NS;
    Time mfenceCost = 45 * units::NS;
    /** Dummy accesses are plain read+flush pairs (no fence): the
     *  64-activation dummy phase takes ~2 us and sits right before
     *  the REF the iteration synchronizes on. */
    Time dummySpacing = 30 * units::NS;

    std::uint64_t seed = 1;
};

/** Outcome of one demo run (one cell of Fig. 23 / Fig. 49). */
struct DemoResult
{
    std::uint64_t totalBitflips = 0;
    int rowsWithBitflips = 0;
    double avgTAggOnNs = 0.0;     ///< Measured mean aggressor on-time.
    std::uint64_t aggressorActs = 0;
    std::uint64_t targetedRefreshes = 0;
};

/** Run the demonstration program over all victim rows. */
DemoResult runDemo(const DemoConfig &cfg);

/** Result of the row-open-time verification probe (Fig. 24). */
struct LatencyProbeResult
{
    Histogram first;        ///< First cache-block access (needs ACT).
    Histogram rest;         ///< Subsequent accesses (row already open).
    double medianFirstCycles = 0.0;
    double medianRestCycles = 0.0;
};

/**
 * Reproduce the section 6.3 verification: measure per-cache-block load
 * latency for the first vs the remaining blocks of a freshly-closed
 * DRAM row.  @p cpu_ghz converts the controller's timings to the
 * time-stamp-counter cycles the paper reports.
 */
LatencyProbeResult rowOpenLatencyProbe(int trials = 100000,
                                       double cpu_ghz = 1.3,
                                       std::uint64_t seed = 1);

} // namespace rp::sys

#endif // ROWPRESS_SYS_DEMO_H
