#include "sys/demo.h"

#include <algorithm>

#include "common/rng.h"
#include "dram/timing.h"
#include "sys/cache.h"

namespace rp::sys {

using namespace rp::literals;

namespace {

/** Line address encoding used by the demo's cache model. */
std::uint64_t
lineAddr(int bank, int row, int column)
{
    return (std::uint64_t(std::uint32_t(bank)) << 40) |
           (std::uint64_t(std::uint32_t(row)) << 8) |
           std::uint32_t(column);
}

/** Per-victim working state of the demonstration program. */
struct VictimRun
{
    int bank;
    int victim;
    int aggr[2];
    std::vector<int> dummies;
};

} // namespace

DemoResult
runDemo(const DemoConfig &cfg)
{
    dram::Organization org;
    device::Chip chip(device::dieById(cfg.dieId), org, dram::ddr4_2400(),
                      cfg.seed);
    chip.setTemperature(cfg.temperatureC);

    MemCtrl::Config mc_cfg;
    mc_cfg.trrEnabled = cfg.trrEnabled;
    MemCtrl mc(chip, mc_cfg);
    CacheModel cache;

    DemoResult result;
    const int bank = 1;
    const std::uint64_t acts_before = mc.activates();

    for (int v = 0; v < cfg.numVictims; ++v) {
        VictimRun run;
        run.bank = bank;
        run.victim = 2048 + v * 512;
        run.aggr[0] = run.victim - 1;
        run.aggr[1] = run.victim + 1;
        // Dummy rows at least 100 rows away from the victim, spread out
        // so they do not disturb each other (paper footnote 21).
        for (int d = 0; d < cfg.numDummies; ++d)
            run.dummies.push_back(run.victim + 128 + d * 8);

        mc.trackRow(run.bank, run.aggr[0]);
        mc.trackRow(run.bank, run.aggr[1]);

        Time t = mc.now();
        chip.fillRow(run.bank, run.victim, 0x55, t);
        chip.fillRow(run.bank, run.aggr[0], 0xAA, t);
        chip.fillRow(run.bank, run.aggr[1], 0xAA, t);
        for (int d : run.dummies)
            chip.fillRow(run.bank, d, 0x00, t);

        // Per-read row-open contribution.  Algorithm 2 interleaves a
        // flush after every load, stretching the open time further
        // (Appendix G).
        const Time spacing = cfg.interleavedFlush
                                 ? cfg.readSpacing + 4 * cfg.flushCost
                                 : cfg.readSpacing;

        for (int iter = 0; iter < cfg.numIters; ++iter) {
            // Synchronize with refresh: start each iteration right
            // after a REF so the aggressor phase sits at the start of
            // a tREFI slot and the dummy phase covers the next REF
            // (prior-work technique the demo borrows, section 6.2).
            if (cfg.syncWithRefresh) {
                mc.advanceTo(mc.nextRefreshAt());
                t = std::max(t, mc.now());
            }

            for (int a = 0; a < cfg.numAggrActs; ++a) {
                // Read NUM_READS blocks of each aggressor, then flush
                // them and fence (Algorithm 1, lines 8-17; the flush
                // block is inside the NUM_AGGR_ACTS loop).
                for (int side = 0; side < 2; ++side) {
                    for (int j = 0; j < cfg.numReads; ++j) {
                        const std::uint64_t la =
                            lineAddr(run.bank, run.aggr[side], j);
                        if (cache.load(la))
                            continue; // served on-chip
                        const Time ready = mc.readBlock(
                            run.bank, run.aggr[side], j, t);
                        t = std::max(t + spacing, ready - 40_ns);
                        if (cfg.interleavedFlush)
                            cache.clflush(la);
                    }
                }
                if (!cfg.interleavedFlush) {
                    for (int side = 0; side < 2; ++side) {
                        for (int j = 0; j < cfg.numReads; ++j)
                            cache.clflush(
                                lineAddr(run.bank, run.aggr[side], j));
                    }
                    t += Time(2 * cfg.numReads) * cfg.flushCost;
                }
                t += cfg.mfenceCost;
            }

            // Activate the dummy rows to bypass TRR (line 18): each
            // dummy access is a flushed, fenced DRAM read, so the
            // dummy phase is long enough to cover the upcoming REF.
            for (int rep = 0; rep < cfg.dummyActsPerIter; ++rep) {
                for (int d : run.dummies) {
                    const std::uint64_t la = lineAddr(run.bank, d, 0);
                    cache.clflush(la);
                    const Time ready = mc.readBlock(run.bank, d, 0, t);
                    t = std::max(t + cfg.dummySpacing, ready - 40_ns);
                    cache.load(la);
                }
            }

            mc.advanceTo(t);
            t = std::max(t, mc.now());
        }

        // Inspect the victim row (latched flips + any pending dose).
        chip.materializeRow(run.bank, run.victim, mc.now());
        const auto flips = chip.storedFlipBits(run.bank, run.victim);
        result.totalBitflips += flips.size();
        if (!flips.empty())
            ++result.rowsWithBitflips;

        // Drop the cached aggressor lines before the next victim.
        cache.clear();
    }

    result.aggressorActs = mc.activates() - acts_before;
    result.targetedRefreshes = mc.targetedRefreshes();
    if (mc.trackedPrecharges() > 0)
        result.avgTAggOnNs =
            toNs(mc.trackedOpenTime()) / double(mc.trackedPrecharges());
    return result;
}

LatencyProbeResult
rowOpenLatencyProbe(int trials, double cpu_ghz, std::uint64_t seed)
{
    dram::Organization org;
    device::Chip chip(device::dieById("S-8Gb-C"), org, dram::ddr4_2400(),
                      seed);
    MemCtrl::Config mc_cfg;
    MemCtrl mc(chip, mc_cfg);
    Rng rng(seed);

    LatencyProbeResult res{Histogram(160, 280, 24),
                           Histogram(160, 280, 24), 0.0, 0.0};

    // Base load-to-use latency of an LLC-missing access on the demo
    // system (core + uncore + DRAM column access), in ns.
    const double base_ns = 125.0;
    const int bank = 1;
    const int tested_row = 4096;
    const int other_row = 8192;

    std::vector<double> first_samples, rest_samples;
    Time t = mc.now();
    for (int trial = 0; trial < trials; ++trial) {
        // Step 2 of the probe: touch another row to force a PRE.
        mc.readBlock(bank, other_row, 0, t + 100_ns);
        t = mc.now() + 100_ns;

        // First access re-opens the row: pays tRCD.
        const Time t0 = t;
        const Time r0 = mc.readBlock(bank, tested_row, 0, t0);
        const double first_ns =
            base_ns + toNs(r0 - t0) + 2.0 * rng.normal();
        const double first_cy = first_ns * cpu_ghz;
        res.first.add(first_cy);
        first_samples.push_back(first_cy);
        t = r0;

        // A few of the remaining accesses (row now open).
        for (int j = 1; j <= 4; ++j) {
            const Time tj = t;
            const Time rj = mc.readBlock(bank, tested_row, j, tj);
            const double rest_ns =
                base_ns + toNs(rj - tj) + 2.0 * rng.normal();
            const double rest_cy = rest_ns * cpu_ghz;
            res.rest.add(rest_cy);
            rest_samples.push_back(rest_cy);
            t = rj;
        }
        t += 200_ns;
    }

    res.medianFirstCycles = summarize(std::move(first_samples)).median;
    res.medianRestCycles = summarize(std::move(rest_samples)).median;
    return res;
}

} // namespace rp::sys
