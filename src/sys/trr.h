/**
 * @file
 * In-DRAM Target Row Refresh (TRR) model.
 *
 * Real DDR4 TRR implementations sample recently activated rows and
 * refresh their neighbors during regular REF commands (Frigo et al.,
 * "TRRespass"; Hassan et al., "U-TRR").  We model the two mechanisms
 * observed on commodity parts:
 *
 *  - a *recency sampler*: the rows activated immediately before a REF
 *    are treated as aggressor candidates and their neighbors are
 *    refreshed.  This is why the paper's demonstration synchronizes
 *    its access pattern with refresh and parks 16 dummy-row
 *    activations right before each REF (section 6.2) - and why the
 *    attack collapses once the aggressor phase grows past the tREFI
 *    slot and a REF lands in the middle of it (Obsv. 21);
 *  - a small Misra-Gries counter table that catches rows hammered at a
 *    sustained high rate even if they dodge the recency sampler.
 */

#ifndef ROWPRESS_SYS_TRR_H
#define ROWPRESS_SYS_TRR_H

#include <cstdint>
#include <vector>

namespace rp::sys {

/** Sampler-based in-DRAM TRR engine for one bank. */
class TrrEngine
{
  public:
    struct Config
    {
        int recentRows = 2;       ///< Recency-sampled rows per REF.
        int tableEntries = 4;     ///< Counter-tracked candidates.
        int neighborhood = 2;     ///< Rows refreshed on each side.
        /** Counter value required before a victim refresh triggers. */
        std::uint32_t actThreshold = 48;
    };

    TrrEngine();
    explicit TrrEngine(Config cfg);

    /** Observe an activation (called by the DRAM chip on every ACT). */
    void onActivate(int row);

    /**
     * A REF command arrived: return the victim rows to refresh (the
     * neighbors of the recency-sampled rows, plus the neighbors of any
     * counter-table candidate past the threshold).
     */
    std::vector<int> onRefresh();

    /** Number of REFs that performed at least one victim refresh. */
    std::uint64_t targetedRefreshes() const { return targeted_; }

  private:
    struct Entry
    {
        int row = -1;
        std::uint32_t count = 0;
    };

    void appendNeighbors(int row, std::vector<int> &out) const;

    Config cfg_;
    std::vector<Entry> table_;
    std::vector<int> recent_;   ///< Most recent distinct rows, newest first.
    std::uint64_t targeted_ = 0;
};

} // namespace rp::sys

#endif // ROWPRESS_SYS_TRR_H
