/**
 * @file
 * Adaptive-open-row memory controller of the real-system demo.
 *
 * Models the behaviour the paper verifies in section 6.3: the
 * controller keeps a DRAM row open while requests keep hitting it, so
 * a program that reads many cache blocks of the same row stretches the
 * aggressor's tAggON.  Auto-refresh fires every tREFI and drives the
 * in-DRAM TRR engine.
 */

#ifndef ROWPRESS_SYS_MEMCTRL_H
#define ROWPRESS_SYS_MEMCTRL_H

#include <unordered_set>
#include <vector>

#include "device/chip.h"
#include "sys/trr.h"

namespace rp::sys {

/** Single-channel memory controller over a device::Chip. */
class MemCtrl
{
  public:
    struct Config
    {
        bool autoRefresh = true;
        bool trrEnabled = true;
        TrrEngine::Config trr;
        /** Extra on-die queuing/arbitration cost per column access. */
        Time columnOverhead = 4 * units::NS;
    };

    MemCtrl(device::Chip &chip, Config cfg);

    device::Chip &chip() { return chip_; }
    Time now() const { return now_; }
    Time nextRefreshAt() const { return nextRef_; }
    std::uint64_t refreshesIssued() const { return refs_; }
    std::uint64_t activates() const { return acts_; }
    std::uint64_t precharges() const { return pres_; }
    /** Cumulative row-open time across all precharged intervals. */
    Time openTimeSum() const { return openTimeSum_; }

    /** Track a row's open intervals (e.g., the demo's aggressors). */
    void trackRow(int bank, int row);
    Time trackedOpenTime() const { return trackedOpenTime_; }
    std::uint64_t trackedPrecharges() const { return trackedPres_; }

    /** Total targeted (TRR) refreshes across banks. */
    std::uint64_t targetedRefreshes() const;

    /**
     * Serve a cache-block read arriving at @p arrive; returns the
     * data-ready time.  Opens the row if needed; an open row stays
     * open (adaptive open-row policy).
     */
    Time readBlock(int bank, int row, int column, Time arrive);

    /** Let wall-clock advance to @p t, performing due refreshes. */
    void advanceTo(Time t);

  private:
    void doRefresh(Time t);
    void closeOpenRows(Time t);

    device::Chip &chip_;
    Config cfg_;
    std::vector<TrrEngine> trr_;
    Time now_ = 0;
    Time nextRef_ = 0;
    std::uint64_t refs_ = 0;
    std::uint64_t acts_ = 0;
    std::uint64_t pres_ = 0;
    Time openTimeSum_ = 0;
    std::unordered_set<std::uint64_t> tracked_;
    Time trackedOpenTime_ = 0;
    std::uint64_t trackedPres_ = 0;

    void recordInterval(int bank, const dram::Bank::OpenInterval &iv);
};

} // namespace rp::sys

#endif // ROWPRESS_SYS_MEMCTRL_H
