#include "sys/memctrl.h"

#include <algorithm>

namespace rp::sys {

MemCtrl::MemCtrl(device::Chip &chip, Config cfg)
    : chip_(chip), cfg_(cfg)
{
    trr_.resize(std::size_t(chip_.org().totalBanks()),
                TrrEngine(cfg_.trr));
    nextRef_ = chip_.timing().tREFI;
}

std::uint64_t
MemCtrl::targetedRefreshes() const
{
    std::uint64_t total = 0;
    for (const auto &t : trr_)
        total += t.targetedRefreshes();
    return total;
}

void
MemCtrl::trackRow(int bank, int row)
{
    tracked_.insert((std::uint64_t(std::uint32_t(bank)) << 32) |
                    std::uint32_t(row));
}

void
MemCtrl::recordInterval(int bank, const dram::Bank::OpenInterval &iv)
{
    openTimeSum_ += iv.onTime();
    ++pres_;
    const std::uint64_t key =
        (std::uint64_t(std::uint32_t(bank)) << 32) |
        std::uint32_t(iv.row);
    if (tracked_.count(key)) {
        trackedOpenTime_ += iv.onTime();
        ++trackedPres_;
    }
}

void
MemCtrl::closeOpenRows(Time t)
{
    for (int b = 0; b < chip_.org().totalBanks(); ++b) {
        auto &bank = chip_.bank(b);
        if (bank.isOpen()) {
            const Time pre_at =
                std::max(t, bank.earliest(dram::Command::PRE));
            auto interval = chip_.pre(b, pre_at);
            recordInterval(b, interval);
            now_ = std::max(now_, pre_at);
        }
    }
}

void
MemCtrl::doRefresh(Time t)
{
    closeOpenRows(t);
    Time ref_at = std::max(t, now_);
    for (int b = 0; b < chip_.org().totalBanks(); ++b)
        ref_at = std::max(ref_at,
                          chip_.bank(b).earliest(dram::Command::REF));
    chip_.refresh(ref_at);
    now_ = ref_at + chip_.timing().tRFC;
    ++refs_;

    if (cfg_.trrEnabled) {
        // TRR piggybacks victim refreshes on the REF.
        for (int b = 0; b < chip_.org().totalBanks(); ++b) {
            for (int victim : trr_[std::size_t(b)].onRefresh()) {
                if (victim >= 0 && victim < chip_.org().rows)
                    chip_.refreshRow(b, victim, now_);
            }
        }
    }
}

void
MemCtrl::advanceTo(Time t)
{
    while (cfg_.autoRefresh && nextRef_ <= t) {
        doRefresh(nextRef_);
        nextRef_ += chip_.timing().tREFI;
    }
    now_ = std::max(now_, t);
}

Time
MemCtrl::readBlock(int bank, int row, int column, Time arrive)
{
    advanceTo(arrive);
    Time t = std::max(now_, arrive);

    auto &bk = chip_.bank(bank);
    if (bk.isOpen() && bk.openRow() != row) {
        const Time pre_at = std::max(t, bk.earliest(dram::Command::PRE));
        auto interval = chip_.pre(bank, pre_at);
        recordInterval(bank, interval);
        t = pre_at;
    }
    if (!bk.isOpen()) {
        const Time act_at = std::max(t, bk.earliest(dram::Command::ACT));
        chip_.act(bank, row, act_at);
        ++acts_;
        if (cfg_.trrEnabled)
            trr_[std::size_t(bank)].onActivate(row);
        t = act_at;
    }
    const Time rd_at = std::max(t + cfg_.columnOverhead,
                                bk.earliest(dram::Command::RD));
    const Time ready = chip_.read(bank, column, rd_at);
    now_ = std::max(now_, rd_at);
    return ready;
}

} // namespace rp::sys
