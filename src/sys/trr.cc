#include "sys/trr.h"

#include <algorithm>

namespace rp::sys {

TrrEngine::TrrEngine() : TrrEngine(Config{}) {}

TrrEngine::TrrEngine(Config cfg) : cfg_(cfg)
{
    table_.resize(std::size_t(cfg_.tableEntries));
}

void
TrrEngine::onActivate(int row)
{
    // Recency sampler: remember the latest distinct rows.
    if (recent_.empty() || recent_.front() != row) {
        recent_.insert(recent_.begin(), row);
        if (int(recent_.size()) > cfg_.recentRows)
            recent_.resize(std::size_t(cfg_.recentRows));
    }

    // Misra-Gries frequent-item summary.
    for (auto &e : table_) {
        if (e.row == row) {
            ++e.count;
            return;
        }
    }
    for (auto &e : table_) {
        if (e.row < 0 || e.count == 0) {
            e.row = row;
            e.count = 1;
            return;
        }
    }
    for (auto &e : table_)
        --e.count;
}

void
TrrEngine::appendNeighbors(int row, std::vector<int> &out) const
{
    for (int d = 1; d <= cfg_.neighborhood; ++d) {
        out.push_back(row - d);
        out.push_back(row + d);
    }
}

std::vector<int>
TrrEngine::onRefresh()
{
    std::vector<int> victims;

    for (int row : recent_)
        appendNeighbors(row, victims);
    recent_.clear();

    auto top = std::max_element(
        table_.begin(), table_.end(),
        [](const Entry &a, const Entry &b) { return a.count < b.count; });
    if (top != table_.end() && top->row >= 0 &&
        top->count >= cfg_.actThreshold) {
        appendNeighbors(top->row, victims);
        top->row = -1;
        top->count = 0;
    }

    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    if (!victims.empty())
        ++targeted_;
    return victims;
}

} // namespace rp::sys
