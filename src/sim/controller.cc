#include "sim/controller.h"

#include <algorithm>

#include "common/logging.h"

namespace rp::sim {

Controller::Controller(ControllerConfig cfg) : cfg_(std::move(cfg))
{
    banks_.reserve(std::size_t(cfg_.org.totalBanks()));
    for (int b = 0; b < cfg_.org.totalBanks(); ++b)
        banks_.emplace_back(cfg_.timing);
    ranks_.resize(std::size_t(cfg_.org.ranks));
    for (int r = 0; r < cfg_.org.ranks; ++r)
        ranks_[std::size_t(r)].nextRef = cfg_.timing.tREFI * (r + 1) /
                                         std::max(1, cfg_.org.ranks);
    nextRefWindow_ = cfg_.timing.tREFW;
}

bool
Controller::canEnqueue(bool write) const
{
    const auto &q = write ? writeQ_ : readQ_;
    return q.size() < cfg_.queueSize;
}

void
Controller::enqueue(Request req)
{
    auto &q = req.write ? writeQ_ : readQ_;
    q.push_back(std::move(req));
}

std::uint64_t
Controller::rowActCount(int flat_bank, int row) const
{
    const std::uint64_t key =
        (std::uint64_t(std::uint32_t(flat_bank)) << 32) |
        std::uint32_t(row);
    auto it = rowActs_.find(key);
    return it != rowActs_.end() ? it->second : 0;
}

void
Controller::recordAct(int flat_bank, int row)
{
    const std::uint64_t key =
        (std::uint64_t(std::uint32_t(flat_bank)) << 32) |
        std::uint32_t(row);
    const std::uint64_t n = ++rowActs_[key];
    stats_.maxRowActs = std::max(stats_.maxRowActs, n);
}

void
Controller::issueAct(BankState &bs, int flat_bank, int row, Time at,
                     bool preventive)
{
    bs.bank.act(row, at);
    ++stats_.acts;
    recordAct(flat_bank, row);
    if (preventive) {
        ++stats_.preventiveActs;
        return;
    }
    if (cfg_.mitigation) {
        std::vector<int> victims;
        cfg_.mitigation->onActivate(flat_bank, row, victims);
        for (int v : victims) {
            if (v >= 0 && v < cfg_.org.rows)
                bs.victimQueue.push_back(v);
        }
    }
}

bool
Controller::tickRefresh(Time now)
{
    if (now >= nextRefWindow_) {
        if (cfg_.mitigation)
            cfg_.mitigation->onRefreshWindow();
        nextRefWindow_ += cfg_.timing.tREFW;
    }

    for (int r = 0; r < cfg_.org.ranks; ++r) {
        RankState &rank = ranks_[std::size_t(r)];
        if (now < rank.nextRef && !rank.refPending)
            continue;
        rank.refPending = true;

        // Precharge any open bank of the rank (one command per tick).
        const int base = r * cfg_.org.banksPerRank();
        bool all_closed = true;
        Time ref_ready = now;
        for (int b = base; b < base + cfg_.org.banksPerRank(); ++b) {
            auto &bs = banks_[std::size_t(b)];
            if (bs.bank.isOpen()) {
                all_closed = false;
                if (bs.bank.canIssue(dram::Command::PRE, now)) {
                    bs.bank.pre(now);
                    bs.refreshingVictim = false;
                    return true;
                }
            } else {
                ref_ready = std::max(
                    ref_ready, bs.bank.earliest(dram::Command::REF));
            }
        }
        if (!all_closed || ref_ready > now)
            return true; // waiting on PRE/tRP; rank blocked.

        for (int b = base; b < base + cfg_.org.banksPerRank(); ++b)
            banks_[std::size_t(b)].bank.ref(now);
        ++stats_.refreshes;
        rank.refPending = false;
        rank.nextRef += cfg_.timing.tREFI;
        return true;
    }
    return false;
}

bool
Controller::tickVictimRefresh(Time now)
{
    for (int b = 0; b < cfg_.org.totalBanks(); ++b) {
        auto &bs = banks_[std::size_t(b)];
        // Finish an in-flight victim refresh with a PRE.
        if (bs.refreshingVictim &&
            bs.bank.canIssue(dram::Command::PRE, now)) {
            bs.bank.pre(now);
            bs.refreshingVictim = false;
            return true;
        }
        if (bs.victimQueue.empty() || bs.refreshingVictim)
            continue;
        if (bs.bank.isOpen()) {
            if (bs.bank.canIssue(dram::Command::PRE, now)) {
                bs.bank.pre(now);
                return true;
            }
            continue;
        }
        if (bs.bank.canIssue(dram::Command::ACT, now)) {
            const int victim = bs.victimQueue.front();
            bs.victimQueue.pop_front();
            issueAct(bs, b, victim, now, /*preventive=*/true);
            bs.refreshingVictim = true;
            return true;
        }
    }
    return false;
}

bool
Controller::tickMro(Time now)
{
    if (cfg_.tMro <= 0)
        return false;
    for (int b = 0; b < cfg_.org.totalBanks(); ++b) {
        auto &bs = banks_[std::size_t(b)];
        if (!bs.bank.isOpen() || bs.refreshingVictim)
            continue;
        if (now - bs.bank.openedAt() >= cfg_.tMro &&
            bs.bank.canIssue(dram::Command::PRE, now)) {
            bs.bank.pre(now);
            ++stats_.forcedPrecharges;
            return true;
        }
    }
    return false;
}

bool
Controller::tickQueue(std::deque<Request> &queue, Time now)
{
    // FR-FCFS pass 1: oldest row-hit request whose column command is
    // ready.
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        const int b = it->addr.flatBank(cfg_.org);
        auto &bs = banks_[std::size_t(b)];
        if (bs.refreshingVictim || !bs.bank.isOpen() ||
            bs.bank.openRow() != it->addr.row)
            continue;
        // A t_mro-expired row must not serve further hits.
        if (cfg_.tMro > 0 && now - bs.bank.openedAt() >= cfg_.tMro)
            continue;
        const auto cmd = it->write ? dram::Command::WR
                                   : dram::Command::RD;
        if (!bs.bank.canIssue(cmd, now))
            continue;
        if (!it->classifiedMiss)
            ++stats_.rowHits;
        if (it->write) {
            bs.bank.write(now);
            ++stats_.writes;
        } else {
            const Time ready = bs.bank.read(now);
            if (it->slot)
                it->slot->doneAt = ready;
            ++stats_.reads;
        }
        queue.erase(it);
        return true;
    }

    // FR-FCFS pass 2: oldest request; open its row (PRE + ACT).
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        const int b = it->addr.flatBank(cfg_.org);
        auto &bs = banks_[std::size_t(b)];
        if (bs.refreshingVictim)
            continue;
        const int rank = it->addr.rank;
        if (ranks_[std::size_t(rank)].refPending)
            continue;
        if (bs.bank.isOpen()) {
            if (bs.bank.openRow() == it->addr.row)
                continue; // hit, but column not ready yet.
            if (bs.bank.canIssue(dram::Command::PRE, now)) {
                bs.bank.pre(now);
                return true;
            }
            continue;
        }
        if (bs.bank.canIssue(dram::Command::ACT, now)) {
            issueAct(bs, b, it->addr.row, now, /*preventive=*/false);
            if (!it->classifiedMiss) {
                it->classifiedMiss = true;
                ++stats_.rowMisses;
            }
            return true;
        }
    }
    return false;
}

void
Controller::tick(Time now)
{
    if (tickRefresh(now))
        return;
    if (tickVictimRefresh(now))
        return;
    if (tickMro(now))
        return;

    // Write-drain policy: serve writes when the write queue is nearly
    // full or there is nothing else to do.
    if (drainingWrites_) {
        if (writeQ_.empty() || readQ_.size() >= cfg_.queueSize / 2)
            drainingWrites_ = false;
    } else if (writeQ_.size() >= cfg_.queueSize * 7 / 8 ||
               (readQ_.empty() && !writeQ_.empty())) {
        drainingWrites_ = true;
    }

    if (drainingWrites_) {
        if (tickQueue(writeQ_, now))
            return;
        tickQueue(readQ_, now);
    } else {
        if (tickQueue(readQ_, now))
            return;
        tickQueue(writeQ_, now);
    }
}

bool
Controller::drained() const
{
    if (!readQ_.empty() || !writeQ_.empty())
        return false;
    for (const auto &bs : banks_) {
        if (!bs.victimQueue.empty() || bs.refreshingVictim)
            return false;
    }
    return true;
}

} // namespace rp::sim
