#include "sim/system.h"

#include "common/logging.h"

namespace rp::sim {

double
SystemResult::weightedSpeedup(const std::vector<double> &alone_ipcs) const
{
    double ws = 0.0;
    for (std::size_t i = 0; i < cores.size() && i < alone_ipcs.size();
         ++i) {
        if (alone_ipcs[i] > 0.0)
            ws += cores[i].ipc / alone_ipcs[i];
    }
    return ws;
}

SystemResult
runSystem(const SystemConfig &cfg)
{
    if (cfg.workloads.empty())
        fatal("runSystem: no workloads configured");

    Controller mem(cfg.mem);
    dram::AddressMapper mapper(cfg.mem.org);

    std::vector<Core> cores;
    cores.reserve(cfg.workloads.size());
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        workloads::TraceGen gen(cfg.workloads[i], mapper,
                                hashU64(cfg.seed, i));
        cores.emplace_back(int(i), std::move(gen), mem, cfg.core);
    }

    const Time mem_cycle = cfg.mem.timing.tCK;
    Time next_mem_tick = 0;

    std::uint64_t cycle = 0;
    for (; cycle < cfg.maxCycles; ++cycle) {
        const Time now = Time(cycle) * cfg.cpuCycle;

        bool all_done = true;
        for (auto &core : cores) {
            core.tick(now);
            all_done = all_done && core.done();
        }
        if (all_done)
            break;

        while (next_mem_tick <= now) {
            mem.tick(next_mem_tick);
            next_mem_tick += mem_cycle;
        }
    }
    if (cycle >= cfg.maxCycles)
        warn("runSystem: hit the %llu-cycle safety cap",
             (unsigned long long)cfg.maxCycles);

    SystemResult result;
    for (auto &core : cores) {
        SystemResult::PerCore pc;
        pc.workload = core.workload().name;
        pc.instrs = core.retired();
        pc.cycles = core.cycles();
        pc.ipc = core.ipc();
        result.cores.push_back(pc);
    }
    result.mem = mem.stats();
    return result;
}

std::vector<SystemResult>
runSystems(const std::vector<SystemJob> &jobs,
           core::ExperimentEngine &engine)
{
    return engine.map<SystemResult>(
        jobs.size(), [&](const core::TaskContext &ctx) {
            const SystemJob &job = jobs[ctx.index];
            SystemConfig cfg = job.cfg;
            std::unique_ptr<mitigation::Mitigation> mit;
            if (job.mitigationFactory) {
                mit = job.mitigationFactory();
                cfg.mem.mitigation = mit.get();
            }
            return runSystem(cfg);
        });
}

std::vector<SystemResult>
runSystems(const std::vector<SystemConfig> &cfgs,
           core::ExperimentEngine &engine)
{
    std::vector<SystemJob> jobs;
    jobs.reserve(cfgs.size());
    for (const auto &cfg : cfgs)
        jobs.push_back({cfg, nullptr});
    return runSystems(jobs, engine);
}

double
aloneIpc(const workloads::WorkloadParams &workload,
         const ControllerConfig &mem, const CoreConfig &core,
         std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.mem = mem;
    cfg.mem.mitigation = nullptr;
    cfg.core = core;
    cfg.workloads = {workload};
    cfg.seed = seed;
    return runSystem(cfg).ipcOf(0);
}

std::vector<double>
aloneIpcs(const std::vector<workloads::WorkloadParams> &ws,
          const ControllerConfig &mem, const CoreConfig &core,
          core::ExperimentEngine &engine, std::uint64_t seed)
{
    return engine.map<double>(
        ws.size(), [&](const core::TaskContext &ctx) {
            return aloneIpc(ws[ctx.index], mem, core, seed);
        });
}

} // namespace rp::sim
