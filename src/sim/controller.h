/**
 * @file
 * Trace-driven DDR4 memory controller for the mitigation evaluation
 * (paper section 7 / Appendix D): FR-FCFS scheduling, open-row /
 * capped / minimally-open row policies (t_mro), rank-level refresh,
 * and activation-triggered mitigation hooks with modeled
 * preventive-refresh cost.
 */

#ifndef ROWPRESS_SIM_CONTROLLER_H
#define ROWPRESS_SIM_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "dram/address.h"
#include "dram/bank.h"
#include "dram/timing.h"
#include "mitigation/mitigation.h"

namespace rp::sim {

/** One memory request from a core. */
struct Request
{
    /** Completion slot owned by the issuing core's window entry. */
    struct Slot
    {
        Time doneAt = -1;
    };

    bool write = false;
    dram::Address addr;
    Time arrive = 0;
    int coreId = 0;
    Slot *slot = nullptr;   ///< Null for writes (fire-and-forget).
    /** Set once the request was classified as a row miss (its ACT). */
    bool classifiedMiss = false;
};

/** Controller configuration (paper Table 7 baseline). */
struct ControllerConfig
{
    dram::Organization org;
    dram::TimingParams timing = dram::ddr4_3200();
    std::size_t queueSize = 64;

    /**
     * Maximum row-open time enforced by the row policy; 0 means
     * unbounded (the baseline open-row policy).  timing.tRAS yields
     * the minimally-open-row policy of Appendix D.1.
     */
    Time tMro = 0;

    /** Optional mitigation (not owned). */
    mitigation::Mitigation *mitigation = nullptr;

    ControllerConfig() { org.ranks = 2; }
};

/** Aggregate controller statistics. */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t acts = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t preventiveActs = 0;
    std::uint64_t forcedPrecharges = 0;  ///< PREs forced by t_mro.
    std::uint64_t maxRowActs = 0;        ///< Max ACTs to any one row.

    double
    rowHitRate() const
    {
        const auto total = rowHits + rowMisses;
        return total ? double(rowHits) / double(total) : 0.0;
    }
};

/** Single-channel FR-FCFS memory controller. */
class Controller
{
  public:
    explicit Controller(ControllerConfig cfg);

    const ControllerConfig &config() const { return cfg_; }
    const ControllerStats &stats() const { return stats_; }

    bool canEnqueue(bool write) const;
    void enqueue(Request req);

    /** Advance to time @p now and issue at most one command. */
    void tick(Time now);

    /** True if no requests are queued and all banks are idle. */
    bool drained() const;

    /** Activation count of a specific row (Fig. 38 analysis). */
    std::uint64_t rowActCount(int flat_bank, int row) const;

  private:
    struct BankState
    {
        dram::Bank bank;
        std::deque<int> victimQueue;  ///< Pending preventive refreshes.
        bool refreshingVictim = false;

        explicit BankState(const dram::TimingParams &t) : bank(t) {}
    };

    struct RankState
    {
        Time nextRef = 0;
        bool refPending = false;
    };

    bool tickRefresh(Time now);
    bool tickVictimRefresh(Time now);
    bool tickMro(Time now);
    bool tickQueue(std::deque<Request> &queue, Time now);
    void recordAct(int flat_bank, int row);
    void issueAct(BankState &bs, int flat_bank, int row, Time at,
                  bool preventive);

    ControllerConfig cfg_;
    ControllerStats stats_;

    std::vector<BankState> banks_;
    std::vector<RankState> ranks_;
    std::deque<Request> readQ_;
    std::deque<Request> writeQ_;
    bool drainingWrites_ = false;
    Time nextRefWindow_ = 0;

    std::unordered_map<std::uint64_t, std::uint64_t> rowActs_;
};

} // namespace rp::sim

#endif // ROWPRESS_SIM_CONTROLLER_H
