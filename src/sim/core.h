/**
 * @file
 * Trace-driven out-of-order core model (the standard Ramulator-style
 * processor front end): a fixed-size instruction window retires up to
 * `issueWidth` instructions per cycle in order; reads block retirement
 * until their data returns, writes are fire-and-forget.
 */

#ifndef ROWPRESS_SIM_CORE_H
#define ROWPRESS_SIM_CORE_H

#include <deque>

#include "sim/controller.h"
#include "workloads/generator.h"

namespace rp::sim {

/** Core configuration (paper Table 7: 4 GHz, 4-wide, 128-entry). */
struct CoreConfig
{
    int windowSize = 128;
    int issueWidth = 4;
    std::uint64_t instrLimit = 500000;
};

/** One simulated core executing a synthetic trace. */
class Core
{
  public:
    Core(int id, workloads::TraceGen gen, Controller &mem,
         CoreConfig cfg);

    /** Advance one CPU cycle at wall-clock @p now. */
    void tick(Time now);

    bool done() const { return retired_ >= cfg_.instrLimit; }
    std::uint64_t retired() const { return retired_; }
    std::uint64_t cycles() const { return cycles_; }

    double
    ipc() const
    {
        return cycles_ ? double(retired_) / double(cycles_) : 0.0;
    }

    const workloads::WorkloadParams &
    workload() const
    {
        return gen_.params();
    }

  private:
    struct WinEntry
    {
        Request::Slot slot;   ///< doneAt >= 0 means ready.
    };

    void issue(Time now);
    void retire(Time now);

    int id_;
    workloads::TraceGen gen_;
    Controller *mem_;
    CoreConfig cfg_;
    dram::AddressMapper mapper_;

    std::deque<WinEntry> window_;
    std::uint64_t retired_ = 0;
    std::uint64_t cycles_ = 0;

    // Current trace item being issued.
    workloads::TraceItem item_{};
    bool haveItem_ = false;
    int bubblesLeft_ = 0;
};

} // namespace rp::sim

#endif // ROWPRESS_SIM_CORE_H
