#include "sim/core.h"

namespace rp::sim {

Core::Core(int id, workloads::TraceGen gen, Controller &mem,
           CoreConfig cfg)
    : id_(id), gen_(std::move(gen)), mem_(&mem), cfg_(cfg),
      mapper_(mem.config().org)
{
}

void
Core::issue(Time now)
{
    int budget = cfg_.issueWidth;
    while (budget > 0) {
        if (int(window_.size()) >= cfg_.windowSize)
            return; // window full

        if (!haveItem_) {
            item_ = gen_.next();
            bubblesLeft_ = item_.bubbles;
            haveItem_ = true;
        }

        if (bubblesLeft_ > 0) {
            // Non-memory instructions complete immediately.
            window_.emplace_back();
            window_.back().slot.doneAt = 0;
            --bubblesLeft_;
            --budget;
            continue;
        }

        // The memory access of the current trace item.
        if (!mem_->canEnqueue(item_.write))
            return; // back-pressure

        window_.emplace_back();
        WinEntry &entry = window_.back();

        Request req;
        req.write = item_.write;
        req.addr = mapper_.decode(item_.addr);
        req.arrive = now;
        req.coreId = id_;
        if (item_.write) {
            entry.slot.doneAt = 0; // fire-and-forget
            req.slot = nullptr;
        } else {
            entry.slot.doneAt = -1;
            req.slot = &entry.slot;
        }
        mem_->enqueue(std::move(req));

        haveItem_ = false;
        --budget;
    }
}

void
Core::retire(Time now)
{
    int n = 0;
    while (n < cfg_.issueWidth && retired_ < cfg_.instrLimit &&
           !window_.empty()) {
        const Request::Slot &slot = window_.front().slot;
        if (slot.doneAt < 0 || slot.doneAt > now)
            break;
        window_.pop_front();
        ++retired_;
        ++n;
    }
}

void
Core::tick(Time now)
{
    if (done())
        return;
    ++cycles_;
    retire(now);
    issue(now);
}

} // namespace rp::sim
