/**
 * @file
 * Multi-core simulated system: N trace-driven cores sharing one
 * memory controller (paper Table 7 configuration), plus the
 * evaluation metrics the paper reports (IPC, weighted speedup,
 * row-buffer statistics, per-row activation counts).
 */

#ifndef ROWPRESS_SIM_SYSTEM_H
#define ROWPRESS_SIM_SYSTEM_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sim/controller.h"
#include "sim/core.h"
#include "workloads/presets.h"

namespace rp::sim {

/** Whole-system configuration. */
struct SystemConfig
{
    ControllerConfig mem;
    CoreConfig core;
    std::vector<workloads::WorkloadParams> workloads; ///< One per core.
    std::uint64_t seed = 1;
    Time cpuCycle = 250;                 ///< ps (4 GHz, Table 7).
    std::uint64_t maxCycles = 400000000; ///< Safety cap.
};

/** Results of one run. */
struct SystemResult
{
    struct PerCore
    {
        std::string workload;
        std::uint64_t instrs = 0;
        std::uint64_t cycles = 0;
        double ipc = 0.0;
    };

    std::vector<PerCore> cores;
    ControllerStats mem;

    double ipcOf(std::size_t core) const { return cores.at(core).ipc; }

    /**
     * Weighted speedup against per-core alone IPCs
     * (Snavely & Tullsen): sum_i IPC_shared_i / IPC_alone_i.
     */
    double weightedSpeedup(const std::vector<double> &alone_ipcs) const;
};

/** Run the system to completion (all cores hit their instr limit). */
SystemResult runSystem(const SystemConfig &cfg);

/**
 * One simulator job of a parallel batch: a system configuration plus
 * an optional factory that builds the job's private mitigation
 * instance.  Mitigations are stateful and referenced by raw pointer
 * from ControllerConfig, so concurrent jobs must not share one — the
 * factory runs inside the task and the built instance lives exactly
 * as long as the run.
 */
struct SystemJob
{
    SystemConfig cfg;
    std::function<std::unique_ptr<mitigation::Mitigation>()>
        mitigationFactory;
};

/**
 * Run independent jobs concurrently on @p engine (the per-core /
 * multicore figure sweeps).  Results are returned in job order and are
 * bit-identical for any thread count.
 */
std::vector<SystemResult> runSystems(const std::vector<SystemJob> &jobs,
                                     core::ExperimentEngine &engine);

/**
 * Convenience batch form for configs without mitigation state; every
 * config's `mem.mitigation` must be null or uniquely owned.
 */
std::vector<SystemResult>
runSystems(const std::vector<SystemConfig> &cfgs,
           core::ExperimentEngine &engine);

/**
 * Convenience: run one workload alone on the given memory config and
 * return its IPC (the weighted-speedup baseline).
 */
double aloneIpc(const workloads::WorkloadParams &workload,
                const ControllerConfig &mem, const CoreConfig &core,
                std::uint64_t seed = 1);

/** Batch of alone-IPC baselines, one engine task per workload. */
std::vector<double>
aloneIpcs(const std::vector<workloads::WorkloadParams> &ws,
          const ControllerConfig &mem, const CoreConfig &core,
          core::ExperimentEngine &engine, std::uint64_t seed = 1);

} // namespace rp::sim

#endif // ROWPRESS_SIM_SYSTEM_H
