#include "bender/platform.h"

#include <algorithm>

#include "common/logging.h"

namespace rp::bender {

TestPlatform::TestPlatform(PlatformConfig cfg) : cfg_(std::move(cfg))
{
    chip_ = std::make_unique<device::Chip>(cfg_.die, cfg_.org, cfg_.timing,
                                           cfg_.seed);
    chip_->setTemperature(cfg_.temperatureC);
}

void
TestPlatform::setTemperature(double temp_c)
{
    chip_->setTemperature(temp_c);
}

Time
TestPlatform::run(const Program &program)
{
    const Time start = nextFree_;
    execNodes(program.nodes());
    return nextFree_ - start;
}

void
TestPlatform::execNodes(const std::vector<ProgramNode> &nodes)
{
    for (const ProgramNode &n : nodes) {
        switch (n.kind) {
          case ProgramNode::Kind::Cmd:
            execCmd(n);
            break;
          case ProgramNode::Kind::Wait:
            // Timed waits are measured from the previous command's
            // issue time, so ACT + wait(tAggON) + PRE yields an exact
            // aggressor-on time.
            nextFree_ = std::max(nextFree_, lastIssue_ + n.duration);
            break;
          case ProgramNode::Kind::Loop:
            execLoop(n);
            break;
        }
    }
}

void
TestPlatform::execCmd(const ProgramNode &n)
{
    Time t = nextFree_;
    switch (n.cmd) {
      case dram::Command::ACT:
        t = std::max(t, chip_->bank(n.bank).earliest(dram::Command::ACT));
        chip_->act(n.bank, n.row, t);
        break;
      case dram::Command::PRE:
        t = std::max(t, chip_->bank(n.bank).earliest(dram::Command::PRE));
        chip_->pre(n.bank, t);
        break;
      case dram::Command::RD:
        t = std::max(t, chip_->bank(n.bank).earliest(dram::Command::RD));
        chip_->read(n.bank, n.column, t);
        break;
      case dram::Command::WR:
        t = std::max(t, chip_->bank(n.bank).earliest(dram::Command::WR));
        chip_->write(n.bank, n.column, t);
        break;
      case dram::Command::REF:
        for (int b = 0; b < cfg_.org.totalBanks(); ++b)
            t = std::max(t, chip_->bank(b).earliest(dram::Command::REF));
        chip_->refresh(t);
        break;
      case dram::Command::PREA:
      case dram::Command::NOP:
        break;
    }
    lastIssue_ = t;
    nextFree_ = t + cfg_.cmdGap;
}

bool
TestPlatform::containsRef(const std::vector<ProgramNode> &nodes)
{
    for (const auto &n : nodes) {
        if (n.kind == ProgramNode::Kind::Cmd &&
            n.cmd == dram::Command::REF)
            return true;
        if (n.kind == ProgramNode::Kind::Loop && containsRef(n.body))
            return true;
    }
    return false;
}

void
TestPlatform::collectActRows(const std::vector<ProgramNode> &nodes,
                             std::vector<std::pair<int, int>> &out)
{
    for (const auto &n : nodes) {
        if (n.kind == ProgramNode::Kind::Cmd &&
            n.cmd == dram::Command::ACT)
            out.emplace_back(n.bank, n.row);
        else if (n.kind == ProgramNode::Kind::Loop)
            collectActRows(n.body, out);
    }
}

void
TestPlatform::execLoop(const ProgramNode &n)
{
    // Loops containing REF mutate global refresh state and cannot be
    // extrapolated; short loops are not worth it.
    if (n.count < cfg_.fastForwardThreshold || containsRef(n.body)) {
        for (std::uint64_t i = 0; i < n.count; ++i)
            execNodes(n.body);
        return;
    }

    // Iteration 1: warm-up (establishes tAggOFF history).
    execNodes(n.body);

    // Iteration 2: measured steady-state iteration.
    const auto before = chip_->fault().snapshotDoses();
    const Time iter_start = nextFree_;
    execNodes(n.body);
    const Time iter_dur = nextFree_ - iter_start;

    // Iterations 3 .. count-1: extrapolated.
    const double extra = double(n.count - 3);
    chip_->fault().scaleDoseDelta(before, extra);
    const Time jump = Time(double(iter_dur) * extra);

    std::vector<std::pair<int, int>> act_rows;
    collectActRows(n.body, act_rows);
    std::sort(act_rows.begin(), act_rows.end());
    act_rows.erase(std::unique(act_rows.begin(), act_rows.end()),
                   act_rows.end());
    fastForwardBy(jump, act_rows);

    // Final iteration: concrete, ends at the true completion time.
    execNodes(n.body);
}

void
TestPlatform::fastForwardBy(Time jump,
                            const std::vector<std::pair<int, int>>
                                &act_rows)
{
    nextFree_ += jump;
    lastIssue_ += jump;
    for (const auto &[b, r] : act_rows)
        chip_->fault().shiftRowHistory(b, r, jump);
}

TestPlatform::TracedRun
TestPlatform::runTraced(const Program &program)
{
    // Loops are rejected: the fast-forward path scales doses in bulk
    // (scaleDoseDelta) without emitting per-op records, so a traced
    // loop would silently return an incomplete op list.  Callers
    // trace loop bodies segment by segment instead.
    for (const ProgramNode &n : program.nodes()) {
        if (n.kind == ProgramNode::Kind::Loop)
            fatal("runTraced: programs with loops cannot be traced "
                  "op-exactly; trace the loop body iteration by "
                  "iteration");
    }

    TracedRun traced;
    chip_->fault().setDoseOpRecorder(&traced.ops);
    traced.duration = run(program);
    chip_->fault().setDoseOpRecorder(nullptr);
    return traced;
}

void
TestPlatform::reset()
{
    chip_->reset();
    nextFree_ = 0;
    lastIssue_ = 0;
}

void
TestPlatform::fillRow(int bank, int row, std::uint8_t fill)
{
    chip_->fillRow(bank, row, fill, nextFree_);
}

std::vector<device::FlipRecord>
TestPlatform::checkRow(int bank, int row, bool full_scan)
{
    return chip_->materializeRow(bank, row, nextFree_, full_scan);
}

void
TestPlatform::checkRowInto(int bank, int row, bool full_scan,
                           std::vector<device::FlipRecord> &out)
{
    chip_->materializeRowInto(bank, row, nextFree_, full_scan, out);
}

} // namespace rp::bender
