#include "bender/program.h"

namespace rp::bender {

Program &
Program::act(int bank, int row)
{
    ProgramNode n;
    n.kind = ProgramNode::Kind::Cmd;
    n.cmd = dram::Command::ACT;
    n.bank = bank;
    n.row = row;
    nodes_.push_back(n);
    return *this;
}

Program &
Program::pre(int bank)
{
    ProgramNode n;
    n.kind = ProgramNode::Kind::Cmd;
    n.cmd = dram::Command::PRE;
    n.bank = bank;
    nodes_.push_back(n);
    return *this;
}

Program &
Program::rd(int bank, int column)
{
    ProgramNode n;
    n.kind = ProgramNode::Kind::Cmd;
    n.cmd = dram::Command::RD;
    n.bank = bank;
    n.column = column;
    nodes_.push_back(n);
    return *this;
}

Program &
Program::wr(int bank, int column)
{
    ProgramNode n;
    n.kind = ProgramNode::Kind::Cmd;
    n.cmd = dram::Command::WR;
    n.bank = bank;
    n.column = column;
    nodes_.push_back(n);
    return *this;
}

Program &
Program::ref()
{
    ProgramNode n;
    n.kind = ProgramNode::Kind::Cmd;
    n.cmd = dram::Command::REF;
    nodes_.push_back(n);
    return *this;
}

Program &
Program::wait(Time duration)
{
    if (duration <= 0)
        return *this;
    ProgramNode n;
    n.kind = ProgramNode::Kind::Wait;
    n.duration = duration;
    nodes_.push_back(n);
    return *this;
}

Program &
Program::loop(std::uint64_t count, const Program &body)
{
    if (count == 0 || body.empty())
        return *this;
    ProgramNode n;
    n.kind = ProgramNode::Kind::Loop;
    n.count = count;
    n.body = body.nodes_;
    nodes_.push_back(n);
    return *this;
}

Program &
Program::append(const Program &other)
{
    nodes_.insert(nodes_.end(), other.nodes_.begin(), other.nodes_.end());
    return *this;
}

namespace {

std::uint64_t
countNodes(const std::vector<ProgramNode> &nodes)
{
    std::uint64_t total = 0;
    for (const auto &n : nodes) {
        switch (n.kind) {
          case ProgramNode::Kind::Cmd:
            ++total;
            break;
          case ProgramNode::Kind::Wait:
            break;
          case ProgramNode::Kind::Loop:
            total += n.count * countNodes(n.body);
            break;
        }
    }
    return total;
}

} // namespace

std::uint64_t
Program::commandCount() const
{
    return countNodes(nodes_);
}

} // namespace rp::bender
