/**
 * @file
 * Command-level DRAM test programs, DRAM-Bender style.
 *
 * A Program is a sequence of timed DRAM commands plus counted loops.
 * The builder API mirrors how the paper's characterization programs
 * are written against DRAM Bender / SoftMC: issue ACT, hold the row
 * open for an exact tAggON using a timed wait, PRE, wait tRP, repeat N
 * times.
 *
 * Loops carry explicit trip counts so the executing platform can
 * fast-forward steady-state iterations analytically (dose accumulation
 * is linear and time-invariant once the loop reaches steady state),
 * which is what makes ACmin bisection searches over millions of
 * activations tractable.
 */

#ifndef ROWPRESS_BENDER_PROGRAM_H
#define ROWPRESS_BENDER_PROGRAM_H

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "dram/command.h"

namespace rp::bender {

/** One node of a test program: a command or a counted loop. */
struct ProgramNode
{
    enum class Kind
    {
        Cmd,
        Wait,
        Loop,
    };

    Kind kind = Kind::Cmd;

    // Kind::Cmd
    dram::Command cmd = dram::Command::NOP;
    int bank = 0;
    int row = 0;
    int column = 0;

    // Kind::Wait
    Time duration = 0;

    // Kind::Loop
    std::uint64_t count = 0;
    std::vector<ProgramNode> body;
};

/** Builder for command-level test programs. */
class Program
{
  public:
    Program &act(int bank, int row);
    Program &pre(int bank);
    Program &rd(int bank, int column);
    Program &wr(int bank, int column);
    Program &ref();

    /** Timed wait: advance the command clock by @p duration. */
    Program &wait(Time duration);

    /** Append @p body repeated @p count times. */
    Program &loop(std::uint64_t count, const Program &body);

    /** Append all of @p other once. */
    Program &append(const Program &other);

    const std::vector<ProgramNode> &nodes() const { return nodes_; }
    bool empty() const { return nodes_.empty(); }
    void clear() { nodes_.clear(); }

    /** Total number of commands, with loops expanded. */
    std::uint64_t commandCount() const;

  private:
    std::vector<ProgramNode> nodes_;
};

} // namespace rp::bender

#endif // ROWPRESS_BENDER_PROGRAM_H
