/**
 * @file
 * DRAM-Bender-equivalent test platform.
 *
 * Executes command-level test programs against a device::Chip while
 * enforcing DDR4 bank timings and the command-bus granularity of the
 * paper's FPGA infrastructure (one command per 1.5 ns).  Plays the
 * role of the Alveo U200 + DRAM Bender + heater/PID-controller rig of
 * paper Fig. 4:
 *
 *  - programs run with auto-refresh disabled (interference-source
 *    isolation, section 3.1) unless REF commands are issued explicitly;
 *  - a temperature-controller model holds the chip at a target
 *    temperature;
 *  - counted loops are fast-forwarded analytically once they reach
 *    steady state (dose accumulation per iteration is constant), so
 *    ACmin searches over millions of activations run in microseconds
 *    of host time while producing the same dose state as a concrete
 *    command-by-command execution.
 */

#ifndef ROWPRESS_BENDER_PLATFORM_H
#define ROWPRESS_BENDER_PLATFORM_H

#include <memory>
#include <vector>

#include "bender/program.h"
#include "device/chip.h"
#include "dram/address.h"

namespace rp::bender {

/** Platform construction parameters. */
struct PlatformConfig
{
    device::DieConfig die;
    dram::Organization org;
    dram::TimingParams timing = dram::benderTiming();
    std::uint64_t seed = 0x5AFA21;
    Time cmdGap = 1500;             ///< Command bus granularity (ps).
    double temperatureC = 50.0;
    /** Loops at least this long are eligible for fast-forwarding. */
    std::uint64_t fastForwardThreshold = 8;
};

/** The FPGA-based testing infrastructure model. */
class TestPlatform
{
  public:
    explicit TestPlatform(PlatformConfig cfg);

    device::Chip &chip() { return *chip_; }
    const device::Chip &chip() const { return *chip_; }
    const PlatformConfig &config() const { return cfg_; }
    const dram::TimingParams &timing() const { return cfg_.timing; }
    const dram::Organization &org() const { return cfg_.org; }
    Time cmdGap() const { return cfg_.cmdGap; }
    std::uint64_t fastForwardThreshold() const
    {
        return cfg_.fastForwardThreshold;
    }

    /** Temperature controller (instantaneous settling model). */
    void setTemperature(double temp_c);
    double temperature() const { return chip_->temperature(); }

    /** Current command-bus time. */
    Time now() const { return nextFree_; }

    /**
     * Execute @p program; returns the elapsed command-bus time.  The
     * paper's methodology requires every test program to finish within
     * 60 ms (strictly inside the 64 ms refresh window).
     */
    Time run(const Program &program);

    // --- convenience wrappers for harness code ---

    /** Fill a row with a pattern byte (functional write + restore). */
    void fillRow(int bank, int row, std::uint8_t fill);

    /** Materialize and return the bitflips of a row. */
    std::vector<device::FlipRecord>
    checkRow(int bank, int row, bool full_scan = false);

    /**
     * Allocation-free checkRow: appends the flips to @p out.  Each
     * row's materialization is independent — the chip evaluates the
     * row's own accumulated dose against its own damage bound and
     * clears it — so callers may partition a victim set across engine
     * tasks and concatenate the per-row results; the BER drivers'
     * (location, victim-chunk) chunking relies on this.
     */
    void checkRowInto(int bank, int row, bool full_scan,
                      std::vector<device::FlipRecord> &out);

    /**
     * Non-destructive probe: would @p row show any flip if inspected
     * now?  Unlike checkRow, nothing is latched or cleared, so search
     * layers (fuzz minimum-cost checkpoints) may poll mid-pattern
     * without perturbing subsequent dose accumulation.
     */
    bool rowWouldFlip(int bank, int row) const
    {
        return chip_->rowWouldFlip(bank, row, nextFree_);
    }

    /** Reset chip state and the command clock to power-on. */
    void reset();

    // --- steady-state dose-delta extraction (chr::AttemptOracle) ---

    /** One traced execution: the dose ops it deposited + its duration. */
    struct TracedRun
    {
        std::vector<device::FaultModel::DoseOp> ops;
        Time duration = 0;
    };

    /**
     * Execute @p program while recording every dose accumulation it
     * performs.  Running a loop body this way, iteration by iteration,
     * measures the warm-up and steady-state per-iteration dose deltas
     * that the loop fast-forward path scales analytically — exposed so
     * the ACmin/tAggONmin attempt oracle can replay whole attempts
     * without re-executing their programs.
     */
    TracedRun runTraced(const Program &program);

    /**
     * The clock jump of the loop fast-forward, as a public primitive:
     * advance the command clock by @p jump and shift the close/restore
     * history of @p act_rows (bank, row pairs) along with it, exactly
     * as the steady-state extrapolation inside run() does.
     */
    void fastForwardBy(Time jump,
                       const std::vector<std::pair<int, int>> &act_rows);

  private:
    void execNodes(const std::vector<ProgramNode> &nodes);
    void execCmd(const ProgramNode &n);
    void execLoop(const ProgramNode &n);

    static bool containsRef(const std::vector<ProgramNode> &nodes);
    static void collectActRows(const std::vector<ProgramNode> &nodes,
                               std::vector<std::pair<int, int>> &out);

    PlatformConfig cfg_;
    std::unique_ptr<device::Chip> chip_;

    Time nextFree_ = 0;     ///< Earliest time the command bus is free.
    Time lastIssue_ = 0;    ///< Issue time of the last command.
};

} // namespace rp::bender

#endif // ROWPRESS_BENDER_PLATFORM_H
