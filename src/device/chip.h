/**
 * @file
 * A DRAM chip model: timing-checked banks + stored data + fault model.
 *
 * The chip operates in *physical* row space; callers that work with
 * logical (externally visible) row addresses translate through a
 * dram::RowScrambler first, mirroring the paper's reverse-engineering
 * methodology (section 3.2).
 *
 * Data is stored as a fill byte per row plus sparse byte overrides, so
 * pattern-filled characterization rows cost O(1) and bitflips are
 * recorded as overrides.  Bitflips "materialize" whenever a row's
 * charge is restored (refresh, own activation, write) or when the
 * harness inspects the row; the accumulated dose is evaluated against
 * the cell model at that point and then cleared.
 */

#ifndef ROWPRESS_DEVICE_CHIP_H
#define ROWPRESS_DEVICE_CHIP_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "device/fault_model.h"
#include "dram/bank.h"
#include "dram/timing.h"

namespace rp::device {

/** One DRAM chip (or lock-stepped rank) under test. */
class Chip
{
  public:
    Chip(const DieConfig &die, dram::Organization org,
         dram::TimingParams timing, std::uint64_t seed);

    const DieConfig &die() const { return fault_.cells().die(); }
    const dram::Organization &org() const { return org_; }
    const dram::TimingParams &timing() const { return timing_; }
    FaultModel &fault() { return fault_; }
    const FaultModel &fault() const { return fault_; }

    void setTemperature(double c) { fault_.setTemperature(c); }
    double temperature() const { return fault_.temperature(); }

    // --- timed command interface ---

    dram::Bank &bank(int b);
    const dram::Bank &bank(int b) const;

    /** Activate @p row; restores the row's own charge. */
    void act(int b, int row, Time now);

    /** Precharge bank @p b; deposits press dose for the interval. */
    dram::Bank::OpenInterval pre(int b, Time now);

    /** Column read from the open row; returns data-ready time. */
    Time read(int b, int column, Time now);

    /** Column write to the open row; returns recovery-complete time. */
    Time write(int b, int column, Time now);

    /**
     * One REF command: refreshes the next stripe of rows in every
     * bank (8192 REFs cover the whole array, as in DDR4).
     */
    void refresh(Time now);

    /** Refresh a single row (used by TRR preventive refreshes). */
    void refreshRow(int b, int row, Time now);

    // --- functional data path ---

    /** Fill a whole row with @p fill and restore its charge. */
    void fillRow(int b, int row, std::uint8_t fill, Time now);

    /** Current fill byte of a row (0x00 if never written). */
    std::uint8_t rowFill(int b, int row) const;

    /** Current value of one byte of a row (with flips applied). */
    std::uint8_t readByte(int b, int row, int byte_idx) const;

    // --- inspection ---

    /**
     * Evaluate and latch any pending bitflips of @p row, restore its
     * charge, and return the flips that materialized now.
     */
    std::vector<FlipRecord> materializeRow(int b, int row, Time now,
                                           bool full_scan = false);

    /** Allocation-free form: appends the materialized flips to @p out. */
    void materializeRowInto(int b, int row, Time now, bool full_scan,
                            std::vector<FlipRecord> &out);

    /**
     * Evaluate the flips @p row's current dose would produce at
     * @p now, without latching them, clearing the dose, or restoring
     * the row — the non-destructive probe the fuzz evaluator's
     * minimum-cost checkpoints use between pattern segments.
     */
    void peekRowInto(int b, int row, Time now, bool full_scan,
                     std::vector<FlipRecord> &out) const;

    /**
     * O(1)-gated form of "would the row show any flip if inspected
     * now": false is proven cheaply via CellModel::rowMayFlip; true
     * requires at least one candidate cell to actually flip.
     */
    bool rowWouldFlip(int b, int row, Time now) const;

    /** Bits of @p row that currently differ from its fill pattern. */
    std::vector<int> storedFlipBits(int b, int row) const;

    /** Reset banks, data, and dose state. */
    void reset();

  private:
    struct RowData
    {
        std::uint8_t fill = 0x00;
        std::unordered_map<int, std::uint8_t> overrides;
    };

    static std::uint64_t
    key(int b, int row)
    {
        return packRowKey(b, row);
    }

    /**
     * Restore a row's charge; evaluates flips first unless the
     * accumulated dose is provably below every cell threshold.
     */
    void restoreRow(int b, int row, Time now);

    dram::Organization org_;
    dram::TimingParams timing_;
    FaultModel fault_;

    std::vector<dram::Bank> banks_;
    std::unordered_map<std::uint64_t, RowData> data_;

    int refreshPtr_ = 0;
    int rowsPerRef_ = 1;
};

} // namespace rp::device

#endif // ROWPRESS_DEVICE_CHIP_H
