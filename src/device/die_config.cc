#include "device/die_config.h"

#include "common/logging.h"

namespace rp::device {

namespace {

/**
 * Calibration values transcribed from paper Tables 5 and 6, using one
 * representative module per die revision.  BER values are the maximum
 * bit error rates at maximum activation count within 60 ms.
 *
 * antiFraction encodes the observed bitflip directionality (Fig. 12):
 * Mfr. S / H dies reach ~100 % 1->0 RowPress flips (pure true-cell
 * layout); Mfr. M B/F dies plateau near 75 % (mixed layout); the
 * Mfr. M 16Gb E die shows the inverted trend (mostly anti-cells).
 */
std::vector<DieConfig>
buildDies()
{
    std::vector<DieConfig> dies;

    // ---- Mfr. S (Samsung) ----
    dies.push_back({"S-4Gb-F", "S", "Mfr. S 4Gb F-Die", "4Gb", "F",
                    116e3, 20e3, 117e3, 0.005, 0.079,
                    48.5, 15.0, 17.7, 0.0002,
                    0.0, 12.0});
    dies.push_back({"S-8Gb-B", "S", "Mfr. S 8Gb B-Die", "8Gb", "B",
                    279e3, 47e3, 295e3, 0.001, 0.038,
                    47.3, 12.4, 24.8, 0.00009,
                    0.0, 10.0});
    dies.push_back({"S-8Gb-C", "S", "Mfr. S 8Gb C-Die", "8Gb", "C",
                    110e3, 24e3, 108e3, 0.007, 0.095,
                    49.1, 13.0, 33.9, 0.0002,
                    0.0, 11.0});
    dies.push_back({"S-8Gb-D", "S", "Mfr. S 8Gb D-Die", "8Gb", "D",
                    41e3, 12e3, 43e3, 0.077, 0.331,
                    40.7, 11.4, 23.4, 0.0007,
                    0.0, 14.0});

    // ---- Mfr. H (SK Hynix) ----
    dies.push_back({"H-4Gb-A", "H", "Mfr. H 4Gb A-Die", "4Gb", "A",
                    382e3, 83e3, 373e3, 0.002, 0.011,
                    144.0, 80.0, 50.8, 0.0,
                    0.0, 8.0});
    dies.push_back({"H-4Gb-X", "H", "Mfr. H 4Gb X-Die", "4Gb", "X",
                    119e3, 20e3, 116e3, 0.009, 0.090,
                    53.5, 21.8, 13.9, 0.00005,
                    0.0, 9.0});
    dies.push_back({"H-16Gb-A", "H", "Mfr. H 16Gb A-Die", "16Gb", "A",
                    119e3, 21e3, 112e3, 0.010, 0.093,
                    46.2, 14.3, 10.0, 0.0003,
                    0.0, 13.0});
    dies.push_back({"H-16Gb-C", "H", "Mfr. H 16Gb C-Die", "16Gb", "C",
                    77e3, 14e3, 75e3, 0.022, 0.140,
                    51.9, 25.4, 22.0, 0.00002,
                    0.0, 12.0});

    // ---- Mfr. M (Micron) ----
    dies.push_back({"M-8Gb-B", "M", "Mfr. M 8Gb B-Die", "8Gb", "B",
                    386e3, 87e3, 367e3, 0.003, 0.026,
                    400.0, 250.0, 200.0, 0.0,
                    0.25, 7.0});
    dies.push_back({"M-16Gb-B", "M", "Mfr. M 16Gb B-Die", "16Gb", "B",
                    114e3, 24e3, 105e3, 0.012, 0.120,
                    55.0, 35.2, 44.5, 0.00005,
                    0.25, 10.0});
    dies.push_back({"M-16Gb-E", "M", "Mfr. M 16Gb E-Die", "16Gb", "E",
                    41e3, 10e3, 39e3, 0.074, 0.392,
                    53.3, 28.1, 28.3, 0.00003,
                    0.85, 15.0});
    dies.push_back({"M-16Gb-F", "M", "Mfr. M 16Gb F-Die", "16Gb", "F",
                    31e3, 8.7e3, 30e3, 0.071, 0.232,
                    50.9, 17.9, 18.9, 0.0001,
                    0.25, 16.0});

    return dies;
}

} // namespace

const std::vector<DieConfig> &
allDies()
{
    static const std::vector<DieConfig> dies = buildDies();
    return dies;
}

const DieConfig &
dieById(const std::string &id)
{
    for (const auto &d : allDies()) {
        if (d.id == id)
            return d;
    }
    fatal("unknown die id '%s'", id.c_str());
}

const DieConfig &dieS8GbB() { return dieById("S-8Gb-B"); }
const DieConfig &dieS8GbD() { return dieById("S-8Gb-D"); }
const DieConfig &dieH16GbA() { return dieById("H-16Gb-A"); }
const DieConfig &dieM16GbF() { return dieById("M-16Gb-F"); }

} // namespace rp::device
