/**
 * @file
 * Shared, thread-safe store of per-row disturbance-threshold
 * candidates.
 *
 * Candidate enumeration is by far the most expensive part of building
 * a device model: for every row it draws three hash uniforms per bit
 * (~64Ki bits) to find the cells in the weak tails of the hammer /
 * press / retention threshold distributions.  The thresholds are a
 * pure function of (seed, die, bank, row, bit), so the result is
 * identical for every CellModel built from the same (die, seed) — yet
 * the engine-parallel search drivers used to rebuild the cache once
 * per task.
 *
 * A ThresholdStore owns that enumeration once per process: CellModel
 * instances constructed from the same (die, bits-per-row, seed) share
 * one store through a process-wide registry (strong references — the
 * store is a pure deterministic cache and outlives the short-lived
 * Modules of engine tasks), and rows are built lazily, under a mutex,
 * in a structure-of-arrays layout.  Two tiers exist per row:
 *
 *  - the candidate tier (RowCandidates): the weakest cells of the
 *    row, with row-minimum thresholds for the O(1) cannot-flip proof
 *    that gates ACmin-level evaluation;
 *  - the word tier (RowWordMasks): per-64-bit-word occupancy bitmasks
 *    over a geometric bucket ladder of thresholds, letting the
 *    full-scan (BER/ECC) path prove "no cell of these 64 words can
 *    flip at this damage bound" with one mask test, plus row-minimum
 *    lower bounds that tighten the press/retention damage split.
 *
 * Determinism: row contents depend only on the store key, never on
 * build order or thread count, so sharing cannot change results.
 */

#ifndef ROWPRESS_DEVICE_THRESHOLD_STORE_H
#define ROWPRESS_DEVICE_THRESHOLD_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/thread_annotations.h"
#include "device/die_config.h"

namespace rp::device {

/**
 * Canonical (bank, row) -> 64-bit key packing, shared by the
 * threshold store, the fault model's dose map, and the chip's row
 * data so the three can never diverge.
 */
constexpr std::uint64_t
packRowKey(int bank, int row)
{
    return (std::uint64_t(std::uint32_t(bank)) << 32) |
           std::uint32_t(row);
}

/** Per-die derived model parameters; exposed for tests and ablations. */
struct CellModelParams
{
    // Threshold distributions (log-space).
    double muH, sigmaH, sigmaRowH, sigmaWordH;
    double muP, sigmaP, sigmaRowP, sigmaWordP;
    double muRet, sigmaRet;

    // Temperature response (dose multiplier per degree C above 50C).
    double lambdaRp;
    double lambdaRh;

    // Structure.
    double kappaDs;      ///< Double-sided RowHammer synergy.
    double rhoWeakSide;  ///< RowPress coupling of the non-dominant side.
    double gammaRhAggr;  ///< Hammer coupling vs aggressor-cell charge.
    double gammaRpAggr0; ///< Press coupling vs aggressor charge, at 50C.
    double gammaRpAggrT; ///< Temperature slope of the above (per 30C).
    Time tauOff;         ///< Hammer recovery time constant (tAggOFF).
    double offFloor;     ///< Hammer weight floor at tAggOFF -> 0.
    /**
     * Press onset: the first ~tRAS of every open interval contributes
     * no press dose (the passing-gate stress needs the row held open
     * past the charge-restoration transient).  This is why the paper
     * sees only a 1.04-1.17x ACmin reduction at tAggON = 186 ns while
     * the t >= tREFI region follows the constant-cumulative-on-time
     * law (Obsv. 3).
     */
    Time pressOnset;
    double dist2Rh, dist2Rp; ///< Distance-2 coupling attenuation.
    double dist3Rh, dist3Rp; ///< Distance-3 coupling attenuation.
    double antiFraction;
};

/** Per-cell derived properties (pure in (seed, bank, row, bit)). */
struct CellProps
{
    double thetaH;
    double thetaP;
    double tauRet;
    bool anti;
    int domSide;
    double uH;
    double uP;
};

/** Derive one cell's properties from @p params under @p seed. */
CellProps computeCellProps(const CellModelParams &params,
                           std::uint64_t seed, int bank, int row,
                           int bit);

/**
 * Shared row/word variance components of one cell's thresholds.  The
 * full-scan fast path derives these once per row / per word instead
 * of once per cell (they dominate the per-cell cost: four Box-Muller
 * normals against two table hashes).
 */
struct RowWordZ
{
    double rowH;
    double rowP;
    double wordH;
    double wordP;
};

/** The row-level variance components of (seed, bank, row). */
struct RowZ
{
    double rowH;
    double rowP;
};

/**
 * These two helpers are the single source of the row/word draw
 * sequence (key derivation, tags, the word-stream offset): the mask
 * builder and the full-scan evaluator hoist computeRowZ out of their
 * word loops and call computeWordZ per word, and computeRowWordZ
 * composes them for the per-cell path — so the three users cannot
 * drift apart, which the fast path's bit-identity depends on.
 */
RowZ computeRowZ(std::uint64_t seed, int bank, int row);
RowWordZ computeWordZ(const RowZ &row_z, std::uint64_t seed, int bank,
                      int row, int word_index);

/** The full row/word variance context of (seed, bank, row, word). */
RowWordZ computeRowWordZ(std::uint64_t seed, int bank, int row,
                         int word_index);

/**
 * computeCellProps with the row/word context precomputed; @p cell
 * must be HashRng(hashU64(seed, bank, row, bit)).  Produces doubles
 * bit-identical to computeCellProps (same draws, same expressions).
 */
CellProps computeCellProps(const CellModelParams &params,
                           const HashRng &cell, const RowWordZ &z);

/**
 * Conservative uniform-quantile cutoff for a log-normal threshold
 * theta = exp(mu + sigma * probit(u) + shift): every cell whose
 * uniform draw u is >= the returned value provably has theta >
 * @p bound.  The cutoff carries a small cushion (covering the probit
 * approximation and expression rounding), so cells near the boundary
 * are kept — false positives only, never false negatives.  This is
 * what lets the full-scan fast path discard most cells of an eligible
 * word after three raw hash draws, before any probit/exp work.
 */
double weakQuantileCutoff(double bound, double mu, double sigma,
                          double shift);

/**
 * The weakest cells of one row, in bit order, as parallel arrays
 * (structure-of-arrays: the evaluation hot loop touches thetaH OR
 * thetaP/tauRet per cell, never all fields).
 */
struct RowCandidates
{
    std::vector<std::int32_t> bit;
    std::vector<double> thetaH;
    std::vector<double> thetaP;
    std::vector<double> tauRet;
    std::vector<std::uint8_t> anti;
    std::vector<std::uint8_t> domSide;

    /** Row-level lower bounds for O(1) cannot-flip early exits. */
    double minThetaH = 1e300;
    double minThetaP = 1e300;
    double minTauRet = 1e300;

    std::size_t size() const { return bit.size(); }
};

/**
 * Geometric bucket ladder over a log-normal threshold distribution:
 * edges at lo * 2^k, sized from (mu, sigma) so the selective query
 * range of the word-occupancy tier is covered.  Queries above the top
 * edge fall back to "every word eligible" (a plain full scan), which
 * is conservative and only happens at doses that flip large parts of
 * the row anyway.
 */
class BucketLadder
{
  public:
    BucketLadder() = default;
    BucketLadder(double mu, double sigma);

    /**
     * Smallest k with edge(k) >= @p bound (so an occupancy mask at
     * level k contains every word whose minimum threshold is <=
     * @p bound); size() when @p bound is above the top edge.
     */
    std::size_t indexFor(double bound) const;

    std::size_t size() const { return edges_.size(); }
    double edge(std::size_t k) const { return edges_[k]; }

  private:
    std::vector<double> edges_;
};

/**
 * Word-level occupancy tier of one row: for every 64-bit data word,
 * the bucket of its weakest hammer / press / retention cell, stored
 * as cumulative bitmasks so a full-scan evaluation can test 64 words'
 * "can any cell possibly flip at this damage bound?" with one 64-bit
 * load per mechanism.  Bit w of group g refers to data word 64g + w.
 */
struct RowWordMasks
{
    std::size_t numWords = 0;   ///< ceil(bits_per_row / 64).
    std::size_t numGroups = 0;  ///< ceil(numWords / 64).

    /** Bit set for every existing word (the "all eligible" fallback). */
    std::vector<std::uint64_t> valid;

    /**
     * Rigorous lower bounds on the row-wide minimum press/retention
     * thresholds (the tracked per-word minima, halved — the same
     * factor-2 margin as the bucket pad).  They cap how large any
     * cell's press / retention damage term can be, which tightens
     * the sum-split of the charged-branch test: a flip needs
     * press + retention >= 0.5, so with retention capped at B the
     * press term must reach 0.5 - B, not just the generic 0.25.
     * (The hammer branch is a single term, so it has no split
     * partner and needs no bound here.)
     */
    double minThetaPLow = 0.0;
    double minTauRetLow = 0.0;

    /**
     * Flattened [bucket][group] cumulative occupancy per mechanism:
     * bit w of hammer[k * numGroups + g] is set when word 64g + w
     * holds a cell with thetaH <= hammer-ladder edge k (and likewise
     * for press / retention).
     */
    std::vector<std::uint64_t> hammer;
    std::vector<std::uint64_t> press;
    std::vector<std::uint64_t> retention;

    /**
     * Occupancy of group @p g at ladder level @p k for one mechanism
     * array: empty below the ladder (@p k == npos, i.e. a zero dose),
     * everything above it (@p k == ladder size).
     */
    std::uint64_t
    level(const std::vector<std::uint64_t> &mech, std::size_t k,
          std::size_t ladder_size, std::size_t g) const
    {
        if (k == npos)
            return 0;
        if (k >= ladder_size)
            return valid[g];
        return mech[k * numGroups + g];
    }

    static constexpr std::size_t npos = std::size_t(-1);
};

/** Point-in-time usage/size accounting of one ThresholdStore. */
struct ThresholdStoreStats
{
    std::size_t candidateRows = 0; ///< Rows with a built candidate tier.
    std::size_t candidateCells = 0;///< Total cached candidate cells.
    std::size_t wordMaskRows = 0;  ///< Rows with a built word tier.
    std::size_t approxBytes = 0;   ///< Rough heap footprint of both tiers.
};

/**
 * Aggregate view of the process-wide keyed store registry — the warm
 * cache the api::Service reports on (`rowpress serve`'s cache verb).
 */
struct ThresholdStoreRegistryStats
{
    std::size_t stores = 0;     ///< Registered (die, bits, seed) configs.
    std::uint64_t hits = 0;     ///< acquire() calls served warm.
    std::uint64_t misses = 0;   ///< acquire() calls that built a store.
    std::uint64_t evictions = 0;///< Stores dropped by evictRegistry().
    ThresholdStoreStats totals; ///< Summed over registered stores.
};

/** Lazily built, mutex-protected candidate rows of one device model. */
class ThresholdStore
{
  public:
    /**
     * The shared store for (die, bits_per_row, seed): every CellModel
     * with the same key gets the same instance, so candidate
     * enumeration happens once per row per process.  @p params must be
     * the canonical parameters derived from @p die (callers pass what
     * CellModel::deriveParams computed).
     */
    static std::shared_ptr<const ThresholdStore>
    acquire(const DieConfig &die, const CellModelParams &params,
            int bits_per_row, std::uint64_t seed);

    /**
     * An unshared store generating from @p params as given — for
     * ablation studies that mutate parameters (the instance is not
     * registered, so mutations cannot leak into other models).
     */
    static std::shared_ptr<const ThresholdStore>
    makePrivate(const CellModelParams &params, int bits_per_row,
                std::uint64_t seed);

    /** Candidate list of a row; built on first use (thread-safe). */
    const RowCandidates &row(int bank, int row) const;

    /**
     * Word-occupancy tier of a row; built on first use (thread-safe),
     * like the candidate tier.  One build costs the same enumeration
     * as a single legacy full scan and is then shared by every full
     * scan of the row across all CellModels of this store.
     */
    const RowWordMasks &wordMasks(int bank, int row) const;

    const BucketLadder &hammerLadder() const { return hammerLadder_; }
    const BucketLadder &pressLadder() const { return pressLadder_; }
    const BucketLadder &retentionLadder() const
    {
        return retentionLadder_;
    }

    int bitsPerRow() const { return bitsPerRow_; }
    std::uint64_t seed() const { return seed_; }
    const CellModelParams &params() const { return params_; }

    /**
     * The registry content key this store was acquired under (die
     * targets + geometry + seed) — the identity a persisted snapshot
     * is keyed and validated by.  Empty for makePrivate() stores,
     * which are ablation-mutable and therefore never persisted.
     */
    const std::string &contentKey() const { return contentKey_; }

    /**
     * The candidate tier's uniform-quantile cap (the weakest-cells
     * filter of buildRow).  Exposed so the snapshot invariants hash
     * covers it: changing the cap changes which cells are cached, so
     * old snapshots must stop validating.
     */
    double candidateCapQuantile() const
    {
        return 96.0 / double(bitsPerRow_);
    }

    // --- persistence surface (src/persist) ---

    /**
     * Point-in-time export of the built candidate tier, sorted by row
     * key (deterministic regardless of build/thread order).  The
     * pointees live in this store: the caller must keep the store
     * alive while using them (values are immutable once inserted and
     * never erased).
     */
    std::vector<std::pair<std::uint64_t, const RowCandidates *>>
    exportRows() const;

    /** Same export for the word-occupancy tier. */
    std::vector<std::pair<std::uint64_t, const RowWordMasks *>>
    exportWordMasks() const;

    /**
     * Pre-populate one candidate row from a snapshot (insert-if-
     * absent; a concurrently built row wins and is bit-identical by
     * construction, so either outcome yields the same bytes).  Const
     * for the same reason lazy build is: adopting rows is a pure
     * cache warm-up that cannot change any result.  Returns false
     * when the row was already present.
     */
    bool adoptRow(std::uint64_t key, RowCandidates &&row) const;

    /** adoptRow for the word-occupancy tier. */
    bool adoptWordMasks(std::uint64_t key, RowWordMasks &&masks) const;

    /**
     * Strong references to every registered store (for snapshot
     * publication sweeps).  Ordering is deterministic (sorted by
     * content key).
     */
    static std::vector<std::shared_ptr<const ThresholdStore>>
    registrySnapshot();

    /**
     * Warm-start hook: when set, acquire() calls it (outside the
     * registry lock) for every newly created store so a persistence
     * layer can pre-populate tiers from disk.  Dependency inversion
     * keeps src/device below src/persist; persist::SnapshotCache
     * installs the hook when a cache directory is configured.  The
     * hook must not throw.
     */
    using WarmStartHook = void (*)(const ThresholdStore &);
    static void setWarmStartHook(WarmStartHook hook);

    /** Usage accounting of this store's built tiers (thread-safe). */
    ThresholdStoreStats stats() const;

    /**
     * Registry-wide accounting: store count, warm-hit/miss counters
     * of acquire(), and summed per-store tier sizes (thread-safe).
     */
    static ThresholdStoreRegistryStats registryStats();

    /**
     * Eviction hook: drop the registry's strong references, returning
     * how many stores were released.  Stores still referenced by live
     * CellModels survive until those die; the next acquire() of any
     * key rebuilds lazily.  Results are unaffected (stores are pure
     * caches) — this only trades warm-cache time for memory.
     */
    static std::size_t evictRegistry();

  private:
    ThresholdStore(const CellModelParams &params, int bits_per_row,
                   std::uint64_t seed);

    RowCandidates buildRow(int bank, int row) const;
    RowWordMasks buildWordMasks(int bank, int row) const;

    CellModelParams params_;
    int bitsPerRow_;
    std::uint64_t seed_;
    std::string contentKey_; ///< Set by acquire(); "" for private stores.

    BucketLadder hammerLadder_;
    BucketLadder pressLadder_;
    BucketLadder retentionLadder_;

    // Tier builds happen outside the lock (racing builders discard);
    // only the maps themselves are guarded.  Values are immutable
    // once inserted, so returned references need no lock.
    mutable core::Mutex mutex_;
    mutable std::unordered_map<std::uint64_t,
                               std::unique_ptr<RowCandidates>>
        rows_ RP_GUARDED_BY(mutex_);
    mutable std::unordered_map<std::uint64_t,
                               std::unique_ptr<RowWordMasks>>
        wordMasks_ RP_GUARDED_BY(mutex_);
};

} // namespace rp::device

#endif // ROWPRESS_DEVICE_THRESHOLD_STORE_H
