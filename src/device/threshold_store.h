/**
 * @file
 * Shared, thread-safe store of per-row disturbance-threshold
 * candidates.
 *
 * Candidate enumeration is by far the most expensive part of building
 * a device model: for every row it draws three hash uniforms per bit
 * (~64Ki bits) to find the cells in the weak tails of the hammer /
 * press / retention threshold distributions.  The thresholds are a
 * pure function of (seed, die, bank, row, bit), so the result is
 * identical for every CellModel built from the same (die, seed) — yet
 * the engine-parallel search drivers used to rebuild the cache once
 * per task.
 *
 * A ThresholdStore owns that enumeration once per process: CellModel
 * instances constructed from the same (die, bits-per-row, seed) share
 * one store through a process-wide registry, and rows are built
 * lazily, under a mutex, in a structure-of-arrays layout.  Each row
 * also carries its minimum thresholds so evaluation can prove "no
 * cell of this row can flip under this dose" in O(1) and skip the
 * candidate scan entirely.
 *
 * Determinism: row contents depend only on the store key, never on
 * build order or thread count, so sharing cannot change results.
 */

#ifndef ROWPRESS_DEVICE_THRESHOLD_STORE_H
#define ROWPRESS_DEVICE_THRESHOLD_STORE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "device/die_config.h"

namespace rp::device {

/**
 * Canonical (bank, row) -> 64-bit key packing, shared by the
 * threshold store, the fault model's dose map, and the chip's row
 * data so the three can never diverge.
 */
constexpr std::uint64_t
packRowKey(int bank, int row)
{
    return (std::uint64_t(std::uint32_t(bank)) << 32) |
           std::uint32_t(row);
}

/** Per-die derived model parameters; exposed for tests and ablations. */
struct CellModelParams
{
    // Threshold distributions (log-space).
    double muH, sigmaH, sigmaRowH, sigmaWordH;
    double muP, sigmaP, sigmaRowP, sigmaWordP;
    double muRet, sigmaRet;

    // Temperature response (dose multiplier per degree C above 50C).
    double lambdaRp;
    double lambdaRh;

    // Structure.
    double kappaDs;      ///< Double-sided RowHammer synergy.
    double rhoWeakSide;  ///< RowPress coupling of the non-dominant side.
    double gammaRhAggr;  ///< Hammer coupling vs aggressor-cell charge.
    double gammaRpAggr0; ///< Press coupling vs aggressor charge, at 50C.
    double gammaRpAggrT; ///< Temperature slope of the above (per 30C).
    Time tauOff;         ///< Hammer recovery time constant (tAggOFF).
    double offFloor;     ///< Hammer weight floor at tAggOFF -> 0.
    /**
     * Press onset: the first ~tRAS of every open interval contributes
     * no press dose (the passing-gate stress needs the row held open
     * past the charge-restoration transient).  This is why the paper
     * sees only a 1.04-1.17x ACmin reduction at tAggON = 186 ns while
     * the t >= tREFI region follows the constant-cumulative-on-time
     * law (Obsv. 3).
     */
    Time pressOnset;
    double dist2Rh, dist2Rp; ///< Distance-2 coupling attenuation.
    double dist3Rh, dist3Rp; ///< Distance-3 coupling attenuation.
    double antiFraction;
};

/** Per-cell derived properties (pure in (seed, bank, row, bit)). */
struct CellProps
{
    double thetaH;
    double thetaP;
    double tauRet;
    bool anti;
    int domSide;
    double uH;
    double uP;
};

/** Derive one cell's properties from @p params under @p seed. */
CellProps computeCellProps(const CellModelParams &params,
                           std::uint64_t seed, int bank, int row,
                           int bit);

/**
 * The weakest cells of one row, in bit order, as parallel arrays
 * (structure-of-arrays: the evaluation hot loop touches thetaH OR
 * thetaP/tauRet per cell, never all fields).
 */
struct RowCandidates
{
    std::vector<std::int32_t> bit;
    std::vector<double> thetaH;
    std::vector<double> thetaP;
    std::vector<double> tauRet;
    std::vector<std::uint8_t> anti;
    std::vector<std::uint8_t> domSide;

    /** Row-level lower bounds for O(1) cannot-flip early exits. */
    double minThetaH = 1e300;
    double minThetaP = 1e300;
    double minTauRet = 1e300;

    std::size_t size() const { return bit.size(); }
};

/** Lazily built, mutex-protected candidate rows of one device model. */
class ThresholdStore
{
  public:
    /**
     * The shared store for (die, bits_per_row, seed): every CellModel
     * with the same key gets the same instance, so candidate
     * enumeration happens once per row per process.  @p params must be
     * the canonical parameters derived from @p die (callers pass what
     * CellModel::deriveParams computed).
     */
    static std::shared_ptr<const ThresholdStore>
    acquire(const DieConfig &die, const CellModelParams &params,
            int bits_per_row, std::uint64_t seed);

    /**
     * An unshared store generating from @p params as given — for
     * ablation studies that mutate parameters (the instance is not
     * registered, so mutations cannot leak into other models).
     */
    static std::shared_ptr<const ThresholdStore>
    makePrivate(const CellModelParams &params, int bits_per_row,
                std::uint64_t seed);

    /** Candidate list of a row; built on first use (thread-safe). */
    const RowCandidates &row(int bank, int row) const;

    int bitsPerRow() const { return bitsPerRow_; }
    std::uint64_t seed() const { return seed_; }

  private:
    ThresholdStore(const CellModelParams &params, int bits_per_row,
                   std::uint64_t seed);

    RowCandidates buildRow(int bank, int row) const;

    CellModelParams params_;
    int bitsPerRow_;
    std::uint64_t seed_;

    mutable std::mutex mutex_;
    mutable std::unordered_map<std::uint64_t,
                               std::unique_ptr<RowCandidates>>
        rows_;
};

} // namespace rp::device

#endif // ROWPRESS_DEVICE_THRESHOLD_STORE_H
