#include "device/fault_model.h"

namespace rp::device {

FaultModel::FaultModel(const DieConfig &die, const dram::Organization &org,
                       std::uint64_t seed)
    : org_(org),
      cells_(die, org.columns * org.blockBytes * 8, seed)
{
}

DoseState &
FaultModel::state(int bank, int row)
{
    return doses_[key(bank, row)];
}

void
FaultModel::onActivate(int bank, int row, Time now)
{
    // Hammer weight depends on how long this aggressor rested since it
    // was last closed (charge recombination; paper section 5.4).
    Time t_off = -1;
    if (auto it = lastClose_.find(key(bank, row)); it != lastClose_.end())
        t_off = now - it->second;

    const double w = cells_.hammerOffWeight(t_off) *
                     cells_.hammerTempFactor(temperatureC_);
    const auto &p = cells_.params();
    const double atten[4] = {0.0, 1.0, p.dist2Rh, p.dist3Rh};

    for (int d = 1; d <= 3; ++d) {
        for (int sign : {-1, +1}) {
            const int victim = row + sign * d;
            if (victim < 0 || victim >= org_.rows)
                continue;
            // The aggressor sits below (side 0) or above (side 1) the
            // victim.
            const int side = sign > 0 ? 0 : 1;
            const double inc = w * atten[d];
            state(bank, victim).hammer[side] += inc;
            if (opRecorder_)
                opRecorder_->push_back({key(bank, victim), side, inc});
        }
    }
}

void
FaultModel::onPrecharge(int bank, int row, Time open_at, Time close_at)
{
    lastClose_[key(bank, row)] = close_at;

    // The press-onset transient of each open interval contributes no
    // passing-gate stress (CellModelParams::pressOnset).
    const double on_time =
        double(close_at - open_at - cells_.params().pressOnset);
    if (on_time <= 0.0)
        return;
    const double scaled = on_time * cells_.pressTempFactor(temperatureC_);
    const auto &p = cells_.params();
    const double atten[4] = {0.0, 1.0, p.dist2Rp, p.dist3Rp};

    for (int d = 1; d <= 3; ++d) {
        for (int sign : {-1, +1}) {
            const int victim = row + sign * d;
            if (victim < 0 || victim >= org_.rows)
                continue;
            const int side = sign > 0 ? 0 : 1;
            const double inc = scaled * atten[d];
            state(bank, victim).press[side] += inc;
            if (opRecorder_)
                opRecorder_->push_back(
                    {key(bank, victim), 2 + side, inc});
        }
    }
}

void
FaultModel::onRestore(int bank, int row, Time now)
{
    doses_.erase(key(bank, row));
    lastRestore_[key(bank, row)] = now;
}

const DoseState &
FaultModel::dose(int bank, int row) const
{
    static const DoseState zero;
    auto it = doses_.find(key(bank, row));
    return it != doses_.end() ? it->second : zero;
}

double
FaultModel::retentionSeconds(int bank, int row, Time now) const
{
    Time since = now;
    if (auto it = lastRestore_.find(key(bank, row));
        it != lastRestore_.end())
        since = now - it->second;
    if (since <= 0)
        return 0.0;
    return toSec(since) * cells_.retentionTempFactor(temperatureC_);
}

std::vector<std::pair<int, int>>
FaultModel::disturbedRows() const
{
    std::vector<std::pair<int, int>> rows;
    rows.reserve(doses_.size());
    for (const auto &[k, v] : doses_) {
        if (!v.empty())
            rows.emplace_back(int(k >> 32), int(std::uint32_t(k)));
    }
    return rows;
}

void
FaultModel::reset()
{
    doses_.clear();
    lastClose_.clear();
    lastRestore_.clear();
}

void
FaultModel::scaleDoseDelta(const DoseMap &before, double factor)
{
    if (factor <= 0.0)
        return;
    for (auto &[k, cur] : doses_) {
        DoseState prev;
        if (auto it = before.find(k); it != before.end())
            prev = it->second;
        for (int s = 0; s < 2; ++s) {
            cur.hammer[s] += (cur.hammer[s] - prev.hammer[s]) * factor;
            cur.press[s] += (cur.press[s] - prev.press[s]) * factor;
        }
    }
}

void
FaultModel::shiftRowHistory(int bank, int row, Time delta)
{
    if (auto it = lastClose_.find(key(bank, row)); it != lastClose_.end())
        it->second += delta;
    if (auto it = lastRestore_.find(key(bank, row));
        it != lastRestore_.end())
        it->second += delta;
}

} // namespace rp::device
