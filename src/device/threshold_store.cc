#include "device/threshold_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "device/cell_tags.h"

namespace rp::device {

using namespace celltags;

CellProps
computeCellProps(const CellModelParams &p, std::uint64_t seed, int bank,
                 int row, int bit)
{
    const std::uint64_t cell_key =
        hashU64(seed, std::uint64_t(bank), std::uint64_t(row),
                std::uint64_t(bit));
    HashRng cell(cell_key);
    HashRng row_rng(hashU64(seed, std::uint64_t(bank),
                            std::uint64_t(row)));
    HashRng word_rng(hashU64(seed, std::uint64_t(bank),
                             std::uint64_t(row),
                             std::uint64_t(bit / 64) + 0x1000000ULL));

    CellProps props;
    props.uH = cell.uniform(TAG_UH);
    props.uP = cell.uniform(TAG_UP);
    props.anti = cell.uniform(TAG_ANTI) < p.antiFraction;
    props.domSide = cell.uniform(TAG_DOM) < 0.5 ? 0 : 1;
    const double u_ret = cell.uniform(TAG_RET);

    const double z_row_h = row_rng.normal(TAG_ROWH);
    const double z_row_p = row_rng.normal(TAG_ROWP);
    const double z_word_h = word_rng.normal(TAG_WRDH);
    const double z_word_p = word_rng.normal(TAG_WRDP);

    props.thetaH = std::exp(p.muH + p.sigmaH * probit(props.uH) +
                            p.sigmaRowH * z_row_h +
                            p.sigmaWordH * z_word_h);
    props.thetaP = std::exp(p.muP + p.sigmaP * probit(props.uP) +
                            p.sigmaRowP * z_row_p +
                            p.sigmaWordP * z_word_p);
    props.tauRet = std::exp(p.muRet + p.sigmaRet * probit(u_ret));
    return props;
}

namespace {

/** Content key of a shared store: die targets + geometry + seed. */
std::string
storeKeyOf(const DieConfig &die, int bits_per_row, std::uint64_t seed)
{
    std::string key = die.id;
    key.push_back('\0');
    auto put = [&key](const void *p, std::size_t n) {
        key.append(static_cast<const char *>(p), n);
    };
    const double doubles[] = {
        die.acminRh50,   die.acminRh50Min, die.acminRh80,
        die.berRhSs,     die.berRhDs,      die.rpDose50Ms,
        die.rpDose50MinMs, die.rpDose80Ms, die.berRp78,
        die.antiFraction, die.retWeakPerMillion,
    };
    put(doubles, sizeof(doubles));
    put(&bits_per_row, sizeof(bits_per_row));
    put(&seed, sizeof(seed));
    return key;
}

struct StoreRegistry
{
    std::mutex mutex;
    std::unordered_map<std::string, std::weak_ptr<const ThresholdStore>>
        stores;
};

StoreRegistry &
registry()
{
    static StoreRegistry reg;
    return reg;
}

} // namespace

ThresholdStore::ThresholdStore(const CellModelParams &params,
                               int bits_per_row, std::uint64_t seed)
    : params_(params), bitsPerRow_(bits_per_row), seed_(seed)
{
}

std::shared_ptr<const ThresholdStore>
ThresholdStore::acquire(const DieConfig &die,
                        const CellModelParams &params, int bits_per_row,
                        std::uint64_t seed)
{
    StoreRegistry &reg = registry();
    const std::string key = storeKeyOf(die, bits_per_row, seed);
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (auto it = reg.stores.find(key); it != reg.stores.end()) {
        if (auto live = it->second.lock())
            return live;
    }
    std::shared_ptr<const ThresholdStore> store(
        new ThresholdStore(params, bits_per_row, seed));
    reg.stores[key] = store;
    return store;
}

std::shared_ptr<const ThresholdStore>
ThresholdStore::makePrivate(const CellModelParams &params,
                            int bits_per_row, std::uint64_t seed)
{
    return std::shared_ptr<const ThresholdStore>(
        new ThresholdStore(params, bits_per_row, seed));
}

RowCandidates
ThresholdStore::buildRow(int bank, int row) const
{
    // Keep the cells in the lowest-quantile tails of either threshold
    // distribution: generous enough that any ACmin-level search result
    // is determined by a cached cell.
    const double cap_q = 96.0 / double(bitsPerRow_);
    RowCandidates out;
    for (int bit = 0; bit < bitsPerRow_; ++bit) {
        HashRng cell(hashU64(seed_, std::uint64_t(bank),
                             std::uint64_t(row), std::uint64_t(bit)));
        const double u_h = cell.uniform(TAG_UH);
        const double u_p = cell.uniform(TAG_UP);
        const double u_r = cell.uniform(TAG_RET);
        if (u_h >= cap_q && u_p >= cap_q && u_r >= cap_q)
            continue;
        const CellProps props =
            computeCellProps(params_, seed_, bank, row, bit);
        out.bit.push_back(bit);
        out.thetaH.push_back(props.thetaH);
        out.thetaP.push_back(props.thetaP);
        out.tauRet.push_back(props.tauRet);
        out.anti.push_back(props.anti ? 1 : 0);
        out.domSide.push_back(std::uint8_t(props.domSide));
        out.minThetaH = std::min(out.minThetaH, props.thetaH);
        out.minThetaP = std::min(out.minThetaP, props.thetaP);
        out.minTauRet = std::min(out.minTauRet, props.tauRet);
    }
    return out;
}

const RowCandidates &
ThresholdStore::row(int bank, int row) const
{
    const std::uint64_t key = packRowKey(bank, row);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (auto it = rows_.find(key); it != rows_.end())
            return *it->second;
    }

    // Build outside the lock; if another thread raced us the two
    // results are identical (pure function of the key) and the loser's
    // copy is discarded.
    auto built = std::make_unique<RowCandidates>(buildRow(bank, row));
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = rows_.emplace(key, std::move(built));
    (void)inserted;
    return *it->second;
}

} // namespace rp::device
