#include "device/threshold_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "device/cell_tags.h"

namespace rp::device {

using namespace celltags;

RowZ
computeRowZ(std::uint64_t seed, int bank, int row)
{
    HashRng row_rng(hashU64(seed, std::uint64_t(bank),
                            std::uint64_t(row)));
    RowZ z;
    z.rowH = row_rng.normal(TAG_ROWH);
    z.rowP = row_rng.normal(TAG_ROWP);
    return z;
}

RowWordZ
computeWordZ(const RowZ &row_z, std::uint64_t seed, int bank, int row,
             int word_index)
{
    HashRng word_rng(hashU64(seed, std::uint64_t(bank),
                             std::uint64_t(row),
                             std::uint64_t(word_index) + 0x1000000ULL));
    RowWordZ z;
    z.rowH = row_z.rowH;
    z.rowP = row_z.rowP;
    z.wordH = word_rng.normal(TAG_WRDH);
    z.wordP = word_rng.normal(TAG_WRDP);
    return z;
}

RowWordZ
computeRowWordZ(std::uint64_t seed, int bank, int row, int word_index)
{
    return computeWordZ(computeRowZ(seed, bank, row), seed, bank, row,
                        word_index);
}

CellProps
computeCellProps(const CellModelParams &p, const HashRng &cell,
                 const RowWordZ &z)
{
    CellProps props;
    props.uH = cell.uniform(TAG_UH);
    props.uP = cell.uniform(TAG_UP);
    props.anti = cell.uniform(TAG_ANTI) < p.antiFraction;
    props.domSide = cell.uniform(TAG_DOM) < 0.5 ? 0 : 1;
    const double u_ret = cell.uniform(TAG_RET);

    props.thetaH = std::exp(p.muH + p.sigmaH * probit(props.uH) +
                            p.sigmaRowH * z.rowH +
                            p.sigmaWordH * z.wordH);
    props.thetaP = std::exp(p.muP + p.sigmaP * probit(props.uP) +
                            p.sigmaRowP * z.rowP +
                            p.sigmaWordP * z.wordP);
    props.tauRet = std::exp(p.muRet + p.sigmaRet * probit(u_ret));
    return props;
}

CellProps
computeCellProps(const CellModelParams &p, std::uint64_t seed, int bank,
                 int row, int bit)
{
    HashRng cell(hashU64(seed, std::uint64_t(bank), std::uint64_t(row),
                         std::uint64_t(bit)));
    return computeCellProps(
        p, cell, computeRowWordZ(seed, bank, row, bit / 64));
}

double
weakQuantileCutoff(double bound, double mu, double sigma, double shift)
{
    if (!(bound > 0.0))
        return 0.0;
    if (!(sigma > 0.0)) {
        // Degenerate spread (ablation studies may zero a sigma):
        // every cell shares exp(mu + shift), so the answer is all or
        // nothing; the relative margin keeps boundary ties inclusive.
        return std::exp(mu + shift) <= bound * (1.0 + 1e-9) ? 1.0 : 0.0;
    }
    // theta <= bound  <=>  probit(u) <= (log(bound) - mu - shift)/sigma.
    // The 1e-6 cushion dominates both the Acklam probit error (~5e-8
    // absolute over its clamped +/-38 range) and the rounding of this
    // expression, so the cutoff can only over-include.
    const double z_cut = (std::log(bound) - mu - shift) / sigma + 1e-6;
    return normCdf(z_cut);
}

BucketLadder::BucketLadder(double mu, double sigma)
{
    // Edges at lo * 2^k from 12 sigma below the log-space mean (well
    // past any realizable weak cell the selective regime cares about;
    // words even weaker than that land in every mask, which stays
    // conservative) up past 3 sigma above it (queries beyond the top
    // edge degenerate to a plain full scan of the row).
    const double s = std::max(sigma, 0.3);
    const double lo = std::exp(mu - 12.0 * s);
    const double hi = std::exp(mu + 3.0 * s);
    constexpr std::size_t kMaxEdges = 48;
    double edge = lo;
    while (edges_.size() < kMaxEdges) {
        edges_.push_back(edge);
        if (edge >= hi)
            break;
        edge *= 2.0;
    }
}

std::size_t
BucketLadder::indexFor(double bound) const
{
    return std::size_t(
        std::lower_bound(edges_.begin(), edges_.end(), bound) -
        edges_.begin());
}

namespace {

/** Content key of a shared store: die targets + geometry + seed. */
std::string
storeKeyOf(const DieConfig &die, int bits_per_row, std::uint64_t seed)
{
    std::string key = die.id;
    key.push_back('\0');
    auto put = [&key](const void *p, std::size_t n) {
        key.append(static_cast<const char *>(p), n);
    };
    const double doubles[] = {
        die.acminRh50,   die.acminRh50Min, die.acminRh80,
        die.berRhSs,     die.berRhDs,      die.rpDose50Ms,
        die.rpDose50MinMs, die.rpDose80Ms, die.berRp78,
        die.antiFraction, die.retWeakPerMillion,
    };
    put(doubles, sizeof(doubles));
    put(&bits_per_row, sizeof(bits_per_row));
    put(&seed, sizeof(seed));
    return key;
}

struct StoreRegistry
{
    core::Mutex mutex;
    // Strong references: a store is a pure deterministic cache, and
    // the engine drivers churn through short-lived Modules (one per
    // task), so a weak registry would rebuild every tier each time
    // the last model of a config died between tasks.  Keeping stores
    // for the life of the process is what makes "candidate
    // enumeration happens once per row per process" actually true;
    // memory stays bounded by (distinct configs) x (touched rows).
    std::unordered_map<std::string,
                       std::shared_ptr<const ThresholdStore>>
        stores RP_GUARDED_BY(mutex);

    // Warm-cache accounting for the service layer's cache report.
    std::uint64_t hits RP_GUARDED_BY(mutex) = 0;
    std::uint64_t misses RP_GUARDED_BY(mutex) = 0;
    std::uint64_t evictions RP_GUARDED_BY(mutex) = 0;
};

StoreRegistry &
registry()
{
    static StoreRegistry reg;
    return reg;
}

/**
 * The persistence layer's warm-start callback (see setWarmStartHook).
 * Lock-free: read once per store creation, a cold path.
 */
std::atomic<ThresholdStore::WarmStartHook> warmStartHook{nullptr};

} // namespace

ThresholdStore::ThresholdStore(const CellModelParams &params,
                               int bits_per_row, std::uint64_t seed)
    : params_(params), bitsPerRow_(bits_per_row), seed_(seed),
      hammerLadder_(params.muH, params.sigmaH + params.sigmaRowH +
                                    params.sigmaWordH),
      pressLadder_(params.muP, params.sigmaP + params.sigmaRowP +
                                   params.sigmaWordP),
      retentionLadder_(params.muRet, params.sigmaRet)
{
}

std::shared_ptr<const ThresholdStore>
ThresholdStore::acquire(const DieConfig &die,
                        const CellModelParams &params, int bits_per_row,
                        std::uint64_t seed)
{
    StoreRegistry &reg = registry();
    std::string key = storeKeyOf(die, bits_per_row, seed);
    std::shared_ptr<const ThresholdStore> store;
    {
        core::LockGuard lock(reg.mutex);
        if (auto it = reg.stores.find(key); it != reg.stores.end()) {
            ++reg.hits;
            return it->second;
        }
        ++reg.misses;
        auto *created = new ThresholdStore(params, bits_per_row, seed);
        created->contentKey_ = std::move(key);
        store.reset(created);
        reg.stores[created->contentKey_] = store;
    }
    // Warm-start consult outside the registry lock: the hook takes
    // the store's own mutex (via adoptRow) and the persistence
    // layer's, so holding the registry lock here would order
    // registry -> cache against the publication sweep's cache ->
    // registry.  Racing acquirers of the same key may use the store
    // while it loads; adopted and lazily built rows are bit-identical
    // by construction, so the interleaving is unobservable.
    if (const WarmStartHook hook =
            warmStartHook.load(std::memory_order_acquire))
        hook(*store);
    return store;
}

std::vector<std::shared_ptr<const ThresholdStore>>
ThresholdStore::registrySnapshot()
{
    StoreRegistry &reg = registry();
    std::vector<std::shared_ptr<const ThresholdStore>> out;
    {
        core::LockGuard lock(reg.mutex);
        out.reserve(reg.stores.size());
        for (const auto &[key, store] : reg.stores) {
            (void)key;
            out.push_back(store);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a->contentKey() < b->contentKey();
              });
    return out;
}

void
ThresholdStore::setWarmStartHook(WarmStartHook hook)
{
    warmStartHook.store(hook, std::memory_order_release);
}

ThresholdStoreStats
ThresholdStore::stats() const
{
    ThresholdStoreStats out;
    core::LockGuard lock(mutex_);
    out.candidateRows = rows_.size();
    for (const auto &[key, row] : rows_) {
        (void)key;
        out.candidateCells += row->size();
        out.approxBytes +=
            sizeof(RowCandidates) +
            row->size() * (sizeof(std::int32_t) + 3 * sizeof(double) +
                           2 * sizeof(std::uint8_t));
    }
    out.wordMaskRows = wordMasks_.size();
    for (const auto &[key, masks] : wordMasks_) {
        (void)key;
        out.approxBytes +=
            sizeof(RowWordMasks) +
            (masks->valid.size() + masks->hammer.size() +
             masks->press.size() + masks->retention.size()) *
                sizeof(std::uint64_t);
    }
    return out;
}

ThresholdStoreRegistryStats
ThresholdStore::registryStats()
{
    StoreRegistry &reg = registry();
    ThresholdStoreRegistryStats out;
    std::vector<std::shared_ptr<const ThresholdStore>> snapshot;
    {
        // Snapshot the store set, then sum per-store stats outside
        // the registry lock (each store takes its own mutex).
        core::LockGuard lock(reg.mutex);
        out.stores = reg.stores.size();
        out.hits = reg.hits;
        out.misses = reg.misses;
        out.evictions = reg.evictions;
        snapshot.reserve(reg.stores.size());
        for (const auto &[key, store] : reg.stores) {
            (void)key;
            snapshot.push_back(store);
        }
    }
    for (const auto &store : snapshot) {
        const ThresholdStoreStats s = store->stats();
        out.totals.candidateRows += s.candidateRows;
        out.totals.candidateCells += s.candidateCells;
        out.totals.wordMaskRows += s.wordMaskRows;
        out.totals.approxBytes += s.approxBytes;
    }
    return out;
}

std::size_t
ThresholdStore::evictRegistry()
{
    StoreRegistry &reg = registry();
    core::LockGuard lock(reg.mutex);
    const std::size_t n = reg.stores.size();
    reg.stores.clear();
    reg.evictions += n;
    return n;
}

std::shared_ptr<const ThresholdStore>
ThresholdStore::makePrivate(const CellModelParams &params,
                            int bits_per_row, std::uint64_t seed)
{
    return std::shared_ptr<const ThresholdStore>(
        new ThresholdStore(params, bits_per_row, seed));
}

RowCandidates
ThresholdStore::buildRow(int bank, int row) const
{
    // Keep the cells in the lowest-quantile tails of either threshold
    // distribution: generous enough that any ACmin-level search result
    // is determined by a cached cell.
    const double cap_q = candidateCapQuantile();
    RowCandidates out;
    for (int bit = 0; bit < bitsPerRow_; ++bit) {
        HashRng cell(hashU64(seed_, std::uint64_t(bank),
                             std::uint64_t(row), std::uint64_t(bit)));
        const double u_h = cell.uniform(TAG_UH);
        const double u_p = cell.uniform(TAG_UP);
        const double u_r = cell.uniform(TAG_RET);
        if (u_h >= cap_q && u_p >= cap_q && u_r >= cap_q)
            continue;
        const CellProps props =
            computeCellProps(params_, seed_, bank, row, bit);
        out.bit.push_back(bit);
        out.thetaH.push_back(props.thetaH);
        out.thetaP.push_back(props.thetaP);
        out.tauRet.push_back(props.tauRet);
        out.anti.push_back(props.anti ? 1 : 0);
        out.domSide.push_back(std::uint8_t(props.domSide));
        out.minThetaH = std::min(out.minThetaH, props.thetaH);
        out.minThetaP = std::min(out.minThetaP, props.thetaP);
        out.minTauRet = std::min(out.minTauRet, props.tauRet);
    }
    return out;
}

RowWordMasks
ThresholdStore::buildWordMasks(int bank, int row) const
{
    const CellModelParams &p = params_;
    RowWordMasks wm;
    wm.numWords = std::size_t(bitsPerRow_ + 63) / 64;
    wm.numGroups = (wm.numWords + 63) / 64;
    wm.valid.assign(wm.numGroups, 0);
    wm.hammer.assign(hammerLadder_.size() * wm.numGroups, 0);
    wm.press.assign(pressLadder_.size() * wm.numGroups, 0);
    wm.retention.assign(retentionLadder_.size() * wm.numGroups, 0);

    const RowZ row_z = computeRowZ(seed_, bank, row);

    // A word's minimum threshold per mechanism is the threshold of
    // its minimum uniform draw (exp and probit are monotone; the
    // shared row/word variance components factor out within a word),
    // so the enumeration needs only three raw hash draws per cell and
    // one probit/exp per word — ~5x cheaper than materializing every
    // cell's properties.  The recorded bucket is padded one level
    // down, giving a full factor-2 margin that swallows any floating-
    // point monotonicity slop of that shortcut.
    double row_min_p = 1e300;
    double row_min_r = 1e300;
    for (std::size_t w = 0; w < wm.numWords; ++w) {
        double min_uh = 1.0;
        double min_up = 1.0;
        double min_ur = 1.0;
        const int first = int(w) * 64;
        const int last = std::min(bitsPerRow_, first + 64);
        for (int bit = first; bit < last; ++bit) {
            HashRng cell(hashU64(seed_, std::uint64_t(bank),
                                 std::uint64_t(row),
                                 std::uint64_t(bit)));
            min_uh = std::min(min_uh, cell.uniform(TAG_UH));
            min_up = std::min(min_up, cell.uniform(TAG_UP));
            min_ur = std::min(min_ur, cell.uniform(TAG_RET));
        }

        const RowWordZ z = computeWordZ(row_z, seed_, bank, row, int(w));
        const double min_h =
            std::exp(p.muH + p.sigmaH * probit(min_uh) +
                     p.sigmaRowH * z.rowH + p.sigmaWordH * z.wordH);
        const double min_p =
            std::exp(p.muP + p.sigmaP * probit(min_up) +
                     p.sigmaRowP * z.rowP + p.sigmaWordP * z.wordP);
        const double min_r =
            std::exp(p.muRet + p.sigmaRet * probit(min_ur));
        row_min_p = std::min(row_min_p, min_p);
        row_min_r = std::min(row_min_r, min_r);

        const std::size_t g = w / 64;
        const std::uint64_t bit = std::uint64_t(1) << (w % 64);
        wm.valid[g] |= bit;
        // A word whose weakest cell sits at ladder level k occupies
        // the cumulative masks of every level >= k (minus the safety
        // pad).
        auto firstLevel = [](const BucketLadder &l, double v) {
            const std::size_t k = l.indexFor(v);
            return k > 0 ? k - 1 : 0;
        };
        for (std::size_t k = firstLevel(hammerLadder_, min_h);
             k < hammerLadder_.size(); ++k)
            wm.hammer[k * wm.numGroups + g] |= bit;
        for (std::size_t k = firstLevel(pressLadder_, min_p);
             k < pressLadder_.size(); ++k)
            wm.press[k * wm.numGroups + g] |= bit;
        for (std::size_t k = firstLevel(retentionLadder_, min_r);
             k < retentionLadder_.size(); ++k)
            wm.retention[k * wm.numGroups + g] |= bit;
    }
    wm.minThetaPLow = 0.5 * row_min_p;
    wm.minTauRetLow = 0.5 * row_min_r;
    return wm;
}

const RowWordMasks &
ThresholdStore::wordMasks(int bank, int row) const
{
    const std::uint64_t key = packRowKey(bank, row);
    {
        core::LockGuard lock(mutex_);
        if (auto it = wordMasks_.find(key); it != wordMasks_.end())
            return *it->second;
    }

    // Built outside the lock; racing builders produce identical
    // results (pure function of the key) and the loser is discarded.
    auto built =
        std::make_unique<RowWordMasks>(buildWordMasks(bank, row));
    core::LockGuard lock(mutex_);
    auto [it, inserted] = wordMasks_.emplace(key, std::move(built));
    (void)inserted;
    return *it->second;
}

std::vector<std::pair<std::uint64_t, const RowCandidates *>>
ThresholdStore::exportRows() const
{
    std::vector<std::pair<std::uint64_t, const RowCandidates *>> out;
    {
        core::LockGuard lock(mutex_);
        out.reserve(rows_.size());
        for (const auto &[key, row] : rows_)
            out.emplace_back(key, row.get());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::uint64_t, const RowWordMasks *>>
ThresholdStore::exportWordMasks() const
{
    std::vector<std::pair<std::uint64_t, const RowWordMasks *>> out;
    {
        core::LockGuard lock(mutex_);
        out.reserve(wordMasks_.size());
        for (const auto &[key, masks] : wordMasks_)
            out.emplace_back(key, masks.get());
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
ThresholdStore::adoptRow(std::uint64_t key, RowCandidates &&row) const
{
    auto built = std::make_unique<RowCandidates>(std::move(row));
    core::LockGuard lock(mutex_);
    return rows_.emplace(key, std::move(built)).second;
}

bool
ThresholdStore::adoptWordMasks(std::uint64_t key,
                               RowWordMasks &&masks) const
{
    auto built = std::make_unique<RowWordMasks>(std::move(masks));
    core::LockGuard lock(mutex_);
    return wordMasks_.emplace(key, std::move(built)).second;
}

const RowCandidates &
ThresholdStore::row(int bank, int row) const
{
    const std::uint64_t key = packRowKey(bank, row);
    {
        core::LockGuard lock(mutex_);
        if (auto it = rows_.find(key); it != rows_.end())
            return *it->second;
    }

    // Build outside the lock; if another thread raced us the two
    // results are identical (pure function of the key) and the loser's
    // copy is discarded.
    auto built = std::make_unique<RowCandidates>(buildRow(bank, row));
    core::LockGuard lock(mutex_);
    auto [it, inserted] = rows_.emplace(key, std::move(built));
    (void)inserted;
    return *it->second;
}

} // namespace rp::device
