#include "device/chip.h"

#include <algorithm>

#include "common/logging.h"

namespace rp::device {

Chip::Chip(const DieConfig &die, dram::Organization org,
           dram::TimingParams timing, std::uint64_t seed)
    : org_(org), timing_(timing), fault_(die, org, seed)
{
    banks_.reserve(std::size_t(org_.totalBanks()));
    for (int b = 0; b < org_.totalBanks(); ++b)
        banks_.emplace_back(timing_);
    rowsPerRef_ = std::max(1, org_.rows / 8192);
}

dram::Bank &
Chip::bank(int b)
{
    if (b < 0 || b >= int(banks_.size()))
        panic("bank index %d out of range", b);
    return banks_[std::size_t(b)];
}

const dram::Bank &
Chip::bank(int b) const
{
    return const_cast<Chip *>(this)->bank(b);
}

void
Chip::restoreRow(int b, int row, Time now)
{
    const DoseState &dose = fault_.dose(b, row);
    const double ret = fault_.retentionSeconds(b, row, now);
    if (dose.empty() && ret <= 0.0) {
        fault_.onRestore(b, row, now);
        return;
    }

    // One cannot-flip proof for the whole model: the same rigorous
    // bound the candidate-path evaluate gates on (damage below 0.5 is
    // below the noise threshold, so no draw can flip), backed by the
    // shared ThresholdStore's precomputed row minima.
    if (!fault_.cells().rowMayFlip(b, row, dose, ret,
                                   fault_.temperature())) {
        fault_.onRestore(b, row, now);
        return;
    }

    materializeRow(b, row, now, false);
}

void
Chip::act(int b, int row, Time now)
{
    bank(b).act(row, now);
    // Opening the row restores its own cells (latching any flips the
    // accumulated dose already caused) and disturbs its neighbors.
    restoreRow(b, row, now);
    fault_.onActivate(b, row, now);
}

dram::Bank::OpenInterval
Chip::pre(int b, Time now)
{
    auto interval = bank(b).pre(now);
    fault_.onPrecharge(b, interval.row, interval.openAt, interval.closeAt);
    return interval;
}

Time
Chip::read(int b, int column, Time now)
{
    (void)column;
    return bank(b).read(now);
}

Time
Chip::write(int b, int column, Time now)
{
    (void)column;
    return bank(b).write(now);
}

void
Chip::refresh(Time now)
{
    for (auto &bk : banks_)
        bk.ref(now);

    const int lo = refreshPtr_;
    const int hi = refreshPtr_ + rowsPerRef_;
    refreshPtr_ = hi >= org_.rows ? 0 : hi;

    // Restore every tracked row within the refreshed stripe.  Only
    // rows with dose or retention history need attention.
    std::vector<std::pair<int, int>> to_restore;
    for (const auto &[b, r] : fault_.disturbedRows()) {
        if (r >= lo && r < hi)
            to_restore.emplace_back(b, r);
    }
    for (const auto &[k, rd] : data_) {
        (void)rd;
        const int b = int(k >> 32);
        const int r = int(std::uint32_t(k));
        if (r >= lo && r < hi)
            to_restore.emplace_back(b, r);
    }
    std::sort(to_restore.begin(), to_restore.end());
    to_restore.erase(std::unique(to_restore.begin(), to_restore.end()),
                     to_restore.end());
    for (const auto &[b, r] : to_restore)
        restoreRow(b, r, now);
}

void
Chip::refreshRow(int b, int row, Time now)
{
    restoreRow(b, row, now);
}

void
Chip::fillRow(int b, int row, std::uint8_t fill, Time now)
{
    RowData &rd = data_[key(b, row)];
    rd.fill = fill;
    rd.overrides.clear();
    fault_.onRestore(b, row, now);
}

std::uint8_t
Chip::rowFill(int b, int row) const
{
    auto it = data_.find(key(b, row));
    return it != data_.end() ? it->second.fill : 0x00;
}

std::uint8_t
Chip::readByte(int b, int row, int byte_idx) const
{
    auto it = data_.find(key(b, row));
    if (it == data_.end())
        return 0x00;
    auto ov = it->second.overrides.find(byte_idx);
    return ov != it->second.overrides.end() ? ov->second
                                            : it->second.fill;
}

void
Chip::materializeRowInto(int b, int row, Time now, bool full_scan,
                         std::vector<FlipRecord> &out)
{
    RowData &rd = data_[key(b, row)];

    RowContext ctx;
    DoseState dose = fault_.dose(b, row);
    ctx.dose = &dose;
    ctx.victimFill = rd.fill;
    ctx.victimOverrides = &rd.overrides;
    ctx.aggrFill[0] = row > 0 ? rowFill(b, row - 1) : 0x00;
    ctx.aggrFill[1] = row + 1 < org_.rows ? rowFill(b, row + 1) : 0x00;
    ctx.retentionSeconds = fault_.retentionSeconds(b, row, now);
    ctx.noiseSigma = fault_.evalNoiseSigma();
    ctx.noiseNonce = std::uint64_t(now);

    const std::size_t first = out.size();
    fault_.cells().evaluateInto(b, row, ctx, full_scan,
                                fault_.temperature(), out);

    for (std::size_t i = first; i < out.size(); ++i) {
        const FlipRecord &f = out[i];
        const int byte_idx = f.bit >> 3;
        auto ov = rd.overrides.find(byte_idx);
        std::uint8_t cur = ov != rd.overrides.end() ? ov->second : rd.fill;
        cur = std::uint8_t(cur ^ (1u << (f.bit & 7)));
        rd.overrides[byte_idx] = cur;
    }

    fault_.onRestore(b, row, now);
}

void
Chip::peekRowInto(int b, int row, Time now, bool full_scan,
                  std::vector<FlipRecord> &out) const
{
    static const std::unordered_map<int, std::uint8_t> no_overrides;
    auto it = data_.find(key(b, row));

    RowContext ctx;
    DoseState dose = fault_.dose(b, row);
    ctx.dose = &dose;
    ctx.victimFill = it != data_.end() ? it->second.fill : 0x00;
    ctx.victimOverrides =
        it != data_.end() ? &it->second.overrides : &no_overrides;
    ctx.aggrFill[0] = row > 0 ? rowFill(b, row - 1) : 0x00;
    ctx.aggrFill[1] = row + 1 < org_.rows ? rowFill(b, row + 1) : 0x00;
    ctx.retentionSeconds = fault_.retentionSeconds(b, row, now);
    ctx.noiseSigma = fault_.evalNoiseSigma();
    ctx.noiseNonce = std::uint64_t(now);

    fault_.cells().evaluateInto(b, row, ctx, full_scan,
                                fault_.temperature(), out);
}

bool
Chip::rowWouldFlip(int b, int row, Time now) const
{
    const DoseState &dose = fault_.dose(b, row);
    const double ret = fault_.retentionSeconds(b, row, now);
    if (dose.empty() && ret <= 0.0)
        return false;
    if (!fault_.cells().rowMayFlip(b, row, dose, ret,
                                   fault_.temperature()))
        return false;
    thread_local std::vector<FlipRecord> probe;
    probe.clear();
    peekRowInto(b, row, now, /*full_scan=*/false, probe);
    return !probe.empty();
}

std::vector<FlipRecord>
Chip::materializeRow(int b, int row, Time now, bool full_scan)
{
    std::vector<FlipRecord> flips;
    materializeRowInto(b, row, now, full_scan, flips);
    return flips;
}

std::vector<int>
Chip::storedFlipBits(int b, int row) const
{
    std::vector<int> bits;
    auto it = data_.find(key(b, row));
    if (it == data_.end())
        return bits;
    for (const auto &[byte_idx, value] : it->second.overrides) {
        const std::uint8_t diff = value ^ it->second.fill;
        for (int i = 0; i < 8; ++i) {
            if (diff & (1u << i))
                bits.push_back(byte_idx * 8 + i);
        }
    }
    std::sort(bits.begin(), bits.end());
    return bits;
}

void
Chip::reset()
{
    for (auto &bk : banks_)
        bk.reset();
    data_.clear();
    fault_.reset();
    refreshPtr_ = 0;
}

} // namespace rp::device
