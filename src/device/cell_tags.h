/**
 * @file
 * Hash stream tags for the per-cell properties, shared by the cell
 * model and the threshold store (both derive properties from the same
 * (seed, bank, row, bit) hash streams and must agree exactly).
 */

#ifndef ROWPRESS_DEVICE_CELL_TAGS_H
#define ROWPRESS_DEVICE_CELL_TAGS_H

#include <cstdint>

namespace rp::device::celltags {

constexpr std::uint64_t TAG_UH = 0x48414d4dULL;    // hammer uniform
constexpr std::uint64_t TAG_UP = 0x50524553ULL;    // press uniform
constexpr std::uint64_t TAG_RET = 0x52455453ULL;   // retention
constexpr std::uint64_t TAG_ANTI = 0x414e5449ULL;  // anti-cell
constexpr std::uint64_t TAG_DOM = 0x444f4d53ULL;   // dominant side
constexpr std::uint64_t TAG_ROWH = 0x524f5748ULL;  // row factor, hammer
constexpr std::uint64_t TAG_ROWP = 0x524f5750ULL;  // row factor, press
constexpr std::uint64_t TAG_WRDH = 0x57524448ULL;  // word factor, hammer
constexpr std::uint64_t TAG_WRDP = 0x57524450ULL;  // word factor, press

} // namespace rp::device::celltags

#endif // ROWPRESS_DEVICE_CELL_TAGS_H
