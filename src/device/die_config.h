/**
 * @file
 * Per-die-revision read-disturbance calibration targets.
 *
 * The paper characterizes 12 DDR4 die revisions across the three major
 * manufacturers (Table 1) and reports their RowHammer / RowPress
 * vulnerability summaries in Tables 5 and 6.  Each DieConfig below
 * carries those *measured targets*; the CellModel derives per-cell
 * threshold distributions from them (see DESIGN.md section 5).
 *
 * Key empirical invariant exploited for calibration: for
 * tAggON >= tREFI the paper's data satisfies
 * ACmin x tAggON ~= tAggONmin@AC=1, i.e., RowPress failure is governed
 * by a per-cell *cumulative aggressor-on-time* threshold D_RP.
 */

#ifndef ROWPRESS_DEVICE_DIE_CONFIG_H
#define ROWPRESS_DEVICE_DIE_CONFIG_H

#include <string>
#include <vector>

namespace rp::device {

/** Calibration targets for one die revision (from paper Tables 5/6). */
struct DieConfig
{
    std::string id;          ///< Short id, e.g. "S-8Gb-B".
    std::string mfr;         ///< "S", "H", or "M".
    std::string name;        ///< Display name, e.g. "Mfr. S 8Gb B-Die".
    std::string density;     ///< "4Gb", "8Gb", "16Gb".
    std::string rev;         ///< Die revision letter.

    // --- RowHammer targets (tAggON = 36 ns; Table 5 reports the
    //     stronger, i.e. double-sided, ACmin) ---
    double acminRh50;        ///< Mean per-row ACmin at 50C (total ACTs).
    double acminRh50Min;     ///< Min per-row ACmin at 50C.
    double acminRh80;        ///< Mean per-row ACmin at 80C.
    double berRhSs;          ///< Max BER, single-sided, 36 ns, 50C.
    double berRhDs;          ///< Max BER, double-sided, 36 ns, 50C.

    // --- RowPress targets (cumulative on-time threshold D_RP) ---
    double rpDose50Ms;       ///< Mean tAggONmin @ AC=1, 50C (ms).
    double rpDose50MinMs;    ///< Min tAggONmin @ AC=1, 50C (ms).
    double rpDose80Ms;       ///< Mean tAggONmin @ AC=1, 80C (ms).
    double berRp78;          ///< Max BER @ tAggON=7.8us, SS, 50C.

    // --- Cell layout / direction ---
    double antiFraction;     ///< Fraction of anti-cells (1 = discharged).

    // --- Retention ---
    double retWeakPerMillion; ///< Cells per 1e6 failing 4 s @ 80C.

    /** True if RowPress cannot flip within a 60 ms budget at 50C. */
    bool rpImmuneAt50() const { return rpDose50Ms >= 60.0; }
};

/** All 12 characterized die revisions (paper Table 1 / 5 / 6). */
const std::vector<DieConfig> &allDies();

/** Look up a die by its short id; fatal error if unknown. */
const DieConfig &dieById(const std::string &id);

/** Convenience: the paper's representative dies (Fig 19 / 22). */
const DieConfig &dieS8GbB();    ///< Mfr. S 8Gb B-Die.
const DieConfig &dieS8GbD();    ///< Mfr. S 8Gb D-Die (Fig 22).
const DieConfig &dieH16GbA();   ///< Mfr. H 16Gb A-Die.
const DieConfig &dieM16GbF();   ///< Mfr. M 16Gb F-Die.

} // namespace rp::device

#endif // ROWPRESS_DEVICE_DIE_CONFIG_H
