#include "device/cell_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "device/cell_tags.h"

namespace rp::device {

using namespace rp::literals;

namespace {

/** The paper's characterization budget: programs must fit in 60 ms. */
constexpr double kBudgetMs = 60.0;

/** Per-activation period at minimum tAggON on the test platform. */
constexpr double kActPeriodNs = 54.0; // 36 ns tAggON + 15 ns tRP + gaps

double
clampd(double v, double lo, double hi)
{
    return std::min(hi, std::max(lo, v));
}

} // namespace

CellModel::CellModel(const DieConfig &die, int bits_per_row,
                     std::uint64_t seed)
    : die_(die), bitsPerRow_(bits_per_row), seed_(seed)
{
    if (bitsPerRow_ <= 0)
        fatal("CellModel: bits_per_row must be positive");
    deriveParams();
    store_ = ThresholdStore::acquire(die_, params_, bitsPerRow_, seed_);
}

void
CellModel::deriveParams()
{
    CellModelParams &p = params_;

    // Structural constants (ablation knobs; DESIGN.md section 5).
    p.kappaDs = 3.0;
    p.rhoWeakSide = 0.06;
    p.gammaRhAggr = 0.5;
    p.gammaRpAggr0 = 0.3;
    p.gammaRpAggrT = -0.8;
    p.tauOff = 500_ns;
    p.offFloor = 0.5;
    p.pressOnset = 34_ns;
    p.dist2Rh = 0.02;
    p.dist2Rp = 0.015;
    p.dist3Rh = 0.002;
    p.dist3Rp = 0.0015;
    p.antiFraction = die_.antiFraction;
    p.sigmaWordH = 0.10;
    p.sigmaWordP = 0.30;

    const double bits = double(bitsPerRow_);

    // ---- RowHammer thresholds ----
    //
    // Table 5 reports the double-sided ACmin (the stronger pattern).
    // With N total activations split across two aggressors, the
    // sandwiched victim sees per-side doses N/2 each and the synergy
    // term kappa * min(h0, h1); the double-sided off-time weight is
    // slightly above 1 because each aggressor rests while the other is
    // open.
    const double w_ds = hammerOffWeight(Time((36.0 + 2 * 15.0 + 3.0) *
                                             double(units::NS)));
    const double ds_gain = w_ds * (1.0 + p.kappaDs / 2.0);

    const double z1h = probit(2.0 / bits); // half the cells are eligible
    const double max_acts = kBudgetMs * 1e6 / kActPeriodNs;
    const double z2h = probit(clampd(2.0 * die_.berRhDs, 1e-6, 0.4));
    p.sigmaH = clampd((std::log(max_acts) - std::log(die_.acminRh50)) /
                          std::max(0.2, z2h - z1h),
                      0.30, 1.20);
    p.muH = std::log(die_.acminRh50 * ds_gain) - p.sigmaH * z1h;
    // RowHammer row-to-row spread is narrow (the paper's real-system
    // demo shows a sharp activation-count cliff between
    // NUM_AGGR_ACTS = 3 and 4); most of the Table 5 mean/min spread
    // comes from the per-cell tail.
    p.sigmaRowH = clampd(std::log(die_.acminRh50 / die_.acminRh50Min) / 6.0,
                         0.08, 0.25);
    p.lambdaRh = std::log(die_.acminRh50 / die_.acminRh80) / 30.0;

    // ---- RowPress thresholds ----
    //
    // D_RP targets come from the tAggONmin @ AC=1 columns: a single
    // activation held open for D_RP flips the weakest cell.  Only the
    // charged half of the cells is eligible and only the half of those
    // facing their dominant side sees the full dose, hence the 4/bits
    // row-min quantile.
    const double d50_ps = die_.rpDose50Ms * double(units::MS);
    const double z1p = probit(4.0 / bits);
    double sigma_p = 0.40;
    if (die_.berRp78 > 0.0) {
        const double acts78 = std::floor(kBudgetMs * 1e6 / (7800.0 + 18.0));
        const double dose_max78_ps = acts78 * 7800.0 * double(units::NS);
        const double z2p = probit(clampd(4.0 * die_.berRp78, 1e-6, 0.4));
        sigma_p = (std::log(dose_max78_ps) - std::log(d50_ps)) /
                  std::max(0.05, z2p - z1p);
    }
    p.sigmaP = clampd(sigma_p, 0.20, 0.80);
    p.muP = std::log(d50_ps) - p.sigmaP * z1p;
    // RowPress row-to-row spread: wide enough that the real-system
    // demo flips a fraction of arbitrarily chosen rows with
    // per-window doses below the Table 5 mean, but not so wide that
    // ultra-weak rows contaminate the RowHammer regime at 36 ns.
    p.sigmaRowP = clampd(std::log(die_.rpDose50Ms / die_.rpDose50MinMs) /
                             2.6,
                         0.25, 0.65);
    p.lambdaRp = std::log(die_.rpDose50Ms / die_.rpDose80Ms) / 30.0;

    // ---- Retention ----
    p.sigmaRet = 1.2;
    const double p_weak = clampd(die_.retWeakPerMillion * 1e-6, 1e-9, 0.1);
    p.muRet = std::log(4.0) - probit(p_weak) * p.sigmaRet;
}

double
CellModel::pressTempFactor(double temp_c) const
{
    return std::exp(params_.lambdaRp * (temp_c - 50.0));
}

double
CellModel::hammerTempFactor(double temp_c) const
{
    return std::exp(params_.lambdaRh * (temp_c - 50.0));
}

double
CellModel::hammerOffWeight(Time t_off) const
{
    auto raw = [&](double t_ps) {
        return params_.offFloor +
               (1.0 - params_.offFloor) *
                   (1.0 - std::exp(-t_ps / double(params_.tauOff)));
    };
    const double norm = raw(15.0 * double(units::NS));
    if (t_off < 0)
        return 1.0 / norm; // unknown history: fully recovered
    return raw(double(t_off)) / norm;
}

double
CellModel::retentionTempFactor(double temp_c) const
{
    return std::exp2((temp_c - 80.0) / 10.0);
}

CellProps
CellModel::cellProps(int bank, int row, int bit) const
{
    return computeCellProps(params_, seed_, bank, row, bit);
}

bool
CellModel::isAnti(int bank, int row, int bit) const
{
    HashRng cell(hashU64(seed_, std::uint64_t(bank), std::uint64_t(row),
                         std::uint64_t(bit)));
    return cell.uniform(celltags::TAG_ANTI) < params_.antiFraction;
}

int
CellModel::dominantSide(int bank, int row, int bit) const
{
    HashRng cell(hashU64(seed_, std::uint64_t(bank), std::uint64_t(row),
                         std::uint64_t(bit)));
    return cell.uniform(celltags::TAG_DOM) < 0.5 ? 0 : 1;
}

double
CellModel::thetaHammer(int bank, int row, int bit) const
{
    return cellProps(bank, row, bit).thetaH;
}

double
CellModel::thetaPress(int bank, int row, int bit) const
{
    return cellProps(bank, row, bit).thetaP;
}

double
CellModel::tauRetention(int bank, int row, int bit) const
{
    return cellProps(bank, row, bit).tauRet;
}

double
CellModel::retentionQuantile(double u) const
{
    return std::exp(params_.muRet + params_.sigmaRet * probit(u));
}

const RowCandidates &
CellModel::rowCandidates(int bank, int row) const
{
    const std::uint64_t key = packRowKey(bank, row);
    if (auto it = rowMemo_.find(key); it != rowMemo_.end())
        return *it->second;
    const RowCandidates &built = store_->row(bank, row);
    rowMemo_.emplace(key, &built);
    return built;
}

const RowWordMasks &
CellModel::rowWordMasks(int bank, int row) const
{
    const std::uint64_t key = packRowKey(bank, row);
    if (auto it = wordMemo_.find(key); it != wordMemo_.end())
        return *it->second;
    const RowWordMasks &built = store_->wordMasks(bank, row);
    wordMemo_.emplace(key, &built);
    return built;
}

void
CellModel::invalidateCaches()
{
    rowMemo_.clear();
    wordMemo_.clear();
    store_ = ThresholdStore::makePrivate(params_, bitsPerRow_, seed_);
}

namespace {

/** Value of one bit of a row represented as fill byte + overrides. */
inline bool
rowBit(const RowContext &ctx, int bit)
{
    std::uint8_t byte = ctx.victimFill;
    if (ctx.victimOverrides) {
        auto it = ctx.victimOverrides->find(bit >> 3);
        if (it != ctx.victimOverrides->end())
            byte = it->second;
    }
    return (byte >> (bit & 7)) & 1;
}

/** Bit of a neighbor (fill-only representation). */
inline bool
fillBit(std::uint8_t fill, int bit)
{
    return (fill >> (bit & 7)) & 1;
}

/**
 * Per-attempt multiplicative damage noise.  Only evaluated when the
 * damage is close enough to threshold for the noise to matter.
 */
inline double
attemptNoise(const RowContext &ctx, int bit)
{
    HashRng rng(hashU64(ctx.noiseNonce, std::uint64_t(bit), 0xA77E));
    return std::exp(ctx.noiseSigma * rng.normal(1));
}

} // namespace

bool
CellModel::evaluateCell(const CellProps &props, int bit,
                        const RowContext &ctx, double temp_c,
                        FlipRecord *out) const
{
    const CellModelParams &p = params_;
    const DoseState &dose = *ctx.dose;

    const bool bitv = rowBit(ctx, bit);
    const bool charged = props.anti ? !bitv : bitv;

    // Approximation: the neighbor cell at the same bit position shares
    // this cell's true/anti polarity (real layouts are repeated per
    // mat, so polarity is locally uniform).
    auto aggr_charged = [&](int side) {
        const bool b = fillBit(ctx.aggrFill[side], bit);
        return props.anti ? !b : b;
    };

    if (charged) {
        // RowPress drains charged cells; retention leaks them too.
        const double gamma =
            p.gammaRpAggr0 + p.gammaRpAggrT * (temp_c - 50.0) / 30.0;
        const int dom = props.domSide;
        const double c_dom =
            std::max(0.1, 1.0 + gamma * (aggr_charged(dom) ? 0.5 : -0.5));
        const double c_oth =
            std::max(0.1,
                     1.0 + gamma * (aggr_charged(1 - dom) ? 0.5 : -0.5));
        const double press = dose.press[dom] * c_dom +
                             p.rhoWeakSide * dose.press[1 - dom] * c_oth;
        const double press_damage = press / props.thetaP;
        const double ret_damage =
            ctx.retentionSeconds > 0.0
                ? ctx.retentionSeconds / props.tauRet
                : 0.0;
        double damage = press_damage + ret_damage;
        if (ctx.noiseSigma > 0.0 && damage > 0.5)
            damage *= attemptNoise(ctx, bit);
        if (damage >= 1.0) {
            if (out) {
                out->bit = bit;
                out->oneToZero = !props.anti;
                out->mechanism = press_damage >= ret_damage
                                     ? Mechanism::RowPress
                                     : Mechanism::Retention;
            }
            return true;
        }
        return false;
    }

    // RowHammer charges discharged cells.
    const double c0 =
        std::max(0.1, 1.0 + p.gammaRhAggr * (aggr_charged(0) ? 0.5 : -0.5));
    const double c1 =
        std::max(0.1, 1.0 + p.gammaRhAggr * (aggr_charged(1) ? 0.5 : -0.5));
    const double h = dose.hammer[0] * c0 + dose.hammer[1] * c1 +
                     p.kappaDs * std::min(dose.hammer[0], dose.hammer[1]);
    double damage = h / props.thetaH;
    if (ctx.noiseSigma > 0.0 && damage > 0.5)
        damage *= attemptNoise(ctx, bit);
    if (damage >= 1.0) {
        if (out) {
            out->bit = bit;
            out->oneToZero = props.anti;
            out->mechanism = Mechanism::RowHammer;
        }
        return true;
    }
    return false;
}

CellModel::DamageBounds
CellModel::damageBounds(const DoseState &dose, double retention_seconds,
                        double temp_c) const
{
    const CellModelParams &p = params_;
    DamageBounds b;

    b.hammer = 0.0;
    const double h_sum = dose.hammer[0] + dose.hammer[1];
    if (h_sum > 0.0) {
        const double c_max = 1.0 + 0.5 * std::fabs(p.gammaRhAggr);
        b.hammer =
            h_sum * c_max + std::max(p.kappaDs, 0.0) *
                                std::min(dose.hammer[0], dose.hammer[1]);
    }

    const double gamma =
        p.gammaRpAggr0 + p.gammaRpAggrT * (temp_c - 50.0) / 30.0;
    const double c_max = std::max(0.1, 1.0 + 0.5 * std::fabs(gamma)) *
                         std::max(1.0, p.rhoWeakSide);
    b.press = (dose.press[0] + dose.press[1]) * c_max;
    b.retention = retention_seconds > 0.0 ? retention_seconds : 0.0;
    return b;
}

bool
CellModel::rowMayFlip(const RowCandidates &cands, const DoseState &dose,
                      double retention_seconds, double temp_c) const
{
    // A flip needs pre-noise damage >= 1.0; the attempt noise only
    // applies above damage 0.5.  So if a conservative upper bound on
    // every candidate's damage stays below 0.5, no cell of this row
    // can flip — regardless of the noise draw — and the candidate scan
    // can be skipped without changing any result.
    if (cands.size() == 0)
        return false;
    const DamageBounds b =
        damageBounds(dose, retention_seconds, temp_c);
    if (b.hammer >= 0.5 * cands.minThetaH)
        return true;
    return b.press / cands.minThetaP + b.retention / cands.minTauRet >=
           0.5;
}

bool
CellModel::rowMayFlip(int bank, int row, const DoseState &dose,
                      double retention_seconds, double temp_c) const
{
    return rowMayFlip(rowCandidates(bank, row), dose, retention_seconds,
                      temp_c);
}

void
CellModel::evaluateFullScanReference(int bank, int row,
                                     const RowContext &ctx,
                                     double temp_c,
                                     std::vector<FlipRecord> &out) const
{
    FlipRecord rec;
    for (int bit = 0; bit < bitsPerRow_; ++bit) {
        CellProps props = cellProps(bank, row, bit);
        if (evaluateCell(props, bit, ctx, temp_c, &rec))
            out.push_back(rec);
    }
}

void
CellModel::evaluateFullScan(int bank, int row, const RowContext &ctx,
                            double temp_c,
                            std::vector<FlipRecord> &out) const
{
    const RowWordMasks &wm = rowWordMasks(bank, row);
    const DamageBounds b =
        damageBounds(*ctx.dose, ctx.retentionSeconds, temp_c);

    // A cell flips only if its pre-noise damage reaches 0.5 (see
    // rowMayFlip).  Charged-branch damage is a sum of a press and a
    // retention term, so it reaching 0.5 requires one term to reach
    // 0.25; the hammer branch is a single term against 0.5.  A word
    // can therefore only contain flips if its weakest cell satisfies
    //   thetaP <= press / 0.25  OR  tauRet <= retention / 0.25  OR
    //   thetaH <= hammer / 0.5,
    // which is exactly a cumulative-occupancy lookup at the ladder
    // level covering that bound.
    const CellModelParams &p = params_;
    // Sum-split tightening (see RowWordMasks::minThetaPLow): the
    // other charged-branch term can contribute at most bound-over-
    // row-minimum, so this term must cover the rest of the 0.5 —
    // never less than the generic 0.25 split.
    const double a_max = b.press / wm.minThetaPLow;
    const double r_max = b.retention / wm.minTauRetLow;
    const double bound_h = b.hammer / 0.5;
    const double bound_p = b.press / std::max(0.25, 0.5 - r_max);
    const double bound_r = b.retention / std::max(0.25, 0.5 - a_max);

    const BucketLadder &lh = store_->hammerLadder();
    const BucketLadder &lp = store_->pressLadder();
    const BucketLadder &lr = store_->retentionLadder();
    const std::size_t kh = b.hammer > 0.0 ? lh.indexFor(bound_h)
                                          : RowWordMasks::npos;
    const std::size_t kp = b.press > 0.0 ? lp.indexFor(bound_p)
                                         : RowWordMasks::npos;
    const std::size_t kr = b.retention > 0.0 ? lr.indexFor(bound_r)
                                             : RowWordMasks::npos;

    // Within an eligible word, most cells still provably cannot flip:
    // their thresholds are monotone in the raw uniform draws, so a
    // per-word uniform cutoff (weakQuantileCutoff) discards them
    // after three hash draws, and only the weak tail pays the full
    // property derivation + evaluation.  Retention has no row/word
    // variance component, so its cutoff is row-global.
    const RowZ row_z = computeRowZ(seed_, bank, row);
    const double cut_r =
        weakQuantileCutoff(bound_r, p.muRet, p.sigmaRet, 0.0);

    FlipRecord rec;
    for (std::size_t g = 0; g < wm.numGroups; ++g) {
        std::uint64_t mask =
            wm.level(wm.hammer, kh, lh.size(), g) |
            wm.level(wm.press, kp, lp.size(), g) |
            wm.level(wm.retention, kr, lr.size(), g);
        while (mask) {
            const std::size_t w =
                g * 64 + std::size_t(__builtin_ctzll(mask));
            mask &= mask - 1;

            const RowWordZ z =
                computeWordZ(row_z, seed_, bank, row, int(w));
            const double cut_h = weakQuantileCutoff(
                bound_h, p.muH, p.sigmaH,
                p.sigmaRowH * z.rowH + p.sigmaWordH * z.wordH);
            const double cut_p = weakQuantileCutoff(
                bound_p, p.muP, p.sigmaP,
                p.sigmaRowP * z.rowP + p.sigmaWordP * z.wordP);

            const int first = int(w) * 64;
            const int last = std::min(bitsPerRow_, first + 64);
            for (int bit = first; bit < last; ++bit) {
                HashRng cell(hashU64(seed_, std::uint64_t(bank),
                                     std::uint64_t(row),
                                     std::uint64_t(bit)));
                if (cell.uniform(celltags::TAG_UH) >= cut_h &&
                    cell.uniform(celltags::TAG_UP) >= cut_p &&
                    cell.uniform(celltags::TAG_RET) >= cut_r)
                    continue;
                const CellProps props = computeCellProps(p, cell, z);
                if (evaluateCell(props, bit, ctx, temp_c, &rec))
                    out.push_back(rec);
            }
        }
    }
}

void
CellModel::evaluateInto(int bank, int row, const RowContext &ctx,
                        bool full_scan, double temp_c,
                        std::vector<FlipRecord> &out) const
{
    if (!ctx.dose)
        panic("CellModel::evaluate: null dose state");
    if (ctx.dose->empty() && ctx.retentionSeconds <= 0.0)
        return;

    if (full_scan) {
        evaluateFullScan(bank, row, ctx, temp_c, out);
        return;
    }

    FlipRecord rec;
    const RowCandidates &cands = rowCandidates(bank, row);
    if (!rowMayFlip(cands, *ctx.dose, ctx.retentionSeconds, temp_c))
        return;

    CellProps props;
    props.uH = props.uP = 0.0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        props.thetaH = cands.thetaH[i];
        props.thetaP = cands.thetaP[i];
        props.tauRet = cands.tauRet[i];
        props.anti = cands.anti[i] != 0;
        props.domSide = cands.domSide[i];
        if (evaluateCell(props, cands.bit[i], ctx, temp_c, &rec))
            out.push_back(rec);
    }
}

std::vector<FlipRecord>
CellModel::evaluate(int bank, int row, const RowContext &ctx,
                    bool full_scan, double temp_c) const
{
    std::vector<FlipRecord> flips;
    evaluateInto(bank, row, ctx, full_scan, temp_c, flips);
    return flips;
}

} // namespace rp::device
