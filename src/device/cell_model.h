/**
 * @file
 * Circuit-level read-disturbance cell model.
 *
 * Every DRAM cell has three independent, deterministic (hash-derived)
 * disturbance thresholds:
 *
 *  - thetaHammer: weighted aggressor-ACT count that charges a
 *    *discharged* cell enough to flip it (the RowHammer mechanism:
 *    electron injection, paper Obsv. 8 / footnote 14);
 *  - thetaPress: cumulative aggressor-row-on time (ps, at 50C) that
 *    drains a *charged* cell enough to flip it (the RowPress /
 *    passing-gate mechanism);
 *  - tauRetention: unrefreshed time (s, at 80C) after which a charged
 *    cell leaks below the sense threshold.
 *
 * Because the thresholds are drawn independently per cell, the
 * RowHammer-, RowPress-, and retention-vulnerable cell populations are
 * naturally (almost) disjoint, reproducing paper section 4.3; and
 * because RowHammer only charges discharged cells while RowPress only
 * drains charged cells, the opposite bitflip directionality of the two
 * phenomena (Obsv. 8) and the data-pattern eligibility effects
 * (section 5.3, e.g. RowStripe's "No Bitflip" cells at long tAggON)
 * emerge without special cases.
 *
 * Thresholds are log-normal with cell-, word-, and row-level variance
 * components; the word component produces the multi-bit-per-64-bit-word
 * clustering that defeats ECC (section 7.1).
 *
 * The per-row weakest-cell candidate lists live in a ThresholdStore
 * shared by every CellModel built from the same (die, seed), so the
 * expensive enumeration happens once per row per process regardless of
 * how many models / platforms / search tasks exist.
 */

#ifndef ROWPRESS_DEVICE_CELL_MODEL_H
#define ROWPRESS_DEVICE_CELL_MODEL_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "device/die_config.h"
#include "device/threshold_store.h"

namespace rp::device {

/** Which failure mechanism produced a bitflip. */
enum class Mechanism
{
    RowHammer,
    RowPress,
    Retention,
};

constexpr const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::RowHammer: return "RowHammer";
      case Mechanism::RowPress: return "RowPress";
      case Mechanism::Retention: return "Retention";
    }
    return "?";
}

/**
 * Disturbance accumulated by one victim row since its charge was last
 * restored (by refresh, by its own activation, or by a write).
 *
 * Side 0 collects contributions from aggressors at lower row indices,
 * side 1 from higher ones.  Doses are pre-scaled at accumulation time
 * by temperature factors, tAggOFF recovery weights, and row-distance
 * attenuation, so evaluation only combines them with per-cell
 * couplings.
 */
struct DoseState
{
    double hammer[2] = {0.0, 0.0};  ///< Weighted ACT counts.
    double press[2] = {0.0, 0.0};   ///< Weighted on-time (ps).
    Time lastRestore = 0;           ///< Wall-clock of last restore.

    bool
    empty() const
    {
        return hammer[0] == 0.0 && hammer[1] == 0.0 && press[0] == 0.0 &&
               press[1] == 0.0;
    }
};

/** Evaluation context: dose + stored data of victim and neighbors. */
struct RowContext
{
    const DoseState *dose = nullptr;
    std::uint8_t victimFill = 0x00;
    /** Sparse byte overrides (accumulated flips) of the victim row. */
    const std::unordered_map<int, std::uint8_t> *victimOverrides = nullptr;
    std::uint8_t aggrFill[2] = {0x00, 0x00}; ///< Distance-1 neighbor fills.
    double retentionSeconds = 0.0; ///< Temp-scaled unrefreshed time.

    /**
     * Per-attempt measurement noise: cells close to their threshold
     * flip probabilistically across repeated attempts (this is why the
     * paper repeats every search five times and why repeatability,
     * Appendix E, is below 100 %).  Zero disables the noise.
     */
    double noiseSigma = 0.0;
    std::uint64_t noiseNonce = 0;
};

/** One bitflip detected during evaluation. */
struct FlipRecord
{
    int bit;            ///< Bit index within the row.
    bool oneToZero;     ///< Logical flip direction.
    Mechanism mechanism;
};

/**
 * The per-die cell model: derives CellModelParams from a DieConfig's
 * measured targets and answers per-cell and per-row queries.
 */
class CellModel
{
  public:
    CellModel(const DieConfig &die, int bits_per_row, std::uint64_t seed);

    const DieConfig &die() const { return die_; }
    int bitsPerRow() const { return bitsPerRow_; }
    const CellModelParams &params() const { return params_; }

    /** Mutable access for ablation studies (bench_ablation_model). */
    CellModelParams &mutableParams() { return params_; }

    // --- accumulation-time scaling helpers ---

    /** Multiplier on press (on-time) dose at temperature @p temp_c. */
    double pressTempFactor(double temp_c) const;

    /** Multiplier on hammer dose at temperature @p temp_c. */
    double hammerTempFactor(double temp_c) const;

    /**
     * Per-ACT hammer weight as a function of the aggressor's preceding
     * off-time; normalized to 1.0 at the nominal tRP so conventional
     * back-to-back hammering has unit weight (paper section 5.4).
     */
    double hammerOffWeight(Time t_off) const;

    /** Retention time-scaling: x2 leakage per 10C above 80C. */
    double retentionTempFactor(double temp_c) const;

    // --- per-cell properties (deterministic in (seed,bank,row,bit)) ---

    bool isAnti(int bank, int row, int bit) const;
    int dominantSide(int bank, int row, int bit) const;
    double thetaHammer(int bank, int row, int bit) const;
    double thetaPress(int bank, int row, int bit) const;
    double tauRetention(int bank, int row, int bit) const;

    /** Retention-time quantile function (seconds at 80C). */
    double retentionQuantile(double u) const;

    // --- evaluation ---

    /**
     * Evaluate which cells of the row flip under @p ctx.
     *
     * @param full_scan consider every cell (needed for BER-level
     *        doses).  The scan runs word-at-a-time: the store's
     *        per-row occupancy masks prove "no cell of these 64-bit
     *        words can flip at this damage bound" with one mask test
     *        per 64 words, and only words that admit flips descend to
     *        the per-cell evaluation — bit-identical to the plain
     *        per-bit loop (evaluateFullScanReference).  Without
     *        full_scan only the shared weakest-cell candidates are
     *        checked (sufficient for ACmin-level searches), and rows
     *        whose dose provably cannot flip any candidate are skipped
     *        in O(1) via the store's per-row minimum thresholds.
     * @param temp_c current temperature (affects data-pattern coupling).
     */
    std::vector<FlipRecord> evaluate(int bank, int row,
                                     const RowContext &ctx, bool full_scan,
                                     double temp_c) const;

    /**
     * Allocation-free form of evaluate(): appends the flips to @p out
     * (which the caller clears and reuses across attempts).
     */
    void evaluateInto(int bank, int row, const RowContext &ctx,
                      bool full_scan, double temp_c,
                      std::vector<FlipRecord> &out) const;

    /** The shared weakest-cell candidate list of a row (SoA layout). */
    const RowCandidates &rowCandidates(int bank, int row) const;

    /** The shared word-occupancy tier of a row (full-scan fast path). */
    const RowWordMasks &rowWordMasks(int bank, int row) const;

    /**
     * Reference full scan: the plain per-bit evaluation loop the
     * word-mask fast path replaced.  Kept public so the differential
     * tests can pin `evaluateInto(full_scan = true)` against it
     * bit-for-bit; not used on any hot path.
     */
    void evaluateFullScanReference(int bank, int row,
                                   const RowContext &ctx, double temp_c,
                                   std::vector<FlipRecord> &out) const;

    /**
     * O(1) disproof: false means no candidate cell of the row can
     * flip under (@p dose, @p retention_seconds) — rigorous against
     * the attempt noise (a flip needs pre-noise damage >= 1.0 and the
     * noise only applies above 0.5, so a damage bound below 0.5
     * suffices).  Chip::restoreRow and the candidate-path evaluate
     * both gate on this one proof so the bounds can never drift
     * apart.
     */
    bool rowMayFlip(int bank, int row, const DoseState &dose,
                    double retention_seconds, double temp_c) const;

    /**
     * Rebuild the candidate source after parameter mutation: detaches
     * this model onto a private ThresholdStore generated from the
     * current (possibly mutated) parameters, leaving the shared store
     * of other models untouched.
     */
    void invalidateCaches();

  private:
    /**
     * Conservative per-mechanism damage numerators of one (dose,
     * retention, temperature) state: an upper bound on any cell's
     * hammer dose after couplings, on its press dose, and the
     * retention seconds.  Dividing by a cell's (or a word's minimum)
     * threshold bounds that cell's pre-noise damage, so a result
     * below 0.5 is a rigorous cannot-flip proof.  rowMayFlip and the
     * word-mask full scan both derive their tests from this one
     * helper so the bounds can never drift apart.
     */
    struct DamageBounds
    {
        double hammer;
        double press;
        double retention;
    };

    void deriveParams();
    CellProps cellProps(int bank, int row, int bit) const;
    bool evaluateCell(const CellProps &props, int bit,
                      const RowContext &ctx, double temp_c,
                      FlipRecord *out) const;

    DamageBounds damageBounds(const DoseState &dose,
                              double retention_seconds,
                              double temp_c) const;

    /** The word-mask full-scan fast path behind evaluateInto. */
    void evaluateFullScan(int bank, int row, const RowContext &ctx,
                          double temp_c,
                          std::vector<FlipRecord> &out) const;

    /** The bound behind rowMayFlip, on an already-resolved row. */
    bool rowMayFlip(const RowCandidates &cands, const DoseState &dose,
                    double retention_seconds, double temp_c) const;

    DieConfig die_;
    int bitsPerRow_;
    std::uint64_t seed_;
    CellModelParams params_;
    std::shared_ptr<const ThresholdStore> store_;
    /**
     * Per-model memo of resolved store rows: each CellModel belongs
     * to one chip (one engine task), so this lookup is unsynchronized
     * and keeps the shared store's mutex off the steady-state path —
     * it is taken once per (model, row), not once per evaluation.
     * Pointees live in the store, which store_ keeps alive.
     */
    mutable std::unordered_map<std::uint64_t, const RowCandidates *>
        rowMemo_;
    /** Same memoization for the word-occupancy tier. */
    mutable std::unordered_map<std::uint64_t, const RowWordMasks *>
        wordMemo_;
};

} // namespace rp::device

#endif // ROWPRESS_DEVICE_CELL_MODEL_H
