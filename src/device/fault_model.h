/**
 * @file
 * Dose accounting for read disturbance.
 *
 * The FaultModel listens to row activity (ACT / PRE / restore events)
 * and maintains, for every disturbed victim row, the accumulated
 * hammer and press doses since that row's charge was last restored.
 * Doses are pre-scaled at accumulation time by:
 *  - temperature factors (RowPress: Arrhenius-like acceleration;
 *    RowHammer: the mild, die-specific response from Table 5);
 *  - the aggressor's preceding off-time (hammer recovery weight,
 *    paper section 5.4);
 *  - row-distance attenuation (victims up to +/-3 rows).
 */

#ifndef ROWPRESS_DEVICE_FAULT_MODEL_H
#define ROWPRESS_DEVICE_FAULT_MODEL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "device/cell_model.h"
#include "dram/address.h"

namespace rp::device {

/** Tracks disturbance doses for every victim row of one chip. */
class FaultModel
{
  public:
    FaultModel(const DieConfig &die, const dram::Organization &org,
               std::uint64_t seed);

    CellModel &cells() { return cells_; }
    const CellModel &cells() const { return cells_; }
    const dram::Organization &org() const { return org_; }

    void setTemperature(double temp_c) { temperatureC_ = temp_c; }
    double temperature() const { return temperatureC_; }

    /** Per-attempt measurement-noise level (0 = deterministic). */
    void setEvalNoiseSigma(double sigma) { evalNoiseSigma_ = sigma; }
    double evalNoiseSigma() const { return evalNoiseSigma_; }

    /** Aggressor row opened: deposit hammer dose on neighbors. */
    void onActivate(int bank, int row, Time now);

    /** Aggressor row closed: deposit press dose for the open interval. */
    void onPrecharge(int bank, int row, Time open_at, Time close_at);

    /**
     * The row's charge was restored (refresh, own activation, or
     * write): clear its accumulated dose and restart retention.
     */
    void onRestore(int bank, int row, Time now);

    /** Dose state of a row (a zero state if it was never disturbed). */
    const DoseState &dose(int bank, int row) const;

    /** Temperature-scaled unrefreshed seconds of a row at @p now. */
    double retentionSeconds(int bank, int row, Time now) const;

    /** Rows that currently carry non-zero dose (bank, row pairs). */
    std::vector<std::pair<int, int>> disturbedRows() const;

    /** Clear all dose state (platform reset). */
    void reset();

    // --- loop fast-forward support (bender::TestPlatform) ---

    using DoseMap = std::unordered_map<std::uint64_t, DoseState>;

    /**
     * One elementary dose accumulation: `doses_[key].<comp> += value`.
     * comp 0/1 = hammer side 0/1, comp 2/3 = press side 0/1.  Recorded
     * traces let the chr::AttemptOracle replay an attempt's exact
     * floating-point accumulation sequence without re-executing the
     * program (bit-identical results).
     */
    struct DoseOp
    {
        std::uint64_t key;
        int comp;
        double value;
    };

    /** The dose-map key of (bank, row) (= device::packRowKey). */
    static std::uint64_t
    doseKey(int bank, int row)
    {
        return key(bank, row);
    }

    /**
     * Record every subsequent dose accumulation into @p rec (nullptr
     * stops recording).  Measurement-only: recording adds a branch to
     * the accumulation hot path but no allocation when disabled.
     */
    void setDoseOpRecorder(std::vector<DoseOp> *rec) { opRecorder_ = rec; }

    /** Snapshot of all current doses. */
    DoseMap snapshotDoses() const { return doses_; }

    /**
     * Replay the dose growth between @p before and the current state
     * an additional @p factor times (steady-state loop extrapolation).
     */
    void scaleDoseDelta(const DoseMap &before, double factor);

    /**
     * Advance a row's close/restore history by @p delta (applied to
     * rows the fast-forwarded loop body activates, so that subsequent
     * tAggOFF weights and retention clocks stay consistent).
     */
    void shiftRowHistory(int bank, int row, Time delta);

  private:
    static std::uint64_t
    key(int bank, int row)
    {
        return packRowKey(bank, row);
    }

    DoseState &state(int bank, int row);

    dram::Organization org_;
    CellModel cells_;
    double temperatureC_ = 50.0;
    double evalNoiseSigma_ = 0.05;

    std::unordered_map<std::uint64_t, DoseState> doses_;
    /** Last close time per aggressor row (for tAggOFF weighting). */
    std::unordered_map<std::uint64_t, Time> lastClose_;
    /** Last restore time per row (for retention). */
    std::unordered_map<std::uint64_t, Time> lastRestore_;

    std::vector<DoseOp> *opRecorder_ = nullptr;
};

} // namespace rp::device

#endif // ROWPRESS_DEVICE_FAULT_MODEL_H
