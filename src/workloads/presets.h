/**
 * @file
 * Named workload presets standing in for the paper's evaluation
 * suites (SPEC CPU2006 / CPU2017, TPC-H, YCSB, and the media/graph
 * workloads of Figs. 38-41).  MPKI and row-buffer-locality values are
 * set from the figures the paper reports (e.g., 429.mcf RBMPKI 68.6;
 * 462.libquantum RBMPKI 0.91 with very high row locality;
 * h264_encode row-buffer hit rate 87 %) and from common published
 * characterizations of these suites.
 */

#ifndef ROWPRESS_WORKLOADS_PRESETS_H
#define ROWPRESS_WORKLOADS_PRESETS_H

#include "workloads/generator.h"

namespace rp::workloads {

/** All named workload presets. */
const std::vector<WorkloadParams> &allWorkloads();

/** Look up one preset by name (fatal if unknown). */
const WorkloadParams &workloadByName(const std::string &name);

/** The memory-intensive ('H') subset. */
std::vector<WorkloadParams> highIntensityWorkloads();

/** The low-intensity ('L') subset. */
std::vector<WorkloadParams> lowIntensityWorkloads();

/**
 * Build a heterogeneous four-core mix of the given composition
 * (e.g. "HHLL"), using @p seed to pick members (paper section D.2).
 */
std::vector<WorkloadParams> makeMix(const std::string &composition,
                                    std::uint64_t seed);

} // namespace rp::workloads

#endif // ROWPRESS_WORKLOADS_PRESETS_H
