#include "workloads/presets.h"

#include "common/logging.h"

namespace rp::workloads {

namespace {

std::vector<WorkloadParams>
buildWorkloads()
{
    // {name, mpki, rowLocality, writeFrac, hotRowsPerBank, category}
    return {
        // SPEC CPU2006.
        {"429.mcf", 70.0, 0.15, 0.20, 2048, 'H'},
        {"433.milc", 25.0, 0.30, 0.25, 1024, 'H'},
        {"434.zeusmp", 6.0, 0.50, 0.30, 512, 'H'},
        {"436.cactusADM", 10.0, 0.25, 0.30, 1024, 'H'},
        {"437.leslie3d", 15.0, 0.40, 0.30, 512, 'H'},
        {"450.soplex", 30.0, 0.40, 0.20, 1024, 'H'},
        {"459.GemsFDTD", 20.0, 0.45, 0.30, 512, 'H'},
        {"462.libquantum", 25.0, 0.93, 0.15, 64, 'H'},
        {"470.lbm", 25.0, 0.50, 0.40, 512, 'H'},
        {"471.omnetpp", 25.0, 0.20, 0.25, 2048, 'H'},
        {"473.astar", 10.0, 0.30, 0.25, 1024, 'H'},
        {"482.sphinx3", 15.0, 0.55, 0.10, 512, 'H'},
        {"483.xalancbmk", 25.0, 0.20, 0.20, 2048, 'H'},
        {"444.namd", 0.4, 0.50, 0.25, 128, 'L'},
        {"445.gobmk", 0.6, 0.40, 0.25, 256, 'L'},
        {"453.povray", 0.1, 0.50, 0.25, 64, 'L'},
        {"458.sjeng", 0.5, 0.35, 0.25, 256, 'L'},
        // SPEC CPU2017.
        {"505.mcf", 30.0, 0.25, 0.20, 2048, 'H'},
        {"507.cactuBSSN", 15.0, 0.45, 0.30, 512, 'H'},
        {"510.parest", 18.0, 0.78, 0.25, 256, 'H'},
        {"519.lbm", 30.0, 0.50, 0.40, 512, 'H'},
        {"520.omnetpp", 20.0, 0.25, 0.25, 2048, 'H'},
        {"538.imagick", 2.0, 0.60, 0.30, 256, 'L'},
        {"544.nab", 3.0, 0.50, 0.25, 256, 'L'},
        {"549.fotonik3d", 25.0, 0.50, 0.30, 512, 'H'},
        {"557.xz", 5.0, 0.30, 0.30, 1024, 'H'},
        // Media / graph / map-reduce workloads of Figs. 38-40.
        {"h264_encode", 5.0, 0.87, 0.30, 128, 'H'},
        {"h264_decode", 5.0, 0.60, 0.30, 256, 'H'},
        {"jp2_encode", 8.0, 0.60, 0.30, 256, 'H'},
        {"jp2_decode", 10.0, 0.55, 0.30, 256, 'H'},
        {"bfs_cm2003", 20.0, 0.25, 0.15, 2048, 'H'},
        {"bfs_dblp", 18.0, 0.25, 0.15, 2048, 'H'},
        {"bfs_ny", 16.0, 0.25, 0.15, 2048, 'H'},
        {"grep_map0", 10.0, 0.50, 0.15, 512, 'H'},
        {"wc_8443", 8.0, 0.55, 0.20, 512, 'H'},
        {"wc_map0", 8.0, 0.55, 0.20, 512, 'H'},
        // TPC-H.
        {"tpch2", 12.0, 0.45, 0.15, 1024, 'H'},
        {"tpch17", 12.0, 0.45, 0.15, 1024, 'H'},
        // YCSB.
        {"ycsb_aserver", 10.0, 0.40, 0.35, 1024, 'H'},
        {"ycsb_bserver", 8.0, 0.40, 0.15, 1024, 'H'},
        {"ycsb_cserver", 8.0, 0.42, 0.05, 1024, 'H'},
        {"ycsb_dserver", 6.0, 0.45, 0.20, 1024, 'H'},
        {"ycsb_eserver", 9.0, 0.35, 0.25, 1024, 'H'},
    };
}

} // namespace

const std::vector<WorkloadParams> &
allWorkloads()
{
    static const std::vector<WorkloadParams> all = buildWorkloads();
    return all;
}

const WorkloadParams &
workloadByName(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<WorkloadParams>
highIntensityWorkloads()
{
    std::vector<WorkloadParams> out;
    for (const auto &w : allWorkloads()) {
        if (w.category == 'H')
            out.push_back(w);
    }
    return out;
}

std::vector<WorkloadParams>
lowIntensityWorkloads()
{
    std::vector<WorkloadParams> out;
    for (const auto &w : allWorkloads()) {
        if (w.category == 'L')
            out.push_back(w);
    }
    return out;
}

std::vector<WorkloadParams>
makeMix(const std::string &composition, std::uint64_t seed)
{
    Rng rng(seed);
    const auto high = highIntensityWorkloads();
    const auto low = lowIntensityWorkloads();
    std::vector<WorkloadParams> mix;
    for (char c : composition) {
        const auto &pool = (c == 'H' || c == 'h') ? high : low;
        mix.push_back(pool[rng.below(pool.size())]);
    }
    return mix;
}

} // namespace rp::workloads
