#include "workloads/generator.h"

#include <algorithm>
#include <cmath>

namespace rp::workloads {

TraceGen::TraceGen(const WorkloadParams &params,
                   const dram::AddressMapper &map, std::uint64_t seed)
    : params_(params), map_(&map), rng_(seed ^ hashU64(1, seed))
{
}

TraceItem
TraceGen::next()
{
    TraceItem item;

    // Geometric bubble count with mean 1000/MPKI.
    const double mean_bubbles = 1000.0 / std::max(0.01, params_.mpki);
    const double u = std::max(1e-12, rng_.uniform());
    item.bubbles = int(std::min(50000.0, -mean_bubbles * std::log(u)));

    const auto &org = map_->org();
    dram::Address a;
    if (haveLast_ && rng_.uniform() < params_.rowLocality) {
        // Row-buffer hit: next column of the same row.
        a = last_;
        a.column = (a.column + 1) % org.columns;
    } else {
        a.rank = int(rng_.below(std::uint64_t(org.ranks)));
        a.bankGroup = int(rng_.below(std::uint64_t(org.bankGroups)));
        a.bank = int(rng_.below(std::uint64_t(org.banksPerGroup)));
        a.row = int(rng_.below(std::uint64_t(
            std::min(params_.hotRowsPerBank, org.rows))));
        a.column = int(rng_.below(std::uint64_t(org.columns)));
    }
    last_ = a;
    haveLast_ = true;

    item.addr = map_->encode(a);
    item.write = rng_.uniform() < params_.writeFrac;
    return item;
}

} // namespace rp::workloads
