/**
 * @file
 * Synthetic workload trace generation.
 *
 * Substitution (see DESIGN.md section 2): the paper evaluates its
 * mitigations on SPEC CPU2006/2017, TPC-H, and YCSB traces.  Those
 * traces are proprietary / machine-specific; mitigation overhead,
 * however, is a function of the request stream's statistics - memory
 * intensity (misses per kilo-instruction), row-buffer locality, write
 * fraction, and bank spread - which these generators reproduce.  Each
 * preset is named after the paper workload it stands in for.
 */

#ifndef ROWPRESS_WORKLOADS_GENERATOR_H
#define ROWPRESS_WORKLOADS_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dram/address.h"

namespace rp::workloads {

/** Statistical profile of one workload. */
struct WorkloadParams
{
    std::string name;
    double mpki = 10.0;        ///< LLC misses per kilo-instruction.
    double rowLocality = 0.4;  ///< P(next access hits the same row).
    double writeFrac = 0.25;   ///< Fraction of misses that are writes.
    int hotRowsPerBank = 512;  ///< Row working-set per bank.
    char category = 'H';       ///< 'H'igh / 'L'ow memory intensity.
};

/** One trace record: CPU bubbles followed by one memory access. */
struct TraceItem
{
    int bubbles;               ///< Non-memory instructions before.
    std::uint64_t addr;        ///< Physical byte address.
    bool write;
};

/** Deterministic, endless trace stream for one core. */
class TraceGen
{
  public:
    TraceGen(const WorkloadParams &params, const dram::AddressMapper &map,
             std::uint64_t seed);

    const WorkloadParams &params() const { return params_; }

    TraceItem next();

  private:
    WorkloadParams params_;
    const dram::AddressMapper *map_;
    Rng rng_;
    dram::Address last_;
    bool haveLast_ = false;
};

} // namespace rp::workloads

#endif // ROWPRESS_WORKLOADS_GENERATOR_H
