/**
 * @file
 * Pattern-search strategies over the genome space.
 *
 * Two pluggable strategies:
 *
 *  - Random: pure random sampling, one genome per trial;
 *  - Evolve: mutation-based evolutionary refinement — a random
 *    initial population, then generations of offspring mutated from
 *    the elite quarter.
 *
 * Every trial's genome is derived from a deterministic per-trial seed
 * (`hashU64(rootSeed, trialIndex)`; offspring additionally mix the
 * generation), and trials are dispatched through the shared
 * core::ExperimentEngine as closed tasks (each on a private
 * platform), so any fuzz run is bit-reproducible at 1..N threads:
 * same seed => identical best pattern and score.
 */

#ifndef ROWPRESS_FUZZ_SEARCH_H
#define ROWPRESS_FUZZ_SEARCH_H

#include "core/engine.h"
#include "fuzz/evaluator.h"

namespace rp::fuzz {

/** Search strategy selector. */
enum class Strategy
{
    Random,
    Evolve,
};

const char *strategyName(Strategy s);

/** The named mutation operators of the Evolve strategy. */
enum class MutationOp
{
    RowOffset,   ///< Move one slot to a free in-bounds offset.
    Frequency,   ///< Re-draw one slot's frequency (phase re-clamped).
    Phase,       ///< Re-draw one slot's phase.
    Intensity,   ///< Re-draw one slot's intensity.
    Dwell,       ///< Re-draw one slot's tAggON grid index.
    DataPattern, ///< Re-draw the layout's data pattern.
    AddSlot,     ///< Add a random slot (no-op at kMaxSlots).
    DropSlot,    ///< Drop a random slot (no-op at one slot).
};

const std::vector<MutationOp> &allMutationOps();

/** Uniform random valid genome at (bank, base_row). */
PatternSpec randomPattern(Rng &rng, int bank, int base_row);

/** Apply @p op; the result is always a valid in-bounds genome. */
void applyMutation(PatternSpec &spec, MutationOp op, Rng &rng);

/** Apply one uniformly chosen operator. */
void mutatePattern(PatternSpec &spec, Rng &rng);

/** Search-run parameters. */
struct SearchSpec
{
    Strategy strategy = Strategy::Random;
    int trials = 64;        ///< Random: samples; Evolve: total budget.
    int population = 16;    ///< Evolve: genomes per generation.
    int bank = 1;
    int baseRow = 64;
    std::uint64_t rootSeed = 1;
};

/** One evaluated candidate. */
struct TrialResult
{
    PatternSpec spec;
    Score score;
};

/**
 * True when @p a ranks strictly ahead of @p b: better score, or equal
 * score and lexicographically smaller canonical key (the total order
 * that makes "the best pattern" unique and thread-count independent).
 */
bool betterTrial(const TrialResult &a, const TrialResult &b);

/** Runs search strategies for one (evaluator, engine) pair. */
class Searcher
{
  public:
    Searcher(const Evaluator &evaluator, core::ExperimentEngine &engine)
        : evaluator_(evaluator), engine_(engine)
    {
    }

    /** Evaluate @p specs in parallel (ordered results). */
    std::vector<TrialResult>
    evaluateAll(const std::vector<PatternSpec> &specs) const;

    /** Run the configured strategy; returns the best trial. */
    TrialResult run(const SearchSpec &spec) const;

  private:
    TrialResult runRandom(const SearchSpec &spec) const;
    TrialResult runEvolve(const SearchSpec &spec) const;

    const Evaluator &evaluator_;
    core::ExperimentEngine &engine_;
};

} // namespace rp::fuzz

#endif // ROWPRESS_FUZZ_SEARCH_H
