/**
 * @file
 * Frequency-phased attack-pattern genome (Blacksmith / ZenHammer
 * direction; see ROADMAP "attack-pattern search engine").
 *
 * A PatternSpec describes a many-sided aggressor set as ordered slots.
 * Each slot carries the knobs the frequency-based fuzzers search over:
 *
 *  - rowOffset: aggressor placement relative to the base row;
 *  - frequency/phase: the slot is activated only in rounds r with
 *    r % frequency == phase, so aggressors can hammer at different
 *    rates and alignments (the property that slips recency-sampled
 *    TRR mechanisms);
 *  - intensity: consecutive activations per active round (Blacksmith
 *    "amplitude");
 *  - dwellIdx: per-activation row-open time tAggON, indexed into a
 *    fixed grid spanning RowHammer-style toggling (tRAS) through deep
 *    RowPress dwells (300 us) — the axis this paper adds.
 *
 * One period = lcm of the slot frequencies rounds.  PatternBuilder
 * compiles a genome into a bender::Program of counted period loops so
 * the platform's loop fast-forward applies; degenerate genomes
 * (frequency 1, intensity 1, offsets {0} or {0, 2}) compile
 * node-for-node identically to chr::makePressProgram, which the fuzz
 * tests pin.
 */

#ifndef ROWPRESS_FUZZ_PATTERN_H
#define ROWPRESS_FUZZ_PATTERN_H

#include <cstdint>
#include <string>
#include <vector>

#include "chr/patterns.h"

namespace rp::fuzz {

/** Genome bounds (inclusive search space of the mutation operators). */
constexpr int kMaxSlots = 4;
constexpr int kMaxRowSpan = 8;   ///< rowOffset in [0, kMaxRowSpan).
constexpr int kMaxFrequency = 8; ///< Power of two in {1, 2, 4, 8}.
constexpr int kMaxIntensity = 4;

/** The tAggON grid a slot's dwellIdx indexes (subset of the paper sweep). */
const std::vector<Time> &dwellGrid();

/** One aggressor slot of the genome. */
struct AggressorSlot
{
    int rowOffset = 0;  ///< Row relative to PatternSpec::baseRow.
    int frequency = 1;  ///< Active every `frequency` rounds (1/2/4/8).
    int phase = 0;      ///< Active rounds r: r % frequency == phase.
    int intensity = 1;  ///< Consecutive ACTs per active round.
    int dwellIdx = 0;   ///< Index into dwellGrid().

    bool operator==(const AggressorSlot &o) const
    {
        return rowOffset == o.rowOffset && frequency == o.frequency &&
               phase == o.phase && intensity == o.intensity &&
               dwellIdx == o.dwellIdx;
    }
};

/** A complete attack-pattern genome. */
struct PatternSpec
{
    int bank = 1;
    int baseRow = 64;
    chr::DataPattern dataPattern = chr::DataPattern::CheckerBoard;
    std::vector<AggressorSlot> slots;

    /** Absolute aggressor rows, in slot order. */
    std::vector<int> aggressorRows() const;

    /** Aggressor/victim layout via the shared placement helper. */
    chr::RowLayout layout() const;

    /**
     * Canonical text form ("b1@64:CB|o0.f1.p0.i1.d0|..."), used for
     * artifacts and as the deterministic tie-breaker of the search.
     */
    std::string key() const;

    /** Stable 64-bit digest of key() (per-candidate seed material). */
    std::uint64_t hash() const;

    bool operator==(const PatternSpec &o) const
    {
        return bank == o.bank && baseRow == o.baseRow &&
               dataPattern == o.dataPattern && slots == o.slots;
    }
};

/**
 * Structural validity: 1..kMaxSlots slots, distinct in-bounds offsets,
 * power-of-two frequency, phase < frequency, in-bounds intensity and
 * dwell index.  Every genome the random sampler or a mutation operator
 * produces satisfies this (unit-tested per operator).
 */
bool validPattern(const PatternSpec &spec);

/** Rounds per period: lcm of the slot frequencies (<= kMaxFrequency). */
int periodRounds(const PatternSpec &spec);

/** Aggressor activations issued by one full period. */
std::uint64_t actsPerPeriod(const PatternSpec &spec);

/**
 * The (absolute row, tAggON) activations of one period in issue
 * order — the act stream the mitigation-aware evaluator feeds to
 * Graphene/PARA/TRR models.
 */
std::vector<std::pair<int, Time>> periodActs(const PatternSpec &spec);

/**
 * The paper's fixed patterns as degenerate genomes (frequency 1,
 * intensity 1, dwell @p dwell_idx) — the baselines every
 * bypass-resistance table scores searched patterns against.
 */
PatternSpec fixedSingleSided(int bank, int base_row, int dwell_idx = 0);
PatternSpec fixedDoubleSided(int bank, int base_row, int dwell_idx = 0);

/** Compiles genomes into command-level test programs. */
class PatternBuilder
{
  public:
    explicit PatternBuilder(const dram::TimingParams &timing)
        : timing_(timing)
    {
    }

    /**
     * One period of the pattern: for each round, each active slot in
     * genome order issues `intensity` x (ACT, wait(tAggON), PRE).
     */
    bender::Program periodBody(const PatternSpec &spec) const;

    /**
     * Full program for @p total_acts activations: a counted loop of
     * whole periods plus an act-granular partial-period tail.
     */
    bender::Program build(const PatternSpec &spec,
                          std::uint64_t total_acts) const;

  private:
    dram::TimingParams timing_;
};

} // namespace rp::fuzz

#endif // ROWPRESS_FUZZ_PATTERN_H
