/**
 * @file
 * Mitigation-aware objective layer of the pattern search.
 *
 * An Evaluator scores one genome against one configured mitigation
 * (none / TRR-like / Graphene / PARA) on a private simulated DIMM:
 *
 *  1. the genome's act stream is pre-simulated through the mitigation
 *     model to find every preventive-refresh intervention (PARA's
 *     draws are seeded from (module seed, genome hash), so the whole
 *     evaluation is a pure function of the genome — the property the
 *     1-vs-N-thread determinism guarantee rests on);
 *  2. the compiled program then runs on the platform in counted
 *     period chunks (eligible for the loop fast-forward), breaking at
 *     intervention periods to apply the preventive refreshes and at
 *     geometrically spaced checkpoints to probe for the first bitflip
 *     with the non-destructive Chip::rowWouldFlip gate (an O(1)
 *     ThresholdStore cannot-flip proof before any cell is evaluated);
 *  3. final scoring materializes every victim row with the word-mask
 *     full scan and reports flip count and per-row coverage.
 *
 * Interventions and checkpoints are applied at pattern-period
 * granularity: the modelled controller flushes preventive refreshes
 * at the end of the period in which they were requested, and
 * minimum-cost-to-first-flip is measured in activations at checkpoint
 * resolution.
 */

#ifndef ROWPRESS_FUZZ_EVALUATOR_H
#define ROWPRESS_FUZZ_EVALUATOR_H

#include <limits>

#include "chr/experiments.h"
#include "fuzz/pattern.h"

namespace rp::fuzz {

/** The mitigation a pattern is scored against. */
enum class MitigationKind
{
    None,
    Trr,
    Graphene,
    Para,
};

const char *mitigationKindName(MitigationKind kind);

/** All kinds, in bypass-matrix presentation order. */
const std::vector<MitigationKind> &allMitigationKinds();

/** mitigationKindName's inverse; fatal()s on a miss. */
MitigationKind mitigationKindByName(const std::string &name);

/** Evaluation parameters shared by every trial of a search. */
struct EvalConfig
{
    chr::ModuleConfig module;  ///< Die, bank, temperature, seed.
    Time budget = 60 * units::MS;  ///< Pattern wall-clock budget.
    /** Base RowHammer threshold sizing Graphene/PARA (paper Table 3). */
    std::uint32_t trh = 1000;
};

/** Objective values of one (genome, mitigation) evaluation. */
struct Score
{
    static constexpr std::uint64_t kNoFlip =
        std::numeric_limits<std::uint64_t>::max();

    bool flipped = false;
    /** Activations issued when the first flip was observed (kNoFlip
        if the pattern never flipped within the budget). */
    std::uint64_t minCostActs = kNoFlip;
    std::uint64_t flipCount = 0;   ///< Total flipped bits at budget end.
    int rowsCovered = 0;           ///< Victim rows with >= 1 flip.
    std::uint64_t totalActs = 0;   ///< Activations issued in budget.
    std::uint64_t preventiveRefreshes = 0;
};

/**
 * Strict "a beats b": flips beat no-flips, then lower minimum cost,
 * then more flips, then wider row coverage.  Ties are broken by the
 * caller on the canonical genome key, so search results are totally
 * ordered and thread-count independent.
 */
bool betterScore(const Score &a, const Score &b);

/** Scores genomes against one mitigation on private platforms. */
class Evaluator
{
  public:
    Evaluator(EvalConfig cfg, MitigationKind kind)
        : cfg_(cfg), kind_(kind)
    {
    }

    const EvalConfig &config() const { return cfg_; }
    MitigationKind kind() const { return kind_; }

    /** Pure function of (config, kind, genome). */
    Score evaluate(const PatternSpec &spec) const;

  private:
    EvalConfig cfg_;
    MitigationKind kind_;
};

} // namespace rp::fuzz

#endif // ROWPRESS_FUZZ_EVALUATOR_H
