/**
 * @file
 * fuzz.* — frequency-based attack-pattern search experiments.
 *
 * The scenario axis the paper itself never explored: instead of the
 * fixed single/double-sided patterns, a Blacksmith/ZenHammer-style
 * fuzzer searches the frequency-phased genome space (src/fuzz/) for
 * patterns that minimize the activation cost to the first bitflip
 * against a configured mitigation.
 *
 *  - fuzz.random:        pure random sampling vs one mitigation;
 *  - fuzz.evolve:        mutation-based evolutionary refinement;
 *  - fuzz.bypass_matrix: one search per mitigation in {none, trr,
 *    graphene, para}, emitting the `table.bypass_resistance` artifact
 *    (best pattern + minimum cost per mitigation, scored against the
 *    paper's fixed double-sided baseline).
 *
 * All three are deterministic at any --threads count for a fixed
 * --seed; CI diffs the CSV artifacts at 1 vs 4 threads.
 */

#include "fuzz/experiments.h"

#include "api/context.h"
#include "fuzz/search.h"

namespace rp::fuzz {
namespace {

void
declareFuzzOptions(api::ConfigSchema &schema)
{
    schema.add({"trials", api::OptionType::Int, "48", "",
                "search trials (evolve: total evaluation budget)", 1.0,
                true});
    schema.add({"population", api::OptionType::Int, "16", "",
                "evolve: genomes per generation", 1.0, true});
    schema.add({"budget", api::OptionType::Int, "8", "",
                "per-trial pattern budget in ms", 1.0, true});
    schema.add({"trh", api::OptionType::Int, "1000", "",
                "base RowHammer threshold sizing Graphene/PARA", 1.0,
                true});
}

void
declareMitigationOption(api::ConfigSchema &schema)
{
    schema.add({"mitigation", api::OptionType::String, "graphene", "",
                "mitigation to search against: "
                "none | trr | graphene | para"});
}

EvalConfig
evalConfigOf(api::ExperimentContext &ctx)
{
    EvalConfig ec;
    ec.module = ctx.moduleConfig(device::dieS8GbB(), 50.0);
    ec.budget = Time(ctx.config().getInt("budget")) * units::MS;
    ec.trh = std::uint32_t(ctx.config().getInt("trh"));
    return ec;
}

SearchSpec
searchSpecOf(api::ExperimentContext &ctx, const EvalConfig &ec,
             Strategy strategy)
{
    SearchSpec spec;
    spec.strategy = strategy;
    spec.trials = ctx.config().getInt("trials");
    spec.population = ctx.config().getInt("population");
    spec.bank = ec.module.bank;
    spec.baseRow = ec.module.firstRow;
    spec.rootSeed = ctx.seed();
    return spec;
}

std::string
costCell(std::uint64_t cost)
{
    return cost == Score::kNoFlip ? "inf" : std::to_string(cost);
}

void
appendScoreCells(std::vector<std::string> &row, const Score &s)
{
    row.push_back(s.flipped ? "yes" : "no");
    row.push_back(costCell(s.minCostActs));
    row.push_back(std::to_string(s.flipCount));
    row.push_back(std::to_string(s.rowsCovered));
    row.push_back(std::to_string(s.totalActs));
    row.push_back(std::to_string(s.preventiveRefreshes));
}

const std::vector<std::string> kScoreHeader = {
    "flipped", "min cost acts", "flips",
    "rows",    "total acts",    "preventive refreshes"};

/** CLI-facing kind lookup: ConfigError (exit 2), not fatal(). */
MitigationKind
mitigationOptionOf(api::ExperimentContext &ctx)
{
    const std::string name = ctx.config().getString("mitigation");
    for (auto kind : allMitigationKinds()) {
        if (name == mitigationKindName(kind))
            return kind;
    }
    throw api::ConfigError("unknown --mitigation '" + name +
                           "' (expected none|trr|graphene|para)");
}

void
runFuzzSearch(api::ExperimentContext &ctx, Strategy strategy)
{
    const auto ec = evalConfigOf(ctx);
    const auto kind = mitigationOptionOf(ctx);
    const Evaluator evaluator(ec, kind);
    const Searcher searcher(evaluator, ctx.engine());
    const auto spec = searchSpecOf(ctx, ec, strategy);

    const auto best = searcher.run(spec);
    const auto ds_base =
        evaluator.evaluate(fixedDoubleSided(spec.bank, spec.baseRow));

    api::Dataset table(std::string("Best pattern (") +
                       strategyName(strategy) + " search vs " +
                       mitigationKindName(kind) + ")");
    std::vector<std::string> header = {"candidate", "pattern"};
    header.insert(header.end(), kScoreHeader.begin(),
                  kScoreHeader.end());
    table.header(header);
    std::vector<std::string> row = {"searched best", best.spec.key()};
    appendScoreCells(row, best.score);
    table.row(row);
    row = {"fixed double-sided",
           fixedDoubleSided(spec.bank, spec.baseRow).key()};
    appendScoreCells(row, ds_base);
    table.row(row);
    ctx.emit(table);
    ctx.notef("%d trials, seed %llu, budget %d ms\n", spec.trials,
              (unsigned long long)spec.rootSeed,
              ctx.config().getInt("budget"));
}

void
runFuzzRandom(api::ExperimentContext &ctx)
{
    runFuzzSearch(ctx, Strategy::Random);
}

void
runFuzzEvolve(api::ExperimentContext &ctx)
{
    runFuzzSearch(ctx, Strategy::Evolve);
}

void
runFuzzBypassMatrix(api::ExperimentContext &ctx)
{
    const auto ec = evalConfigOf(ctx);
    const std::string sname = ctx.config().getString("strategy");
    if (sname != "random" && sname != "evolve")
        throw api::ConfigError("unknown --strategy '" + sname +
                               "' (expected random | evolve)");
    const auto strategy =
        sname == "random" ? Strategy::Random : Strategy::Evolve;

    api::Dataset table("table.bypass_resistance");
    std::vector<std::string> header = {"mitigation", "best pattern"};
    header.insert(header.end(), kScoreHeader.begin(),
                  kScoreHeader.end());
    header.push_back("fixed ds min cost");
    header.push_back("beats fixed ds");
    table.header(header);

    int bypasses = 0;
    for (auto kind : allMitigationKinds()) {
        const Evaluator evaluator(ec, kind);
        const Searcher searcher(evaluator, ctx.engine());
        const auto spec = searchSpecOf(ctx, ec, strategy);
        const auto best = searcher.run(spec);
        const auto ds_base = evaluator.evaluate(
            fixedDoubleSided(spec.bank, spec.baseRow));

        const bool beats = best.score.minCostActs < ds_base.minCostActs;
        bypasses += beats ? 1 : 0;
        std::vector<std::string> row = {mitigationKindName(kind),
                                        best.spec.key()};
        appendScoreCells(row, best.score);
        row.push_back(costCell(ds_base.minCostActs));
        row.push_back(beats ? "yes" : "no");
        table.row(row);
    }
    ctx.emit(table);
    ctx.notef("searched pattern beats the fixed double-sided baseline "
              "on min-cost against %d of %d mitigations\n",
              bypasses, int(allMitigationKinds().size()));
}

} // namespace

void
registerFuzzExperiments()
{
    static const bool once = [] {
        auto &registry = api::ExperimentRegistry::instance();
        registry.add(
            {{"fuzz.random",
              "Fuzz: random pattern search vs one mitigation",
              "attack-pattern search beyond the paper's fixed patterns",
              "fuzz"},
             [](api::ConfigSchema &schema) {
                 declareFuzzOptions(schema);
                 declareMitigationOption(schema);
             },
             runFuzzRandom});
        registry.add(
            {{"fuzz.evolve",
              "Fuzz: evolutionary pattern search vs one mitigation",
              "attack-pattern search beyond the paper's fixed patterns",
              "fuzz"},
             [](api::ConfigSchema &schema) {
                 declareFuzzOptions(schema);
                 declareMitigationOption(schema);
             },
             runFuzzEvolve});
        registry.add(
            {{"fuzz.bypass_matrix",
              "Fuzz: bypass-resistance table over all mitigations",
              "attack-pattern search beyond the paper's fixed patterns",
              "fuzz"},
             [](api::ConfigSchema &schema) {
                 declareFuzzOptions(schema);
                 schema.add({"strategy", api::OptionType::String,
                             "evolve", "",
                             "search strategy: random | evolve"});
             },
             runFuzzBypassMatrix});
        return true;
    }();
    (void)once;
}

} // namespace rp::fuzz
