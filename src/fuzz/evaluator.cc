#include "fuzz/evaluator.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"
#include "mitigation/defaults.h"
#include "sys/trr.h"

namespace rp::fuzz {

const char *
mitigationKindName(MitigationKind kind)
{
    switch (kind) {
      case MitigationKind::None: return "none";
      case MitigationKind::Trr: return "trr";
      case MitigationKind::Graphene: return "graphene";
      case MitigationKind::Para: return "para";
    }
    return "?";
}

const std::vector<MitigationKind> &
allMitigationKinds()
{
    static const std::vector<MitigationKind> all = {
        MitigationKind::None,
        MitigationKind::Trr,
        MitigationKind::Graphene,
        MitigationKind::Para,
    };
    return all;
}

MitigationKind
mitigationKindByName(const std::string &name)
{
    for (auto kind : allMitigationKinds()) {
        if (name == mitigationKindName(kind))
            return kind;
    }
    fatal("unknown mitigation '%s' (expected none|trr|graphene|para)",
          name.c_str());
    return MitigationKind::None;
}

bool
betterScore(const Score &a, const Score &b)
{
    if (a.flipped != b.flipped)
        return a.flipped;
    if (a.minCostActs != b.minCostActs)
        return a.minCostActs < b.minCostActs;
    if (a.flipCount != b.flipCount)
        return a.flipCount > b.flipCount;
    if (a.rowsCovered != b.rowsCovered)
        return a.rowsCovered > b.rowsCovered;
    return false;
}

namespace {

/** Per-period preventive-refresh requests of the pre-simulation. */
using RefreshSchedule =
    std::unordered_map<std::uint64_t, std::vector<int>>;

/**
 * Feed the genome's act stream to the configured mitigation model and
 * collect the victim rows it wants refreshed, keyed by the pattern
 * period the request fell in.  Wall time is tracked analytically
 * (chr::pressActPeriod per activation) for the TRR REF schedule and
 * the Graphene reset window; everything here is a pure function of
 * (cfg, kind, spec), so the schedule is identical on every thread.
 */
RefreshSchedule
simulateMitigation(const EvalConfig &cfg, MitigationKind kind,
                   const PatternSpec &spec,
                   const dram::TimingParams &timing, Time cmd_gap,
                   std::uint64_t total_periods)
{
    RefreshSchedule schedule;
    if (kind == MitigationKind::None)
        return schedule;

    std::unique_ptr<mitigation::Mitigation> mit;
    if (kind == MitigationKind::Graphene) {
        mit = std::make_unique<mitigation::Graphene>(
            mitigation::standardGrapheneFor(cfg.trh));
    } else if (kind == MitigationKind::Para) {
        // The draw stream is keyed to (module seed, genome), so each
        // candidate's evaluation is self-contained and reproducible.
        auto pcfg = mitigation::paraFor(
            cfg.trh, hashU64(cfg.module.seed, spec.hash(),
                             0x50415241ULL /* "PARA" */));
        mit = std::make_unique<mitigation::Para>(pcfg);
    }
    sys::TrrEngine trr;
    const bool use_trr = kind == MitigationKind::Trr;

    const auto acts = periodActs(spec);
    Time cursor = 0;
    Time next_ref = timing.tREFI;
    Time next_window = mitigation::kGrapheneResetWindow;
    std::vector<int> victims;
    for (std::uint64_t p = 0; p < total_periods; ++p) {
        for (const auto &[row, t_on] : acts) {
            if (mit)
                mit->onActivate(spec.bank, row, victims);
            if (use_trr)
                trr.onActivate(row);
            cursor += chr::pressActPeriod(t_on, timing, cmd_gap);
            while (use_trr && cursor >= next_ref) {
                auto v = trr.onRefresh();
                victims.insert(victims.end(), v.begin(), v.end());
                next_ref += timing.tREFI;
            }
            while (mit && cursor >= next_window) {
                mit->onRefreshWindow();
                next_window += mitigation::kGrapheneResetWindow;
            }
        }
        if (!victims.empty()) {
            schedule[p] = std::move(victims);
            victims.clear();
        }
    }
    return schedule;
}

} // namespace

Score
Evaluator::evaluate(const PatternSpec &spec) const
{
    bender::PlatformConfig pc;
    pc.die = cfg_.module.die;
    pc.org = dram::Organization{};
    pc.seed = cfg_.module.seed;
    pc.temperatureC = cfg_.module.temperatureC;
    bender::TestPlatform platform(pc);

    const chr::RowLayout layout = spec.layout();
    chr::initLayout(platform, layout, spec.dataPattern);

    PatternBuilder builder(platform.timing());
    const bender::Program body = builder.periodBody(spec);
    const std::uint64_t per = actsPerPeriod(spec);

    // Steady-state period duration, measured once on a scratch
    // platform (the third run is past the initial ramp).
    Time period_dur = 0;
    {
        bender::TestPlatform scratch(pc);
        scratch.run(body);
        scratch.run(body);
        period_dur = scratch.run(body);
    }
    if (period_dur <= 0)
        return {};

    // At least one full period always runs, even if a single period
    // of a deep-dwell genome overshoots the budget.
    const std::uint64_t total_periods = std::max<std::uint64_t>(
        1, std::uint64_t(cfg_.budget / period_dur));
    Score score;
    score.totalActs = total_periods * per;

    const RefreshSchedule schedule =
        simulateMitigation(cfg_, kind_, spec, platform.timing(),
                           platform.cmdGap(), total_periods);

    // Break points, in completed periods: after every intervention
    // period, and at geometrically spaced first-flip checkpoints
    // (~12 % resolution on the minimum-cost measurement).
    std::vector<std::uint64_t> breaks;
    for (const auto &[p, v] : schedule) {
        (void)v;
        breaks.push_back(p + 1);
    }
    for (std::uint64_t cp = 1; cp < total_periods;
         cp += std::max<std::uint64_t>(1, cp / 8))
        breaks.push_back(cp);
    breaks.push_back(total_periods);
    std::sort(breaks.begin(), breaks.end());
    breaks.erase(std::unique(breaks.begin(), breaks.end()),
                 breaks.end());

    const auto flipped_now = [&]() {
        for (int row : layout.victims) {
            if (!platform.chip()
                     .storedFlipBits(layout.bank, row)
                     .empty())
                return true;
            if (platform.rowWouldFlip(layout.bank, row))
                return true;
        }
        return false;
    };

    std::uint64_t done = 0;
    for (std::uint64_t b : breaks) {
        if (b > total_periods)
            break;
        if (b > done) {
            bender::Program segment;
            segment.loop(b - done, body);
            platform.run(segment);
            done = b;
        }
        // Preventive refreshes requested during the period just
        // completed are flushed now (period-granular controller).
        auto it = schedule.find(b - 1);
        if (it != schedule.end()) {
            for (int v : it->second) {
                if (v < 0 || v >= pc.org.rows)
                    continue;
                platform.chip().refreshRow(layout.bank, v,
                                           platform.now());
                ++score.preventiveRefreshes;
            }
        }
        if (!score.flipped && flipped_now()) {
            score.flipped = true;
            score.minCostActs = done * per;
        }
    }

    // Final scoring: latch everything with the word-mask full scan
    // and count the stored flips (includes bits latched earlier by
    // preventive refreshes).
    for (int row : layout.victims)
        platform.checkRow(layout.bank, row, /*full_scan=*/true);
    for (int row : layout.victims) {
        const auto bits =
            platform.chip().storedFlipBits(layout.bank, row);
        if (!bits.empty()) {
            ++score.rowsCovered;
            score.flipCount += bits.size();
        }
    }
    if (score.flipCount > 0 && !score.flipped) {
        score.flipped = true;
        score.minCostActs = score.totalActs;
    }
    return score;
}

} // namespace rp::fuzz
