#include "fuzz/search.h"

#include <algorithm>

#include "common/logging.h"

namespace rp::fuzz {

const char *
strategyName(Strategy s)
{
    return s == Strategy::Random ? "random" : "evolve";
}

const std::vector<MutationOp> &
allMutationOps()
{
    static const std::vector<MutationOp> all = {
        MutationOp::RowOffset, MutationOp::Frequency,
        MutationOp::Phase,     MutationOp::Intensity,
        MutationOp::Dwell,     MutationOp::DataPattern,
        MutationOp::AddSlot,   MutationOp::DropSlot,
    };
    return all;
}

namespace {

/** An in-bounds offset no other slot uses (span >= kMaxSlots). */
int
freeOffset(const PatternSpec &spec, Rng &rng, int skip_slot = -1)
{
    for (;;) {
        const int off = int(rng.below(kMaxRowSpan));
        bool used = false;
        for (std::size_t i = 0; i < spec.slots.size(); ++i) {
            if (int(i) != skip_slot &&
                spec.slots[i].rowOffset == off) {
                used = true;
                break;
            }
        }
        if (!used)
            return off;
    }
}

AggressorSlot
randomSlot(const PatternSpec &spec, Rng &rng)
{
    AggressorSlot s;
    s.rowOffset = freeOffset(spec, rng);
    s.frequency = 1 << int(rng.below(4));
    s.phase = int(rng.below(std::uint64_t(s.frequency)));
    s.intensity = 1 + int(rng.below(kMaxIntensity));
    s.dwellIdx = int(rng.below(dwellGrid().size()));
    return s;
}

} // namespace

PatternSpec
randomPattern(Rng &rng, int bank, int base_row)
{
    PatternSpec spec;
    spec.bank = bank;
    spec.baseRow = base_row;
    const auto &patterns = chr::allDataPatterns();
    spec.dataPattern = patterns[rng.below(patterns.size())];
    const int n = 1 + int(rng.below(kMaxSlots));
    for (int i = 0; i < n; ++i)
        spec.slots.push_back(randomSlot(spec, rng));
    return spec;
}

void
applyMutation(PatternSpec &spec, MutationOp op, Rng &rng)
{
    const int slot = int(rng.below(spec.slots.size()));
    AggressorSlot &s = spec.slots[std::size_t(slot)];
    switch (op) {
      case MutationOp::RowOffset:
        s.rowOffset = freeOffset(spec, rng, slot);
        break;
      case MutationOp::Frequency:
        s.frequency = 1 << int(rng.below(4));
        s.phase = s.phase % s.frequency;
        break;
      case MutationOp::Phase:
        s.phase = int(rng.below(std::uint64_t(s.frequency)));
        break;
      case MutationOp::Intensity:
        s.intensity = 1 + int(rng.below(kMaxIntensity));
        break;
      case MutationOp::Dwell:
        s.dwellIdx = int(rng.below(dwellGrid().size()));
        break;
      case MutationOp::DataPattern: {
        const auto &patterns = chr::allDataPatterns();
        spec.dataPattern = patterns[rng.below(patterns.size())];
        break;
      }
      case MutationOp::AddSlot:
        if (int(spec.slots.size()) < kMaxSlots)
            spec.slots.push_back(randomSlot(spec, rng));
        break;
      case MutationOp::DropSlot:
        if (spec.slots.size() > 1)
            spec.slots.erase(spec.slots.begin() +
                             std::ptrdiff_t(rng.below(
                                 spec.slots.size())));
        break;
    }
}

void
mutatePattern(PatternSpec &spec, Rng &rng)
{
    const auto &ops = allMutationOps();
    applyMutation(spec, ops[rng.below(ops.size())], rng);
}

bool
betterTrial(const TrialResult &a, const TrialResult &b)
{
    if (betterScore(a.score, b.score))
        return true;
    if (betterScore(b.score, a.score))
        return false;
    return a.spec.key() < b.spec.key();
}

std::vector<TrialResult>
Searcher::evaluateAll(const std::vector<PatternSpec> &specs) const
{
    // Closed tasks: each trial builds its private platform inside
    // Evaluator::evaluate, so the ordered map is bit-identical at any
    // thread count.
    return engine_.map<TrialResult>(
        specs.size(), [this, &specs](const core::TaskContext &ctx) {
            TrialResult r;
            r.spec = specs[ctx.index];
            r.score = evaluator_.evaluate(r.spec);
            return r;
        });
}

TrialResult
Searcher::run(const SearchSpec &spec) const
{
    return spec.strategy == Strategy::Random ? runRandom(spec)
                                             : runEvolve(spec);
}

TrialResult
Searcher::runRandom(const SearchSpec &spec) const
{
    if (spec.trials < 1)
        fatal("fuzz search needs at least one trial");
    std::vector<PatternSpec> genomes;
    genomes.reserve(std::size_t(spec.trials));
    for (int i = 0; i < spec.trials; ++i) {
        Rng rng(hashU64(spec.rootSeed, std::uint64_t(i)));
        genomes.push_back(randomPattern(rng, spec.bank, spec.baseRow));
    }
    const auto results = evaluateAll(genomes);
    TrialResult best = results.front();
    for (const auto &r : results) {
        if (betterTrial(r, best))
            best = r;
    }
    return best;
}

TrialResult
Searcher::runEvolve(const SearchSpec &spec) const
{
    const int population = std::max(1, spec.population);
    const int generations =
        std::max(1, spec.trials / std::max(1, population));

    // Generation 0: random sampling (trial indices 0..population-1).
    std::vector<PatternSpec> genomes;
    for (int i = 0; i < population; ++i) {
        Rng rng(hashU64(spec.rootSeed, std::uint64_t(i)));
        genomes.push_back(randomPattern(rng, spec.bank, spec.baseRow));
    }
    std::vector<TrialResult> results = evaluateAll(genomes);
    TrialResult best = results.front();

    for (int g = 0; g < generations; ++g) {
        std::sort(results.begin(), results.end(), betterTrial);
        if (betterTrial(results.front(), best))
            best = results.front();
        if (g + 1 == generations)
            break;

        // Offspring: mutate the elite quarter; trial index
        // (g+1) * population + j keeps every child's seed unique.
        const int elites =
            std::max(1, int(results.size()) / 4);
        genomes.clear();
        for (int j = 0; j < population; ++j) {
            Rng rng(hashU64(spec.rootSeed,
                            std::uint64_t(g + 1) *
                                    std::uint64_t(population) +
                                std::uint64_t(j)));
            PatternSpec child =
                results[std::size_t(j % elites)].spec;
            mutatePattern(child, rng);
            genomes.push_back(std::move(child));
        }
        results = evaluateAll(genomes);
    }
    return best;
}

} // namespace rp::fuzz
