/**
 * @file
 * Registration of the fuzz.* experiments.
 *
 * The run functions live in the library so the test suite can drive
 * the real experiments through api::runCli; the static-initializer
 * anchor that pulls them into the `rowpress` binary is
 * bench/bench_fuzz.cc (a static library drops the initializers of
 * unreferenced translation units, so registration is an explicit
 * call, not a global registrar object).
 */

#ifndef ROWPRESS_FUZZ_EXPERIMENTS_H
#define ROWPRESS_FUZZ_EXPERIMENTS_H

namespace rp::fuzz {

/**
 * Add fuzz.random / fuzz.evolve / fuzz.bypass_matrix to the
 * api::ExperimentRegistry.  Idempotent: repeated calls are no-ops.
 */
void registerFuzzExperiments();

} // namespace rp::fuzz

#endif // ROWPRESS_FUZZ_EXPERIMENTS_H
