#include "fuzz/pattern.h"

#include <algorithm>

#include "common/logging.h"

namespace rp::fuzz {

using namespace rp::literals;

const std::vector<Time> &
dwellGrid()
{
    // Ascending subset of chr::standardTAggOnSweep(): index 0 is the
    // RowHammer-style tRAS toggle, the tail is deep RowPress dwell.
    static const std::vector<Time> grid = {
        36_ns,   96_ns, 336_ns,   1536_ns,
        7800_ns, 30_us, 70200_ns, 300_us,
    };
    return grid;
}

std::vector<int>
PatternSpec::aggressorRows() const
{
    std::vector<int> rows;
    rows.reserve(slots.size());
    for (const auto &s : slots)
        rows.push_back(baseRow + s.rowOffset);
    return rows;
}

chr::RowLayout
PatternSpec::layout() const
{
    return chr::makeAggressorLayout(bank, aggressorRows());
}

std::string
PatternSpec::key() const
{
    std::string k = "b" + std::to_string(bank) + "@" +
                    std::to_string(baseRow) + ":" +
                    chr::dataPatternName(dataPattern);
    for (const auto &s : slots) {
        k += "|o" + std::to_string(s.rowOffset) + ".f" +
             std::to_string(s.frequency) + ".p" +
             std::to_string(s.phase) + ".i" +
             std::to_string(s.intensity) + ".d" +
             std::to_string(s.dwellIdx);
    }
    return k;
}

std::uint64_t
PatternSpec::hash() const
{
    // FNV-1a over the canonical key: stable across platforms and
    // standard-library implementations (unlike std::hash).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : key()) {
        h ^= std::uint64_t(std::uint8_t(c));
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
validPattern(const PatternSpec &spec)
{
    if (spec.slots.empty() || int(spec.slots.size()) > kMaxSlots)
        return false;
    std::vector<int> offsets;
    for (const auto &s : spec.slots) {
        if (s.rowOffset < 0 || s.rowOffset >= kMaxRowSpan)
            return false;
        if (s.frequency < 1 || s.frequency > kMaxFrequency ||
            (s.frequency & (s.frequency - 1)) != 0)
            return false;
        if (s.phase < 0 || s.phase >= s.frequency)
            return false;
        if (s.intensity < 1 || s.intensity > kMaxIntensity)
            return false;
        if (s.dwellIdx < 0 || s.dwellIdx >= int(dwellGrid().size()))
            return false;
        offsets.push_back(s.rowOffset);
    }
    std::sort(offsets.begin(), offsets.end());
    return std::adjacent_find(offsets.begin(), offsets.end()) ==
           offsets.end();
}

int
periodRounds(const PatternSpec &spec)
{
    // Frequencies are powers of two, so the lcm is their maximum.
    int rounds = 1;
    for (const auto &s : spec.slots)
        rounds = std::max(rounds, s.frequency);
    return rounds;
}

std::uint64_t
actsPerPeriod(const PatternSpec &spec)
{
    const int rounds = periodRounds(spec);
    std::uint64_t acts = 0;
    for (const auto &s : spec.slots)
        acts += std::uint64_t(rounds / s.frequency) *
                std::uint64_t(s.intensity);
    return acts;
}

PatternSpec
fixedSingleSided(int bank, int base_row, int dwell_idx)
{
    PatternSpec spec;
    spec.bank = bank;
    spec.baseRow = base_row;
    spec.slots = {{0, 1, 0, 1, dwell_idx}};
    return spec;
}

PatternSpec
fixedDoubleSided(int bank, int base_row, int dwell_idx)
{
    PatternSpec spec;
    spec.bank = bank;
    spec.baseRow = base_row;
    spec.slots = {{0, 1, 0, 1, dwell_idx}, {2, 1, 0, 1, dwell_idx}};
    return spec;
}

std::vector<std::pair<int, Time>>
periodActs(const PatternSpec &spec)
{
    const int rounds = periodRounds(spec);
    std::vector<std::pair<int, Time>> acts;
    for (int r = 0; r < rounds; ++r) {
        for (const auto &s : spec.slots) {
            if (r % s.frequency != s.phase)
                continue;
            for (int i = 0; i < s.intensity; ++i)
                acts.emplace_back(spec.baseRow + s.rowOffset,
                                  dwellGrid()[std::size_t(s.dwellIdx)]);
        }
    }
    return acts;
}

namespace {

void
emitAct(bender::Program &program, int bank, int row, Time t_on)
{
    program.act(bank, row);
    program.wait(t_on);
    program.pre(bank);
}

} // namespace

bender::Program
PatternBuilder::periodBody(const PatternSpec &spec) const
{
    if (!validPattern(spec))
        fatal("PatternBuilder: invalid genome %s", spec.key().c_str());
    for (const auto &s : spec.slots) {
        if (dwellGrid()[std::size_t(s.dwellIdx)] < timing_.tRAS)
            fatal("PatternBuilder: tAggON %s below tRAS %s",
                  formatTime(dwellGrid()[std::size_t(s.dwellIdx)])
                      .c_str(),
                  formatTime(timing_.tRAS).c_str());
    }

    bender::Program body;
    for (const auto &[row, t_on] : periodActs(spec))
        emitAct(body, spec.bank, row, t_on);
    return body;
}

bender::Program
PatternBuilder::build(const PatternSpec &spec,
                      std::uint64_t total_acts) const
{
    const bender::Program body = periodBody(spec);
    const std::uint64_t per = actsPerPeriod(spec);

    bender::Program program;
    program.loop(total_acts / per, body);
    const std::uint64_t tail = total_acts % per;
    if (tail) {
        const auto acts = periodActs(spec);
        for (std::uint64_t i = 0; i < tail; ++i)
            emitAct(program, spec.bank, acts[std::size_t(i)].first,
                    acts[std::size_t(i)].second);
    }
    return program;
}

} // namespace rp::fuzz
