/**
 * @file
 * Public facade of the RowPress library.
 *
 * Pulls together the five subsystems and offers the high-level entry
 * points a downstream user needs:
 *
 *  - device models of the 12 characterized DDR4 die revisions;
 *  - the DRAM-Bender-style test platform and characterization suite
 *    (ACmin / tAggONmin searches, BER, overlap, ECC analyses);
 *  - the real-system attack demonstration;
 *  - the performance simulator with Graphene / PARA and their
 *    RowPress-adapted variants;
 *  - `characterizeProfile` + `mitigation::adaptThreshold`, the
 *    paper's section 7.4 methodology, going from a device to a
 *    deployable (T'_RH, t_mro) mitigation configuration.
 */

#ifndef ROWPRESS_CORE_ROWPRESS_H
#define ROWPRESS_CORE_ROWPRESS_H

#include "chr/acmin.h"
#include "chr/ecc.h"
#include "chr/experiments.h"
#include "chr/overlap.h"
#include "chr/patterns.h"
#include "core/engine.h"
#include "device/chip.h"
#include "device/die_config.h"
#include "mitigation/adapter.h"
#include "mitigation/graphene.h"
#include "mitigation/para.h"
#include "sim/system.h"
#include "sys/demo.h"
#include "workloads/presets.h"

namespace rp {

/** Options for measuring a device's disturbance profile. */
struct ProfileOptions
{
    int numLocations = 16;            ///< Tested row locations.
    std::vector<double> temperatures = {50.0, 80.0};
    std::vector<chr::AccessKind> kinds = {
        chr::AccessKind::SingleSided, chr::AccessKind::DoubleSided};
    std::vector<Time> tMros = {
        36 * units::NS, 66 * units::NS, 96 * units::NS,
        186 * units::NS, 336 * units::NS, 636 * units::NS};
    std::uint64_t seed = 1;
};

/**
 * Measure the worst-case ACmin-reduction profile of a die
 * (section 7.4: worst case across temperatures and access patterns),
 * suitable for mitigation::adaptThreshold.
 *
 * The (tMro x temperature x AccessKind) grid fans out through
 * @p engine as one flat task set; every task measures its cell of the
 * grid on a private Module, so the profile is bit-identical for any
 * thread count.
 */
mitigation::DisturbProfile
characterizeProfile(const device::DieConfig &die,
                    core::ExperimentEngine &engine,
                    const ProfileOptions &opts = {});

/** Same, on the process-wide core::defaultEngine(). */
mitigation::DisturbProfile
characterizeProfile(const device::DieConfig &die,
                    const ProfileOptions &opts = {});

/** Library version string. */
const char *version();

} // namespace rp

#endif // ROWPRESS_CORE_ROWPRESS_H
