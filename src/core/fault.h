/**
 * @file
 * Deterministic fault injection for the serve/robustness stack.
 *
 * Real serving failures — a worker thread throwing mid-job, a sink
 * that cannot render, a peer that vanishes mid-write, an accept loop
 * starved of file descriptors — are rare and timing-dependent, which
 * makes the code paths that handle them the least-tested code in the
 * system.  The FaultInjector turns them into ordinary ctest suites:
 * production code is instrumented with *named fault points*
 * (`faultPoint("sink.render")`), which cost one relaxed atomic load
 * when the injector is disarmed (the production state) and, when
 * armed, consult a deterministic plan of what to inject where.
 *
 * Determinism contract: a fault plan is a pure function of
 * (seed, point name, per-point hit index).  The hit index is an
 * atomic per-point counter, so "fire on the 3rd hit of
 * service.worker.pre_dispatch" reproduces exactly whenever the
 * schedule of hits at that point is itself deterministic (one job in
 * flight, or a fault that fires on every hit).  The probability gate
 * hashes (seed, point, hit index) — never a global RNG — so two
 * points never perturb each other's decisions and a fixed
 * RP_FAULT_SEED replays the same fault schedule.
 *
 * Three fault kinds:
 *  - Throw: throws InjectedFault (optionally transient — the
 *    Service's RetryPolicy retries transient-classified failures);
 *  - Errno: faultPoint() returns a nonzero errno value (EINTR,
 *    EPIPE, EMFILE, ...) for call sites that emulate syscall
 *    failures; sites with no errno semantics treat it as a throw
 *    (faultPointThrow);
 *  - Delay: sleeps a bounded number of milliseconds, for exercising
 *    timeouts/backpressure without wall-clock-scale test times.
 *
 * Arming: programmatic (tests call `arm(seed, specs)`) or from the
 * environment — `RP_FAULT_SEED` plus `RP_FAULT_POINTS`, a comma list
 * of `point=kind[:arg][@skip][xcount][~prob]`, e.g.
 *
 *   RP_FAULT_POINTS='service.worker.pre_dispatch=transient x1,
 *                    protocol.socket.write=errno:EPIPE@2'
 *
 * Point names are validated against a fixed registry (knownPoints),
 * so a typo'd point errors instead of silently injecting nothing.
 */

#ifndef ROWPRESS_CORE_FAULT_H
#define ROWPRESS_CORE_FAULT_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/thread_annotations.h"

namespace rp::core {

/**
 * A failure the Service's RetryPolicy classifies as transient
 * (retryable): the same attempt re-run may succeed.  Production code
 * may throw it for genuinely transient conditions; the injector's
 * transient Throw faults derive from it.
 */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown by an armed Throw fault point. */
class InjectedFault : public TransientError
{
  public:
    InjectedFault(const std::string &point, bool transient)
        : TransientError("injected fault at " + point +
                         (transient ? " (transient)" : "")),
          point_(point), transient_(transient)
    {
    }

    const std::string &point() const { return point_; }
    /** Only transient injected faults are retry-eligible. */
    bool transient() const { return transient_; }

  private:
    std::string point_;
    bool transient_;
};

/** What to inject at one named point. */
struct FaultSpec
{
    enum class Kind
    {
        Throw, ///< throw InjectedFault (transient flag below)
        Errno, ///< faultPoint() returns errnoValue
        Delay, ///< sleep delayMs, then continue normally
    };

    std::string point;       ///< Must name a registered point.
    Kind kind = Kind::Throw;
    bool transient = false;  ///< Throw: retry-eligible when true.
    int errnoValue = 0;      ///< Errno: the value to return.
    int delayMs = 0;         ///< Delay: bounded sleep.
    int skip = 0;            ///< Ignore the first N hits of the point.
    int count = -1;          ///< Fire at most N times (-1 = always).
    double probability = 1.0;///< Seeded per-hit gate in (0, 1].
};

/**
 * Process-wide injector.  Disarmed by default; `faultPoint()` is the
 * only call production code makes and costs one relaxed atomic load
 * until something arms a plan.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /**
     * The fixed registry of instrumented points.  arm() validates
     * every spec against it; the serve documentation lists it.
     */
    static const std::vector<std::string> &knownPoints();

    /**
     * Install a plan (replacing any previous one) and arm.  Throws
     * std::invalid_argument for an unregistered point name or a
     * malformed spec (probability outside (0, 1], negative skip).
     */
    void arm(std::uint64_t seed, std::vector<FaultSpec> specs);

    /**
     * Arm from `RP_FAULT_SEED` (default 1) + `RP_FAULT_POINTS`.  A
     * missing/empty RP_FAULT_POINTS leaves the injector disarmed.
     * Spec grammar per comma-separated entry (whitespace ignored):
     *   point=kind[:arg][@skip][xcount][~prob]
     * with kind one of throw | transient | errno:<NAME|num> |
     * delay:<ms>.  Throws std::invalid_argument on malformed input.
     */
    void armFromEnv();

    /** Drop the plan and reset every per-point counter. */
    void disarm();

    bool armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Hit/fire counters per instrumented point (test assertions). */
    struct PointStats
    {
        std::string point;
        std::uint64_t hits = 0;
        std::uint64_t fires = 0;
    };
    std::vector<PointStats> stats() const;

    /**
     * Slow path behind faultPoint(): record a hit at @p point and
     * apply the armed plan.  Returns 0 (no fault / after a Delay) or
     * the errno value of a firing Errno fault; throws InjectedFault
     * for a firing Throw fault.
     */
    int onHit(const char *point);

  private:
    FaultInjector();

    /** One armed spec plus how often it has fired. */
    struct ArmedSpec
    {
        FaultSpec spec;
        std::uint64_t fired = 0;
    };

    /** Per-registered-point runtime state. */
    struct PointState
    {
        std::string name;
        std::uint64_t hits = 0;
        std::uint64_t fires = 0;
        std::vector<ArmedSpec> specs;
    };

    PointState *findPoint(const std::string &name)
        RP_REQUIRES(mutex_);

    mutable Mutex mutex_;      ///< Guards plan swaps + counters.
    std::vector<PointState> points_ RP_GUARDED_BY(mutex_);
    std::atomic<bool> armed_{false}; ///< Lock-free fast-path gate.
    std::uint64_t seed_ RP_GUARDED_BY(mutex_) = 1;
};

/**
 * THE instrumentation call.  Returns 0 when disarmed or when no fault
 * fires; returns an errno value for Errno faults (call sites that
 * emulate syscalls translate it); throws InjectedFault for Throw
 * faults; Delay faults sleep and return 0.
 */
inline int
faultPoint(const char *point)
{
    FaultInjector &fi = FaultInjector::instance();
    return fi.armed() ? fi.onHit(point) : 0;
}

/**
 * faultPoint() for sites with no errno semantics: a firing Errno
 * fault is promoted to a (non-transient) InjectedFault throw.
 */
void faultPointThrow(const char *point);

/** Symbolic errno name ("EPIPE") to value; throws on unknown names. */
int errnoValueOf(const std::string &name);

} // namespace rp::core

#endif // ROWPRESS_CORE_FAULT_H
