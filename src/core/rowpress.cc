#include "core/rowpress.h"

#include <algorithm>

namespace rp {

mitigation::DisturbProfile
characterizeProfile(const device::DieConfig &die,
                    core::ExperimentEngine &engine,
                    const ProfileOptions &opts)
{
    // Flatten the (tMro x temperature x AccessKind) grid into one task
    // set.  Every task measures the base (tAggON = tRAS) and pressed
    // (tAggON = tMro) ACmin of all locations on its own Module and
    // reduces them to the worst per-location ratio of its grid cell.
    const std::size_t n_temps = opts.temperatures.size();
    const std::size_t n_kinds = opts.kinds.size();
    const std::size_t per_mro = n_temps * n_kinds;

    auto ratios = engine.map<double>(
        opts.tMros.size() * per_mro, [&](const core::TaskContext &ctx) {
            const Time t_mro = opts.tMros[ctx.index / per_mro];
            const double temp =
                opts.temperatures[(ctx.index % per_mro) / n_kinds];
            const auto kind = opts.kinds[ctx.index % n_kinds];

            chr::ModuleConfig mc;
            mc.die = die;
            mc.numLocations = opts.numLocations;
            mc.temperatureC = temp;
            mc.seed = opts.seed;
            chr::Module module(mc);

            double worst_ratio = 1.0;
            auto base = chr::acminPoint(
                module, module.platform().timing().tRAS, kind);
            auto point = chr::acminPoint(module, t_mro, kind);
            if (base.fractionFlipped() <= 0.0 ||
                point.fractionFlipped() <= 0.0)
                return worst_ratio;
            // Worst case: smallest per-location ratio.
            for (std::size_t i = 0; i < point.locations.size(); ++i) {
                const auto &p = point.locations[i];
                const auto &b = base.locations[i];
                if (p.flipped && b.flipped && b.acmin > 0) {
                    worst_ratio = std::min(
                        worst_ratio, double(p.acmin) / double(b.acmin));
                }
            }
            return worst_ratio;
        });

    // In-order reduction: min() is exact on doubles, so the grouping
    // cannot perturb the result.
    mitigation::DisturbProfile profile;
    for (std::size_t mi = 0; mi < opts.tMros.size(); ++mi) {
        double worst_ratio = 1.0;
        for (std::size_t k = 0; k < per_mro; ++k)
            worst_ratio =
                std::min(worst_ratio, ratios[mi * per_mro + k]);
        profile.points.push_back({opts.tMros[mi], worst_ratio});
    }
    return profile;
}

mitigation::DisturbProfile
characterizeProfile(const device::DieConfig &die,
                    const ProfileOptions &opts)
{
    return characterizeProfile(die, core::defaultEngine(), opts);
}

const char *
version()
{
    return "1.0.0";
}

} // namespace rp
