#include "core/rowpress.h"

#include <algorithm>

namespace rp {

mitigation::DisturbProfile
characterizeProfile(const device::DieConfig &die,
                    const ProfileOptions &opts)
{
    mitigation::DisturbProfile profile;

    for (Time t_mro : opts.tMros) {
        double worst_ratio = 1.0;
        for (double temp : opts.temperatures) {
            chr::ModuleConfig mc;
            mc.die = die;
            mc.numLocations = opts.numLocations;
            mc.temperatureC = temp;
            mc.seed = opts.seed;
            chr::Module module(mc);

            for (auto kind : opts.kinds) {
                auto base = chr::acminPoint(
                    module, module.platform().timing().tRAS, kind);
                auto point = chr::acminPoint(module, t_mro, kind);
                if (base.fractionFlipped() <= 0.0 ||
                    point.fractionFlipped() <= 0.0)
                    continue;
                // Worst case: smallest per-location ratio.
                for (std::size_t i = 0; i < point.locations.size();
                     ++i) {
                    const auto &p = point.locations[i];
                    const auto &b = base.locations[i];
                    if (p.flipped && b.flipped && b.acmin > 0) {
                        worst_ratio = std::min(
                            worst_ratio,
                            double(p.acmin) / double(b.acmin));
                    }
                }
            }
        }
        profile.points.push_back({t_mro, worst_ratio});
    }
    return profile;
}

const char *
version()
{
    return "1.0.0";
}

} // namespace rp
