#include "core/engine.h"

#include <algorithm>
#include <cstdlib>

#include "api/env.h"
#include "common/logging.h"
#include "core/fault.h"

namespace rp::core {

int
ExperimentEngine::defaultThreadCount()
{
    // Strictly validated (api::envInt): a garbage or negative
    // RP_THREADS raises api::ConfigError instead of being silently
    // replaced by the hardware default.  0 selects the hardware
    // concurrency, matching the CLI's --threads contract.
    const int n = api::envInt("RP_THREADS", 0, 0);
    if (n >= 1)
        return n;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? int(hw) : 1;
}

ExperimentEngine::ExperimentEngine() : ExperimentEngine(Options()) {}

ExperimentEngine::ExperimentEngine(Options opts)
    : rootSeed_(opts.rootSeed), cancel_(std::move(opts.cancel)),
      defaultProgress_(std::move(opts.progress))
{
    const int n =
        opts.numThreads > 0 ? opts.numThreads : defaultThreadCount();
    queues_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ExperimentEngine::~ExperimentEngine()
{
    {
        LockGuard lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ExperimentEngine::run(std::vector<Task> tasks)
{
    run(std::move(tasks), RunOptions());
}

void
ExperimentEngine::run(std::vector<Task> tasks, const RunOptions &opts)
{
    if (tasks.empty())
        return;

    // A task calling back into its own engine would deadlock on
    // runMutex_; nested grids must be flattened into one task set.
    const auto self = std::this_thread::get_id();
    for (const auto &w : workers_) {
        if (w.get_id() == self)
            panic("ExperimentEngine::run called from one of its own "
                  "workers; flatten nested task sets instead");
    }

    // One task set at a time; concurrent callers queue up here.
    LockGuard run_lock(runMutex_);

    // Cancellation point: a cancelled job never starts another task
    // set (the per-task checks in execute() cover sets in flight).
    if (cancelRequested())
        throw CancelledError();

    RunState state;
    state.tasks = std::move(tasks);
    state.rootSeed = opts.rootSeed ? opts.rootSeed : rootSeed_;
    state.progress = opts.progress ? opts.progress : defaultProgress_;

    // Deal tasks round-robin into the per-worker deques.
    const std::size_t n_workers = queues_.size();
    for (std::size_t i = 0; i < state.tasks.size(); ++i) {
        WorkerQueue &q = *queues_[i % n_workers];
        LockGuard lock(q.mutex);
        q.tasks.push_back(i);
    }

    {
        LockGuard lock(mutex_);
        run_ = &state;
        activeWorkers_ = int(n_workers);
        ++epoch_;
    }
    wake_.notify_all();

    {
        UniqueLock lock(mutex_);
        while (activeWorkers_ != 0)
            idle_.wait(lock);
        run_ = nullptr;
    }

    // All workers are idle again, but read the outcome under its lock
    // anyway: the annotation (and TSan) cannot see the idle_ handshake
    // that orders the workers' last writes before this read.
    std::exception_ptr first_error;
    {
        LockGuard lock(state.doneMutex);
        first_error = state.firstError;
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

bool
ExperimentEngine::claimTask(int id, std::size_t *out)
{
    // Own queue first (front: cache-friendly submission order) ...
    {
        WorkerQueue &own = *queues_[std::size_t(id)];
        LockGuard lock(own.mutex);
        if (!own.tasks.empty()) {
            *out = own.tasks.front();
            own.tasks.pop_front();
            return true;
        }
    }
    // ... then steal from the back of the other workers' queues.
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        WorkerQueue &victim = *queues_[(std::size_t(id) + k) % n];
        LockGuard lock(victim.mutex);
        if (!victim.tasks.empty()) {
            *out = victim.tasks.back();
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ExperimentEngine::execute(int id, RunState &state,
                          std::size_t task_index)
{
    bool skip;
    {
        LockGuard lock(state.doneMutex);
        // Cancellation point: between any two tasks of a set.  The
        // token fires asynchronously (Service::cancel); the first
        // worker to notice records CancelledError as the run's
        // outcome and every remaining task is skipped.
        if (!state.cancelled && cancelRequested()) {
            state.cancelled = true;
            if (!state.firstError)
                state.firstError =
                    std::make_exception_ptr(CancelledError());
        }
        skip = state.cancelled;
    }

    if (!skip) {
        TaskContext ctx;
        ctx.index = task_index;
        ctx.seed = taskSeed(state.rootSeed, task_index);
        ctx.worker = id;
        try {
            // Fault point: a worker dying mid-task (the engine's
            // first-error capture turns it into the run's outcome,
            // exactly like an experiment body throwing).
            faultPointThrow("core.engine.task");
            state.tasks[task_index](ctx);
        } catch (...) {
            LockGuard lock(state.doneMutex);
            if (!state.firstError)
                state.firstError = std::current_exception();
            state.cancelled = true;
        }
    }

    LockGuard lock(state.doneMutex);
    ++state.done;
    if (state.progress && !state.cancelled) {
        // A throwing progress callback is treated like a failing task:
        // captured and rethrown at the run() call site, never allowed
        // to escape the worker thread (std::terminate).
        try {
            state.progress(state.done, state.tasks.size());
        } catch (...) {
            if (!state.firstError)
                state.firstError = std::current_exception();
            state.cancelled = true;
        }
    }
}

void
ExperimentEngine::workerLoop(int id)
{
    std::uint64_t seen_epoch = 0;
    for (;;) {
        // Snapshot the active run under mutex_; the snapshot stays
        // valid for the whole epoch because run() does not return
        // (and so cannot destroy the RunState) until every worker
        // has decremented activeWorkers_ below.
        RunState *state = nullptr;
        {
            UniqueLock lock(mutex_);
            while (!stop_ && epoch_ == seen_epoch)
                wake_.wait(lock);
            if (stop_)
                return;
            seen_epoch = epoch_;
            state = run_;
        }

        std::size_t task_index = 0;
        while (claimTask(id, &task_index))
            execute(id, *state, task_index);

        {
            LockGuard lock(mutex_);
            if (--activeWorkers_ == 0)
                idle_.notify_all();
        }
    }
}

std::size_t
ExperimentEngine::chunksPerTask(std::size_t n_tasks) const
{
    if (n_tasks == 0)
        return 1;
    const std::size_t workers = std::size_t(numThreads());
    return (workers + n_tasks - 1) / n_tasks;
}

std::vector<std::pair<std::size_t, std::size_t>>
splitRanges(std::size_t n_items, std::size_t n_chunks)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    if (n_items == 0)
        return ranges;
    const std::size_t chunks = std::max<std::size_t>(
        1, std::min(n_chunks, n_items));
    const std::size_t base = n_items / chunks;
    const std::size_t rem = n_items % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t len = base + (c < rem ? 1 : 0);
        ranges.emplace_back(begin, begin + len);
        begin += len;
    }
    return ranges;
}

ExperimentEngine &
defaultEngine()
{
    static ExperimentEngine engine;
    return engine;
}

} // namespace rp::core
