#include "core/fault.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/rng.h"

namespace rp::core {

namespace {

/** FNV-1a over the point name: a stable per-point hash input. */
std::uint64_t
pointHash(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\n\r");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\n\r");
    return s.substr(b, e - b + 1);
}

long long
parsePlanInt(const std::string &text, const std::string &what)
{
    std::size_t used = 0;
    long long v = 0;
    try {
        v = std::stoll(text, &used);
    } catch (const std::exception &) {
        used = std::string::npos;
    }
    if (used != text.size() || text.empty())
        throw std::invalid_argument("RP_FAULT_POINTS: " + what +
                                    ": bad integer '" + text + "'");
    return v;
}

} // namespace

int
errnoValueOf(const std::string &name)
{
    // The errno families the instrumented layers emulate: interrupted
    // syscalls, dead peers, and accept-loop resource exhaustion.
    if (name == "EINTR") return EINTR;
    if (name == "EPIPE") return EPIPE;
    if (name == "ECONNRESET") return ECONNRESET;
    if (name == "EMFILE") return EMFILE;
    if (name == "ENFILE") return ENFILE;
    if (name == "ENOBUFS") return ENOBUFS;
    if (name == "EAGAIN") return EAGAIN;
    if (name == "EIO") return EIO;
    // Numeric fallback for anything else.
    std::size_t used = 0;
    int v = 0;
    try {
        v = std::stoi(name, &used);
    } catch (const std::exception &) {
        used = std::string::npos;
    }
    if (used != name.size() || name.empty() || v <= 0)
        throw std::invalid_argument("unknown errno name '" + name +
                                    "' (use EINTR/EPIPE/ECONNRESET/"
                                    "EMFILE/ENFILE/ENOBUFS/EAGAIN/EIO "
                                    "or a positive number)");
    return v;
}

const std::vector<std::string> &
FaultInjector::knownPoints()
{
    // THE registry.  Adding an instrumented site means adding its
    // name here; arm() rejects anything else, so a typo in a test or
    // RP_FAULT_POINTS fails loudly instead of injecting nothing.
    static const std::vector<std::string> points = {
        "core.engine.task",           // before each engine task runs
        "service.submit.admit",       // submit(), after validation
        "service.worker.pre_dispatch",// attempt start, before Started
        "sink.render",                // per-sink event delivery
        "protocol.socket.read",       // TCP session reads
        "protocol.socket.write",      // TCP session writes
        "protocol.accept",            // serveTcp accept loop
        "persist.snapshot.read",      // warm-start snapshot loads
        "persist.snapshot.write",     // snapshot cache publication
    };
    return points;
}

FaultInjector::FaultInjector()
{
    points_.reserve(knownPoints().size());
    for (const std::string &name : knownPoints())
        points_.push_back(PointState{name, 0, 0, {}});
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::PointState *
FaultInjector::findPoint(const std::string &name)
{
    for (PointState &p : points_)
        if (p.name == name)
            return &p;
    return nullptr;
}

void
FaultInjector::arm(std::uint64_t seed, std::vector<FaultSpec> specs)
{
    LockGuard lock(mutex_);
    for (PointState &p : points_) {
        p.hits = 0;
        p.fires = 0;
        p.specs.clear();
    }
    seed_ = seed;
    for (FaultSpec &spec : specs) {
        PointState *point = findPoint(spec.point);
        if (!point)
            throw std::invalid_argument(
                "fault point '" + spec.point +
                "' is not registered (see "
                "core::FaultInjector::knownPoints)");
        if (spec.probability <= 0.0 || spec.probability > 1.0)
            throw std::invalid_argument(
                "fault spec for '" + spec.point +
                "': probability must be in (0, 1]");
        if (spec.skip < 0 || spec.delayMs < 0)
            throw std::invalid_argument(
                "fault spec for '" + spec.point +
                "': skip/delay must be >= 0");
        if (spec.kind == FaultSpec::Kind::Errno && spec.errnoValue <= 0)
            throw std::invalid_argument(
                "fault spec for '" + spec.point +
                "': errno faults need a positive errno value");
        point->specs.push_back(ArmedSpec{std::move(spec), 0});
    }
    armed_.store(true, std::memory_order_release);
}

void
FaultInjector::armFromEnv()
{
    // getenv is read-only here and armFromEnv runs from main() before
    // any worker thread exists, so the mt-unsafe concern doesn't apply.
    const char *points_env =
        std::getenv("RP_FAULT_POINTS"); // NOLINT(concurrency-mt-unsafe): startup-only, pre-thread
    if (!points_env || trim(points_env).empty())
        return;

    std::uint64_t seed = 1;
    if (const char *seed_env =
            std::getenv("RP_FAULT_SEED")) // NOLINT(concurrency-mt-unsafe): startup-only, pre-thread
        seed = std::uint64_t(
            parsePlanInt(trim(seed_env), "RP_FAULT_SEED"));

    std::vector<FaultSpec> specs;
    std::string rest = points_env;
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        std::string entry = trim(rest.substr(0, comma));
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        if (entry.empty())
            continue;

        const auto eq = entry.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "RP_FAULT_POINTS: entry '" + entry +
                "' is not point=kind[...]");
        FaultSpec spec;
        spec.point = trim(entry.substr(0, eq));
        std::string body = trim(entry.substr(eq + 1));

        // Peel the optional suffixes ~prob, xcount, @skip from the
        // right (order-independent grammar, applied right-to-left).
        for (bool peeled = true; peeled;) {
            peeled = false;
            for (const char mark : {'~', 'x', '@'}) {
                const auto at = body.find_last_of(mark);
                if (at == std::string::npos || at == 0)
                    continue;
                // 'x' also appears in no suffix context; only treat
                // it as a suffix when what follows parses as its arg.
                const std::string arg = trim(body.substr(at + 1));
                if (mark == '~') {
                    char *end = nullptr;
                    const double p =
                        std::strtod(arg.c_str(), &end);
                    if (!end || *end != '\0' || arg.empty())
                        throw std::invalid_argument(
                            "RP_FAULT_POINTS: bad probability '" +
                            arg + "'");
                    spec.probability = p;
                } else {
                    bool numeric = !arg.empty();
                    for (char c : arg)
                        numeric = numeric && c >= '0' && c <= '9';
                    if (!numeric) {
                        if (mark == '@')
                            throw std::invalid_argument(
                                "RP_FAULT_POINTS: bad skip '" + arg +
                                "'");
                        continue; // an 'x' inside the kind body
                    }
                    const long long v = parsePlanInt(
                        arg, mark == 'x' ? "count" : "skip");
                    if (mark == 'x')
                        spec.count = int(v);
                    else
                        spec.skip = int(v);
                }
                body = trim(body.substr(0, at));
                peeled = true;
                break;
            }
        }

        std::string kind = body, arg;
        const auto colon = body.find(':');
        if (colon != std::string::npos) {
            kind = trim(body.substr(0, colon));
            arg = trim(body.substr(colon + 1));
        }
        if (kind == "throw") {
            spec.kind = FaultSpec::Kind::Throw;
            spec.transient = false;
        } else if (kind == "transient") {
            spec.kind = FaultSpec::Kind::Throw;
            spec.transient = true;
        } else if (kind == "errno") {
            spec.kind = FaultSpec::Kind::Errno;
            spec.errnoValue = errnoValueOf(arg);
        } else if (kind == "delay") {
            spec.kind = FaultSpec::Kind::Delay;
            spec.delayMs =
                int(parsePlanInt(arg, "delay ms for " + spec.point));
        } else {
            throw std::invalid_argument(
                "RP_FAULT_POINTS: unknown kind '" + kind +
                "' (throw | transient | errno:<E> | delay:<ms>)");
        }
        specs.push_back(std::move(spec));
    }
    if (!specs.empty())
        arm(seed, std::move(specs));
}

void
FaultInjector::disarm()
{
    LockGuard lock(mutex_);
    armed_.store(false, std::memory_order_release);
    for (PointState &p : points_) {
        p.hits = 0;
        p.fires = 0;
        p.specs.clear();
    }
}

std::vector<FaultInjector::PointStats>
FaultInjector::stats() const
{
    LockGuard lock(mutex_);
    std::vector<PointStats> out;
    out.reserve(points_.size());
    for (const PointState &p : points_)
        out.push_back(PointStats{p.name, p.hits, p.fires});
    return out;
}

int
FaultInjector::onHit(const char *point)
{
    // Decide under the lock (counters + plan), act outside it: a
    // Delay fault must not serialize every other point behind its
    // sleep, and a Throw must not unwind with the mutex held.
    FaultSpec::Kind kind = FaultSpec::Kind::Delay;
    bool fire = false;
    bool transient = false;
    int errno_value = 0;
    int delay_ms = 0;
    std::string name;
    {
        LockGuard lock(mutex_);
        if (!armed_.load(std::memory_order_relaxed))
            return 0;
        PointState *state = findPoint(point);
        if (!state)
            return 0; // unregistered call site: never inject
        const std::uint64_t hit = state->hits++;
        for (ArmedSpec &armed : state->specs) {
            const FaultSpec &spec = armed.spec;
            if (hit < std::uint64_t(spec.skip))
                continue;
            if (spec.count >= 0 &&
                armed.fired >= std::uint64_t(spec.count))
                continue;
            if (spec.probability < 1.0) {
                // Pure function of (seed, point, hit): replayable,
                // independent across points.
                const std::uint64_t h = hashU64(
                    seed_, pointHash(spec.point), hit);
                const double u =
                    double(h >> 11) * (1.0 / 9007199254740992.0);
                if (u >= spec.probability)
                    continue;
            }
            ++armed.fired;
            ++state->fires;
            fire = true;
            kind = spec.kind;
            transient = spec.transient;
            errno_value = spec.errnoValue;
            delay_ms = spec.delayMs;
            name = spec.point;
            break;
        }
    }
    if (!fire)
        return 0;
    switch (kind) {
    case FaultSpec::Kind::Throw:
        throw InjectedFault(name, transient);
    case FaultSpec::Kind::Errno:
        return errno_value;
    case FaultSpec::Kind::Delay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
        return 0;
    }
    return 0;
}

void
faultPointThrow(const char *point)
{
    if (faultPoint(point) != 0)
        throw InjectedFault(point, false);
}

} // namespace rp::core
