#ifndef ROWPRESS_CORE_THREAD_ANNOTATIONS_H
#define ROWPRESS_CORE_THREAD_ANNOTATIONS_H

/**
 * Clang Thread Safety Analysis annotations plus annotated lock types.
 *
 * The RP_* macros expand to Clang `capability` attributes when the
 * compiler supports them (clang with -Wthread-safety) and to nothing
 * otherwise, so GCC builds are unaffected.  All mutex-guarded state in
 * the repo is expected to use `rp::core::Mutex` + `RP_GUARDED_BY`, and
 * helpers that assume a lock is already held use `RP_REQUIRES`.  The
 * CI `static-analysis` job compiles the tree with
 * `-Wthread-safety -Werror` so violations are build errors.
 *
 * See README "Static analysis" for the annotation idioms used here
 * (condition-variable wait loops, nested-struct guarding via
 * RP_REQUIRES on accessors).
 */

#include <condition_variable>
#include <chrono>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RP_THREAD_ANNOTATION
#define RP_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define RP_CAPABILITY(x) RP_THREAD_ANNOTATION(capability(x))
#define RP_SCOPED_CAPABILITY RP_THREAD_ANNOTATION(scoped_lockable)
#define RP_GUARDED_BY(x) RP_THREAD_ANNOTATION(guarded_by(x))
#define RP_PT_GUARDED_BY(x) RP_THREAD_ANNOTATION(pt_guarded_by(x))
#define RP_ACQUIRED_BEFORE(...) \
    RP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RP_ACQUIRED_AFTER(...) \
    RP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define RP_REQUIRES(...) \
    RP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RP_ACQUIRE(...) \
    RP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RP_RELEASE(...) \
    RP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RP_TRY_ACQUIRE(...) \
    RP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RP_EXCLUDES(...) RP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RP_ASSERT_CAPABILITY(x) \
    RP_THREAD_ANNOTATION(assert_capability(x))
#define RP_RETURN_CAPABILITY(x) RP_THREAD_ANNOTATION(lock_returned(x))
#define RP_NO_THREAD_SAFETY_ANALYSIS \
    RP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rp::core
{

/**
 * std::mutex with a capability annotation so members can be declared
 * RP_GUARDED_BY(mutex_) and functions RP_REQUIRES(mutex_).
 */
class RP_CAPABILITY("mutex") Mutex
{
public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() RP_ACQUIRE() { m_.lock(); }
    void unlock() RP_RELEASE() { m_.unlock(); }
    bool try_lock() RP_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /// Underlying std::mutex, for APIs that need the real type.
    std::mutex &native() { return m_; }

private:
    std::mutex m_;
};

/** std::lock_guard equivalent over Mutex, visible to the analysis. */
class RP_SCOPED_CAPABILITY LockGuard
{
public:
    explicit LockGuard(Mutex &m) RP_ACQUIRE(m) : mu_(m) { mu_.lock(); }
    ~LockGuard() RP_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

private:
    Mutex &mu_;
};

/**
 * std::unique_lock equivalent over Mutex: relockable and usable with
 * CondVar.  Constructed locked; lock()/unlock() toggle ownership (the
 * analysis tracks both).
 */
class RP_SCOPED_CAPABILITY UniqueLock
{
public:
    explicit UniqueLock(Mutex &m) RP_ACQUIRE(m)
        : mu_(m), lk_(m.native())
    {
    }
    ~UniqueLock() RP_RELEASE() = default;

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void lock() RP_ACQUIRE() { lk_.lock(); }
    void unlock() RP_RELEASE() { lk_.unlock(); }

    /// The wrapped std::unique_lock (for std APIs; CondVar uses it).
    std::unique_lock<std::mutex> &native() { return lk_; }

private:
    Mutex &mu_;
    std::unique_lock<std::mutex> lk_;
};

/**
 * Condition variable over UniqueLock.  No predicate overloads on
 * purpose: predicate lambdas cannot carry RP_REQUIRES, so waits are
 * written as explicit `while (!cond) cv.wait(lk);` loops where the
 * analysis can see the lock held around the condition read.
 */
class CondVar
{
public:
    void wait(UniqueLock &lk) { cv_.wait(lk.native()); }

    template <class Clock, class Duration>
    std::cv_status
    wait_until(UniqueLock &lk,
               const std::chrono::time_point<Clock, Duration> &tp)
    {
        return cv_.wait_until(lk.native(), tp);
    }

    template <class Rep, class Period>
    std::cv_status
    wait_for(UniqueLock &lk,
             const std::chrono::duration<Rep, Period> &dur)
    {
        return cv_.wait_for(lk.native(), dur);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

} // namespace rp::core

#endif // ROWPRESS_CORE_THREAD_ANNOTATIONS_H
