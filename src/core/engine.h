/**
 * @file
 * ExperimentEngine: the shared parallel execution layer of the
 * characterization + simulation stack.
 *
 * Every sweep in the repo — ACmin / tAggONmin searches over locations,
 * temperatures and patterns, `characterizeProfile` grids, multicore
 * simulator runs, bench figure series — is dozens-to-thousands of
 * *independent* experiments.  The engine runs such a task set on a
 * work-stealing thread pool while keeping the results bit-identical to
 * a serial run:
 *
 *  - results are collected into a caller-indexed vector, so the
 *    completion order never reorders output;
 *  - every task receives a deterministic seed derived as
 *    `hashU64(rootSeed, taskIndex)` — independent of which worker runs
 *    the task, of the thread count, and of scheduling;
 *  - tasks must be *closed*: they may only touch their own state (e.g.
 *    a per-task platform/Module built from the task description) and
 *    their slot of the result vector.  Given that contract, the engine
 *    guarantees run(tasks, 1 thread) == run(tasks, N threads) bit for
 *    bit.
 *
 * Scheduling: tasks are dealt round-robin into per-worker deques;
 * a worker pops from the front of its own deque and steals from the
 * back of the others when it runs dry.  The pool is persistent — one
 * engine can serve many successive task sets.
 *
 * The default thread count honours the `RP_THREADS` environment
 * variable and falls back to the hardware concurrency.
 *
 * Job-scoped task groups: the api::Service constructs one engine per
 * job, so an engine doubles as the job's task group — its Options
 * carry the job's cancel token (checked at every task boundary, the
 * engine's cancellation points) and the job's default progress hook
 * (streamed as Progress events).  Engines of concurrent jobs are
 * fully independent; results stay a pure function of the task set
 * and root seed regardless of what other jobs run.
 */

#ifndef ROWPRESS_CORE_ENGINE_H
#define ROWPRESS_CORE_ENGINE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/thread_annotations.h"

namespace rp::core {

/**
 * Thrown out of ExperimentEngine::run when the engine's cancel token
 * fires: remaining tasks of the set are skipped and the run call
 * site unwinds.  The api::Service maps it to JobState::Cancelled.
 */
class CancelledError : public std::runtime_error
{
  public:
    CancelledError() : std::runtime_error("task set cancelled") {}
};

/**
 * Shared cancellation flag: setting it to true makes every engine
 * bound to it abandon its task set at the next task boundary (the
 * engine's cancellation points).  One token per job scopes
 * cancellation to that job's task group without touching others.
 */
using CancelToken = std::shared_ptr<std::atomic<bool>>;

/** Per-task execution context handed to every task. */
struct TaskContext
{
    std::size_t index = 0;    ///< Index within the submitted task set.
    std::uint64_t seed = 0;   ///< hashU64(rootSeed, index).
    int worker = -1;          ///< Executing worker (diagnostics only).
};

/** Work-stealing thread-pool runner for independent experiment tasks. */
class ExperimentEngine
{
  public:
    using Task = std::function<void(const TaskContext &)>;

    struct Options
    {
        /** Worker threads; 0 selects defaultThreadCount(). */
        int numThreads = 0;
        /** Root of the per-task seed derivation. */
        std::uint64_t rootSeed = 1;
        /**
         * Job-scoped cancel token: when set and fired, every run on
         * this engine aborts at the next task boundary by rethrowing
         * CancelledError (results of already-finished tasks are
         * discarded with the run).  An engine owned by one service
         * job is that job's task group; the token cancels exactly it.
         */
        CancelToken cancel;
        /**
         * Default progress hook, invoked serially as (done, total)
         * for every run that does not pass its own
         * RunOptions::progress.  The service wires this to the job's
         * Progress event stream so drivers need no per-call plumbing.
         */
        std::function<void(std::size_t, std::size_t)> progress;
    };

    /** Per-run options. */
    struct RunOptions
    {
        /** Override the engine root seed for this run (0 = engine's). */
        std::uint64_t rootSeed = 0;
        /** Progress callback, invoked serially as (done, total). */
        std::function<void(std::size_t, std::size_t)> progress;
    };

    ExperimentEngine();
    explicit ExperimentEngine(Options opts);
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    int numThreads() const { return int(workers_.size()); }
    std::uint64_t rootSeed() const { return rootSeed_; }

    /**
     * `RP_THREADS` if set and >= 1, else the hardware concurrency
     * (`RP_THREADS=0` selects hardware explicitly).  Garbage or
     * negative values raise api::ConfigError.
     */
    static int defaultThreadCount();

    /** The seed a task at @p index receives under @p root_seed. */
    static std::uint64_t
    taskSeed(std::uint64_t root_seed, std::size_t index)
    {
        return hashU64(root_seed, index, 0x45474e45ULL /* "EGNE" */);
    }

    /**
     * How many pieces a driver should split each of @p n_tasks
     * coarse-grained tasks into so the task set can occupy every
     * worker (ceil(numThreads / n_tasks), at least 1).  Used by the
     * full-scan BER drivers to re-chunk one-task-per-location work
     * into (location, row-chunk) tasks when locations < workers.
     */
    std::size_t chunksPerTask(std::size_t n_tasks) const;

    /**
     * Execute all tasks; blocks until the set is complete.  The first
     * exception thrown by a task is rethrown here (remaining tasks are
     * skipped).  An empty task set returns immediately.
     */
    void run(std::vector<Task> tasks);
    void run(std::vector<Task> tasks, const RunOptions &opts);

    /**
     * Ordered parallel map: invoke `fn(ctx) -> R` for indices
     * [0, n) and return the results in index order.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn)
    {
        return map<R>(n, std::forward<Fn>(fn), RunOptions());
    }

    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn, const RunOptions &opts)
    {
        std::vector<R> out(n);
        std::vector<Task> tasks;
        tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            tasks.push_back([&out, &fn, i](const TaskContext &ctx) {
                out[i] = fn(ctx);
            });
        }
        run(std::move(tasks), opts);
        return out;
    }

  private:
    struct WorkerQueue
    {
        Mutex mutex;
        /// Indices into the active RunState's tasks.
        std::deque<std::size_t> tasks RP_GUARDED_BY(mutex);
    };

    struct RunState
    {
        // Immutable while the set is in flight (written by run()
        // before workers wake, read-only afterwards): no guard.
        std::vector<Task> tasks;
        std::uint64_t rootSeed = 0;
        std::function<void(std::size_t, std::size_t)> progress;

        Mutex doneMutex;
        std::size_t done RP_GUARDED_BY(doneMutex) = 0;
        bool cancelled RP_GUARDED_BY(doneMutex) = false;
        std::exception_ptr firstError RP_GUARDED_BY(doneMutex);
    };

    void workerLoop(int id);
    bool claimTask(int id, std::size_t *out);
    void execute(int id, RunState &state, std::size_t task_index);

    bool cancelRequested() const
    {
        return cancel_ && cancel_->load(std::memory_order_relaxed);
    }

    std::uint64_t rootSeed_;
    CancelToken cancel_;
    std::function<void(std::size_t, std::size_t)> defaultProgress_;

    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;

    Mutex mutex_;                      ///< Pool coordination.
    CondVar wake_;                     ///< Signals a new epoch / stop.
    CondVar idle_;                     ///< Signals all workers idle.
    /// Incremented per run().
    std::uint64_t epoch_ RP_GUARDED_BY(mutex_) = 0;
    int activeWorkers_ RP_GUARDED_BY(mutex_) = 0;
    bool stop_ RP_GUARDED_BY(mutex_) = false;
    /// Valid during a run; workers snapshot it under mutex_ at epoch
    /// start and use the snapshot for the whole set.
    RunState *run_ RP_GUARDED_BY(mutex_) = nullptr;

    Mutex runMutex_;                   ///< Serializes run() callers.
};

/**
 * Process-wide engine with default options (RP_THREADS workers, root
 * seed 1), for callers that do not manage their own pool.
 */
ExperimentEngine &defaultEngine();

/**
 * Split @p n_items into at most @p n_chunks contiguous, non-empty
 * [begin, end) ranges whose sizes differ by at most one, in order.
 * Deterministic in its arguments, so drivers that fan chunked tasks
 * out over the engine produce the same partition on every run.
 */
std::vector<std::pair<std::size_t, std::size_t>>
splitRanges(std::size_t n_items, std::size_t n_chunks);

} // namespace rp::core

#endif // ROWPRESS_CORE_ENGINE_H
