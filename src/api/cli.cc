#include "api/cli.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>

#include "api/config.h"
#include "api/context.h"
#include "api/registry.h"
#include "api/sink.h"
#include "core/engine.h"

namespace rp::api {

namespace {

const char *const kUsage =
    "usage: rowpress <command> [options]\n"
    "\n"
    "commands:\n"
    "  list [glob]          list registered experiments\n"
    "  run <id|glob>...     run experiments by name\n"
    "  bench [args]         run the google-benchmark micro-measurements\n"
    "  help                 show this message\n"
    "\n"
    "run options:\n"
    "  --all                select every registered experiment\n"
    "  --out DIR            artifact directory (default: artifacts)\n"
    "  --format LIST        comma list of table, csv, json (default: table)\n"
    "  --time               per-experiment elapsed-time output and a\n"
    "                       total summary line (off by default: timing\n"
    "                       output is non-deterministic)\n"
    "  --locations N        tested row locations per module (default: 10)\n"
    "  --dies SET           default | all | comma-separated die ids\n"
    "  --seed S             root seed for module construction\n"
    "  --threads N          engine worker threads (0 = hardware)\n"
    "  --scale X            effort multiplier for heavy experiments\n"
    "\n"
    "Experiments may declare further options (e.g. fig06 --temp,\n"
    "fig15 --temp-step); an option not declared by every selected\n"
    "experiment is rejected.\n";

struct Flag
{
    std::string key;
    std::string value;
};

/** Lexical scan of a run/list argument list. */
struct ParsedArgs
{
    std::vector<std::string> positionals;
    std::vector<Flag> flags;
    bool all = false;
    bool time = false;
    std::string out = "artifacts";
    std::string format = "table";
};

ParsedArgs
parseArgs(const std::vector<std::string> &args, std::size_t first)
{
    ParsedArgs parsed;
    for (std::size_t i = first; i < args.size(); ++i) {
        const std::string &tok = args[i];
        if (tok.rfind("--", 0) != 0) {
            parsed.positionals.push_back(tok);
            continue;
        }
        if (tok == "--all") {
            parsed.all = true;
            continue;
        }
        if (tok == "--time") {
            parsed.time = true;
            continue;
        }
        std::string key = tok.substr(2), value;
        const auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else {
            if (i + 1 >= args.size())
                throw ConfigError("flag --" + key +
                                  " expects a value");
            value = args[++i];
        }
        if (key.empty())
            throw ConfigError("malformed flag '" + tok + "'");
        if (key == "out")
            parsed.out = value;
        else if (key == "format")
            parsed.format = value;
        else
            parsed.flags.push_back({key, value});
    }
    return parsed;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::vector<const Experiment *>
selectExperiments(const ParsedArgs &parsed)
{
    auto &registry = ExperimentRegistry::instance();
    std::vector<std::string> patterns = parsed.positionals;
    if (parsed.all)
        patterns.push_back("*");
    if (patterns.empty())
        throw ConfigError(
            "no experiments selected (name one, use a glob, or pass "
            "--all; see 'rowpress list')");

    std::vector<const Experiment *> selected;
    for (const auto &pattern : patterns) {
        const auto matches = registry.match(pattern);
        if (matches.empty())
            throw ConfigError("no experiment matches '" + pattern +
                              "' (see 'rowpress list')");
        for (const Experiment *exp : matches) {
            bool dup = false;
            for (const Experiment *s : selected)
                dup = dup || s == exp;
            if (!dup)
                selected.push_back(exp);
        }
    }
    return selected;
}

/** Config for one experiment: base + declared options, env + flags. */
Config
experimentConfig(const Experiment &exp, const std::vector<Flag> &flags)
{
    ConfigSchema schema = baseSchema();
    if (exp.declareOptions)
        exp.declareOptions(schema);
    Config config{std::move(schema)};
    config.loadEnv();
    for (const auto &flag : flags) {
        if (!config.schema().find(flag.key))
            throw ConfigError("experiment '" + exp.info.id +
                              "' does not accept --" + flag.key);
        config.set(flag.key, flag.value, ConfigLayer::Cli);
    }
    return config;
}

int
cmdList(const std::vector<std::string> &args, std::ostream &out)
{
    const ParsedArgs parsed = parseArgs(args, 1);
    if (!parsed.flags.empty())
        throw ConfigError("list does not accept --" +
                          parsed.flags.front().key);
    std::vector<std::string> patterns = parsed.positionals;
    if (patterns.empty() || parsed.all)
        patterns.push_back("*");

    Dataset table("Registered experiments");
    table.header({"id", "category", "title", "paper reference"});
    for (const Experiment *exp :
         ExperimentRegistry::instance().list()) {
        bool matched = false;
        for (const auto &pattern : patterns)
            matched = matched || globMatch(pattern, exp->info.id);
        if (matched)
            table.row({exp->info.id, exp->info.category,
                       exp->info.title, exp->info.paperRef});
    }
    out << table.renderAscii();
    out << table.rows.size() << " experiment(s)\n";
    return 0;
}

int
cmdRun(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    const ParsedArgs parsed = parseArgs(args, 1);
    const auto selected = selectExperiments(parsed);

    // Engine options come from the base layer (identical for every
    // selected experiment: base keys are shared and flags apply
    // globally).
    Config base{baseSchema()};
    base.loadEnv();
    for (const auto &flag : parsed.flags)
        if (base.schema().find(flag.key))
            base.set(flag.key, flag.value, ConfigLayer::Cli);

    core::ExperimentEngine::Options engine_opts;
    engine_opts.numThreads = base.getInt("threads");
    engine_opts.rootSeed = std::uint64_t(base.getInt("seed"));
    core::ExperimentEngine engine(engine_opts);

    const std::filesystem::path out_dir(parsed.out);
    std::vector<std::unique_ptr<ResultSink>> sinks;
    for (const auto &format : splitList(parsed.format))
        sinks.push_back(makeSink(format, out_dir, out));
    if (sinks.empty())
        throw ConfigError("--format: no formats in '" + parsed.format +
                          "'");
    std::vector<ResultSink *> sink_ptrs;
    for (const auto &sink : sinks)
        sink_ptrs.push_back(sink.get());

    // Validate every selected experiment's config up front, so a
    // flag one of them rejects fails the whole invocation before any
    // experiment has run.
    std::vector<Config> configs;
    configs.reserve(selected.size());
    for (const Experiment *exp : selected)
        configs.push_back(experimentConfig(*exp, parsed.flags));

    double total_secs = 0.0;
    for (std::size_t ei = 0; ei < selected.size(); ++ei) {
        const Experiment *exp = selected[ei];
        ExperimentContext ctx(exp->info, std::move(configs[ei]),
                              engine, sink_ptrs, out_dir);
        ctx.begin();
        const auto start = std::chrono::steady_clock::now();
        try {
            exp->run(ctx);
        } catch (const ConfigError &) {
            throw;
        } catch (const std::exception &e) {
            err << "rowpress: experiment '" << exp->info.id
                << "' failed: " << e.what() << "\n";
            return 1;
        }
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        total_secs += secs;
        if (parsed.time) {
            for (ResultSink *sink : sink_ptrs)
                sink->timing(secs * 1e3);
        }
        ctx.end();
        char line[160];
        std::snprintf(line, sizeof(line),
                      "[rowpress] %s completed in %.2f s on %d engine "
                      "thread(s)\n\n",
                      exp->info.id.c_str(), secs, engine.numThreads());
        out << line;
    }
    if (parsed.time) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "[rowpress] total: %.2f s for %zu experiment(s) "
                      "on %d engine thread(s)\n",
                      total_secs, selected.size(), engine.numThreads());
        out << line;
    }
    return 0;
}

} // namespace

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    try {
        if (args.empty() || args[0] == "help" || args[0] == "--help" ||
            args[0] == "-h") {
            out << kUsage;
            return args.empty() ? 2 : 0;
        }
        if (args[0] == "list")
            return cmdList(args, out);
        if (args[0] == "run")
            return cmdRun(args, out, err);
        err << "rowpress: unknown command '" << args[0] << "'\n\n"
            << kUsage;
        return 2;
    } catch (const ConfigError &e) {
        err << "rowpress: " << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        err << "rowpress: " << e.what() << "\n";
        return 1;
    }
}

int
cliMain(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return runCli(args, std::cout, std::cerr);
}

} // namespace rp::api
