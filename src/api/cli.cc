#include "api/cli.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>

#include "api/config.h"
#include "api/context.h"
#include "api/protocol.h"
#include "api/registry.h"
#include "api/service.h"
#include "api/sink.h"
#include "core/engine.h"
#include "core/fault.h"
#include "persist/cache.h"

namespace rp::api {

namespace {

const char *const kUsage =
    "usage: rowpress <command> [options]\n"
    "\n"
    "commands:\n"
    "  list [glob]          list registered experiments\n"
    "  run <id|glob>...     run experiments by name\n"
    "  serve                long-lived service: jobs over NDJSON on\n"
    "                       stdin/stdout (see --port for TCP)\n"
    "  cache <verb>         snapshot-cache maintenance: ls | gc |\n"
    "                       export DEST | import FILE...\n"
    "  bench [args]         run the google-benchmark micro-measurements\n"
    "  help                 show this message\n"
    "\n"
    "list options:\n"
    "  --format FMT         table (ASCII, default) or json (machine-\n"
    "                       readable ids + full option schemas)\n"
    "\n"
    "run options:\n"
    "  --all                select every registered experiment\n"
    "  --out DIR            artifact directory (default: artifacts)\n"
    "  --format LIST        comma list of table, csv, json (default: table)\n"
    "  --time               per-experiment elapsed-time output and a\n"
    "                       total summary line (off by default: timing\n"
    "                       output is non-deterministic)\n"
    "  --locations N        tested row locations per module (default: 10)\n"
    "  --dies SET           default | all | comma-separated die ids\n"
    "  --seed S             root seed for module construction\n"
    "  --threads N          engine worker threads (0 = hardware)\n"
    "  --scale X            effort multiplier for heavy experiments\n"
    "  --deadline-ms N      wall budget per job; exceeding it ends the\n"
    "                       run as deadline_exceeded (0 = none)\n"
    "  --max-attempts N     retry transient failures up to N attempts\n"
    "                       (default: 1 = no retry)\n"
    "  --retry-backoff-ms N base of the exponential retry backoff\n"
    "                       (default: 100)\n"
    "  --cache-dir DIR      on-disk ThresholdStore snapshot cache\n"
    "                       shared across runs and processes (also\n"
    "                       RP_CACHE_DIR; empty = no persistence)\n"
    "\n"
    "cache options (directory: --cache-dir or RP_CACHE_DIR):\n"
    "  ls [--format FMT]    verified listing (table or json)\n"
    "  gc [--max-bytes N]   drop undecodable snapshots, then LRU down\n"
    "                       to N bytes (no N = invalid-only sweep)\n"
    "  export DEST          copy valid snapshots into directory DEST\n"
    "  import FILE...       validate and install snapshot files\n"
    "\n"
    "serve options:\n"
    "  --jobs N             concurrent jobs in flight (default: 2)\n"
    "  --port P             serve on TCP 127.0.0.1:P instead of stdio\n"
    "  --queue-max N        pending-queue admission bound; a full\n"
    "                       queue rejects with queue_full (default:\n"
    "                       64, 0 = unbounded)\n"
    "  --session-max-inflight N\n"
    "                       per-TCP-session cap on non-terminal jobs\n"
    "                       (default: 8, 0 = uncapped)\n"
    "  --idle-timeout-ms N  disconnect a TCP session silent for N ms\n"
    "                       (default: 0 = never)\n"
    "  --grace-ms N         SIGTERM/SIGINT drain budget before\n"
    "                       in-flight jobs are cancelled (default:\n"
    "                       5000; exit 3 = drained, 4 = cancelled)\n"
    "\n"
    "Fault injection (testing): set RP_FAULT_POINTS (and optionally\n"
    "RP_FAULT_SEED) to inject deterministic faults at named points;\n"
    "see docs for the grammar and the point registry.\n"
    "\n"
    "Experiments may declare further options (e.g. fig06 --temp,\n"
    "fig15 --temp-step); an option not declared by every selected\n"
    "experiment is rejected.  `run` and `serve` share one execution\n"
    "path (rp::api::Service), so a job's artifacts are byte-identical\n"
    "whichever front-end produced them.\n";

struct Flag
{
    std::string key;
    std::string value;
};

/** Lexical scan of a run/list argument list. */
struct ParsedArgs
{
    std::vector<std::string> positionals;
    std::vector<Flag> flags;
    bool all = false;
    bool time = false;
    std::string out = "artifacts";
    std::string format = "table";
    bool outSet = false;    ///< --out given explicitly.
    bool formatSet = false; ///< --format given explicitly.
};

ParsedArgs
parseArgs(const std::vector<std::string> &args, std::size_t first)
{
    ParsedArgs parsed;
    for (std::size_t i = first; i < args.size(); ++i) {
        const std::string &tok = args[i];
        if (tok.rfind("--", 0) != 0) {
            parsed.positionals.push_back(tok);
            continue;
        }
        if (tok == "--all") {
            parsed.all = true;
            continue;
        }
        if (tok == "--time") {
            parsed.time = true;
            continue;
        }
        std::string key = tok.substr(2), value;
        const auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else {
            if (i + 1 >= args.size())
                throw ConfigError("flag --" + key +
                                  " expects a value");
            value = args[++i];
        }
        if (key.empty())
            throw ConfigError("malformed flag '" + tok + "'");
        if (key == "out") {
            parsed.out = value;
            parsed.outSet = true;
        } else if (key == "format") {
            parsed.format = value;
            parsed.formatSet = true;
        } else {
            parsed.flags.push_back({key, value});
        }
    }
    return parsed;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::vector<const Experiment *>
selectExperiments(const ParsedArgs &parsed)
{
    auto &registry = ExperimentRegistry::instance();
    std::vector<std::string> patterns = parsed.positionals;
    if (parsed.all)
        patterns.push_back("*");
    if (patterns.empty())
        throw ConfigError(
            "no experiments selected (name one, use a glob, or pass "
            "--all; see 'rowpress list')");

    std::vector<const Experiment *> selected;
    for (const auto &pattern : patterns) {
        const auto matches = registry.match(pattern);
        if (matches.empty())
            throw ConfigError("no experiment matches '" + pattern +
                              "' (see 'rowpress list')");
        for (const Experiment *exp : matches) {
            bool dup = false;
            for (const Experiment *s : selected)
                dup = dup || s == exp;
            if (!dup)
                selected.push_back(exp);
        }
    }
    return selected;
}

std::vector<std::pair<std::string, std::string>>
overlayOf(const std::vector<Flag> &flags)
{
    std::vector<std::pair<std::string, std::string>> overlay;
    overlay.reserve(flags.size());
    for (const Flag &flag : flags)
        overlay.emplace_back(flag.key, flag.value);
    return overlay;
}

int
cmdList(const std::vector<std::string> &args, std::ostream &out)
{
    const ParsedArgs parsed = parseArgs(args, 1);
    if (!parsed.flags.empty())
        throw ConfigError("list does not accept --" +
                          parsed.flags.front().key);
    if (parsed.outSet || parsed.time)
        throw ConfigError(std::string("list does not accept --") +
                          (parsed.outSet ? "out" : "time"));
    std::vector<std::string> patterns = parsed.positionals;
    if (patterns.empty() || parsed.all)
        patterns.push_back("*");

    if (parsed.format == "json") {
        // Machine-readable listing (ids, categories, and the full
        // option schema of every experiment) — the same document the
        // serve protocol's `list` verb returns.
        writeJson(out, experimentListJson(patterns), 2);
        out << "\n";
        return 0;
    }
    if (parsed.format != "table")
        throw ConfigError("list --format: expected table or json, got "
                          "'" + parsed.format + "'");

    Dataset table("Registered experiments");
    table.header({"id", "category", "title", "paper reference"});
    for (const Experiment *exp :
         ExperimentRegistry::instance().list()) {
        bool matched = false;
        for (const auto &pattern : patterns)
            matched = matched || globMatch(pattern, exp->info.id);
        if (matched)
            table.row({exp->info.id, exp->info.category,
                       exp->info.title, exp->info.paperRef});
    }
    out << table.renderAscii();
    out << table.rows.size() << " experiment(s)\n";
    return 0;
}

/**
 * `rowpress run`: a thin in-process client of the Service — one job
 * per selected experiment, submitted and awaited in order, tables on
 * @p out.  Exactly the execution path `rowpress serve` uses, so run
 * and serve artifacts cannot diverge.
 */
int
cmdRun(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    ParsedArgs parsed = parseArgs(args, 1);
    const auto selected = selectExperiments(parsed);

    // Peel the job-policy flags off before the rest becomes the
    // config overlay: deadline/retry are service semantics, not
    // experiment options, so no experiment schema declares them.
    int deadline_ms = 0;
    RetryPolicy retry;
    {
        std::vector<Flag> config_flags;
        for (const Flag &flag : parsed.flags) {
            if (flag.key == "deadline-ms") {
                deadline_ms =
                    int(parseInt(flag.value, "--deadline-ms"));
                if (deadline_ms < 0)
                    throw ConfigError("--deadline-ms: must be >= 0");
            } else if (flag.key == "max-attempts") {
                retry.maxAttempts =
                    int(parseInt(flag.value, "--max-attempts"));
                if (retry.maxAttempts < 1)
                    throw ConfigError("--max-attempts: must be >= 1");
            } else if (flag.key == "retry-backoff-ms") {
                retry.backoffBaseMs =
                    int(parseInt(flag.value, "--retry-backoff-ms"));
                if (retry.backoffBaseMs < 1)
                    throw ConfigError(
                        "--retry-backoff-ms: must be >= 1");
            } else {
                config_flags.push_back(flag);
            }
        }
        parsed.flags = std::move(config_flags);
    }
    const auto overlay = overlayOf(parsed.flags);

    const std::vector<std::string> formats = splitList(parsed.format);
    if (formats.empty())
        throw ConfigError("--format: no formats in '" + parsed.format +
                          "'");

    // Validate every selected experiment's config up front, so a
    // flag one of them rejects fails the whole invocation before any
    // experiment has run.
    for (const Experiment *exp : selected)
        (void)Service::resolveConfig(*exp, overlay);

    Service service(Service::Options{/*workers=*/1});
    double total_secs = 0.0;
    int threads = 0;
    for (const Experiment *exp : selected) {
        JobRequest request;
        request.experiment = exp->info.id;
        request.overlay = overlay;
        request.formats = formats;
        request.outDir = parsed.out;
        request.tableStream = &out;
        request.time = parsed.time;
        request.deadlineMs = deadline_ms;
        request.retry = retry;

        const JobStatus status = service.wait(service.submit(request));
        if (status.state == JobState::Failed) {
            if (status.configError) {
                err << "rowpress: " << status.error << "\n";
                return 2;
            }
            err << "rowpress: experiment '" << exp->info.id
                << "' failed: " << status.error << "\n";
            return 1;
        }
        if (status.state != JobState::Finished) {
            // Cancelled or deadline_exceeded: policy ended the run.
            err << "rowpress: experiment '" << exp->info.id << "' "
                << jobStateName(status.state) << "\n";
            return 1;
        }
        total_secs += status.elapsedMs / 1e3;
        threads = status.engineThreads;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "[rowpress] %s completed in %.2f s on %d engine "
                      "thread(s)\n\n",
                      exp->info.id.c_str(), status.elapsedMs / 1e3,
                      status.engineThreads);
        out << line;
    }
    if (parsed.time) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "[rowpress] total: %.2f s for %zu experiment(s) "
                      "on %d engine thread(s)\n",
                      total_secs, selected.size(), threads);
        out << line;
    }
    return 0;
}

/**
 * `rowpress cache`: offline maintenance of a snapshot cache
 * directory.  Every verb works on explicit paths (no Service, no
 * stores), so it is safe to run next to live serve processes — the
 * same flock + atomic-rename discipline the cache itself uses.
 */
int
cmdCache(const std::vector<std::string> &args, std::ostream &out,
         std::ostream &err)
{
    const ParsedArgs parsed = parseArgs(args, 1);
    if (parsed.positionals.empty())
        throw ConfigError(
            "cache: expected a verb (ls | gc | export | import)");
    const std::string &verb = parsed.positionals.front();
    const std::vector<std::string> operands(
        parsed.positionals.begin() + 1, parsed.positionals.end());
    if (parsed.all || parsed.time || parsed.outSet)
        throw ConfigError(std::string("cache does not accept --") +
                          (parsed.all    ? "all"
                           : parsed.time ? "time"
                                         : "out"));

    std::string dir;
    if (const char *env = std::getenv("RP_CACHE_DIR"))
        dir = env;
    long long max_bytes = -1;
    for (const Flag &flag : parsed.flags) {
        if (flag.key == "cache-dir") {
            dir = flag.value;
        } else if (flag.key == "max-bytes" && verb == "gc") {
            max_bytes = parseInt(flag.value, "--max-bytes");
            if (max_bytes < 0)
                throw ConfigError("--max-bytes: must be >= 0");
        } else {
            throw ConfigError("cache " + verb +
                              " does not accept --" + flag.key);
        }
    }
    if (dir.empty())
        throw ConfigError("cache: no directory (pass --cache-dir or "
                          "set RP_CACHE_DIR)");

    try {
        if (verb == "ls") {
            if (!operands.empty())
                throw ConfigError("cache ls takes no arguments");
            const auto entries = persist::SnapshotCache::listDir(dir);
            if (parsed.format == "json") {
                JsonValue v = JsonValue::object();
                v.add("dir", JsonValue::string(dir));
                JsonValue list = JsonValue::array();
                for (const auto &e : entries) {
                    JsonValue item = JsonValue::object();
                    item.add("file", JsonValue::string(e.file));
                    item.add("bytes",
                             JsonValue::number((long long)e.bytes));
                    item.add("valid",
                             JsonValue::makeBool(e.info.valid));
                    if (e.info.valid) {
                        item.add("die",
                                 JsonValue::string(e.info.dieId));
                        item.add("bits_per_row",
                                 JsonValue::number(
                                     (long long)e.info.bitsPerRow));
                        item.add("seed",
                                 JsonValue::number(
                                     (long long)e.info.seed));
                        item.add("candidate_rows",
                                 JsonValue::number(
                                     (long long)e.info.candidateRows));
                        item.add("word_mask_rows",
                                 JsonValue::number(
                                     (long long)e.info.wordMaskRows));
                    } else {
                        item.add("error",
                                 JsonValue::string(e.info.error));
                    }
                    list.push(std::move(item));
                }
                v.add("snapshots", std::move(list));
                writeJson(out, v, 2);
                out << "\n";
                return 0;
            }
            if (parsed.format != "table")
                throw ConfigError(
                    "cache ls --format: expected table or json, got "
                    "'" + parsed.format + "'");
            Dataset table("Snapshot cache " + dir);
            table.header({"file", "bytes", "status", "die", "bits",
                          "seed", "cand rows", "mask rows"});
            for (const auto &e : entries) {
                if (e.info.valid)
                    table.row(
                        {e.file, std::to_string(e.bytes), "ok",
                         e.info.dieId,
                         std::to_string(e.info.bitsPerRow),
                         std::to_string(e.info.seed),
                         std::to_string(e.info.candidateRows),
                         std::to_string(e.info.wordMaskRows)});
                else
                    table.row({e.file, std::to_string(e.bytes),
                               "invalid: " + e.info.error, "", "", "",
                               "", ""});
            }
            out << table.renderAscii();
            out << entries.size() << " snapshot(s)\n";
            return 0;
        }
        if (verb == "gc") {
            if (!operands.empty())
                throw ConfigError("cache gc takes no arguments");
            const auto result = persist::SnapshotCache::gcDir(
                dir, max_bytes < 0 ? std::uintmax_t(-1)
                                   : std::uintmax_t(max_bytes));
            out << "removed " << result.removed << " file(s), "
                << result.removedBytes << " byte(s); kept "
                << result.keptBytes << " byte(s)\n";
            return 0;
        }
        if (verb == "export") {
            if (operands.size() != 1)
                throw ConfigError(
                    "cache export: expected one destination directory");
            std::size_t installed = 0, skipped = 0;
            for (const auto &e :
                 persist::SnapshotCache::listDir(dir)) {
                if (!e.info.valid) {
                    err << "rowpress: cache export: skipping "
                        << e.file << " (" << e.info.error << ")\n";
                    ++skipped;
                    continue;
                }
                const std::string src =
                    (std::filesystem::path(dir) / e.file).string();
                if (persist::SnapshotCache::installFile(
                        src, operands.front()))
                    ++installed;
                else
                    ++skipped;
            }
            out << "exported " << installed << " snapshot(s) to "
                << operands.front() << " (" << skipped
                << " skipped)\n";
            return 0;
        }
        if (verb == "import") {
            if (operands.empty())
                throw ConfigError(
                    "cache import: expected snapshot file(s)");
            std::size_t installed = 0, skipped = 0;
            for (const std::string &src : operands) {
                if (persist::SnapshotCache::installFile(src, dir))
                    ++installed;
                else
                    ++skipped;
            }
            out << "imported " << installed << " snapshot(s) into "
                << dir << " (" << skipped << " already covered)\n";
            return 0;
        }
        throw ConfigError("cache: unknown verb '" + verb +
                          "' (ls | gc | export | import)");
    } catch (const persist::CacheError &e) {
        // Unusable directories and rejected imports are user errors:
        // same exit discipline as any other bad flag (exit 2).
        throw ConfigError(e.what());
    }
}

int
cmdServe(const std::vector<std::string> &args, std::ostream &out)
{
    const ParsedArgs parsed = parseArgs(args, 1);
    if (!parsed.positionals.empty())
        throw ConfigError(
            "serve takes no experiment arguments (submit jobs over "
            "the protocol instead)");
    // The run-mode flags parseArgs absorbs generically are not serve
    // options — rejecting them beats silently writing artifacts
    // somewhere other than where the user asked.
    if (parsed.outSet || parsed.formatSet)
        throw ConfigError("serve does not accept --out/--format; each "
                          "job carries its own \"out\"/\"formats\"");
    if (parsed.time || parsed.all)
        throw ConfigError(std::string("serve does not accept --") +
                          (parsed.time ? "time" : "all"));
    int port = -1;
    int jobs = 2;
    std::size_t queue_max = 64;
    ServeOptions serve_opts;
    for (const Flag &flag : parsed.flags) {
        if (flag.key == "port") {
            port = int(parseInt(flag.value, "--port"));
            // 0 would bind an ephemeral port the log line cannot
            // announce; require an explicit one.
            if (port < 1 || port > 65535)
                throw ConfigError("--port: expected 1..65535");
        } else if (flag.key == "jobs") {
            jobs = int(parseInt(flag.value, "--jobs"));
            if (jobs < 1)
                throw ConfigError("--jobs: must be >= 1");
        } else if (flag.key == "queue-max") {
            const long long v = parseInt(flag.value, "--queue-max");
            if (v < 0)
                throw ConfigError("--queue-max: must be >= 0");
            queue_max = std::size_t(v);
        } else if (flag.key == "session-max-inflight") {
            serve_opts.sessionMaxInflight =
                int(parseInt(flag.value, "--session-max-inflight"));
            if (serve_opts.sessionMaxInflight < 0)
                throw ConfigError(
                    "--session-max-inflight: must be >= 0");
        } else if (flag.key == "idle-timeout-ms") {
            serve_opts.idleTimeoutMs =
                int(parseInt(flag.value, "--idle-timeout-ms"));
            if (serve_opts.idleTimeoutMs < 0)
                throw ConfigError("--idle-timeout-ms: must be >= 0");
        } else if (flag.key == "grace-ms") {
            serve_opts.graceMs =
                int(parseInt(flag.value, "--grace-ms"));
            if (serve_opts.graceMs < 0)
                throw ConfigError("--grace-ms: must be >= 0");
        } else {
            throw ConfigError("serve does not accept --" + flag.key);
        }
    }

#if defined(SIGPIPE)
    // A client that stops reading (e.g. `... | rowpress serve |
    // head`) must surface as a stream error, not kill the server
    // mid-job by the default SIGPIPE action.  (TCP writes are
    // additionally covered by MSG_NOSIGNAL/SO_NOSIGPIPE.)
    std::signal(SIGPIPE, SIG_IGN);
#endif
    Service service(Service::Options{jobs, queue_max});
    if (port >= 0) {
        serve_opts.port = port;
        return serveTcp(service, serve_opts, out);
    }
    return serveSession(service, std::cin, out);
}

} // namespace

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    try {
        // Chaos drills set RP_FAULT_POINTS before spawning the CLI;
        // a production process (no env) leaves the injector disarmed
        // and every fault point a single relaxed load.
        core::FaultInjector::instance().armFromEnv();
        if (args.empty() || args[0] == "help" || args[0] == "--help" ||
            args[0] == "-h") {
            out << kUsage;
            return args.empty() ? 2 : 0;
        }
        if (args[0] == "list")
            return cmdList(args, out);
        if (args[0] == "run")
            return cmdRun(args, out, err);
        if (args[0] == "serve")
            return cmdServe(args, out);
        if (args[0] == "cache")
            return cmdCache(args, out, err);
        err << "rowpress: unknown command '" << args[0] << "'\n\n"
            << kUsage;
        return 2;
    } catch (const ConfigError &e) {
        err << "rowpress: " << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        err << "rowpress: " << e.what() << "\n";
        return 1;
    }
}

int
cliMain(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return runCli(args, std::cout, std::cerr);
}

} // namespace rp::api
