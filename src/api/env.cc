#include "api/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace rp::api {

namespace {

std::string
strip(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

} // namespace

long long
parseInt(const std::string &text, const std::string &what)
{
    const std::string t = strip(text);
    if (t.empty())
        throw ConfigError(what + ": empty value where an integer was "
                                 "expected");
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 10);
    if (errno == ERANGE)
        throw ConfigError(what + ": integer out of range: '" + text +
                          "'");
    if (end == t.c_str() || *end != '\0')
        throw ConfigError(what + ": not an integer: '" + text + "'");
    return v;
}

double
parseDouble(const std::string &text, const std::string &what)
{
    const std::string t = strip(text);
    if (t.empty())
        throw ConfigError(what + ": empty value where a number was "
                                 "expected");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0')
        throw ConfigError(what + ": not a number: '" + text + "'");
    if (errno == ERANGE || !std::isfinite(v))
        throw ConfigError(what + ": number out of range: '" + text +
                          "'");
    return v;
}

bool
parseBool(const std::string &text, const std::string &what)
{
    std::string t = strip(text);
    for (char &c : t)
        c = char(std::tolower((unsigned char)c));
    if (t == "1" || t == "true" || t == "yes" || t == "on")
        return true;
    if (t == "0" || t == "false" || t == "no" || t == "off")
        return false;
    throw ConfigError(what + ": not a boolean: '" + text + "'");
}

int
envInt(const char *name, int def, long long min_value)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    const long long parsed = parseInt(v, name);
    if (parsed < min_value)
        throw ConfigError(std::string(name) + ": value " +
                          std::to_string(parsed) + " is below the "
                          "minimum of " + std::to_string(min_value));
    if (parsed > 0x7fffffffLL)
        throw ConfigError(std::string(name) + ": value " +
                          std::to_string(parsed) + " does not fit an "
                          "int");
    return int(parsed);
}

double
envDouble(const char *name, double def, double min_value)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    const double parsed = parseDouble(v, name);
    if (parsed < min_value)
        throw ConfigError(std::string(name) + ": value " +
                          std::to_string(parsed) + " is below the "
                          "minimum of " + std::to_string(min_value));
    return parsed;
}

} // namespace rp::api
