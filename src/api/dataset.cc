#include "api/dataset.h"

#include <cctype>
#include <cstdio>

namespace rp::api {

std::string
fmtCount(double v)
{
    char buf[32];
    if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

std::string
slugify(const std::string &name)
{
    std::string out;
    bool last_sep = true; // suppress a leading separator
    for (char c : name) {
        if (std::isalnum((unsigned char)c)) {
            out += char(std::tolower((unsigned char)c));
            last_sep = false;
        } else if (c == '-') {
            // keep die ids ("S-8Gb-B") readable
            out += '-';
            last_sep = false;
        } else if (!last_sep) {
            out += '_';
            last_sep = true;
        }
    }
    while (!out.empty() && (out.back() == '_' || out.back() == '-'))
        out.pop_back();
    return out.empty() ? "dataset" : out;
}

std::string
Dataset::renderAscii() const
{
    Table table(name);
    table.header(columns);
    for (const auto &r : rows)
        table.row(r);
    return table.render();
}

} // namespace rp::api
