#include "api/config.h"

#include <cstdlib>

namespace rp::api {

ConfigSchema &
ConfigSchema::add(OptionSpec spec)
{
    if (find(spec.key))
        throw ConfigError("schema: duplicate option '" + spec.key +
                          "'");
    options_.push_back(std::move(spec));
    return *this;
}

const OptionSpec *
ConfigSchema::find(const std::string &key) const
{
    for (const auto &opt : options_)
        if (opt.key == key)
            return &opt;
    return nullptr;
}

Config::Config(ConfigSchema schema) : schema_(std::move(schema))
{
    for (const auto &opt : schema_.options()) {
        validate(opt, opt.defaultValue,
                 "default of --" + opt.key);
        values_[opt.key] = {opt.defaultValue, ConfigLayer::Default};
    }
}

void
Config::validate(const OptionSpec &spec, const std::string &value,
                 const std::string &what)
{
    switch (spec.type) {
    case OptionType::Int: {
        const long long v = parseInt(value, what);
        if (spec.hasMin && double(v) < spec.minValue)
            throw ConfigError(what + ": value " + std::to_string(v) +
                              " is below the minimum of " +
                              std::to_string((long long)spec.minValue));
        // getInt() returns int; reject here so an oversized value
        // never silently truncates.
        if (v > 2147483647LL || v < -2147483648LL)
            throw ConfigError(what + ": value " + std::to_string(v) +
                              " does not fit an int");
        break;
    }
    case OptionType::Double: {
        const double v = parseDouble(value, what);
        if (spec.hasMin && v < spec.minValue)
            throw ConfigError(what + ": value " + value +
                              " is below the minimum of " +
                              std::to_string(spec.minValue));
        break;
    }
    case OptionType::Bool:
        parseBool(value, what);
        break;
    case OptionType::String:
        break;
    }
}

void
Config::loadEnv()
{
    for (const auto &opt : schema_.options()) {
        // The primary alias wins; the deprecated legacy alias is
        // consulted only when the primary is unset.
        std::string name = opt.envVar;
        const char *v =
            name.empty() ? nullptr : std::getenv(name.c_str());
        if (!v && !opt.envVarLegacy.empty()) {
            name = opt.envVarLegacy;
            v = std::getenv(name.c_str());
        }
        if (!v)
            continue;
        validate(opt, v, name);
        Entry &entry = values_[opt.key];
        if (int(ConfigLayer::Env) < int(entry.origin))
            continue; // a CLI value already set this key
        entry.value = v;
        entry.origin = ConfigLayer::Env;
    }
}

void
Config::set(const std::string &key, const std::string &value,
            ConfigLayer layer)
{
    const OptionSpec *spec = schema_.find(key);
    if (!spec)
        throw ConfigError("unknown option '--" + key + "'");
    const std::string what =
        layer == ConfigLayer::Env && !spec->envVar.empty()
            ? spec->envVar
            : "--" + key;
    validate(*spec, value, what);
    Entry &entry = values_[key];
    if (int(layer) < int(entry.origin))
        return; // a higher layer already set this key
    entry.value = value;
    entry.origin = layer;
}

const OptionSpec &
Config::specOf(const std::string &key, OptionType expected) const
{
    const OptionSpec *spec = schema_.find(key);
    if (!spec)
        throw ConfigError("unknown option '--" + key + "'");
    if (spec->type != expected)
        throw ConfigError("option '--" + key +
                          "' accessed with the wrong type");
    return *spec;
}

int
Config::getInt(const std::string &key) const
{
    specOf(key, OptionType::Int);
    return int(parseInt(values_.at(key).value, "--" + key));
}

double
Config::getDouble(const std::string &key) const
{
    specOf(key, OptionType::Double);
    return parseDouble(values_.at(key).value, "--" + key);
}

bool
Config::getBool(const std::string &key) const
{
    specOf(key, OptionType::Bool);
    return parseBool(values_.at(key).value, "--" + key);
}

const std::string &
Config::getString(const std::string &key) const
{
    specOf(key, OptionType::String);
    return values_.at(key).value;
}

const char *
configLayerName(ConfigLayer layer)
{
    switch (layer) {
    case ConfigLayer::Default: return "default";
    case ConfigLayer::Env: return "env";
    case ConfigLayer::Cli: return "cli";
    }
    return "unknown";
}

std::vector<ConfigValue>
Config::resolved() const
{
    // values_ is an ordered map, so the listing is sorted by key and
    // deterministic for a given schema + layering.
    std::vector<ConfigValue> out;
    out.reserve(values_.size());
    for (const auto &[key, entry] : values_)
        out.push_back({key, entry.value, configLayerName(entry.origin)});
    return out;
}

ConfigLayer
Config::origin(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        throw ConfigError("unknown option '--" + key + "'");
    return it->second.origin;
}

} // namespace rp::api
