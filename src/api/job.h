/**
 * @file
 * Job currency of the rp::api::Service layer.
 *
 * A JobRequest names one experiment run: the experiment id, a config
 * overlay (applied on top of defaults < environment, exactly like CLI
 * flags), the output formats and artifact directory.  The Service
 * resolves the request into a Config at submission, schedules it, and
 * emits typed JobEvents while it runs.  A job's results are a pure
 * function of (experiment, resolved config) — independent of how the
 * request arrived (`rowpress run`, `rowpress serve`, or the C++ API)
 * and of what other jobs run concurrently.
 *
 * JobEvents are the streaming-sink currency: every output backend
 * (the ASCII table, CSV, and JSON ResultSinks; the serve protocol's
 * NDJSON event lines) is a consumer of the same ordered per-job event
 * stream, so there is exactly one path from an experiment's emit
 * calls to any rendered artifact.
 */

#ifndef ROWPRESS_API_JOB_H
#define ROWPRESS_API_JOB_H

#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "api/config.h"
#include "api/dataset.h"
#include "api/registry.h"

namespace rp::api {

/** Lifecycle of a submitted job. */
enum class JobState
{
    Queued,    ///< Accepted and validated, waiting for a scheduler slot.
    Running,   ///< Executing on a scheduler worker.
    Finished,  ///< Completed successfully; artifacts are final.
    Failed,    ///< The experiment threw; see JobStatus::error.
    Cancelled, ///< Cancelled before or during execution.
    /**
     * The job's deadline_ms budget (measured from submission, across
     * every retry attempt) expired: its cancel token fired and the
     * engine unwound at the next task boundary.  Terminal, like
     * Cancelled, but distinguishable — a deadline is the service
     * enforcing policy, not a client changing its mind.
     */
    DeadlineExceeded,
};

/** Lower-case wire name of a job state ("queued", "running", ...). */
const char *jobStateName(JobState state);

/**
 * Per-job retry policy: how often a *transient* failure (one thrown
 * as core::TransientError, e.g. an injected transient fault) is
 * retried, and how long to back off between attempts.  Every attempt
 * re-runs with the same resolved config and seed, so a success after
 * retries is byte-identical to a first-try success — the sinks
 * restart from beginExperiment on each attempt and rewrite the same
 * artifact bytes.  Non-transient failures never retry.
 */
struct RetryPolicy
{
    /** Total attempts (1 = no retry). */
    int maxAttempts = 1;
    /** Backoff before attempt k+1: min(base << (k-1), max) ms ... */
    int backoffBaseMs = 100;
    int backoffMaxMs = 5000;
    /**
     * ... plus a deterministic jitter in [0, backoff/2) derived from
     * (job seed, attempt) — decorrelates retry storms across jobs
     * without making any single job's schedule nondeterministic.
     */
    bool jitter = true;
};

/** One experiment run, as submitted by a client. */
struct JobRequest
{
    /** Exact experiment id (no globs — one job is one experiment). */
    std::string experiment;

    /**
     * Config overlay, applied in order on top of defaults < env.  The
     * same layer CLI flags occupy, so `rowpress run fig06 --temp 65`
     * and a serve submit with {"temp": "65"} resolve identically.
     */
    std::vector<std::pair<std::string, std::string>> overlay;

    /** Output formats ("table", "csv", "json"); must be non-empty. */
    std::vector<std::string> formats = {"csv", "json"};

    /** Artifact directory (the `--out` of this job). */
    std::filesystem::path outDir = "artifacts";

    /**
     * Stream for the "table" format (stdout in `rowpress run`).
     * Required when formats contains "table"; the serve protocol has
     * no free-form output channel, so it rejects "table" instead.
     */
    std::ostream *tableStream = nullptr;

    /** Emit a Timing event after the run (`rowpress run --time`). */
    bool time = false;

    /**
     * Wall-clock budget in ms from submission (spanning queue time
     * and every retry attempt); 0 = none.  On expiry the service
     * fires the job's cancel token and the job terminates
     * DeadlineExceeded at the engine's next task boundary.
     */
    int deadlineMs = 0;

    /** Transient-failure retry policy (default: no retries). */
    RetryPolicy retry;

    /**
     * Client/session scope tag, echoed on every JobEvent of this job
     * (JobEvent::client).  Protocol sessions set a unique nonzero id
     * and filter the observer stream on it, so one session never
     * sees another session's events; 0 = unscoped (in-process API).
     */
    std::uint64_t clientId = 0;
};

/** Type of a streamed job event. */
enum class JobEventType
{
    Queued,   ///< Submission accepted.
    Started,  ///< Execution began; carries info + resolved config.
    Progress, ///< Engine task-set progress (done / total).
    Dataset,  ///< The experiment emitted a Dataset.
    Note,     ///< The experiment emitted commentary text.
    RawCsv,   ///< The experiment emitted a raw tidy-CSV artifact.
    Timing,   ///< Opt-in elapsed-time report (JobRequest::time).
    /**
     * A transient failure is about to be retried: carries the attempt
     * number that failed, the backoff delay, and the error.  The next
     * attempt re-opens the stream with a fresh Started event (sinks
     * restart rendering from scratch).
     */
    Retrying,
    Finished, ///< Terminal: Finished/Failed/Cancelled/DeadlineExceeded.
};

/**
 * One event of a job's ordered stream.  Events of a single job are
 * delivered in emission order; events of different jobs interleave.
 */
struct JobEvent
{
    JobEventType type = JobEventType::Queued;
    std::uint64_t job = 0;
    std::string experiment;
    /** JobRequest::clientId of the owning job (session scoping). */
    std::uint64_t client = 0;

    // Retrying
    int attempt = 0;     ///< The attempt (1-based) that just failed.
    int backoffMs = 0;   ///< Delay before the next attempt.

    // Started
    ExperimentInfo info;
    std::vector<ConfigValue> config; ///< Fully resolved (all keys).

    // Progress (counts are per engine task set, not per job).
    std::size_t done = 0;
    std::size_t total = 0;

    // Dataset.  A borrowed pointer, like bodyWriter below: dispatch
    // is synchronous and the experiment's table can be large, so the
    // event refers to it instead of copying it.  Valid only during
    // delivery; a consumer that stashes the event must copy what it
    // needs first.
    const Dataset *dataset = nullptr;

    // Note
    std::string text;

    // RawCsv: artifact name + the body writer (one of the chr/export
    // writers).  Dispatch is synchronous, and the writer may capture
    // caller locals by reference — consumers must invoke it during
    // delivery (CsvSink streams it straight to its file; a consumer
    // that stashes the event must not call it later).  Keeping the
    // writer lazy means runs without a csv consumer never render the
    // artifact at all.
    std::string name;
    std::function<void(std::ostream &)> bodyWriter;

    // Timing / Finished
    double elapsedMs = 0.0;

    // Finished
    JobState state = JobState::Queued;
    std::string error;
};

/** Receives one job's events, in order (ExperimentContext -> Service). */
using JobEventEmitter = std::function<void(JobEvent &&)>;

/** Point-in-time view of a job (the `status` verb / CLI wait). */
struct JobStatus
{
    std::uint64_t id = 0;
    std::string experiment;
    JobState state = JobState::Queued;
    std::string error;       ///< Failure message when state == Failed.
    bool configError = false;///< Failure was a ConfigError (exit 2).
    std::size_t done = 0;    ///< Progress of the current task set.
    std::size_t total = 0;
    double elapsedMs = 0.0;  ///< Wall clock of the finished run.
    int engineThreads = 0;   ///< Resolved engine worker count.
    int attempts = 0;        ///< Execution attempts so far (retry).
};

} // namespace rp::api

#endif // ROWPRESS_API_JOB_H
