#include "api/sink.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "api/env.h"
#include "chr/export.h"

namespace rp::api {

void
ResultSink::beginExperiment(const ExperimentInfo &info)
{
    (void)info;
}

void
ResultSink::resolvedConfig(const std::vector<ConfigValue> &config)
{
    (void)config;
}

void
ResultSink::note(const std::string &text)
{
    (void)text;
}

void
ResultSink::rawCsv(const std::string &name,
                   const std::function<void(std::ostream &)> &writer)
{
    (void)name;
    (void)writer;
}

void
ResultSink::timing(double elapsed_ms)
{
    (void)elapsed_ms;
}

void
ResultSink::endExperiment()
{
}

// ---- TableSink -------------------------------------------------------

void
TableSink::beginExperiment(const ExperimentInfo &info)
{
    os_ << "==============================================================="
        << "\n"
        << "RowPress reproduction - " << info.title << "\n"
        << "Paper reference: " << info.paperRef << "\n"
        << "==============================================================="
        << "\n";
}

void
TableSink::dataset(const Dataset &d)
{
    os_ << d.renderAscii();
}

void
TableSink::note(const std::string &text)
{
    os_ << text;
    if (text.empty() || text.back() != '\n')
        os_ << "\n";
}

void
TableSink::timing(double elapsed_ms)
{
    char line[96];
    std::snprintf(line, sizeof(line), "elapsed: %.1f ms\n", elapsed_ms);
    os_ << line;
}

// ---- CsvSink ---------------------------------------------------------

void
CsvSink::beginExperiment(const ExperimentInfo &info)
{
    expDir_ = outDir_ / info.id;
    usedStems_.clear();
    std::filesystem::create_directories(expDir_);
}

std::filesystem::path
CsvSink::filePath(const std::string &stem)
{
    std::string unique = stem;
    for (int n = 2; usedStems_.count(unique); ++n)
        unique = stem + "_" + std::to_string(n);
    usedStems_.insert(unique);
    return expDir_ / (unique + ".csv");
}

void
CsvSink::dataset(const Dataset &d)
{
    const auto path = filePath(slugify(d.name));
    std::ofstream os(path);
    if (!os)
        throw ConfigError("cannot write " + path.string());
    os << chr::csvRow(d.columns);
    for (const auto &row : d.rows)
        os << chr::csvRow(row);
}

void
CsvSink::rawCsv(const std::string &name,
                const std::function<void(std::ostream &)> &writer)
{
    const auto path = filePath(slugify(name));
    std::ofstream os(path);
    if (!os)
        throw ConfigError("cannot write " + path.string());
    writer(os);
}

// ---- JsonSink --------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

bool
looksNumeric(const std::string &text)
{
    // Exact RFC 8259 number grammar:
    //   -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // (strtod would also accept hex, "1.", "007", inf/nan — all of
    // which are invalid JSON and must stay quoted).
    std::size_t i = 0;
    const std::size_t n = text.size();
    auto digits = [&]() {
        const std::size_t start = i;
        while (i < n && text[i] >= '0' && text[i] <= '9')
            ++i;
        return i > start;
    };
    if (i < n && text[i] == '-')
        ++i;
    if (i >= n)
        return false;
    if (text[i] == '0') {
        ++i;
    } else if (text[i] >= '1' && text[i] <= '9') {
        digits();
    } else {
        return false;
    }
    if (i < n && text[i] == '.') {
        ++i;
        if (!digits())
            return false;
    }
    if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        ++i;
        if (i < n && (text[i] == '+' || text[i] == '-'))
            ++i;
        if (!digits())
            return false;
    }
    return i == n;
}

namespace {

void
writeJsonValue(std::ostream &os, const std::string &text)
{
    if (looksNumeric(text))
        os << text;
    else
        os << '"' << jsonEscape(text) << '"';
}

} // namespace

void
JsonSink::beginExperiment(const ExperimentInfo &info)
{
    info_ = info;
    config_.clear();
    datasets_.clear();
    notes_.clear();
}

void
JsonSink::resolvedConfig(const std::vector<ConfigValue> &config)
{
    config_ = config;
}

void
JsonSink::dataset(const Dataset &d)
{
    datasets_.push_back(d);
}

void
JsonSink::note(const std::string &text)
{
    notes_.push_back(text);
}

void
JsonSink::endExperiment()
{
    const auto dir = outDir_ / info_.id;
    std::filesystem::create_directories(dir);
    const auto path = dir / "result.json";
    std::ofstream os(path);
    if (!os)
        throw ConfigError("cannot write " + path.string());

    os << "{\n";
    os << "  \"experiment\": \"" << jsonEscape(info_.id) << "\",\n";
    os << "  \"title\": \"" << jsonEscape(info_.title) << "\",\n";
    os << "  \"paper_ref\": \"" << jsonEscape(info_.paperRef)
       << "\",\n";
    os << "  \"category\": \"" << jsonEscape(info_.category)
       << "\",\n";
    if (!config_.empty()) {
        // The fully resolved config (defaults < env < overlay): the
        // values this run actually used, so the artifact reproduces
        // with `rowpress run <experiment>` plus the non-default keys.
        os << "  \"config\": {";
        for (std::size_t i = 0; i < config_.size(); ++i) {
            const ConfigValue &kv = config_[i];
            os << (i ? ",\n             " : "\n             ");
            os << '"' << jsonEscape(kv.key) << "\": {\"value\": ";
            writeJsonValue(os, kv.value);
            os << ", \"origin\": \"" << jsonEscape(kv.origin)
               << "\"}";
        }
        os << "\n  },\n";
    }
    os << "  \"datasets\": [";
    for (std::size_t di = 0; di < datasets_.size(); ++di) {
        const Dataset &d = datasets_[di];
        os << (di ? ",\n" : "\n");
        os << "    {\n      \"name\": \"" << jsonEscape(d.name)
           << "\",\n      \"columns\": [";
        for (std::size_t i = 0; i < d.columns.size(); ++i) {
            os << (i ? ", " : "") << '"' << jsonEscape(d.columns[i])
               << '"';
        }
        os << "],\n      \"rows\": [";
        for (std::size_t ri = 0; ri < d.rows.size(); ++ri) {
            os << (ri ? ",\n                " : "") << "[";
            const auto &row = d.rows[ri];
            for (std::size_t i = 0; i < row.size(); ++i) {
                if (i)
                    os << ", ";
                writeJsonValue(os, row[i]);
            }
            os << "]";
        }
        os << "]\n    }";
    }
    os << "\n  ],\n";
    os << "  \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
        os << (i ? ",\n            " : "") << '"'
           << jsonEscape(notes_[i]) << '"';
    }
    os << "]\n}\n";
    // The artifact is on disk; keeping the collected results alive
    // for the sink's remaining lifetime would only hold memory (a
    // long-lived service finishes many experiments per process).
    config_.clear();
    datasets_.clear();
    notes_.clear();
}

// ---- event dispatch --------------------------------------------------

void
applyJobEvent(ResultSink &sink, const JobEvent &event)
{
    switch (event.type) {
    case JobEventType::Queued:
    case JobEventType::Progress:
        break;
    case JobEventType::Retrying:
        // Nothing to render: the retry's fresh Started event calls
        // beginExperiment again, which resets every sink's state, so
        // a success after retries rewrites the same artifact bytes a
        // first-try success would have written.
        break;
    case JobEventType::Started:
        sink.beginExperiment(event.info);
        sink.resolvedConfig(event.config);
        break;
    case JobEventType::Dataset:
        if (event.dataset)
            sink.dataset(*event.dataset);
        break;
    case JobEventType::Note:
        sink.note(event.text);
        break;
    case JobEventType::RawCsv:
        // Streams the lazy writer straight through: only sinks that
        // persist CSV ever render the body.
        sink.rawCsv(event.name, event.bodyWriter);
        break;
    case JobEventType::Timing:
        sink.timing(event.elapsedMs);
        break;
    case JobEventType::Finished:
        if (event.state == JobState::Finished)
            sink.endExperiment();
        break;
    }
}

// ---- factory ---------------------------------------------------------

std::unique_ptr<ResultSink>
makeSink(const std::string &format,
         const std::filesystem::path &out_dir, std::ostream &os)
{
    if (format == "table")
        return std::make_unique<TableSink>(os);
    if (format == "csv")
        return std::make_unique<CsvSink>(out_dir);
    if (format == "json")
        return std::make_unique<JsonSink>(out_dir);
    throw ConfigError("unknown --format '" + format +
                      "' (expected table, csv, or json)");
}

} // namespace rp::api
