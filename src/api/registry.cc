#include "api/registry.h"

#include <algorithm>
#include <stdexcept>

namespace rp::api {

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative '*'/'?' matcher with backtracking to the last star.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

ExperimentRegistry &
ExperimentRegistry::instance()
{
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(Experiment exp)
{
    if (find(exp.info.id))
        throw std::logic_error("duplicate experiment id '" +
                               exp.info.id + "'");
    experiments_.push_back(std::move(exp));
}

const Experiment *
ExperimentRegistry::find(const std::string &id) const
{
    for (const auto &exp : experiments_)
        if (exp.info.id == id)
            return &exp;
    return nullptr;
}

std::vector<const Experiment *>
ExperimentRegistry::list() const
{
    std::vector<const Experiment *> out;
    out.reserve(experiments_.size());
    for (const auto &exp : experiments_)
        out.push_back(&exp);
    std::sort(out.begin(), out.end(),
              [](const Experiment *a, const Experiment *b) {
                  return a->info.id < b->info.id;
              });
    return out;
}

std::vector<const Experiment *>
ExperimentRegistry::match(const std::string &pattern) const
{
    std::vector<const Experiment *> out;
    for (const Experiment *exp : list())
        if (globMatch(pattern, exp->info.id))
            out.push_back(exp);
    return out;
}

ExperimentRegistrar::ExperimentRegistrar(
    ExperimentInfo info, std::function<void(ConfigSchema &)> options,
    std::function<void(ExperimentContext &)> run)
{
    ExperimentRegistry::instance().add(
        {std::move(info), std::move(options), std::move(run)});
}

} // namespace rp::api
