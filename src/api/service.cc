#include "api/service.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "api/context.h"
#include "common/rng.h"
#include "core/fault.h"
#include "persist/cache.h"

namespace rp::api {

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Finished: return "finished";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::DeadlineExceeded: return "deadline_exceeded";
    }
    return "unknown";
}

Service::Service(Options opts) : opts_(opts)
{
    const int n = opts_.workers > 0 ? opts_.workers : 1;
    workers_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    deadlineMonitor_ = std::thread([this] { deadlineLoop(); });
}

Service::~Service()
{
    shutdownNow();
}

const Experiment &
Service::findExperiment(const std::string &id)
{
    const Experiment *exp = ExperimentRegistry::instance().find(id);
    if (!exp)
        throw ConfigError("unknown experiment '" + id +
                          "' (see 'rowpress list'; jobs take exact "
                          "ids, not globs)");
    return *exp;
}

Config
Service::resolveConfig(
    const Experiment &exp,
    const std::vector<std::pair<std::string, std::string>> &overlay)
{
    ConfigSchema schema = baseSchema();
    if (exp.declareOptions)
        exp.declareOptions(schema);
    Config config{std::move(schema)};
    config.loadEnv();
    for (const auto &[key, value] : overlay) {
        if (!config.schema().find(key))
            throw ConfigError("experiment '" + exp.info.id +
                              "' does not accept --" + key);
        config.set(key, value, ConfigLayer::Cli);
    }
    return config;
}

device::ThresholdStoreRegistryStats
Service::warmCacheStats()
{
    return device::ThresholdStore::registryStats();
}

std::size_t
Service::evictWarmCache()
{
    return device::ThresholdStore::evictRegistry();
}

std::uint64_t
Service::submit(const JobRequest &request)
{
    const Experiment &exp = findExperiment(request.experiment);
    Config config = resolveConfig(exp, request.overlay);

    // Build the sinks up front so a bad format (or "table" without a
    // stream to render on) fails the submission, not the run.
    if (request.formats.empty())
        throw ConfigError("job for '" + request.experiment +
                          "': no output formats");
    std::vector<std::unique_ptr<ResultSink>> sinks;
    // Valid, silently-discarding stream for the file-sink formats
    // that never render to it (a null streambuf sets badbit on use).
    static std::ostream null_stream(nullptr);
    for (const std::string &format : request.formats) {
        if (format == "table" && !request.tableStream)
            throw ConfigError(
                "format 'table' needs an output stream (serve jobs "
                "have none; use csv/json artifacts instead)");
        std::ostream &os =
            request.tableStream ? *request.tableStream : null_stream;
        sinks.push_back(makeSink(format, request.outDir, os));
    }

    // Fault point: submission-path failures after validation (tests
    // of the admission/rejection plumbing).
    if (const int err = core::faultPoint("service.submit.admit"))
        throw core::TransientError(
            "injected submit fault (errno " + std::to_string(err) +
            ")");

    Job *job_ptr = nullptr;
    std::uint64_t id = 0;
    bool has_deadline = false;
    {
        core::LockGuard lock(mutex_);
        if (stopping_)
            throw ConfigError("service is shutting down");
        // Admission control, checked before the job exists: a
        // policy rejection costs the client one round-trip and the
        // service nothing.  `admitting_` counts submissions past
        // this gate whose queue push is still in flight, so a burst
        // cannot overshoot the bound between gate and push.
        if (shedding_)
            throw AdmissionError(
                "load_shed",
                "service is shedding load (draining in-flight jobs); "
                "retry later");
        if (opts_.maxQueue > 0 &&
            queue_.size() + admitting_ >= opts_.maxQueue)
            throw AdmissionError(
                "queue_full",
                "pending queue is full (" +
                    std::to_string(opts_.maxQueue) +
                    " jobs); retry with backoff");
        ++admitting_;
        // Bound the job history: drop the oldest terminal jobs once
        // past the cap, so a long-lived service's memory tracks jobs
        // in flight, not total jobs ever submitted.
        for (auto it = jobs_.begin();
             jobs_.size() >= kMaxJobHistory && it != jobs_.end();) {
            Job &old = *it->second;
            const bool done = terminal(old.state) && old.eventsDone;
            it = done ? jobs_.erase(it) : std::next(it);
        }
        id = ++lastId_;
        auto job = std::make_unique<Job>(id, request, std::move(config));
        job->sinks = std::move(sinks);
        if (request.deadlineMs > 0) {
            job->hasDeadline = true;
            job->deadline =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(request.deadlineMs);
        }
        has_deadline = job->hasDeadline;
        job_ptr = job.get();
        jobs_[id] = std::move(job);
    }

    // Queued precedes the scheduler pickup, so a job's event stream
    // always opens with it: dispatch before the job becomes runnable.
    JobEvent event;
    event.type = JobEventType::Queued;
    dispatch(*job_ptr, std::move(event));

    bool accepted = false;
    {
        core::LockGuard lock(mutex_);
        --admitting_;
        // Recheck: a shutdown() may have joined the workers while the
        // Queued event was being dispatched, and a push now would
        // leave the job runnable with nobody to run it (wait() would
        // block forever) — such a racing submission comes back
        // cancelled.  A concurrent cancel() (or an already-expired
        // deadline) may also have flipped the state; since the job
        // was not enqueued yet, delivery of its Finished event is
        // ours either way, which keeps the event stream opening with
        // Queued.
        if (!stopping_ && job_ptr->state == JobState::Queued) {
            queue_.push_back(job_ptr);
            job_ptr->enqueued = true;
            accepted = true;
        } else if (job_ptr->state == JobState::Queued) {
            job_ptr->state = JobState::Cancelled;
        }
    }
    if (accepted) {
        queueCv_.notify_one();
        // Local copy: job_ptr's scheduler fields belong to mutex_,
        // which is no longer held here (annotation-surfaced cleanup;
        // the old read was benign — only this thread ever wrote it).
        if (has_deadline)
            deadlineCv_.notify_all();
        return id;
    }
    deliverAbortedFinish(*job_ptr);
    return id;
}

void
Service::deliverAbortedFinish(Job &job)
{
    JobEvent event;
    event.type = JobEventType::Finished;
    {
        core::LockGuard lock(mutex_);
        event.state = job.state;
    }
    try {
        dispatch(job, std::move(event));
    } catch (const std::exception &) {
        // Aborted jobs finalize nothing; a sink error here has no
        // outcome to report into.
    }
    releaseSinks(job);
    {
        core::LockGuard lock(mutex_);
        job.eventsDone = true;
    }
    jobsCv_.notify_all();
}

JobStatus
Service::statusOf(const Job &job) const
{
    JobStatus st;
    st.id = job.id;
    st.experiment = job.req.experiment;
    st.state = job.state;
    st.error = job.error;
    st.configError = job.configError;
    st.done = job.done.load(std::memory_order_relaxed);
    st.total = job.total.load(std::memory_order_relaxed);
    st.elapsedMs = job.elapsedMs;
    st.engineThreads = job.engineThreads;
    st.attempts = job.attempts;
    return st;
}

JobStatus
Service::status(std::uint64_t id) const
{
    core::LockGuard lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        throw ConfigError("unknown job " + std::to_string(id));
    return statusOf(*it->second);
}

std::vector<JobStatus>
Service::jobs() const
{
    core::LockGuard lock(mutex_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_) {
        (void)id;
        out.push_back(statusOf(*job));
    }
    return out;
}

bool
Service::cancel(std::uint64_t id)
{
    Job *to_finish = nullptr;
    {
        core::LockGuard lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        Job &job = *it->second;
        switch (job.state) {
        case JobState::Queued:
            // Flipping the state under the lock makes this cancel
            // exclusive (a racing cancel/submit sees non-Queued);
            // wait() still blocks until eventsDone, which
            // deliverCancelledFinish sets only after the Finished
            // event has reached every sink and observer.
            job.state = JobState::Cancelled;
            if (!job.enqueued)
                // The submitting thread has not pushed the job yet
                // (it may still be dispatching the Queued event); its
                // recheck sees the flip and delivers Finished after
                // Queued, preserving stream order.
                return true;
            for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
                if (*qit == &job) {
                    queue_.erase(qit);
                    break;
                }
            }
            to_finish = &job;
            break;
        case JobState::Running:
            // Fires at the job engine's next task boundary; the
            // worker reports Cancelled when CancelledError unwinds.
            // The notify wakes a worker sleeping in a retry backoff.
            job.cancelToken->store(true);
            jobsCv_.notify_all();
            return true;
        default:
            return false;
        }
    }
    deliverAbortedFinish(*to_finish);
    return true;
}

JobStatus
Service::wait(std::uint64_t id)
{
    core::UniqueLock lock(mutex_);
    for (;;) {
        // Re-resolve per wake: the history cap may prune a job that
        // went terminal while we slept (only terminal jobs are ever
        // pruned, so an erased id means the wait is over — but its
        // outcome is gone with the history).
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            throw ConfigError("unknown job " + std::to_string(id) +
                              " (never submitted, or pruned from the "
                              "job history)");
        Job &job = *it->second;
        if (terminal(job.state) && job.eventsDone)
            return statusOf(job);
        jobsCv_.wait(lock);
    }
}

Service::WaitOutcome
Service::waitFor(std::uint64_t id, int timeout_ms, JobStatus &out)
{
    const auto until =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
    core::UniqueLock lock(mutex_);
    for (;;) {
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            throw ConfigError("unknown job " + std::to_string(id) +
                              " (never submitted, or pruned from the "
                              "job history)");
        Job &job = *it->second;
        if (terminal(job.state) && job.eventsDone) {
            out = statusOf(job);
            return WaitOutcome::Done;
        }
        if (jobsCv_.wait_until(lock, until) ==
            std::cv_status::timeout) {
            // One last resolve under the lock: the job may have gone
            // terminal (or been pruned) during the final wait slice.
            it = jobs_.find(id);
            if (it == jobs_.end())
                throw ConfigError(
                    "unknown job " + std::to_string(id) +
                    " (never submitted, or pruned from the job "
                    "history)");
            Job &last = *it->second;
            out = statusOf(last);
            return terminal(last.state) && last.eventsDone
                       ? WaitOutcome::Done
                       : WaitOutcome::TimedOut;
        }
    }
}

bool
Service::allJobsDoneLocked() const
{
    for (const auto &[id, job] : jobs_) {
        (void)id;
        if (!terminal(job->state) || !job->eventsDone)
            return false;
    }
    return true;
}

void
Service::drain()
{
    core::UniqueLock lock(mutex_);
    while (!allJobsDoneLocked())
        jobsCv_.wait(lock);
}

bool
Service::drainFor(int timeout_ms)
{
    const auto until =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
    core::UniqueLock lock(mutex_);
    while (!allJobsDoneLocked()) {
        if (jobsCv_.wait_until(lock, until) ==
            std::cv_status::timeout)
            return allJobsDoneLocked();
    }
    return true;
}

void
Service::setLoadShed(bool on)
{
    core::LockGuard lock(mutex_);
    shedding_ = on;
}

bool
Service::loadShedding() const
{
    core::LockGuard lock(mutex_);
    return shedding_;
}

void
Service::shutdown()
{
    {
        core::LockGuard lock(mutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
    // Deadlines stay enforced while the workers drain the queue;
    // only once every job is done does the monitor go away.
    {
        core::LockGuard lock(mutex_);
        monitorStop_ = true;
    }
    deadlineCv_.notify_all();
    if (deadlineMonitor_.joinable())
        deadlineMonitor_.join();
}

void
Service::shutdownNow()
{
    std::vector<Job *> to_finish;
    {
        core::LockGuard lock(mutex_);
        stopping_ = true;
        for (Job *job : queue_) {
            job->state = JobState::Cancelled;
            to_finish.push_back(job);
        }
        queue_.clear();
        for (const auto &[id, job] : jobs_) {
            (void)id;
            if (job->state == JobState::Running)
                job->cancelToken->store(true);
        }
    }
    for (Job *job : to_finish)
        deliverAbortedFinish(*job);
    jobsCv_.notify_all();
    queueCv_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
    {
        core::LockGuard lock(mutex_);
        monitorStop_ = true;
    }
    deadlineCv_.notify_all();
    if (deadlineMonitor_.joinable())
        deadlineMonitor_.join();
}

std::uint64_t
Service::addObserver(Observer fn)
{
    core::LockGuard lock(dispatchMutex_);
    observers_.emplace_back(++lastObserver_, std::move(fn));
    return lastObserver_;
}

void
Service::removeObserver(std::uint64_t handle)
{
    core::LockGuard lock(dispatchMutex_);
    for (auto it = observers_.begin(); it != observers_.end(); ++it) {
        if (it->first == handle) {
            observers_.erase(it);
            return;
        }
    }
}

void
Service::dispatch(Job &job, JobEvent &&event)
{
    event.job = job.id;
    event.experiment = job.req.experiment;
    event.client = job.req.clientId;
    // A job emits its events sequentially (the scheduler worker, or
    // its engine's progress hook while that worker blocks in run()),
    // so per-job order is inherent; the locks only serialize sink
    // teardown (per job) and the shared observer list (process-wide,
    // but observers are enqueue-only and cheap).
    {
        core::LockGuard lock(job.sinkMutex);
        for (const auto &sink : job.sinks) {
            // Fault point: artifact-render failures.  Not on the
            // Queued event — submit()'s admission bookkeeping
            // brackets that dispatch, and a throw there would leak
            // the in-flight admission count.
            if (event.type != JobEventType::Queued)
                core::faultPointThrow("sink.render");
            applyJobEvent(*sink, event);
        }
    }
    core::LockGuard lock(dispatchMutex_);
    for (const auto &[handle, observer] : observers_) {
        (void)handle;
        observer(event);
    }
}

void
Service::finishJob(Job &job, JobState state, std::string error,
                   bool config_error)
{
    JobEvent event;
    event.type = JobEventType::Finished;
    event.state = state;
    event.error = error;
    event.elapsedMs = job.elapsedMs;
    // Finalize sinks (a successful Finished writes result.json etc.)
    // BEFORE eventsDone flips, so wait() returning implies the
    // artifacts are complete on disk and the event stream is closed.
    // A sink that throws here (unwritable out dir, disk full) runs on
    // a scheduler worker with no other handler — swallow it into the
    // job's outcome instead of std::terminate'ing the service.
    try {
        dispatch(job, std::move(event));
    } catch (const std::exception &e) {
        if (state == JobState::Finished) {
            state = JobState::Failed;
            error = std::string("finalizing outputs failed: ") +
                    e.what();
            config_error = false;
        }
    }
    // The job is terminal: drop its sinks now.  JsonSink retains
    // every dataset/note until destruction, so a long-lived service
    // would otherwise keep each job's full result set in memory
    // forever (status metadata stays, it is small).  The swap takes
    // the dispatch lock — dispatch() iterates this vector under it.
    releaseSinks(job);
    {
        core::LockGuard lock(mutex_);
        job.state = state;
        job.eventsDone = true;
        job.error = std::move(error);
        job.configError = config_error;
    }
    jobsCv_.notify_all();
}

void
Service::releaseSinks(Job &job)
{
    std::vector<std::unique_ptr<ResultSink>> doomed;
    {
        core::LockGuard lock(job.sinkMutex);
        doomed.swap(job.sinks);
    }
    // Destruction happens outside the lock.
}

void
Service::workerLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            core::UniqueLock lock(mutex_);
            while (!stopping_ && queue_.empty())
                queueCv_.wait(lock);
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = queue_.front();
            queue_.pop_front();
            // A cancel() can race the window between a submission's
            // Queued event and its queue push; the job is terminal
            // already, so drop it rather than run it.
            if (job->state != JobState::Queued)
                continue;
            job->state = JobState::Running;
        }
        executeJob(*job);
    }
}

void
Service::deadlineLoop()
{
    core::UniqueLock lock(mutex_);
    for (;;) {
        if (monitorStop_)
            return;
        // Earliest unexpired deadline among live jobs; sleep until
        // it (or until a submit/shutdown replans the schedule).
        bool any = false;
        auto next = std::chrono::steady_clock::time_point::max();
        for (const auto &[id, job] : jobs_) {
            (void)id;
            if (job->hasDeadline && !job->deadlineHit &&
                !terminal(job->state)) {
                any = true;
                next = std::min(next, job->deadline);
            }
        }
        if (!any) {
            deadlineCv_.wait(lock);
            continue;
        }
        if (deadlineCv_.wait_until(lock, next) ==
            std::cv_status::no_timeout)
            continue; // new deadline or shutdown: replan
        const auto now = std::chrono::steady_clock::now();
        std::vector<Job *> expired_queued;
        for (auto &[id, job] : jobs_) {
            (void)id;
            if (!job->hasDeadline || job->deadlineHit ||
                terminal(job->state) || job->deadline > now)
                continue;
            job->deadlineHit = true;
            if (job->state == JobState::Queued) {
                // Never ran: go terminal directly.  If submit() has
                // not pushed it yet, its recheck sees the non-Queued
                // state and delivers the Finished event itself.
                job->state = JobState::DeadlineExceeded;
                if (job->enqueued) {
                    queue_.erase(std::remove(queue_.begin(),
                                             queue_.end(), job.get()),
                                 queue_.end());
                    expired_queued.push_back(job.get());
                }
            } else {
                // Running: fire the token; the worker maps the
                // CancelledError unwind to DeadlineExceeded via
                // deadlineHit (also wakes a retry-backoff sleep).
                job->cancelToken->store(true);
            }
        }
        lock.unlock();
        jobsCv_.notify_all();
        for (Job *job : expired_queued)
            deliverAbortedFinish(*job);
        lock.lock();
    }
}

int
Service::retryDelayMs(const Job &job, int failed_attempt)
{
    const RetryPolicy &policy = job.req.retry;
    const long long base = std::max(1, policy.backoffBaseMs);
    const long long cap = std::max(base, (long long)policy.backoffMaxMs);
    long long delay = base;
    for (int i = 1; i < failed_attempt && delay < cap; ++i)
        delay *= 2;
    delay = std::min(delay, cap);
    if (policy.jitter && delay > 1) {
        // Deterministic jitter in [0, delay/2): a pure function of
        // (job seed, attempt), so one job's schedule replays exactly
        // while concurrent jobs' retries decorrelate.
        const std::uint64_t h =
            hashU64(std::uint64_t(job.config.getInt("seed")),
                    std::uint64_t(failed_attempt), 0x4a495454ULL);
        delay += (long long)(h % std::uint64_t(delay / 2));
    }
    return int(delay);
}

bool
Service::backoffBeforeRetry(Job &job, int delay_ms)
{
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(delay_ms);
    core::UniqueLock lock(mutex_);
    // An interruptible sleep: cancel(), the deadline monitor, and
    // shutdownNow() all fire the token and notify jobsCv_.
    while (!job.cancelToken->load()) {
        if (jobsCv_.wait_until(lock, until) ==
            std::cv_status::timeout)
            return !job.cancelToken->load();
    }
    return false;
}

void
Service::executeJob(Job &job)
{
    const auto start = std::chrono::steady_clock::now();
    const int max_attempts = std::max(1, job.req.retry.maxAttempts);

    JobState final_state = JobState::Finished;
    std::string error;
    bool config_error = false;

    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        {
            core::LockGuard lock(mutex_);
            job.attempts = attempt;
        }
        final_state = JobState::Finished;
        error.clear();
        config_error = false;
        bool transient = false;
        runAttempt(job, &final_state, &error, &config_error,
                   &transient);
        if (final_state != JobState::Failed)
            break; // success, cancelled, or deadline: never retry
        if (!transient || attempt == max_attempts)
            break;
        const int delay_ms = retryDelayMs(job, attempt);
        JobEvent retrying;
        retrying.type = JobEventType::Retrying;
        retrying.attempt = attempt;
        retrying.backoffMs = delay_ms;
        retrying.error = error;
        try {
            dispatch(job, std::move(retrying));
        } catch (const std::exception &) {
            // A sink choking on the retry notice is survivable: the
            // next attempt's Started event resets every sink anyway.
        }
        if (!backoffBeforeRetry(job, delay_ms)) {
            bool deadline_hit = false;
            {
                core::LockGuard lock(mutex_);
                deadline_hit = job.deadlineHit;
            }
            final_state = deadline_hit ? JobState::DeadlineExceeded
                                       : JobState::Cancelled;
            error.clear();
            config_error = false;
            break;
        }
    }

    {
        core::LockGuard lock(mutex_);
        job.elapsedMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
    }

    // Publish freshly built tiers to the snapshot cache (a no-op
    // when no cache directory is configured; never throws).  Only
    // successful jobs publish: a failed/cancelled run may have
    // partially built tiers, which the monotone rule would happily
    // accept, but publishing work we could not finish buys nothing.
    if (final_state == JobState::Finished)
        persist::SnapshotCache::instance().publishRegistry();

    if (final_state == JobState::Finished && job.req.time) {
        JobEvent timing;
        timing.type = JobEventType::Timing;
        timing.elapsedMs = job.elapsedMs;
        try {
            dispatch(job, std::move(timing));
        } catch (const std::exception &e) {
            final_state = JobState::Failed;
            error = std::string("emitting timing failed: ") + e.what();
        }
    }

    finishJob(job, final_state, std::move(error), config_error);
}

void
Service::runAttempt(Job &job, JobState *final_state,
                    std::string *error, bool *config_error,
                    bool *transient)
{
    // A fresh attempt re-reports progress from zero.
    job.done.store(0, std::memory_order_relaxed);
    job.total.store(0, std::memory_order_relaxed);

    try {
        // Fault point: the worker dying between claiming the job and
        // opening its event stream (an errno fault here reads as a
        // transient infrastructure failure; `transient` throws are
        // retry-eligible via InjectedFault::transient()).
        if (const int err =
                core::faultPoint("service.worker.pre_dispatch"))
            throw core::TransientError(
                "injected worker fault before dispatch (errno " +
                std::to_string(err) + ")");

        const Experiment &exp = findExperiment(job.req.experiment);

        // Arm (or, with "", disarm) the snapshot cache before any
        // store can be acquired.  A bad directory is a configuration
        // error — fail the job up front, not a silent cold run.
        try {
            persist::SnapshotCache::instance().configure(
                job.config.getString("cache-dir"));
        } catch (const persist::CacheError &e) {
            throw ConfigError(e.what());
        }

        JobEvent started;
        started.type = JobEventType::Started;
        started.info = exp.info;
        started.config = job.config.resolved();
        dispatch(job, std::move(started));

        core::ExperimentEngine::Options eopts;
        eopts.numThreads = job.config.getInt("threads");
        eopts.rootSeed = std::uint64_t(job.config.getInt("seed"));
        eopts.cancel = job.cancelToken;
        eopts.progress = [this, &job](std::size_t done,
                                      std::size_t total) {
            job.done.store(done, std::memory_order_relaxed);
            job.total.store(total, std::memory_order_relaxed);
            // Deterministic throttle (a pure function of done/total):
            // ~16 updates per task set plus the final one, so the
            // protocol stream stays readable on thousand-task jobs.
            const std::size_t buckets = 16;
            if (done != total &&
                (done * buckets) / total == ((done - 1) * buckets) / total)
                return;
            JobEvent event;
            event.type = JobEventType::Progress;
            event.done = done;
            event.total = total;
            dispatch(job, std::move(event));
        };
        core::ExperimentEngine engine(eopts);
        {
            core::LockGuard lock(mutex_);
            job.engineThreads = engine.numThreads();
        }

        ExperimentContext ctx(
            exp.info, job.config, engine,
            [this, &job](JobEvent &&event) {
                dispatch(job, std::move(event));
            },
            job.req.outDir);

        exp.run(ctx);
    } catch (const core::CancelledError &) {
        bool deadline_hit = false;
        {
            core::LockGuard lock(mutex_);
            deadline_hit = job.deadlineHit;
        }
        // The token fires for both client cancels and deadline
        // expiry; deadlineHit disambiguates which policy unwound us.
        *final_state = deadline_hit ? JobState::DeadlineExceeded
                                    : JobState::Cancelled;
    } catch (const core::InjectedFault &e) {
        *final_state = JobState::Failed;
        *error = e.what();
        *transient = e.transient();
    } catch (const core::TransientError &e) {
        *final_state = JobState::Failed;
        *error = e.what();
        *transient = true;
    } catch (const ConfigError &e) {
        *final_state = JobState::Failed;
        *error = e.what();
        *config_error = true;
    } catch (const std::exception &e) {
        *final_state = JobState::Failed;
        *error = e.what();
    }
}

} // namespace rp::api
