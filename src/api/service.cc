#include "api/service.h"

#include <chrono>
#include <iterator>
#include <utility>

#include "api/context.h"

namespace rp::api {

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Finished: return "finished";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    }
    return "unknown";
}

Service::Service(Options opts)
{
    const int n = opts.workers > 0 ? opts.workers : 1;
    workers_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Service::~Service()
{
    shutdownNow();
}

const Experiment &
Service::findExperiment(const std::string &id)
{
    const Experiment *exp = ExperimentRegistry::instance().find(id);
    if (!exp)
        throw ConfigError("unknown experiment '" + id +
                          "' (see 'rowpress list'; jobs take exact "
                          "ids, not globs)");
    return *exp;
}

Config
Service::resolveConfig(
    const Experiment &exp,
    const std::vector<std::pair<std::string, std::string>> &overlay)
{
    ConfigSchema schema = baseSchema();
    if (exp.declareOptions)
        exp.declareOptions(schema);
    Config config{std::move(schema)};
    config.loadEnv();
    for (const auto &[key, value] : overlay) {
        if (!config.schema().find(key))
            throw ConfigError("experiment '" + exp.info.id +
                              "' does not accept --" + key);
        config.set(key, value, ConfigLayer::Cli);
    }
    return config;
}

device::ThresholdStoreRegistryStats
Service::warmCacheStats()
{
    return device::ThresholdStore::registryStats();
}

std::size_t
Service::evictWarmCache()
{
    return device::ThresholdStore::evictRegistry();
}

std::uint64_t
Service::submit(const JobRequest &request)
{
    const Experiment &exp = findExperiment(request.experiment);
    Config config = resolveConfig(exp, request.overlay);

    // Build the sinks up front so a bad format (or "table" without a
    // stream to render on) fails the submission, not the run.
    if (request.formats.empty())
        throw ConfigError("job for '" + request.experiment +
                          "': no output formats");
    std::vector<std::unique_ptr<ResultSink>> sinks;
    // Valid, silently-discarding stream for the file-sink formats
    // that never render to it (a null streambuf sets badbit on use).
    static std::ostream null_stream(nullptr);
    for (const std::string &format : request.formats) {
        if (format == "table" && !request.tableStream)
            throw ConfigError(
                "format 'table' needs an output stream (serve jobs "
                "have none; use csv/json artifacts instead)");
        std::ostream &os =
            request.tableStream ? *request.tableStream : null_stream;
        sinks.push_back(makeSink(format, request.outDir, os));
    }

    Job *job_ptr = nullptr;
    std::uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            throw ConfigError("service is shutting down");
        // Bound the job history: drop the oldest terminal jobs once
        // past the cap, so a long-lived service's memory tracks jobs
        // in flight, not total jobs ever submitted.
        for (auto it = jobs_.begin();
             jobs_.size() >= kMaxJobHistory && it != jobs_.end();) {
            Job &old = *it->second;
            const bool terminal = old.state != JobState::Queued &&
                                  old.state != JobState::Running &&
                                  old.eventsDone;
            it = terminal ? jobs_.erase(it) : std::next(it);
        }
        id = ++lastId_;
        auto job = std::make_unique<Job>(id, request, std::move(config));
        job->sinks = std::move(sinks);
        job_ptr = job.get();
        jobs_[id] = std::move(job);
    }

    // Queued precedes the scheduler pickup, so a job's event stream
    // always opens with it: dispatch before the job becomes runnable.
    JobEvent event;
    event.type = JobEventType::Queued;
    dispatch(*job_ptr, std::move(event));

    bool accepted = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Recheck: a shutdown() may have joined the workers while the
        // Queued event was being dispatched, and a push now would
        // leave the job runnable with nobody to run it (wait() would
        // block forever) — such a racing submission comes back
        // cancelled.  A concurrent cancel() may also have flipped the
        // state; since the job was not enqueued yet, delivery of its
        // Finished event is ours either way, which keeps the event
        // stream opening with Queued.
        if (!stopping_ && job_ptr->state == JobState::Queued) {
            queue_.push_back(job_ptr);
            job_ptr->enqueued = true;
            accepted = true;
        } else if (job_ptr->state == JobState::Queued) {
            job_ptr->state = JobState::Cancelled;
        }
    }
    if (accepted) {
        queueCv_.notify_one();
        return id;
    }
    deliverCancelledFinish(*job_ptr);
    return id;
}

void
Service::deliverCancelledFinish(Job &job)
{
    JobEvent event;
    event.type = JobEventType::Finished;
    event.state = JobState::Cancelled;
    try {
        dispatch(job, std::move(event));
    } catch (const std::exception &) {
        // Cancelled jobs finalize nothing; a sink error here has no
        // outcome to report into.
    }
    releaseSinks(job);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job.eventsDone = true;
    }
    jobsCv_.notify_all();
}

JobStatus
Service::statusOf(const Job &job) const
{
    JobStatus st;
    st.id = job.id;
    st.experiment = job.req.experiment;
    st.state = job.state;
    st.error = job.error;
    st.configError = job.configError;
    st.done = job.done.load(std::memory_order_relaxed);
    st.total = job.total.load(std::memory_order_relaxed);
    st.elapsedMs = job.elapsedMs;
    st.engineThreads = job.engineThreads;
    return st;
}

JobStatus
Service::status(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        throw ConfigError("unknown job " + std::to_string(id));
    return statusOf(*it->second);
}

std::vector<JobStatus>
Service::jobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_) {
        (void)id;
        out.push_back(statusOf(*job));
    }
    return out;
}

bool
Service::cancel(std::uint64_t id)
{
    Job *to_finish = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        Job &job = *it->second;
        switch (job.state) {
        case JobState::Queued:
            // Flipping the state under the lock makes this cancel
            // exclusive (a racing cancel/submit sees non-Queued);
            // wait() still blocks until eventsDone, which
            // deliverCancelledFinish sets only after the Finished
            // event has reached every sink and observer.
            job.state = JobState::Cancelled;
            if (!job.enqueued)
                // The submitting thread has not pushed the job yet
                // (it may still be dispatching the Queued event); its
                // recheck sees the flip and delivers Finished after
                // Queued, preserving stream order.
                return true;
            for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
                if (*qit == &job) {
                    queue_.erase(qit);
                    break;
                }
            }
            to_finish = &job;
            break;
        case JobState::Running:
            // Fires at the job engine's next task boundary; the
            // worker reports Cancelled when CancelledError unwinds.
            job.cancelToken->store(true);
            return true;
        default:
            return false;
        }
    }
    deliverCancelledFinish(*to_finish);
    return true;
}

JobStatus
Service::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        // Re-resolve per wake: the history cap may prune a job that
        // went terminal while we slept (only terminal jobs are ever
        // pruned, so an erased id means the wait is over — but its
        // outcome is gone with the history).
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            throw ConfigError("unknown job " + std::to_string(id) +
                              " (never submitted, or pruned from the "
                              "job history)");
        Job &job = *it->second;
        if (job.state != JobState::Queued &&
            job.state != JobState::Running && job.eventsDone)
            return statusOf(job);
        jobsCv_.wait(lock);
    }
}

void
Service::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    jobsCv_.wait(lock, [this] {
        for (const auto &[id, job] : jobs_) {
            (void)id;
            if (job->state == JobState::Queued ||
                job->state == JobState::Running || !job->eventsDone)
                return false;
        }
        return true;
    });
}

void
Service::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (workers_.empty())
            return;
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
}

void
Service::shutdownNow()
{
    std::vector<Job *> to_finish;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        for (Job *job : queue_) {
            job->state = JobState::Cancelled;
            to_finish.push_back(job);
        }
        queue_.clear();
        for (const auto &[id, job] : jobs_) {
            (void)id;
            if (job->state == JobState::Running)
                job->cancelToken->store(true);
        }
    }
    for (Job *job : to_finish)
        deliverCancelledFinish(*job);
    jobsCv_.notify_all();
    queueCv_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
}

std::uint64_t
Service::addObserver(Observer fn)
{
    std::lock_guard<std::mutex> lock(dispatchMutex_);
    observers_.emplace_back(++lastObserver_, std::move(fn));
    return lastObserver_;
}

void
Service::removeObserver(std::uint64_t handle)
{
    std::lock_guard<std::mutex> lock(dispatchMutex_);
    for (auto it = observers_.begin(); it != observers_.end(); ++it) {
        if (it->first == handle) {
            observers_.erase(it);
            return;
        }
    }
}

void
Service::dispatch(Job &job, JobEvent &&event)
{
    event.job = job.id;
    event.experiment = job.req.experiment;
    // A job emits its events sequentially (the scheduler worker, or
    // its engine's progress hook while that worker blocks in run()),
    // so per-job order is inherent; the locks only serialize sink
    // teardown (per job) and the shared observer list (process-wide,
    // but observers are enqueue-only and cheap).
    {
        std::lock_guard<std::mutex> lock(job.sinkMutex);
        for (const auto &sink : job.sinks)
            applyJobEvent(*sink, event);
    }
    std::lock_guard<std::mutex> lock(dispatchMutex_);
    for (const auto &[handle, observer] : observers_) {
        (void)handle;
        observer(event);
    }
}

void
Service::finishJob(Job &job, JobState state, std::string error,
                   bool config_error)
{
    JobEvent event;
    event.type = JobEventType::Finished;
    event.state = state;
    event.error = error;
    event.elapsedMs = job.elapsedMs;
    // Finalize sinks (a successful Finished writes result.json etc.)
    // BEFORE eventsDone flips, so wait() returning implies the
    // artifacts are complete on disk and the event stream is closed.
    // A sink that throws here (unwritable out dir, disk full) runs on
    // a scheduler worker with no other handler — swallow it into the
    // job's outcome instead of std::terminate'ing the service.
    try {
        dispatch(job, std::move(event));
    } catch (const std::exception &e) {
        if (state == JobState::Finished) {
            state = JobState::Failed;
            error = std::string("finalizing outputs failed: ") +
                    e.what();
            config_error = false;
        }
    }
    // The job is terminal: drop its sinks now.  JsonSink retains
    // every dataset/note until destruction, so a long-lived service
    // would otherwise keep each job's full result set in memory
    // forever (status metadata stays, it is small).  The swap takes
    // the dispatch lock — dispatch() iterates this vector under it.
    releaseSinks(job);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job.state = state;
        job.eventsDone = true;
        job.error = std::move(error);
        job.configError = config_error;
    }
    jobsCv_.notify_all();
}

void
Service::releaseSinks(Job &job)
{
    std::vector<std::unique_ptr<ResultSink>> doomed;
    {
        std::lock_guard<std::mutex> lock(job.sinkMutex);
        doomed.swap(job.sinks);
    }
    // Destruction happens outside the lock.
}

void
Service::workerLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = queue_.front();
            queue_.pop_front();
            // A cancel() can race the window between a submission's
            // Queued event and its queue push; the job is terminal
            // already, so drop it rather than run it.
            if (job->state != JobState::Queued)
                continue;
            job->state = JobState::Running;
        }
        executeJob(*job);
    }
}

void
Service::executeJob(Job &job)
{
    const auto start = std::chrono::steady_clock::now();
    JobState final_state = JobState::Finished;
    std::string error;
    bool config_error = false;

    try {
        const Experiment &exp = findExperiment(job.req.experiment);

        JobEvent started;
        started.type = JobEventType::Started;
        started.info = exp.info;
        started.config = job.config.resolved();
        dispatch(job, std::move(started));

        core::ExperimentEngine::Options eopts;
        eopts.numThreads = job.config.getInt("threads");
        eopts.rootSeed = std::uint64_t(job.config.getInt("seed"));
        eopts.cancel = job.cancelToken;
        eopts.progress = [this, &job](std::size_t done,
                                      std::size_t total) {
            job.done.store(done, std::memory_order_relaxed);
            job.total.store(total, std::memory_order_relaxed);
            // Deterministic throttle (a pure function of done/total):
            // ~16 updates per task set plus the final one, so the
            // protocol stream stays readable on thousand-task jobs.
            const std::size_t buckets = 16;
            if (done != total &&
                (done * buckets) / total == ((done - 1) * buckets) / total)
                return;
            JobEvent event;
            event.type = JobEventType::Progress;
            event.done = done;
            event.total = total;
            dispatch(job, std::move(event));
        };
        core::ExperimentEngine engine(eopts);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job.engineThreads = engine.numThreads();
        }

        ExperimentContext ctx(
            exp.info, job.config, engine,
            [this, &job](JobEvent &&event) {
                dispatch(job, std::move(event));
            },
            job.req.outDir);

        exp.run(ctx);
    } catch (const core::CancelledError &) {
        final_state = JobState::Cancelled;
    } catch (const ConfigError &e) {
        final_state = JobState::Failed;
        error = e.what();
        config_error = true;
    } catch (const std::exception &e) {
        final_state = JobState::Failed;
        error = e.what();
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job.elapsedMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
    }

    if (final_state == JobState::Finished && job.req.time) {
        JobEvent timing;
        timing.type = JobEventType::Timing;
        timing.elapsedMs = job.elapsedMs;
        try {
            dispatch(job, std::move(timing));
        } catch (const std::exception &e) {
            final_state = JobState::Failed;
            error = std::string("emitting timing failed: ") + e.what();
        }
    }

    finishJob(job, final_state, std::move(error), config_error);
}

} // namespace rp::api
