/**
 * @file
 * rp::api::Service: the long-lived experiment execution layer.
 *
 * Every invocation used to be a batch run: process start, cold
 * ThresholdStore build, run, exit — the warm-store wins of the keyed
 * store registry evaporated across invocations.  The Service keeps
 * one process alive across many requests: it owns a job scheduler
 * (a small pool of scheduler workers pulling a FIFO queue), resolves
 * each JobRequest into a typed Config at submission, runs each job on
 * a private, job-scoped core::ExperimentEngine (the job's task group,
 * carrying its cancel token and progress hook), and fans the job's
 * ordered JobEvent stream out to the attached ResultSinks and any
 * registered observers (the serve protocol).
 *
 * Execution-path unification: `rowpress run` and `rowpress serve`
 * are both thin clients of this class — submit() + wait() — so a
 * job's artifacts are byte-identical whichever front-end produced
 * them, and identical again when other jobs run concurrently:
 *
 *  - a job's results are a pure function of (experiment, resolved
 *    config); the engine's determinism contract covers thread count,
 *    and per-job engines isolate scheduling entirely;
 *  - the process-wide ThresholdStore registry (the warm cache the
 *    Service reports on) is a pure deterministic cache, so sharing it
 *    between concurrent jobs cannot change any result;
 *  - sinks write under `<outDir>/<experiment>/`, so concurrent jobs
 *    collide only if a client submits the same (outDir, experiment)
 *    twice in flight — give such jobs distinct outDirs.
 */

#ifndef ROWPRESS_API_SERVICE_H
#define ROWPRESS_API_SERVICE_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "api/job.h"
#include "api/sink.h"
#include "core/engine.h"
#include "core/thread_annotations.h"
#include "device/threshold_store.h"

namespace rp::api {

/**
 * A submission the service refused by *policy* (not by validation):
 * the pending queue is full, or the service is shedding load while it
 * drains.  Distinct from ConfigError so front-ends can answer with a
 * machine-readable rejection ("queue_full" / "load_shed" /
 * "session_limit") that tells the client to back off and retry,
 * rather than to fix its request.
 */
class AdmissionError : public std::runtime_error
{
  public:
    AdmissionError(std::string reason, const std::string &what)
        : std::runtime_error(what), reason_(std::move(reason))
    {
    }

    /** "queue_full" | "load_shed" | "session_limit". */
    const std::string &reason() const { return reason_; }

  private:
    std::string reason_;
};

class Service
{
  public:
    struct Options
    {
        /**
         * Scheduler workers = jobs in flight at once.  Each running
         * job additionally owns its engine's worker threads (the
         * job's --threads), so total parallelism is the product.
         */
        int workers;

        /**
         * Admission bound on *pending* (queued, not yet running)
         * jobs; a submit that would exceed it throws
         * AdmissionError("queue_full").  0 = unbounded (the
         * pre-robustness behavior; `rowpress serve` defaults to a
         * bound via --queue-max).
         */
        std::size_t maxQueue;

        // Constructor instead of a default member initializer: the
        // latter cannot appear in a nested class used as a default
        // argument of the enclosing class (GCC rejects it).
        explicit Options(int workers_ = 1, std::size_t max_queue = 0)
            : workers(workers_), maxQueue(max_queue)
        {
        }
    };

    /** Global event tap (the serve protocol's streaming channel). */
    using Observer = std::function<void(const JobEvent &)>;

    explicit Service(Options opts = Options());
    ~Service(); ///< shutdownNow(): cancels whatever is still live.

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Validate and enqueue one job.  The experiment id must be exact;
     * the overlay is validated against the experiment's schema and
     * the formats against the sink factory — a bad request throws
     * ConfigError here, before anything runs.  Emits Queued.  A
     * submission racing a shutdown() may come back as a terminal
     * Cancelled job instead of being run.
     */
    std::uint64_t submit(const JobRequest &request);

    /**
     * Terminal jobs kept for the status verb before the oldest are
     * pruned (their sinks are already released; this bounds the
     * metadata too, so a service under sustained traffic does not
     * grow with total submission count).  A pruned id reads as
     * unknown afterwards.
     */
    static constexpr std::size_t kMaxJobHistory = 4096;

    /** Snapshot of one job; throws ConfigError on an unknown id. */
    JobStatus status(std::uint64_t id) const;

    /** Snapshot of every retained job, in submission order. */
    std::vector<JobStatus> jobs() const;

    /**
     * Cancel a job: a queued job terminates immediately; a running
     * job's cancel token fires and takes effect at its engine's next
     * task boundary (best-effort — an experiment past its last task
     * set finishes normally).  Returns false when the job is already
     * terminal or unknown.
     */
    bool cancel(std::uint64_t id);

    /** Block until the job is terminal; returns the final status. */
    JobStatus wait(std::uint64_t id);

    /** Outcome of the timed wait overload. */
    enum class WaitOutcome
    {
        Done,    ///< The job is terminal; the status is final.
        TimedOut,///< Timeout expired; the status is a live snapshot.
    };

    /**
     * wait() with a timeout: returns Done with the final status once
     * the job is terminal, or TimedOut with a point-in-time snapshot
     * after @p timeout_ms — so a wedged job can never hang a caller
     * (a serve session thread) forever.  Throws like wait() on an
     * unknown/pruned id.
     */
    WaitOutcome waitFor(std::uint64_t id, int timeout_ms,
                        JobStatus &out);

    /** Block until every submitted job is terminal. */
    void drain();

    /**
     * drain() with a timeout: true when every job went terminal
     * within @p timeout_ms (the graceful-shutdown grace window),
     * false when work is still in flight after it.
     */
    bool drainFor(int timeout_ms);

    /**
     * Load-shed mode: while set, submissions are rejected with
     * AdmissionError("load_shed") but queued and running jobs keep
     * draining.  The graceful-signal drain uses it; operators can
     * toggle it over the protocol (`{"op":"shed"}`).
     */
    void setLoadShed(bool on);
    bool loadShedding() const;

    /** Stop accepting submissions, then drain (graceful shutdown). */
    void shutdown();

    /** Stop accepting, cancel queued + running jobs, then join. */
    void shutdownNow();

    /**
     * Register a tap on the event streams of all jobs; returns a
     * handle for removeObserver (protocol sessions detach on exit).
     * Observers run under the dispatch lock (events are serialized);
     * keep them fast and never call back into the Service from one.
     */
    std::uint64_t addObserver(Observer fn);
    void removeObserver(std::uint64_t handle);

    // ---- warm-cache ownership ---------------------------------------

    /**
     * Stats of the process-wide keyed ThresholdStore registry — the
     * warm cache that makes a long-lived service profitable (stores
     * survive between jobs, so repeat experiments skip candidate
     * enumeration entirely).
     */
    static device::ThresholdStoreRegistryStats warmCacheStats();

    /** Evict the warm cache; returns the number of stores dropped. */
    static std::size_t evictWarmCache();

    // ---- shared request resolution ----------------------------------

    /** Exact-id lookup; throws ConfigError when not registered. */
    static const Experiment &findExperiment(const std::string &id);

    /**
     * THE config resolution path: base + declared schema, defaults <
     * env < overlay.  `rowpress run` flags and serve submit overlays
     * both go through here, so a job's resolved config cannot depend
     * on the front-end.
     */
    static Config
    resolveConfig(const Experiment &exp,
                  const std::vector<std::pair<std::string, std::string>>
                      &overlay);

  private:
    struct Job
    {
        Job(std::uint64_t id_, JobRequest req_, Config config_)
            : id(id_), req(std::move(req_)), config(std::move(config_))
        {
        }

        const std::uint64_t id;
        const JobRequest req;
        const Config config;

        // Scheduler bookkeeping (state .. engineThreads below) is
        // guarded by Service::mutex_.  Clang's analysis cannot bind a
        // member of one object to the mutex of another
        // (RP_GUARDED_BY(owner.mutex_) is not expressible), so the
        // discipline is carried by RP_REQUIRES(mutex_) on every
        // Service helper that touches these fields (statusOf etc.);
        // see README "Static analysis".
        JobState state = JobState::Queued;
        /**
         * Deadline bookkeeping: the absolute expiry instant (valid
         * when hasDeadline) and whether the monitor fired it.  A
         * CancelledError unwinding a job whose deadlineHit is set
         * reports DeadlineExceeded, not Cancelled.
         */
        std::chrono::steady_clock::time_point deadline{};
        bool hasDeadline = false;
        bool deadlineHit = false;
        /** Execution attempts so far (1-based once running). */
        int attempts = 0;
        /**
         * True once submit() pushed the job onto the runnable queue.
         * A cancel() that wins the race before then flips the state
         * only; the submitting thread delivers the Finished event
         * itself, so a job's stream always opens with Queued.
         */
        bool enqueued = false;
        /**
         * True once the terminal Finished event has been delivered to
         * the job's sinks and all observers.  wait()/drain() require
         * it in addition to a terminal state, so their return
         * guarantees the artifacts are final and the event stream is
         * complete — whichever order a canceller flipped the state in.
         */
        bool eventsDone = false;
        std::string error;
        bool configError = false;
        /**
         * Progress of the current task set.  Atomics, not mutex_:
         * the engine's progress hook stores them on every task
         * completion of every concurrent job, and the one service
         * mutex must not become that hot path.
         */
        std::atomic<std::size_t> done{0};
        std::atomic<std::size_t> total{0};
        double elapsedMs = 0.0;
        int engineThreads = 0;

        core::CancelToken cancelToken =
            std::make_shared<std::atomic<bool>>(false);
        /**
         * Guards sinks (delivery and teardown).  Per job, not
         * process-wide: sinks are job-private, and one job rendering
         * a large artifact must not stall other jobs' dispatch (a
         * progress hook blocks its engine's workers while it waits).
         */
        core::Mutex sinkMutex;
        std::vector<std::unique_ptr<ResultSink>> sinks
            RP_GUARDED_BY(sinkMutex);
    };

    void workerLoop();
    void deadlineLoop() RP_EXCLUDES(mutex_);
    void executeJob(Job &job);
    /** One execution attempt; returns whether the failure (if any)
     *  is transient (retry-eligible). */
    void runAttempt(Job &job, JobState *final_state,
                    std::string *error, bool *config_error,
                    bool *transient);
    /** Exponential backoff + deterministic jitter before the next
     *  attempt; false when the job's cancel token fired mid-sleep. */
    bool backoffBeforeRetry(Job &job, int delay_ms);
    static int retryDelayMs(const Job &job, int failed_attempt);
    void dispatch(Job &job, JobEvent &&event)
        RP_EXCLUDES(mutex_, dispatchMutex_);
    /** Snapshot one job's scheduler fields; caller holds mutex_. */
    JobStatus statusOf(const Job &job) const RP_REQUIRES(mutex_);
    /** True when every retained job is terminal with its event
     *  stream closed (the drain()/drainFor() condition). */
    bool allJobsDoneLocked() const RP_REQUIRES(mutex_);
    void finishJob(Job &job, JobState state, std::string error,
                   bool config_error);
    /** Finished(job.state) event + eventsDone for a never-run job
     *  (cancelled or deadline-expired while queued). */
    void deliverAbortedFinish(Job &job);
    /** Drop a terminal job's sinks under the dispatch lock. */
    void releaseSinks(Job &job);

    static bool terminal(JobState state)
    {
        return state != JobState::Queued && state != JobState::Running;
    }

    const Options opts_;
    mutable core::Mutex mutex_;   ///< jobs_/queue_/scheduler state.
    core::CondVar queueCv_;       ///< Wakes scheduler workers.
    core::CondVar jobsCv_;        ///< Wakes wait()/drain().
    core::CondVar deadlineCv_;    ///< Wakes the deadline loop.
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_
        RP_GUARDED_BY(mutex_);
    std::deque<Job *> queue_ RP_GUARDED_BY(mutex_);
    std::uint64_t lastId_ RP_GUARDED_BY(mutex_) = 0;
    bool stopping_ RP_GUARDED_BY(mutex_) = false;
    /// Load-shed admissions off.
    bool shedding_ RP_GUARDED_BY(mutex_) = false;
    /// Submissions past the admission gate, queue push in flight.
    std::size_t admitting_ RP_GUARDED_BY(mutex_) = 0;
    /// Deadline loop exit flag.
    bool monitorStop_ RP_GUARDED_BY(mutex_) = false;

    core::Mutex dispatchMutex_; ///< Observer list + observer calls.
    std::vector<std::pair<std::uint64_t, Observer>> observers_
        RP_GUARDED_BY(dispatchMutex_);
    std::uint64_t lastObserver_ RP_GUARDED_BY(dispatchMutex_) = 0;

    std::vector<std::thread> workers_;
    std::thread deadlineMonitor_;
};

} // namespace rp::api

#endif // ROWPRESS_API_SERVICE_H
