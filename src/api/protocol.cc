#include "api/protocol.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include "api/context.h"
#include "api/service.h"
#include "api/sink.h"
#include "core/fault.h"
#include "core/thread_annotations.h"
#include "persist/cache.h"

#if defined(__unix__) || defined(__APPLE__)
#define ROWPRESS_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace rp::api {

// ---- JsonValue -------------------------------------------------------

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
}

JsonValue
JsonValue::number(const std::string &raw_text)
{
    JsonValue v;
    v.kind = Kind::Number;
    v.text = raw_text;
    return v;
}

JsonValue
JsonValue::number(long long n)
{
    return number(std::to_string(n));
}

JsonValue
JsonValue::number(double d)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", d);
    return number(std::string(buf));
}

JsonValue
JsonValue::string(const std::string &s)
{
    JsonValue v;
    v.kind = Kind::String;
    v.text = s;
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind = Kind::Object;
    return v;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

JsonValue &
JsonValue::add(const std::string &key, JsonValue v)
{
    members.emplace_back(key, std::move(v));
    return *this;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    items.push_back(std::move(v));
    return *this;
}

std::string
JsonValue::scalarText(const std::string &what) const
{
    switch (kind) {
    case Kind::String:
    case Kind::Number:
        return text;
    case Kind::Bool:
        return boolean ? "1" : "0";
    default:
        throw ConfigError(what +
                          ": expected a scalar (string/number/bool)");
    }
}

// ---- parser ----------------------------------------------------------

namespace {

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw ConfigError("protocol: malformed JSON at offset " +
                          std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected '") + word + "'");
            ++pos_;
        }
    }

    unsigned
    hex4()
    {
        unsigned out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= unsigned(c - 'A' + 10);
            else
                fail("bad \\u escape");
            ++pos_;
        }
        return out;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3F));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
    }

    std::string
    stringBody()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const unsigned char c = (unsigned char)text_[pos_];
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c == '\\') {
                ++pos_;
                const char e = peek();
                ++pos_;
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned cp = hex4();
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // Surrogate pair.
                        if (!consume('\\') || !consume('u'))
                            fail("unpaired surrogate");
                        const unsigned lo = hex4();
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            fail("bad low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        // A lone low surrogate would encode to
                        // invalid UTF-8; reject like a lone high one.
                        fail("unpaired surrogate");
                    }
                    appendUtf8(out, cp);
                    break;
                }
                default:
                    fail("bad escape");
                }
                continue;
            }
            if (c < 0x20)
                fail("raw control character in string");
            out += char(c);
            ++pos_;
        }
    }

    JsonValue
    numberValue()
    {
        const std::size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string raw = text_.substr(start, pos_ - start);
        if (!looksNumeric(raw))
            fail("bad number '" + raw + "'");
        return JsonValue::number(raw);
    }

    JsonValue
    value(int depth)
    {
        if (depth > 32)
            fail("nesting too deep");
        skipWs();
        const char c = peek();
        if (c == '{') {
            ++pos_;
            JsonValue obj = JsonValue::object();
            skipWs();
            if (consume('}'))
                return obj;
            for (;;) {
                skipWs();
                std::string key = stringBody();
                skipWs();
                expect(':');
                obj.add(std::move(key), value(depth + 1));
                skipWs();
                if (consume(','))
                    continue;
                expect('}');
                return obj;
            }
        }
        if (c == '[') {
            ++pos_;
            JsonValue arr = JsonValue::array();
            skipWs();
            if (consume(']'))
                return arr;
            for (;;) {
                arr.push(value(depth + 1));
                skipWs();
                if (consume(','))
                    continue;
                expect(']');
                return arr;
            }
        }
        if (c == '"')
            return JsonValue::string(stringBody());
        if (c == 't') {
            literal("true");
            return JsonValue::makeBool(true);
        }
        if (c == 'f') {
            literal("false");
            return JsonValue::makeBool(false);
        }
        if (c == 'n') {
            literal("null");
            return JsonValue::makeNull();
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return numberValue();
        fail("unexpected character");
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

// ---- serializer ------------------------------------------------------

namespace {

void
writeJsonTo(std::ostream &os, const JsonValue &v, int indent, int depth)
{
    const bool pretty = indent >= 0;
    const std::string pad =
        pretty ? std::string(std::size_t(indent) * std::size_t(depth + 1),
                             ' ')
               : "";
    const std::string closing =
        pretty ? std::string(std::size_t(indent) * std::size_t(depth),
                             ' ')
               : "";
    const char *nl = pretty ? "\n" : "";
    const char *colon = pretty ? ": " : ":";

    switch (v.kind) {
    case JsonValue::Kind::Null:
        os << "null";
        break;
    case JsonValue::Kind::Bool:
        os << (v.boolean ? "true" : "false");
        break;
    case JsonValue::Kind::Number:
        os << (looksNumeric(v.text) ? v.text : "0");
        break;
    case JsonValue::Kind::String:
        os << '"' << jsonEscape(v.text) << '"';
        break;
    case JsonValue::Kind::Array:
        if (v.items.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            os << pad;
            writeJsonTo(os, v.items[i], indent, depth + 1);
            os << (i + 1 < v.items.size() ? "," : "") << nl;
        }
        os << closing << ']';
        break;
    case JsonValue::Kind::Object:
        if (v.members.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < v.members.size(); ++i) {
            os << pad << '"' << jsonEscape(v.members[i].first) << '"'
               << colon;
            writeJsonTo(os, v.members[i].second, indent, depth + 1);
            os << (i + 1 < v.members.size() ? "," : "") << nl;
        }
        os << closing << '}';
        break;
    }
}

} // namespace

void
writeJson(std::ostream &os, const JsonValue &value, int indent)
{
    writeJsonTo(os, value, indent, 0);
}

std::string
toJson(const JsonValue &value, int indent)
{
    std::ostringstream os;
    writeJson(os, value, indent);
    return os.str();
}

// ---- experiment listing ----------------------------------------------

JsonValue
experimentListJson(const std::vector<std::string> &patterns)
{
    std::vector<std::string> pats = patterns;
    if (pats.empty())
        pats.push_back("*");

    JsonValue arr = JsonValue::array();
    for (const Experiment *exp : ExperimentRegistry::instance().list()) {
        bool matched = false;
        for (const auto &pattern : pats)
            matched = matched || globMatch(pattern, exp->info.id);
        if (!matched)
            continue;

        JsonValue e = JsonValue::object();
        e.add("id", JsonValue::string(exp->info.id));
        e.add("category", JsonValue::string(exp->info.category));
        e.add("title", JsonValue::string(exp->info.title));
        e.add("paper_ref", JsonValue::string(exp->info.paperRef));

        ConfigSchema schema = baseSchema();
        if (exp->declareOptions)
            exp->declareOptions(schema);
        JsonValue opts = JsonValue::array();
        for (const OptionSpec &spec : schema.options()) {
            JsonValue o = JsonValue::object();
            o.add("key", JsonValue::string(spec.key));
            const char *type = "string";
            switch (spec.type) {
            case OptionType::Int: type = "int"; break;
            case OptionType::Double: type = "double"; break;
            case OptionType::Bool: type = "bool"; break;
            case OptionType::String: type = "string"; break;
            }
            o.add("type", JsonValue::string(type));
            o.add("default", JsonValue::string(spec.defaultValue));
            if (!spec.envVar.empty())
                o.add("env", JsonValue::string(spec.envVar));
            if (!spec.envVarLegacy.empty())
                o.add("env_legacy", JsonValue::string(spec.envVarLegacy));
            o.add("help", JsonValue::string(spec.help));
            if (spec.hasMin)
                o.add("min", JsonValue::number(spec.minValue));
            opts.push(std::move(o));
        }
        e.add("options", std::move(opts));
        arr.push(std::move(e));
    }

    JsonValue root = JsonValue::object();
    root.add("experiments", std::move(arr));
    return root;
}

// ---- events ----------------------------------------------------------

std::string
jobEventLine(const JobEvent &event)
{
    JsonValue line = JsonValue::object();
    auto stamp = [&line, &event](const char *name) {
        line.add("event", JsonValue::string(name));
        line.add("job", JsonValue::number((long long)event.job));
        line.add("experiment", JsonValue::string(event.experiment));
    };
    switch (event.type) {
    case JobEventType::Queued:
        stamp("queued");
        break;
    case JobEventType::Started: {
        stamp("started");
        JsonValue config = JsonValue::object();
        for (const ConfigValue &kv : event.config) {
            JsonValue entry = JsonValue::object();
            entry.add("value", JsonValue::string(kv.value));
            entry.add("origin", JsonValue::string(kv.origin));
            config.add(kv.key, std::move(entry));
        }
        line.add("config", std::move(config));
        break;
    }
    case JobEventType::Progress:
        stamp("progress");
        line.add("done", JsonValue::number((long long)event.done));
        line.add("total", JsonValue::number((long long)event.total));
        break;
    case JobEventType::Dataset:
        stamp("dataset");
        if (event.dataset) {
            line.add("name", JsonValue::string(event.dataset->name));
            line.add("rows", JsonValue::number(
                                 (long long)event.dataset->rows.size()));
        }
        break;
    case JobEventType::Note:
        stamp("note");
        line.add("text", JsonValue::string(event.text));
        break;
    case JobEventType::RawCsv:
        // Name only: rendering the body just to report its size
        // would force the artifact to be built even for consumers
        // that never persist it.
        stamp("artifact");
        line.add("name", JsonValue::string(event.name));
        break;
    case JobEventType::Timing:
        stamp("timing");
        line.add("elapsed_ms", JsonValue::number(event.elapsedMs));
        break;
    case JobEventType::Retrying:
        stamp("retrying");
        line.add("attempt",
                 JsonValue::number((long long)event.attempt));
        line.add("backoff_ms",
                 JsonValue::number((long long)event.backoffMs));
        if (!event.error.empty())
            line.add("error", JsonValue::string(event.error));
        break;
    case JobEventType::Finished:
        stamp("finished");
        line.add("state",
                 JsonValue::string(jobStateName(event.state)));
        if (!event.error.empty())
            line.add("error", JsonValue::string(event.error));
        line.add("elapsed_ms", JsonValue::number(event.elapsedMs));
        break;
    }
    return toJson(line);
}

// ---- serve session ---------------------------------------------------

namespace {

/** One NDJSON client session over arbitrary streams. */
class ProtocolSession
{
  public:
    /**
     * @p client_id scopes the event stream: nonzero ids (one per TCP
     * session) see only their own jobs' events; 0 (the stdio
     * session, necessarily alone in its process) sees everything.
     * @p max_inflight bounds this session's non-terminal jobs
     * (0 = uncapped).
     */
    ProtocolSession(Service &service, std::istream &in,
                    std::ostream &out, std::uint64_t client_id = 0,
                    int max_inflight = 0)
        : service_(service), in_(in), out_(out), clientId_(client_id),
          maxInflight_(max_inflight)
    {
    }

    /** Returns true when the client requested service shutdown. */
    bool
    run(bool eof_is_shutdown)
    {
        // Events are enqueued by the service's dispatch path and
        // written by a dedicated writer thread: the observer must
        // never block on client I/O, or one client that stops
        // reading its socket would stall every job in the service
        // (event dispatch is serialized process-wide).
        std::thread writer([this] { writerLoop(); });
        const std::uint64_t observer =
            service_.addObserver([this](const JobEvent &event) {
                if (clientId_ != 0 && event.client != clientId_)
                    return; // another session's job
                if (event.type == JobEventType::Finished)
                    --inflight_; // balances opSubmit's increment
                enqueue(jobEventLine(event),
                        /*critical=*/event.type ==
                            JobEventType::Finished);
            });

        bool shutdown_requested = false;
        bool force = false;
        std::string text;
        while (std::getline(in_, text)) {
            if (text.empty() ||
                text.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            JsonValue response = JsonValue::object();
            if (handle(text, response, &shutdown_requested, &force))
                writeLine(toJson(response));
            if (shutdown_requested)
                break;
            // A session whose responses can no longer be delivered
            // (peer hung up mid-write) is dead: stop consuming its
            // requests.  Its in-flight jobs keep running — only the
            // event stream ends.
            if (outFailed())
                break;
        }

        if (shutdown_requested || eof_is_shutdown) {
            // Drain before detaching so every submitted job's event
            // stream (and artifacts) completes — `printf ... | serve`
            // runs everything it was fed.  A forced shutdown cancels
            // instead.
            if (force)
                service_.shutdownNow();
            else
                service_.shutdown();
        }
        service_.removeObserver(observer);
        // No more producers: flush what is queued, then stop.
        {
            core::LockGuard lock(queueMutex_);
            writerStop_ = true;
        }
        queueCv_.notify_all();
        writer.join();
        return shutdown_requested;
    }

    bool
    failed() const
    {
        // The writer thread is joined by the time callers ask, but
        // take the stream lock anyway — it documents that out_ is
        // shared with the writer and keeps the read race-free even
        // if a caller ever probes mid-session.
        core::LockGuard lock(outMutex_);
        return out_.fail();
    }

  private:
    /** Event lines a slow client may buffer before we drop (~a few
     *  MB worst case); overflow is reported on the stream once the
     *  client catches up, so a reader can tell the stream has gaps. */
    static constexpr std::size_t kMaxQueuedEvents = 65536;

    void
    enqueue(std::string line, bool critical)
    {
        {
            core::LockGuard lock(queueMutex_);
            // Terminal (finished) events are exempt from the drop:
            // clients correlate on them (the documented pattern), so
            // a job's outcome must survive an overflow even if its
            // progress/dataset lines did not.  The exemption is
            // bounded by jobs in flight, not event volume.
            if (!critical && queue_.size() >= kMaxQueuedEvents) {
                ++dropped_;
                return;
            }
            queue_.push_back(std::move(line));
        }
        queueCv_.notify_one();
    }

    void
    writerLoop()
    {
        for (;;) {
            std::string line;
            std::uint64_t dropped = 0;
            {
                core::UniqueLock lock(queueMutex_);
                while (!writerStop_ && queue_.empty() &&
                       dropped_ == 0)
                    queueCv_.wait(lock);
                if (!queue_.empty()) {
                    line = std::move(queue_.front());
                    queue_.pop_front();
                } else if (dropped_ != 0) {
                    dropped = dropped_;
                    dropped_ = 0;
                } else {
                    return; // stop requested and fully drained
                }
            }
            if (dropped != 0) {
                JsonValue overflow = JsonValue::object();
                overflow.add("event", JsonValue::string("overflow"));
                overflow.add("dropped",
                             JsonValue::number((long long)dropped));
                writeLine(toJson(overflow));
            } else {
                writeLine(line);
            }
        }
    }

    void
    writeLine(const std::string &line)
    {
        core::LockGuard lock(outMutex_);
        out_ << line << "\n";
        out_.flush();
    }

    /** Stream-state read under the same lock the writer writes under
     *  (the request loop and the writer thread share out_). */
    bool
    outFailed()
    {
        core::LockGuard lock(outMutex_);
        return out_.fail();
    }

    /** Returns false when no response should be written (never today). */
    bool
    handle(const std::string &text, JsonValue &response,
           bool *shutdown_requested, bool *force)
    {
        std::string op;
        JsonValue tag;
        bool has_tag = false;
        try {
            const JsonValue request = parseJson(text);
            if (request.kind != JsonValue::Kind::Object)
                throw ConfigError("protocol: request is not an object");
            if (const JsonValue *t = request.find("tag")) {
                tag = *t;
                has_tag = true;
            }
            const JsonValue *opv = request.find("op");
            if (!opv || opv->kind != JsonValue::Kind::String)
                throw ConfigError(
                    "protocol: request needs a string \"op\"");
            op = opv->text;
            response.add("ok", JsonValue::makeBool(true));
            response.add("op", JsonValue::string(op));
            if (has_tag)
                response.add("tag", tag);

            if (op == "submit") {
                rejectUnknownMembers(request,
                                     {"op", "tag", "experiment",
                                      "config", "formats", "out",
                                      "time", "deadline_ms",
                                      "max_attempts", "backoff_ms"});
                opSubmit(request, response);
            } else if (op == "status") {
                rejectUnknownMembers(request, {"op", "tag", "job"});
                opStatus(request, response);
            } else if (op == "wait") {
                rejectUnknownMembers(request,
                                     {"op", "tag", "job",
                                      "timeout_ms"});
                opWait(request, response);
            } else if (op == "list") {
                rejectUnknownMembers(request, {"op", "tag", "glob"});
                opList(request, response);
            } else if (op == "cancel") {
                rejectUnknownMembers(request, {"op", "tag", "job"});
                opCancel(request, response);
            } else if (op == "cache") {
                rejectUnknownMembers(request, {"op", "tag", "evict"});
                opCache(request, response);
            } else if (op == "shed") {
                rejectUnknownMembers(request, {"op", "tag", "on"});
                opShed(request, response);
            } else if (op == "shutdown") {
                rejectUnknownMembers(request, {"op", "tag", "force"});
                *force = boolMember(request, "force");
                *shutdown_requested = true;
            } else {
                throw ConfigError("protocol: unknown op '" + op + "'");
            }
        } catch (const AdmissionError &e) {
            // Policy rejections carry a machine-readable reason so a
            // client knows to back off and retry, not fix its request.
            response = JsonValue::object();
            response.add("ok", JsonValue::makeBool(false));
            if (!op.empty())
                response.add("op", JsonValue::string(op));
            if (has_tag)
                response.add("tag", tag);
            response.add("error", JsonValue::string(e.what()));
            response.add("reason", JsonValue::string(e.reason()));
        } catch (const std::exception &e) {
            response = JsonValue::object();
            response.add("ok", JsonValue::makeBool(false));
            if (!op.empty())
                response.add("op", JsonValue::string(op));
            // Echo the tag on errors too: correlation matters most
            // when a pipelined request fails.
            if (has_tag)
                response.add("tag", tag);
            response.add("error", JsonValue::string(e.what()));
        }
        return true;
    }

    /**
     * Boolean member or absent; any other kind (a "1" instead of
     * true) errors rather than silently meaning false.
     */
    static bool
    boolMember(const JsonValue &request, const char *key)
    {
        const JsonValue *v = request.find(key);
        if (!v)
            return false;
        if (v->kind != JsonValue::Kind::Bool)
            throw ConfigError(std::string("protocol: \"") + key +
                              "\" must be true or false");
        return v->boolean;
    }

    /**
     * The same hard unknown-key rejection the Config layer applies:
     * a typo'd member ("format" for "formats", "outdir" for "out")
     * must error, never silently run the defaults.
     */
    static void
    rejectUnknownMembers(const JsonValue &request,
                         std::initializer_list<const char *> known)
    {
        for (const auto &[key, value] : request.members) {
            (void)value;
            bool ok = false;
            for (const char *k : known)
                ok = ok || key == k;
            if (!ok)
                throw ConfigError("protocol: unknown member \"" + key +
                                  "\" for this op");
        }
    }

    std::uint64_t
    jobIdOf(const JsonValue &request)
    {
        const JsonValue *job = request.find("job");
        if (!job || job->kind != JsonValue::Kind::Number)
            throw ConfigError("protocol: op needs a numeric \"job\"");
        return std::uint64_t(
            parseInt(job->text, "protocol: \"job\""));
    }

    void
    opSubmit(const JsonValue &request, JsonValue &response)
    {
        JobRequest job;
        const JsonValue *exp = request.find("experiment");
        if (!exp || exp->kind != JsonValue::Kind::String)
            throw ConfigError(
                "protocol: submit needs a string \"experiment\"");
        job.experiment = exp->text;
        if (const JsonValue *config = request.find("config")) {
            if (config->kind != JsonValue::Kind::Object)
                throw ConfigError(
                    "protocol: \"config\" must be an object");
            for (const auto &[key, value] : config->members)
                job.overlay.emplace_back(
                    key, value.scalarText("protocol: config." + key));
        }
        if (const JsonValue *formats = request.find("formats")) {
            if (formats->kind != JsonValue::Kind::Array)
                throw ConfigError(
                    "protocol: \"formats\" must be an array");
            job.formats.clear();
            for (const JsonValue &f : formats->items)
                job.formats.push_back(
                    f.scalarText("protocol: formats[]"));
        }
        if (const JsonValue *out = request.find("out")) {
            if (out->kind != JsonValue::Kind::String)
                throw ConfigError("protocol: \"out\" must be a string");
            job.outDir = out->text;
        }
        job.time = boolMember(request, "time");
        if (const JsonValue *v = request.find("deadline_ms")) {
            job.deadlineMs = int(parseInt(
                v->scalarText("protocol: \"deadline_ms\""),
                "protocol: \"deadline_ms\""));
            if (job.deadlineMs < 0)
                throw ConfigError(
                    "protocol: \"deadline_ms\" must be >= 0");
        }
        if (const JsonValue *v = request.find("max_attempts")) {
            job.retry.maxAttempts = int(parseInt(
                v->scalarText("protocol: \"max_attempts\""),
                "protocol: \"max_attempts\""));
            if (job.retry.maxAttempts < 1)
                throw ConfigError(
                    "protocol: \"max_attempts\" must be >= 1");
        }
        if (const JsonValue *v = request.find("backoff_ms")) {
            job.retry.backoffBaseMs = int(parseInt(
                v->scalarText("protocol: \"backoff_ms\""),
                "protocol: \"backoff_ms\""));
            if (job.retry.backoffBaseMs < 1)
                throw ConfigError(
                    "protocol: \"backoff_ms\" must be >= 1");
        }
        job.clientId = clientId_;
        if (maxInflight_ > 0 && inflight_.load() >= maxInflight_)
            throw AdmissionError(
                "session_limit",
                "session has " + std::to_string(maxInflight_) +
                    " jobs in flight; wait for one to finish");
        // Count before submitting: the decrement rides the job's
        // Finished event, which cannot precede the submit.
        ++inflight_;
        std::uint64_t id = 0;
        try {
            id = service_.submit(job);
        } catch (...) {
            --inflight_;
            throw;
        }
        response.add("job", JsonValue::number((long long)id));
    }

    void
    opWait(const JsonValue &request, JsonValue &response)
    {
        const std::uint64_t id = jobIdOf(request);
        int timeout_ms = 60000;
        if (const JsonValue *v = request.find("timeout_ms")) {
            timeout_ms = int(parseInt(
                v->scalarText("protocol: \"timeout_ms\""),
                "protocol: \"timeout_ms\""));
            if (timeout_ms < 0)
                throw ConfigError(
                    "protocol: \"timeout_ms\" must be >= 0");
        }
        JobStatus st;
        const Service::WaitOutcome outcome =
            service_.waitFor(id, timeout_ms, st);
        response.add("outcome",
                     JsonValue::string(
                         outcome == Service::WaitOutcome::Done
                             ? "done"
                             : "timeout"));
        for (auto &member : statusJson(st).members)
            response.add(member.first, std::move(member.second));
    }

    void
    opShed(const JsonValue &request, JsonValue &response)
    {
        if (const JsonValue *on = request.find("on")) {
            if (on->kind != JsonValue::Kind::Bool)
                throw ConfigError(
                    "protocol: \"on\" must be true or false");
            service_.setLoadShed(on->boolean);
        }
        response.add("shedding",
                     JsonValue::makeBool(service_.loadShedding()));
    }

    static JsonValue
    statusJson(const JobStatus &st)
    {
        JsonValue v = JsonValue::object();
        v.add("job", JsonValue::number((long long)st.id));
        v.add("experiment", JsonValue::string(st.experiment));
        v.add("state", JsonValue::string(jobStateName(st.state)));
        if (!st.error.empty())
            v.add("error", JsonValue::string(st.error));
        v.add("done", JsonValue::number((long long)st.done));
        v.add("total", JsonValue::number((long long)st.total));
        v.add("elapsed_ms", JsonValue::number(st.elapsedMs));
        v.add("threads", JsonValue::number((long long)st.engineThreads));
        v.add("attempts", JsonValue::number((long long)st.attempts));
        return v;
    }

    static JsonValue
    warmCacheJson()
    {
        const auto stats = Service::warmCacheStats();
        JsonValue v = JsonValue::object();
        v.add("stores", JsonValue::number((long long)stats.stores));
        v.add("hits", JsonValue::number((long long)stats.hits));
        v.add("misses", JsonValue::number((long long)stats.misses));
        v.add("evictions",
              JsonValue::number((long long)stats.evictions));
        v.add("candidate_rows",
              JsonValue::number((long long)stats.totals.candidateRows));
        v.add("candidate_cells",
              JsonValue::number((long long)stats.totals.candidateCells));
        v.add("word_mask_rows",
              JsonValue::number((long long)stats.totals.wordMaskRows));
        v.add("approx_bytes",
              JsonValue::number((long long)stats.totals.approxBytes));
        return v;
    }

    static JsonValue
    diskCacheJson()
    {
        const persist::CacheStats stats =
            persist::SnapshotCache::instance().stats();
        JsonValue v = JsonValue::object();
        v.add("enabled", JsonValue::makeBool(stats.enabled));
        v.add("dir", JsonValue::string(stats.dir));
        v.add("hits", JsonValue::number((long long)stats.hits));
        v.add("misses", JsonValue::number((long long)stats.misses));
        v.add("rejected",
              JsonValue::number((long long)stats.rejected));
        v.add("publishes",
              JsonValue::number((long long)stats.publishes));
        v.add("publish_skips",
              JsonValue::number((long long)stats.publishSkips));
        v.add("publish_failures",
              JsonValue::number((long long)stats.publishFailures));
        v.add("bytes_loaded",
              JsonValue::number((long long)stats.bytesLoaded));
        v.add("bytes_published",
              JsonValue::number((long long)stats.bytesPublished));
        return v;
    }

    void
    opStatus(const JsonValue &request, JsonValue &response)
    {
        if (request.find("job")) {
            const JobStatus st = service_.status(jobIdOf(request));
            for (auto &member : statusJson(st).members)
                response.add(member.first, std::move(member.second));
            return;
        }
        JsonValue jobs = JsonValue::array();
        for (const JobStatus &st : service_.jobs())
            jobs.push(statusJson(st));
        response.add("jobs", std::move(jobs));
        response.add("warm_cache", warmCacheJson());
    }

    void
    opList(const JsonValue &request, JsonValue &response)
    {
        std::vector<std::string> patterns;
        if (const JsonValue *glob = request.find("glob")) {
            if (glob->kind != JsonValue::Kind::String)
                throw ConfigError(
                    "protocol: \"glob\" must be a string");
            patterns.push_back(glob->text);
        }
        JsonValue listing = experimentListJson(patterns);
        for (auto &member : listing.members)
            response.add(member.first, std::move(member.second));
    }

    void
    opCancel(const JsonValue &request, JsonValue &response)
    {
        const std::uint64_t id = jobIdOf(request);
        const bool cancelled = service_.cancel(id);
        response.add("job", JsonValue::number((long long)id));
        response.add("cancelled", JsonValue::makeBool(cancelled));
    }

    void
    opCache(const JsonValue &request, JsonValue &response)
    {
        if (boolMember(request, "evict"))
            response.add("evicted",
                         JsonValue::number(
                             (long long)Service::evictWarmCache()));
        response.add("warm_cache", warmCacheJson());
        response.add("disk_cache", diskCacheJson());
    }

    Service &service_;
    std::istream &in_;
    std::ostream &out_;
    const std::uint64_t clientId_;
    const int maxInflight_;
    std::atomic<int> inflight_{0};
    /// Serializes request-loop and writer-thread access to out_
    /// (stream writes and state probes); mutable for failed() const.
    mutable core::Mutex outMutex_;

    core::Mutex queueMutex_;
    core::CondVar queueCv_;
    std::deque<std::string> queue_ RP_GUARDED_BY(queueMutex_);
    std::uint64_t dropped_ RP_GUARDED_BY(queueMutex_) = 0;
    bool writerStop_ RP_GUARDED_BY(queueMutex_) = false;
};

} // namespace

int
serveSession(Service &service, std::istream &in, std::ostream &out)
{
    ProtocolSession session(service, in, out);
    session.run(/*eof_is_shutdown=*/true);
    return session.failed() ? 1 : 0;
}

// ---- TCP front-end ---------------------------------------------------

#if ROWPRESS_HAVE_SOCKETS

namespace {

/** Minimal read/write streambuf over a connected socket fd. */
class FdStreamBuf : public std::streambuf
{
  public:
    explicit FdStreamBuf(int fd, int idle_timeout_ms = 0)
        : fd_(fd), idleTimeoutMs_(idle_timeout_ms)
    {
        setg(inBuf_, inBuf_, inBuf_);
    }

  protected:
    int_type
    underflow() override
    {
        if (gptr() < egptr())
            return traits_type::to_int_type(*gptr());
        // Fault point: the peer vanishing mid-read (ECONNRESET and
        // friends read as EOF — the session ends, the service lives).
        if (const int e = core::faultPoint("protocol.socket.read")) {
            errno = e;
            return traits_type::eof();
        }
        if (idleTimeoutMs_ > 0) {
            // Idle supervision: a client that goes silent past the
            // budget is disconnected (reads as EOF), freeing its
            // session thread; its in-flight jobs keep running.
            pollfd pfd{};
            pfd.fd = fd_;
            pfd.events = POLLIN;
            int r;
            do {
                r = ::poll(&pfd, 1, idleTimeoutMs_);
            } while (r < 0 && errno == EINTR);
            if (r <= 0)
                return traits_type::eof();
        }
        ssize_t n;
        do {
            n = ::read(fd_, inBuf_, sizeof(inBuf_));
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return traits_type::eof();
        setg(inBuf_, inBuf_, inBuf_ + n);
        return traits_type::to_int_type(*gptr());
    }

    int_type
    overflow(int_type ch) override
    {
        if (ch == traits_type::eof())
            return traits_type::not_eof(ch);
        const char c = char(ch);
        return writeAll(&c, 1) ? ch : traits_type::eof();
    }

    std::streamsize
    xsputn(const char *data, std::streamsize n) override
    {
        return writeAll(data, std::size_t(n)) ? n : 0;
    }

  private:
    bool
    writeAll(const char *data, std::size_t n)
    {
        // Fault point: a peer hang-up surfacing on the write side
        // (EPIPE); the writer thread sees a failed stream and the
        // session winds down without touching other sessions' jobs.
        if (const int e = core::faultPoint("protocol.socket.write")) {
            errno = e;
            return false;
        }
        while (n > 0) {
            // MSG_NOSIGNAL: a peer that hung up must produce EPIPE
            // (ending this session), not SIGPIPE (whose default
            // action would kill the whole long-lived server).
#if defined(MSG_NOSIGNAL)
            const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
#else
            const ssize_t w = ::write(fd_, data, n);
#endif
            if (w < 0 && errno == EINTR)
                continue;
            if (w <= 0)
                return false;
            data += std::size_t(w);
            n -= std::size_t(w);
        }
        return true;
    }

    int fd_;
    int idleTimeoutMs_;
    char inBuf_[4096];
};

/**
 * SIGTERM/SIGINT latch for the accept loop.  A lock-free atomic, not
 * volatile sig_atomic_t: the handler may run on any thread of the
 * process (raise() in tests, a signal delivered to a worker), so the
 * latch must be data-race-free across threads as well as
 * async-signal-safe — lock-free std::atomic is both.
 */
std::atomic<int> g_serveSignal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free latch");

extern "C" void
serveSignalHandler(int)
{
    g_serveSignal.store(1, std::memory_order_relaxed);
}

bool
serveSignalled()
{
    return g_serveSignal.load(std::memory_order_relaxed) != 0;
}

/** One live TCP session: its socket, thread, and completion flag. */
struct TcpSession
{
    int fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
};

} // namespace

int
serveTcp(Service &service, const ServeOptions &opts, std::ostream &log)
{
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0)
        throw ConfigError("serve: cannot create socket");
    const int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(std::uint16_t(opts.port));
    if (::bind(listener, (const sockaddr *)&addr, sizeof(addr)) != 0 ||
        ::listen(listener, 16) != 0) {
        ::close(listener);
        throw ConfigError("serve: cannot bind 127.0.0.1:" +
                          std::to_string(opts.port));
    }
    log << "[rowpress] serving on 127.0.0.1:" << opts.port << "\n";
    log.flush();

    // Graceful-drain signals: latch and finish the loop iteration
    // instead of dying mid-job.  Handlers are restored on exit so a
    // caller embedding serveTcp gets its own disposition back.
    g_serveSignal.store(0, std::memory_order_relaxed);
    struct sigaction sa
    {
    };
    sa.sa_handler = serveSignalHandler;
    sigemptyset(&sa.sa_mask);
    struct sigaction old_term
    {
    }, old_int{};
    ::sigaction(SIGTERM, &sa, &old_term);
    ::sigaction(SIGINT, &sa, &old_int);

    std::vector<TcpSession> sessions; // touched only by this thread
    std::atomic<bool> shutdown_op{false};
    std::uint64_t next_client = 0;
    bool accept_failed = false;
    int accept_backoff_ms = 0;

    while (!shutdown_op.load(std::memory_order_acquire) &&
           !serveSignalled()) {
        // Reap finished sessions so a long-lived server's thread and
        // fd counts track live clients, not total connections ever.
        for (auto it = sessions.begin(); it != sessions.end();) {
            if (it->done->load(std::memory_order_acquire)) {
                it->thread.join();
                ::close(it->fd);
                it = sessions.erase(it);
            } else {
                ++it;
            }
        }

        // Poll with a bounded tick so signal/shutdown latches are
        // noticed without a connection arriving.
        pollfd pfd{};
        pfd.fd = listener;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, 200);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            log << "[rowpress] poll failed; server exiting\n";
            accept_failed = true;
            break;
        }
        if (pr == 0)
            continue;

        // Fault point: accept-path errno emulation (fd exhaustion
        // drills without actually exhausting the process's table).
        int err = core::faultPoint("protocol.accept");
        int conn = -1;
        if (err == 0) {
            conn = ::accept(listener, nullptr, nullptr);
            if (conn < 0)
                err = errno;
        }
        if (conn < 0) {
            // A harmless signal (profiler timer, window resize) must
            // not take the whole long-lived server down.
            if (err == EINTR)
                continue;
            if (err == EMFILE || err == ENFILE || err == ENOBUFS) {
                // Transient resource exhaustion: back off (bounded,
                // doubling) and retry — sessions closing will free
                // fds.  Exiting here would turn a burst of clients
                // into an outage.
                accept_backoff_ms =
                    accept_backoff_ms == 0
                        ? 10
                        : std::min(accept_backoff_ms * 2, 1000);
                log << "[rowpress] accept: out of descriptors (errno "
                    << err << "); retrying in " << accept_backoff_ms
                    << " ms\n";
                log.flush();
                for (int slept = 0;
                     slept < accept_backoff_ms && !serveSignalled() &&
                     !shutdown_op.load(std::memory_order_acquire);
                     slept += 20)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                continue;
            }
            log << "[rowpress] accept failed (errno " << err
                << "); server exiting\n";
            accept_failed = true;
            break;
        }
        accept_backoff_ms = 0;
#if defined(SO_NOSIGPIPE)
        // BSD/macOS equivalent of MSG_NOSIGNAL.
        const int no_sigpipe = 1;
        ::setsockopt(conn, SOL_SOCKET, SO_NOSIGPIPE, &no_sigpipe,
                     sizeof(no_sigpipe));
#endif
        // One concurrent session per connection, each with a unique
        // nonzero client id: its submits are tagged with it and its
        // event stream filtered on it, so sessions never see each
        // other's jobs.  A client hang-up only ends its session; the
        // service (warm caches, job history) persists.
        const std::uint64_t client = ++next_client;
        auto done = std::make_shared<std::atomic<bool>>(false);
        const int idle_ms = opts.idleTimeoutMs;
        const int inflight_cap = opts.sessionMaxInflight;
        std::thread thread([&service, conn, client, idle_ms,
                            inflight_cap, done, &shutdown_op] {
            FdStreamBuf buf(conn, idle_ms);
            std::istream in(&buf);
            std::ostream out(&buf);
            ProtocolSession session(service, in, out, client,
                                    inflight_cap);
            if (session.run(/*eof_is_shutdown=*/false))
                shutdown_op.store(true, std::memory_order_release);
            // Unblock nothing-in-particular: the accept loop owns
            // the close; signalling both directions down lets any
            // straggling peer write fail fast.
            ::shutdown(conn, SHUT_RDWR);
            done->store(true, std::memory_order_release);
        });
        sessions.push_back(
            TcpSession{conn, std::move(thread), std::move(done)});
    }
    ::close(listener); // stop accepting before any drain below

    int exit_code = accept_failed ? 1 : 0;
    if (serveSignalled() &&
        !shutdown_op.load(std::memory_order_acquire)) {
        // Signal drain: shed new submissions, give in-flight work the
        // grace budget, then cancel whatever remains.  The exit code
        // tells a supervisor which of the two happened.
        log << "[rowpress] signal received; draining (grace "
            << opts.graceMs << " ms)\n";
        log.flush();
        service.setLoadShed(true);
        const bool drained = service.drainFor(opts.graceMs);
        if (drained) {
            service.shutdown();
            exit_code = 3;
        } else {
            service.shutdownNow();
            exit_code = 4;
        }
        log << "[rowpress] drain "
            << (drained ? "complete" : "expired; in-flight jobs "
                                       "cancelled")
            << "\n";
        log.flush();
    }

    // Wake every session reader off its socket, then join.  Sessions
    // end at their next read; their in-flight jobs already drained
    // (shutdown op / signal path) or were cancelled.
    for (TcpSession &session : sessions)
        ::shutdown(session.fd, SHUT_RDWR);
    for (TcpSession &session : sessions) {
        session.thread.join();
        ::close(session.fd);
    }
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
    return exit_code;
}

#else // !ROWPRESS_HAVE_SOCKETS

int
serveTcp(Service &, const ServeOptions &, std::ostream &)
{
    throw ConfigError("serve: --port is not supported on this platform "
                      "(no POSIX sockets); use stdin/stdout mode");
}

#endif

} // namespace rp::api
