/**
 * @file
 * Dataset: the structured result currency between experiments and
 * ResultSinks.
 *
 * An experiment emits one Dataset per logical table of its figure:
 * a name, a header, and rows of preformatted cells.  Sinks render the
 * same Dataset as an aligned ASCII table (stdout), a tidy CSV file,
 * or a JSON artifact, so an experiment's emit function is written
 * once and serves every output format.  The cell texts are exactly
 * the strings the old per-figure binaries printed, which keeps the
 * values byte-identical across the CLI redesign.
 */

#ifndef ROWPRESS_API_DATASET_H
#define ROWPRESS_API_DATASET_H

#include <string>
#include <vector>

#include "common/table.h"

namespace rp::api {

/** Format a cell value (delegates to the ASCII table's formatter). */
template <typename T>
std::string
cell(T v)
{
    return Table::toCell(v);
}

/** Human count formatting: 1234 -> "1.2K", 2500000 -> "2.50M". */
std::string fmtCount(double v);

/** File-name-safe slug of a dataset name. */
std::string slugify(const std::string &name);

/** One named table of experiment results. */
struct Dataset
{
    explicit Dataset(std::string n) : name(std::move(n)) {}

    Dataset &
    header(std::vector<std::string> cells)
    {
        columns = std::move(cells);
        return *this;
    }

    /** Append a row, padded to the header width. */
    Dataset &
    row(std::vector<std::string> cells)
    {
        while (cells.size() < columns.size())
            cells.emplace_back();
        rows.push_back(std::move(cells));
        return *this;
    }

    template <typename... Args>
    Dataset &
    rowf(Args... args)
    {
        return row({cell(args)...});
    }

    /** Render as the rp::Table ASCII form (the TableSink view). */
    std::string renderAscii() const;

    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

} // namespace rp::api

#endif // ROWPRESS_API_DATASET_H
