/**
 * @file
 * The `rowpress` multi-tool CLI: one binary addressing every
 * registered experiment.
 *
 *     rowpress list
 *     rowpress run <id|glob>... [--all] [--out DIR] [--format LIST]
 *                  [--threads N] [--seed S] [--locations L]
 *                  [--dies default|all|ids] [--scale X] [...]
 *     rowpress help [run|list]
 *
 * Exit codes: 0 success; 2 usage/configuration error (unknown
 * command, experiment, flag, or malformed value); 1 experiment
 * failure.  `runCli` is the testable core — it takes an argument
 * vector and output streams; `cliMain` adapts (argc, argv).
 */

#ifndef ROWPRESS_API_CLI_H
#define ROWPRESS_API_CLI_H

#include <ostream>
#include <string>
#include <vector>

namespace rp::api {

/** Run the CLI on @p args (without argv[0]); returns the exit code. */
int runCli(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err);

/** main() adapter around runCli(std::cout, std::cerr). */
int cliMain(int argc, char **argv);

} // namespace rp::api

#endif // ROWPRESS_API_CLI_H
