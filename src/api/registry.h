/**
 * @file
 * ExperimentRegistry: experiments addressable by name.
 *
 * Every paper figure/table registers itself via REGISTER_EXPERIMENT
 * with an id ("fig06", "table3", ...), a title, the paper reference,
 * a category, optionally extra Config options, and its emit function.
 * The `rowpress` CLI enumerates the registry (`rowpress list`) and
 * executes members by id or glob (`rowpress run fig06`, `rowpress run
 * 'fig4*'`, `rowpress run --all`); registration is static, so linking
 * an experiment translation unit into a binary is all it takes to
 * make it addressable.
 */

#ifndef ROWPRESS_API_REGISTRY_H
#define ROWPRESS_API_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

namespace rp::api {

class ConfigSchema;
class ExperimentContext;

/** Identity of a registered experiment. */
struct ExperimentInfo
{
    std::string id;        ///< Addressable name ("fig06", "table3").
    std::string title;     ///< Banner title.
    std::string paperRef;  ///< Paper figure/table reference.
    std::string category;  ///< characterization | system | simulator | ablation.
};

/** A registered experiment. */
struct Experiment
{
    ExperimentInfo info;
    /** Extend the base ConfigSchema with experiment options (may be null). */
    std::function<void(ConfigSchema &)> declareOptions;
    /** Produce the figure/table through the context's sinks. */
    std::function<void(ExperimentContext &)> run;
};

/** '*' / '?' glob match over experiment ids. */
bool globMatch(const std::string &pattern, const std::string &text);

/** Process-wide experiment table. */
class ExperimentRegistry
{
  public:
    static ExperimentRegistry &instance();

    /** Register; throws std::logic_error on a duplicate id. */
    void add(Experiment exp);

    /** nullptr when @p id is not registered. */
    const Experiment *find(const std::string &id) const;

    /** All experiments, sorted by id. */
    std::vector<const Experiment *> list() const;

    /** Experiments whose id matches the exact name or glob @p pattern. */
    std::vector<const Experiment *> match(const std::string &pattern) const;

  private:
    std::vector<Experiment> experiments_;
};

/** Static-registration helper behind REGISTER_EXPERIMENT. */
struct ExperimentRegistrar
{
    ExperimentRegistrar(ExperimentInfo info,
                        std::function<void(ConfigSchema &)> options,
                        std::function<void(ExperimentContext &)> run);
};

/**
 * Register an experiment under the id @p id (also used as the C++
 * identifier of the registrar, so it must be a bare word).
 */
#define REGISTER_EXPERIMENT(id, title, paper_ref, category, run_fn)    \
    static const ::rp::api::ExperimentRegistrar                        \
        rp_api_registrar_##id({#id, title, paper_ref, category},       \
                              nullptr, run_fn)

/** REGISTER_EXPERIMENT with an extra-options declaration hook. */
#define REGISTER_EXPERIMENT_OPTS(id, title, paper_ref, category,       \
                                 options_fn, run_fn)                   \
    static const ::rp::api::ExperimentRegistrar                        \
        rp_api_registrar_##id({#id, title, paper_ref, category},       \
                              options_fn, run_fn)

} // namespace rp::api

#endif // ROWPRESS_API_REGISTRY_H
