/**
 * @file
 * Typed, schema-checked experiment configuration.
 *
 * A ConfigSchema declares the options an experiment understands (name,
 * type, default, optional legacy environment alias, optional lower
 * bound); a Config holds one value per declared option with layered
 * precedence
 *
 *     defaults  <  environment variables  <  CLI flags
 *
 * and records which layer supplied each value.  Setting an undeclared
 * key, or a value that fails the type/bound check, raises ConfigError
 * — unknown keys are rejected hard rather than ignored, so a typoed
 * flag can never silently run the default configuration.
 */

#ifndef ROWPRESS_API_CONFIG_H
#define ROWPRESS_API_CONFIG_H

#include <map>
#include <string>
#include <vector>

#include "api/env.h"

namespace rp::api {

/** Value type of a declared option. */
enum class OptionType
{
    Int,
    Double,
    String,
    Bool,
};

/**
 * The layer a Config value came from.  Cli is also the layer of a
 * service job's config overlay — a serve submit's {"temp": "65"} and
 * `rowpress run --temp 65` are the same layer by design, so the
 * resolved config (and the metadata embedded in result.json) is
 * identical whichever way the job arrived.
 */
enum class ConfigLayer
{
    Default = 0,
    Env = 1,
    Cli = 2,
};

/** Lower-case name of a layer ("default", "env", "cli"). */
const char *configLayerName(ConfigLayer layer);

/** One fully-resolved configuration entry (key, value, origin layer). */
struct ConfigValue
{
    std::string key;
    std::string value;
    std::string origin; ///< configLayerName of the supplying layer.
};

/** Declaration of one configuration option. */
struct OptionSpec
{
    std::string key;          ///< CLI flag name (`--<key>`).
    OptionType type = OptionType::String;
    std::string defaultValue; ///< Textual default (schema-validated).
    std::string envVar;       ///< Env alias; "" = none.
    std::string help;         ///< One-line description for `--help`.
    double minValue = 0.0;    ///< Lower bound when hasMin (Int/Double).
    bool hasMin = false;
    /**
     * Deprecated second env alias kept for compatibility; consulted
     * only when @ref envVar is not set in the environment.
     */
    std::string envVarLegacy = {};
};

/** The set of options one experiment (or the CLI itself) accepts. */
class ConfigSchema
{
  public:
    /** Declare an option; throws ConfigError on a duplicate key. */
    ConfigSchema &add(OptionSpec spec);

    const OptionSpec *find(const std::string &key) const;
    const std::vector<OptionSpec> &options() const { return options_; }

  private:
    std::vector<OptionSpec> options_;
};

/** Layered key/value store over a ConfigSchema. */
class Config
{
  public:
    explicit Config(ConfigSchema schema);

    const ConfigSchema &schema() const { return schema_; }

    /**
     * Apply the environment layer: every declared option with an env
     * alias that is set in the environment is validated and loaded.
     * CLI-layer values are not overwritten.
     */
    void loadEnv();

    /**
     * Set @p key to @p value at @p layer (validated against the
     * schema).  A lower layer never overwrites a higher one; throws
     * ConfigError on unknown keys or malformed values.
     */
    void set(const std::string &key, const std::string &value,
             ConfigLayer layer = ConfigLayer::Cli);

    int getInt(const std::string &key) const;
    double getDouble(const std::string &key) const;
    bool getBool(const std::string &key) const;
    const std::string &getString(const std::string &key) const;

    /** The layer that supplied the current value of @p key. */
    ConfigLayer origin(const std::string &key) const;

    /**
     * Every declared key with its current textual value and origin
     * layer, sorted by key.  This is the "fully resolved config" the
     * service embeds in result.json and streams with Started events,
     * so any artifact is reproducible from its own metadata.
     */
    std::vector<ConfigValue> resolved() const;

  private:
    struct Entry
    {
        std::string value;
        ConfigLayer origin = ConfigLayer::Default;
    };

    const OptionSpec &specOf(const std::string &key,
                             OptionType expected) const;
    static void validate(const OptionSpec &spec, const std::string &value,
                         const std::string &what);

    ConfigSchema schema_;
    std::map<std::string, Entry> values_;
};

} // namespace rp::api

#endif // ROWPRESS_API_CONFIG_H
