/**
 * @file
 * ExperimentContext: everything a registered experiment's emit
 * function needs, bundled — its validated Config, the job's
 * core::ExperimentEngine, the root seed, and the job-event emitter
 * that carries every emitted result to the attached output backends.
 *
 * The context also centralizes the helpers the old per-figure
 * binaries each re-implemented (die-set selection, ModuleConfig
 * construction, effort scaling) and the emission wrappers that route
 * the chr/export tidy-CSV writers into the CSV sink.
 */

#ifndef ROWPRESS_API_CONTEXT_H
#define ROWPRESS_API_CONTEXT_H

#include <filesystem>
#include <string>
#include <vector>

#include "api/config.h"
#include "api/dataset.h"
#include "api/job.h"
#include "api/registry.h"
#include "chr/experiments.h"
#include "chr/overlap.h"
#include "core/engine.h"
#include "device/die_config.h"

namespace rp::api {

/**
 * The base options every experiment accepts (--locations, --dies,
 * --temp is per-experiment, --seed, --threads, --scale) with their
 * legacy environment aliases.
 */
ConfigSchema baseSchema();

class ExperimentContext
{
  public:
    /**
     * @p emit receives every result the experiment produces as a
     * typed JobEvent (Dataset / Note / RawCsv) — the Service stamps
     * the job identity and fans the stream out to the attached
     * ResultSinks and protocol observers.  The context never talks
     * to a sink directly; the event stream is the one output path.
     */
    ExperimentContext(ExperimentInfo info, Config config,
                      core::ExperimentEngine &engine,
                      JobEventEmitter emit,
                      std::filesystem::path out_dir = "artifacts");

    const ExperimentInfo &info() const { return info_; }
    Config &config() { return config_; }
    const Config &config() const { return config_; }
    core::ExperimentEngine &engine() { return engine_; }

    /**
     * The artifact directory of this run (`--out`).  Experiments that
     * write format-independent artifacts (the perf.* benchmarks'
     * BENCH_*.json files) place them here.
     */
    const std::filesystem::path &outDir() const { return outDir_; }

    // ---- configuration conveniences ---------------------------------

    /** Tested locations per module (--locations). */
    int locations() const;

    /** Effort multiplier for the heavy experiments (--scale). */
    double scale() const;

    /** Root seed of module construction (--seed). */
    std::uint64_t seed() const;

    /**
     * Die set from --dies: "default" -> the three representative
     * manufacturers, "all" -> all twelve revisions, otherwise a
     * comma-separated list of die ids.  The legacy ROWPRESS_ALL_DIES=1
     * env switch still selects "all" when --dies is not given.
     */
    std::vector<device::DieConfig> dies() const;

    /**
     * Same, but with an experiment-specific default set (used by the
     * figures that compare die revisions); an explicit --dies or
     * ROWPRESS_ALL_DIES=1 overrides it.
     */
    std::vector<device::DieConfig>
    dies(const std::vector<device::DieConfig> &dflt) const;

    /**
     * True when the full twelve-die set was explicitly selected
     * (`--dies all` or legacy ROWPRESS_ALL_DIES=1) — the switch the
     * figures with an extra all-dies variant key their extended
     * sweeps on.
     */
    bool allDiesSelected() const;

    /** ModuleConfig for (@p die, @p temp_c) honouring --locations/--seed. */
    chr::ModuleConfig moduleConfig(const device::DieConfig &die,
                                   double temp_c) const;

    // ---- result emission --------------------------------------------

    void emit(const Dataset &d);
    void note(const std::string &text);
    void notef(const char *fmt, ...)
#if defined(__GNUC__)
        __attribute__((format(printf, 2, 3)))
#endif
        ;
    void rawCsv(const std::string &name,
                const std::function<void(std::ostream &)> &writer);

    /** Tidy ACmin sweep artifact via chr::writeAcminSweepCsv. */
    void emitAcminSweepRaw(const std::string &name,
                           const std::string &die_id, double temp_c,
                           chr::AccessKind kind, chr::DataPattern pattern,
                           const std::vector<chr::SweepPoint> &sweep);

    /** Tidy tAggONmin artifact via chr::writeTAggOnMinCsv. */
    void emitTAggOnMinRaw(const std::string &name,
                          const std::string &die_id, double temp_c,
                          const std::vector<chr::TAggOnMinPoint> &points);

    /** Tidy overlap artifact via chr::writeOverlapCsv. */
    void emitOverlapRaw(const std::string &name,
                        const std::string &die_id,
                        const std::vector<chr::OverlapResult> &results);

  private:
    ExperimentInfo info_;
    Config config_;
    core::ExperimentEngine &engine_;
    JobEventEmitter emit_;
    std::filesystem::path outDir_;
};

} // namespace rp::api

#endif // ROWPRESS_API_CONTEXT_H
