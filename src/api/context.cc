#include "api/context.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "chr/export.h"

namespace rp::api {

ConfigSchema
baseSchema()
{
    ConfigSchema schema;
    schema.add({"locations", OptionType::Int, "10",
                "ROWPRESS_BENCH_LOCATIONS",
                "tested row locations per module", 1.0, true});
    schema.add({"dies", OptionType::String, "default", "ROWPRESS_DIES",
                "die set: default | all | comma-separated die ids"});
    schema.add({"scale", OptionType::Double, "1",
                "ROWPRESS_BENCH_SCALE",
                "effort multiplier for the heavy experiments", 0.0,
                true});
    schema.add({"seed", OptionType::Int, "1", "RP_SEED",
                "root seed for module construction and searches", 0.0,
                true, "ROWPRESS_SEED"});
    schema.add({"threads", OptionType::Int, "0", "RP_THREADS",
                "engine worker threads (0 = hardware concurrency)",
                0.0, true});
    schema.add({"cache-dir", OptionType::String, "", "RP_CACHE_DIR",
                "on-disk ThresholdStore snapshot cache directory "
                "(empty = no persistence)"});
    return schema;
}

ExperimentContext::ExperimentContext(ExperimentInfo info, Config config,
                                     core::ExperimentEngine &engine,
                                     JobEventEmitter emit,
                                     std::filesystem::path out_dir)
    : info_(std::move(info)),
      config_(std::move(config)),
      engine_(engine),
      emit_(std::move(emit)),
      outDir_(std::move(out_dir))
{
}

int
ExperimentContext::locations() const
{
    return config_.getInt("locations");
}

double
ExperimentContext::scale() const
{
    return config_.getDouble("scale");
}

std::uint64_t
ExperimentContext::seed() const
{
    return std::uint64_t(config_.getInt("seed"));
}

std::vector<device::DieConfig>
ExperimentContext::dies() const
{
    return dies({device::dieS8GbB(), device::dieH16GbA(),
                 device::dieM16GbF()});
}

std::vector<device::DieConfig>
ExperimentContext::dies(const std::vector<device::DieConfig> &dflt) const
{
    const std::string &spec = config_.getString("dies");
    if (config_.origin("dies") == ConfigLayer::Default) {
        // Legacy switch: ROWPRESS_ALL_DIES=1 selects the full set.
        if (envInt("ROWPRESS_ALL_DIES", 0) != 0)
            return device::allDies();
        return dflt;
    }
    if (spec == "default")
        return dflt;
    if (spec == "all")
        return device::allDies();
    std::vector<device::DieConfig> out;
    std::stringstream ss(spec);
    std::string id;
    while (std::getline(ss, id, ',')) {
        if (id.empty())
            continue;
        // dieById() is fatal on a miss; pre-validate for a clean error.
        bool found = false;
        for (const auto &d : device::allDies()) {
            if (d.id == id) {
                out.push_back(d);
                found = true;
                break;
            }
        }
        if (!found)
            throw ConfigError("--dies: unknown die id '" + id + "'");
    }
    if (out.empty())
        throw ConfigError("--dies: no die ids in '" + spec + "'");
    return out;
}

bool
ExperimentContext::allDiesSelected() const
{
    if (config_.origin("dies") == ConfigLayer::Default)
        return envInt("ROWPRESS_ALL_DIES", 0) != 0;
    return config_.getString("dies") == "all";
}

chr::ModuleConfig
ExperimentContext::moduleConfig(const device::DieConfig &die,
                                double temp_c) const
{
    chr::ModuleConfig cfg;
    cfg.die = die;
    cfg.numLocations = locations();
    cfg.temperatureC = temp_c;
    cfg.seed = seed();
    return cfg;
}

void
ExperimentContext::emit(const Dataset &d)
{
    JobEvent event;
    event.type = JobEventType::Dataset;
    event.dataset = &d;
    emit_(std::move(event));
}

void
ExperimentContext::note(const std::string &text)
{
    JobEvent event;
    event.type = JobEventType::Note;
    event.text = text;
    emit_(std::move(event));
}

void
ExperimentContext::notef(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string buf(n > 0 ? std::size_t(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(&buf[0], buf.size() + 1, fmt, args2);
    va_end(args2);
    note(buf);
}

void
ExperimentContext::rawCsv(
    const std::string &name,
    const std::function<void(std::ostream &)> &writer)
{
    JobEvent event;
    event.type = JobEventType::RawCsv;
    event.name = name;
    event.bodyWriter = writer;
    emit_(std::move(event));
}

void
ExperimentContext::emitAcminSweepRaw(
    const std::string &name, const std::string &die_id, double temp_c,
    chr::AccessKind kind, chr::DataPattern pattern,
    const std::vector<chr::SweepPoint> &sweep)
{
    rawCsv(name, [&](std::ostream &os) {
        chr::writeAcminSweepCsv(os, die_id, temp_c, kind, pattern,
                                sweep);
    });
}

void
ExperimentContext::emitTAggOnMinRaw(
    const std::string &name, const std::string &die_id, double temp_c,
    const std::vector<chr::TAggOnMinPoint> &points)
{
    rawCsv(name, [&](std::ostream &os) {
        chr::writeTAggOnMinCsv(os, die_id, temp_c, points);
    });
}

void
ExperimentContext::emitOverlapRaw(
    const std::string &name, const std::string &die_id,
    const std::vector<chr::OverlapResult> &results)
{
    rawCsv(name, [&](std::ostream &os) {
        chr::writeOverlapCsv(os, die_id, results);
    });
}

} // namespace rp::api
