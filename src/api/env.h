/**
 * @file
 * Validated environment/text parsing for the rp::api configuration
 * layer.
 *
 * Replaces the ad-hoc `rpb::envInt` (atoi, silently accepting garbage
 * and negative values) used by the old per-figure binaries: every
 * value is parsed strictly — the whole string must be a number of the
 * declared type and must satisfy the declared lower bound — and a
 * violation raises a ConfigError naming the variable and the
 * offending text instead of silently running with a bogus value.
 */

#ifndef ROWPRESS_API_ENV_H
#define ROWPRESS_API_ENV_H

#include <stdexcept>
#include <string>

namespace rp::api {

/** Configuration / CLI error; the CLI maps it to exit code 2. */
class ConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Parse @p text as a whole-string integer.  @p what names the value
 * in the ConfigError message (e.g. "RP_THREADS" or "--locations").
 */
long long parseInt(const std::string &text, const std::string &what);

/** Parse @p text as a whole-string floating-point number. */
double parseDouble(const std::string &text, const std::string &what);

/** Parse "1"/"0"/"true"/"false"/"yes"/"no"/"on"/"off". */
bool parseBool(const std::string &text, const std::string &what);

/**
 * Read an integer environment variable: unset returns @p def; a set
 * but malformed or below-@p min_value value raises ConfigError.
 */
int envInt(const char *name, int def, long long min_value = 0);

/** Floating-point counterpart of envInt. */
double envDouble(const char *name, double def, double min_value = 0.0);

} // namespace rp::api

#endif // ROWPRESS_API_ENV_H
