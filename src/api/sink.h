/**
 * @file
 * ResultSink: pluggable output backends for experiment results.
 *
 * An ExperimentContext forwards every emitted Dataset / note / raw
 * tidy-CSV artifact to each attached sink:
 *
 *  - TableSink renders datasets as aligned ASCII tables on a stream
 *    (the classic bench-binary output);
 *  - CsvSink writes one tidy CSV file per dataset plus the raw
 *    characterization exports (chr/export writers) under
 *    `<out>/<experiment>/`;
 *  - JsonSink collects the whole experiment into a single
 *    `<out>/<experiment>/result.json`.
 *
 * Artifact files contain no timestamps or timing, so sink output is a
 * pure function of the experiment results — byte-identical across
 * thread counts and reruns.
 */

#ifndef ROWPRESS_API_SINK_H
#define ROWPRESS_API_SINK_H

#include <filesystem>
#include <functional>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "api/dataset.h"
#include "api/job.h"
#include "api/registry.h"

namespace rp::api {

/**
 * Output backend interface; methods arrive in emission order.
 *
 * Since the Service redesign, sinks are consumers of the typed
 * JobEvent stream: the Service translates a job's events onto these
 * virtuals through applyJobEvent(), which is the only call path in
 * `rowpress run` and `rowpress serve` alike.  The virtuals survive as
 * the rendering interface (and for tests that drive a sink directly).
 */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Format name ("table", "csv", "json"). */
    virtual std::string formatName() const = 0;

    virtual void beginExperiment(const ExperimentInfo &info);
    /**
     * The job's fully resolved Config (defaults < env < overlay),
     * delivered right after beginExperiment.  JsonSink embeds it in
     * result.json so every artifact is reproducible from its own
     * metadata; default: ignored.
     */
    virtual void resolvedConfig(const std::vector<ConfigValue> &config);
    virtual void dataset(const Dataset &d) = 0;
    /** Free-form commentary (paper-shape notes); default: ignored. */
    virtual void note(const std::string &text);
    /**
     * Wall-clock of the finished experiment (ms).  Only invoked when
     * the user opts in (`rowpress run --time`), because timing output
     * is inherently non-deterministic; default: ignored.  TableSink
     * renders it as an elapsed-time line under the experiment.
     */
    virtual void timing(double elapsed_ms);
    /**
     * Raw tidy-CSV artifact: @p writer streams the file body (one of
     * the chr/export writers).  Default: ignored; CsvSink writes
     * `<out>/<experiment>/<name>.csv`.
     */
    virtual void rawCsv(const std::string &name,
                        const std::function<void(std::ostream &)> &writer);
    virtual void endExperiment();
};

/** ASCII renderer on an ostream (stdout in the CLI). */
class TableSink : public ResultSink
{
  public:
    explicit TableSink(std::ostream &os) : os_(os) {}

    std::string formatName() const override { return "table"; }
    void beginExperiment(const ExperimentInfo &info) override;
    void dataset(const Dataset &d) override;
    void note(const std::string &text) override;
    void timing(double elapsed_ms) override;

  private:
    std::ostream &os_;
};

/** Tidy-CSV writer: one file per dataset / raw artifact. */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::filesystem::path out_dir)
        : outDir_(std::move(out_dir)) {}

    std::string formatName() const override { return "csv"; }
    void beginExperiment(const ExperimentInfo &info) override;
    void dataset(const Dataset &d) override;
    void rawCsv(const std::string &name,
                const std::function<void(std::ostream &)> &writer)
        override;

  private:
    std::filesystem::path filePath(const std::string &stem);

    std::filesystem::path outDir_;
    std::filesystem::path expDir_;
    std::set<std::string> usedStems_;
};

/** JSON collector: one result.json per experiment. */
class JsonSink : public ResultSink
{
  public:
    explicit JsonSink(std::filesystem::path out_dir)
        : outDir_(std::move(out_dir)) {}

    std::string formatName() const override { return "json"; }
    void beginExperiment(const ExperimentInfo &info) override;
    void resolvedConfig(const std::vector<ConfigValue> &config) override;
    void dataset(const Dataset &d) override;
    void note(const std::string &text) override;
    void endExperiment() override;

  private:
    std::filesystem::path outDir_;
    ExperimentInfo info_;
    std::vector<ConfigValue> config_;
    std::vector<Dataset> datasets_;
    std::vector<std::string> notes_;
};

/**
 * Translate one JobEvent onto a ResultSink: Started maps to
 * beginExperiment + resolvedConfig, Dataset/Note/RawCsv/Timing to
 * their virtuals, and a successful Finished to endExperiment (a
 * failed or cancelled job never finalizes its sinks, matching the
 * pre-service CLI behavior of leaving no result.json on failure).
 * Queued and Progress events render nothing.
 */
void applyJobEvent(ResultSink &sink, const JobEvent &event);

/** JSON string escaping (exposed for tests). */
std::string jsonEscape(const std::string &s);

/**
 * True when @p text is a complete finite number (JSON emits it
 * unquoted, preserving the exact formatted value).
 */
bool looksNumeric(const std::string &text);

/**
 * Build the sink for @p format ("table" | "csv" | "json"); file sinks
 * write under @p out_dir, "table" renders to @p os.  Throws
 * ConfigError on an unknown format name.
 */
std::unique_ptr<ResultSink> makeSink(const std::string &format,
                                     const std::filesystem::path &out_dir,
                                     std::ostream &os);

} // namespace rp::api

#endif // ROWPRESS_API_SINK_H
