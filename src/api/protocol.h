/**
 * @file
 * The `rowpress serve` wire protocol: line-delimited JSON over
 * stdin/stdout (and, optionally, a TCP socket).
 *
 * Requests are one JSON object per line with an "op" member:
 *
 *   {"op":"submit","experiment":"fig06","config":{"temp":"65"},
 *    "formats":["csv","json"],"out":"artifacts/job1"}
 *   {"op":"status"}            {"op":"status","job":3}
 *   {"op":"list","glob":"fig*"}
 *   {"op":"cancel","job":3}
 *   {"op":"cache"}             {"op":"cache","evict":true}
 *   {"op":"shutdown"}          {"op":"shutdown","force":true}
 *
 * Every request gets exactly one single-line response object with
 * "ok" (and "error" when false); an optional "tag" member is echoed
 * verbatim for client-side correlation.  Job lifecycle is streamed
 * asynchronously as event lines ({"event":"queued"|"started"|
 * "progress"|"dataset"|"note"|"artifact"|"finished",...}) interleaved
 * between responses; lines are atomic, so a line-oriented client
 * never sees a torn message.
 *
 * This header also hosts the minimal JSON value model the protocol
 * parses into / serializes from — deliberately tiny (objects, arrays,
 * strings, raw-text numbers, bools, null) so the repo takes no
 * dependency for it.
 */

#ifndef ROWPRESS_API_PROTOCOL_H
#define ROWPRESS_API_PROTOCOL_H

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "api/job.h"

namespace rp::api {

class Service;

/** Minimal JSON document value (parse result / response builder). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    /**
     * String contents (Kind::String) or the raw numeric text exactly
     * as parsed/given (Kind::Number) — numbers round-trip textually,
     * so "65" never turns into "65.000000" on the way to a Config.
     */
    std::string text;
    std::vector<JsonValue> items; ///< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue number(const std::string &raw_text);
    static JsonValue number(long long v);
    static JsonValue number(double v);
    static JsonValue string(const std::string &s);
    static JsonValue array();
    static JsonValue object();

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    JsonValue &add(const std::string &key, JsonValue v); ///< Object.
    JsonValue &push(JsonValue v);                        ///< Array.

    /**
     * Scalar as the text a Config accepts: string/number text,
     * "1"/"0" for bools.  Throws ConfigError for arrays/objects/null.
     */
    std::string scalarText(const std::string &what) const;
};

/**
 * Parse one complete JSON document from @p text (trailing whitespace
 * allowed, nothing else).  Throws ConfigError on malformed input.
 */
JsonValue parseJson(const std::string &text);

/**
 * Serialize: compact single-line form when @p indent < 0 (the wire
 * format), pretty-printed with @p indent spaces per level otherwise.
 */
void writeJson(std::ostream &os, const JsonValue &value,
               int indent = -1);
std::string toJson(const JsonValue &value, int indent = -1);

/**
 * Machine-readable experiment/option listing: every registered
 * experiment matching any of @p patterns (globs), with its full
 * option schema (base + declared).  Shared by `rowpress list
 * --format json` and the serve protocol's `list` verb.
 */
JsonValue experimentListJson(const std::vector<std::string> &patterns);

/** The event line for @p event (no trailing newline). */
std::string jobEventLine(const JobEvent &event);

/**
 * Run one protocol session: read request lines from @p in until EOF
 * or a shutdown request, writing responses and the job-event stream
 * to @p out.  EOF and plain shutdown drain in-flight jobs before
 * returning (so `printf ... | rowpress serve` runs everything);
 * {"op":"shutdown","force":true} cancels instead.  Returns the
 * process exit code (0, or 1 after an I/O failure on @p out).
 */
int serveSession(Service &service, std::istream &in, std::ostream &out);

/** Supervision knobs of the TCP front-end (`rowpress serve` flags). */
struct ServeOptions
{
    /** Listen port on 127.0.0.1. */
    int port = 0;

    /**
     * Per-session cap on jobs submitted and not yet terminal; a
     * submit past it is rejected with AdmissionError
     * ("session_limit").  0 = uncapped.  Bounds what one client can
     * pin in the service regardless of the global queue bound.
     */
    int sessionMaxInflight = 8;

    /**
     * Disconnect a session whose client sends nothing for this long
     * (its in-flight jobs keep running; only the event stream ends).
     * 0 = never.
     */
    int idleTimeoutMs = 0;

    /**
     * SIGTERM/SIGINT drain budget: the server stops accepting, sheds
     * new submissions, and gives in-flight jobs this long to finish
     * before cancelling whatever remains.
     */
    int graceMs = 5000;
};

/**
 * Serve over TCP: accept connections on 127.0.0.1:opts.port, one
 * concurrent protocol session per connection, each on its own thread
 * with its own client id (a session streams only its own jobs'
 * events).  The Service outlives sessions, so warm caches and job
 * history persist across them.  accept() fd exhaustion (EMFILE/
 * ENFILE/ENOBUFS) retries with bounded backoff instead of exiting.
 *
 * Returns the process exit code:
 *   0 — a client's shutdown op drained the service cleanly;
 *   1 — unrecoverable socket/accept failure;
 *   3 — SIGTERM/SIGINT, and in-flight jobs drained within graceMs;
 *   4 — SIGTERM/SIGINT, and the grace expired (remaining jobs were
 *       cancelled).
 *
 * Only built on POSIX; throws ConfigError elsewhere or when the port
 * cannot be bound.
 */
int serveTcp(Service &service, const ServeOptions &opts,
             std::ostream &log);

} // namespace rp::api

#endif // ROWPRESS_API_PROTOCOL_H
