/**
 * @file
 * Versioned, checksummed binary snapshots of a ThresholdStore's built
 * tiers.
 *
 * Every tier of a ThresholdStore is a pure deterministic function of
 * its content key (die targets, bits-per-row, seed), so the expensive
 * candidate enumeration and word-mask build can be done once and
 * reused by every later process.  A snapshot serializes both tiers —
 * the candidate SoA lists with their row minima and the RowWordMasks
 * word-occupancy tier — into a little-endian format with a fixed
 * header and a section table of fixed offsets, so a reader can mmap
 * the file and copy each SoA array straight into the tier vectors
 * with one memcpy per array (the arrays are stored contiguously,
 * field-major, exactly as the in-memory layout wants them).
 *
 * Trust model: a snapshot is only adopted when
 *
 *  - magic, format version, and structural bounds check out;
 *  - the FNV-1a checksum over the whole file matches;
 *  - the embedded content key equals the store's key; and
 *  - the build-invariants hash matches invariantsHashOf(store) — a
 *    fingerprint of the derived model parameters, the bucket-ladder
 *    edges, the candidate quantile cap, and probe values of the
 *    actual generation math, so any change to how tiers are built
 *    invalidates every old snapshot automatically (stale math is
 *    never served).
 *
 * Any violation raises SnapshotError; callers (persist::SnapshotCache)
 * treat that as "no snapshot" and fall back to a clean rebuild.  The
 * non-negotiable invariant is that a store warmed from a snapshot is
 * bit-identical to a freshly built one — the doubles are stored as
 * raw IEEE-754 bit patterns and never pass through text.
 */

#ifndef ROWPRESS_PERSIST_SNAPSHOT_H
#define ROWPRESS_PERSIST_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "device/threshold_store.h"

namespace rp::persist {

/** Malformed/mismatched snapshot: callers fall back to a rebuild. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** "RPSNAP01" little-endian; new layouts bump the trailing digits. */
constexpr std::uint64_t kSnapshotMagic = 0x313050414e535052ULL;
constexpr std::uint32_t kSnapshotFormatVersion = 1;

/** Canonical snapshot file extension (cache files, ls/gc/import). */
constexpr const char *kSnapshotExtension = ".rpsnap";

/** FNV-1a 64 over @p size bytes, chainable through @p seed. */
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/**
 * Build-invariants fingerprint of @p store: the derived
 * CellModelParams, all bucket-ladder edges, the candidate quantile
 * cap, and probe outputs of computeCellProps / computeRowWordZ /
 * weakQuantileCutoff.  Hashing probe *outputs* (not just constants)
 * means a change to the draw sequence, the probit approximation, or
 * any expression shape changes the hash even when no named constant
 * moved — old snapshots then mismatch and rebuild.
 */
std::uint64_t invariantsHashOf(const device::ThresholdStore &store);

/** Header summary of one snapshot blob, for `rowpress cache ls`. */
struct SnapshotInfo
{
    bool valid = false;      ///< Structure + checksum fully verified.
    std::string error;       ///< Why !valid (one line).
    std::uint32_t version = 0;
    std::uint64_t invariantsHash = 0;
    std::uint64_t seed = 0;
    int bitsPerRow = 0;
    std::string key;         ///< Raw content key (binary).
    std::string dieId;       ///< Readable die-id prefix of the key.
    std::size_t candidateRows = 0;
    std::size_t wordMaskRows = 0;
    std::size_t bytes = 0;
};

/** Tier row counts adopted by loadSnapshot. */
struct LoadCounts
{
    std::size_t candidateRows = 0;
    std::size_t wordMaskRows = 0;
};

/**
 * Serialize every built tier of @p store (rows sorted by key, so the
 * bytes are a pure function of the built-tier *set*, not of build or
 * thread order) under content key @p key.
 */
std::vector<std::uint8_t> writeSnapshot(
    const device::ThresholdStore &store, const std::string &key);

/**
 * Validate @p data against @p expected_key and @p into's geometry and
 * invariants hash, then adopt every tier row into @p into (insert-if-
 * absent: rows already built win, and are bit-identical anyway).
 * Throws SnapshotError on any mismatch; @p into is only modified
 * after full validation.
 */
LoadCounts loadSnapshot(const std::uint8_t *data, std::size_t size,
                        const std::string &expected_key,
                        const device::ThresholdStore &into);

/**
 * Parse and fully verify (structure + checksum) a snapshot blob
 * without a target store; never throws — failures land in
 * SnapshotInfo::error.
 */
SnapshotInfo inspectSnapshot(const std::uint8_t *data,
                             std::size_t size);

} // namespace rp::persist

#endif // ROWPRESS_PERSIST_SNAPSHOT_H
