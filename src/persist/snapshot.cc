#include "persist/snapshot.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "common/stats.h"

namespace rp::persist {

namespace {

// The format stores raw little-endian scalars; a big-endian port
// would need byte swaps in putAt/getAt.
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "snapshot format is little-endian");

/**
 * Bumped when tier-generation math changes in a way the parameter /
 * ladder / probe fingerprint cannot see (it has never needed to move
 * yet — the probes catch expression changes — but the escape hatch
 * must exist).
 */
constexpr std::uint64_t kBuildMathVersion = 1;

// Fixed header layout (byte offsets).  The header is 96 bytes; the
// section table of kSectionCount 24-byte entries follows at offset
// kHeaderBytes, and every section is 8-byte aligned.
constexpr std::size_t kHeaderBytes = 96;
constexpr std::uint32_t kSectionCount = 9;
constexpr std::size_t kSectionEntryBytes = 24;
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffHeaderBytes = 12;
constexpr std::size_t kOffInvariants = 16;
constexpr std::size_t kOffSeed = 24;
constexpr std::size_t kOffBitsPerRow = 32;
constexpr std::size_t kOffSectionCount = 36;
constexpr std::size_t kOffCandRows = 40;
constexpr std::size_t kOffWmRows = 48;
constexpr std::size_t kOffFileBytes = 56;
constexpr std::size_t kOffChecksum = 64;
constexpr std::size_t kOffLadderH = 72;
constexpr std::size_t kOffLadderP = 76;
constexpr std::size_t kOffLadderR = 80;
constexpr std::size_t kOffKeyBytes = 88;

/** Section kinds, in file order. */
enum SectionKind : std::uint32_t
{
    kSecKey = 1,       ///< Raw content key bytes.
    kSecCandIndex = 2, ///< Per-row candidate directory (48 B each).
    kSecCandBit = 3,   ///< Concatenated int32 bit arrays.
    kSecCandThetaH = 4,///< Concatenated f64 thetaH arrays.
    kSecCandThetaP = 5,///< Concatenated f64 thetaP arrays.
    kSecCandTauRet = 6,///< Concatenated f64 tauRet arrays.
    kSecCandFlags = 7, ///< Interleaved (anti, domSide) byte pairs.
    kSecWmIndex = 8,   ///< Per-row word-mask directory (40 B each).
    kSecWmWords = 9,   ///< Concatenated u64 mask arrays.
};

constexpr std::size_t kCandIndexEntryBytes = 48;
constexpr std::size_t kWmIndexEntryBytes = 40;

template <typename T>
void
putAt(std::vector<std::uint8_t> &out, std::size_t off, T v)
{
    std::memcpy(out.data() + off, &v, sizeof v);
}

template <typename T>
T
getAt(const std::uint8_t *data, std::size_t off)
{
    T v;
    std::memcpy(&v, data + off, sizeof v);
    return v;
}

constexpr std::size_t
align8(std::size_t n)
{
    return (n + 7) & ~std::size_t(7);
}

/** u64 mask words one RowWordMasks row occupies in kSecWmWords. */
std::size_t
maskWordsOf(std::size_t num_groups, std::size_t ladder_h,
            std::size_t ladder_p, std::size_t ladder_r)
{
    return num_groups * (1 + ladder_h + ladder_p + ladder_r);
}

/** One parsed section-table entry. */
struct Section
{
    std::uint32_t kind = 0;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
};

/** Fully bounds- and checksum-verified view of a snapshot blob. */
struct Parsed
{
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
    std::uint64_t invariantsHash = 0;
    std::uint64_t seed = 0;
    std::uint32_t bitsPerRow = 0;
    std::uint64_t candRows = 0;
    std::uint64_t wmRows = 0;
    std::uint32_t ladderH = 0;
    std::uint32_t ladderP = 0;
    std::uint32_t ladderR = 0;
    std::string key;
    Section sec[kSectionCount + 1]; ///< Indexed by SectionKind.
    std::size_t totalCells = 0;
    std::size_t totalMaskWords = 0;

    const std::uint8_t *
    at(SectionKind kind, std::size_t byte_offset = 0) const
    {
        return data + sec[kind].offset + byte_offset;
    }
};

[[noreturn]] void
fail(const std::string &what)
{
    throw SnapshotError("snapshot: " + what);
}

std::uint64_t
checksumOf(const std::uint8_t *data, std::size_t size)
{
    // The whole file with the checksum field treated as zero.
    static const std::uint8_t zeros[sizeof(std::uint64_t)] = {};
    std::uint64_t h = fnv1a(data, kOffChecksum);
    h = fnv1a(zeros, sizeof(zeros), h);
    return fnv1a(data + kOffChecksum + 8, size - kOffChecksum - 8, h);
}

Parsed
parse(const std::uint8_t *data, std::size_t size)
{
    Parsed p;
    p.data = data;
    p.size = size;
    if (!data || size < kHeaderBytes)
        fail("too small for a header (" + std::to_string(size) +
             " bytes)");
    if (getAt<std::uint64_t>(data, kOffMagic) != kSnapshotMagic)
        fail("bad magic");
    const auto version = getAt<std::uint32_t>(data, kOffVersion);
    if (version != kSnapshotFormatVersion)
        fail("format version " + std::to_string(version) +
             " != " + std::to_string(kSnapshotFormatVersion));
    if (getAt<std::uint32_t>(data, kOffHeaderBytes) != kHeaderBytes)
        fail("bad header size");
    if (getAt<std::uint32_t>(data, kOffSectionCount) != kSectionCount)
        fail("bad section count");
    if (getAt<std::uint64_t>(data, kOffFileBytes) != size)
        fail("file size mismatch (truncated?)");
    if (checksumOf(data, size) !=
        getAt<std::uint64_t>(data, kOffChecksum))
        fail("checksum mismatch (corrupt file)");

    p.invariantsHash = getAt<std::uint64_t>(data, kOffInvariants);
    p.seed = getAt<std::uint64_t>(data, kOffSeed);
    p.bitsPerRow = getAt<std::uint32_t>(data, kOffBitsPerRow);
    p.candRows = getAt<std::uint64_t>(data, kOffCandRows);
    p.wmRows = getAt<std::uint64_t>(data, kOffWmRows);
    p.ladderH = getAt<std::uint32_t>(data, kOffLadderH);
    p.ladderP = getAt<std::uint32_t>(data, kOffLadderP);
    p.ladderR = getAt<std::uint32_t>(data, kOffLadderR);
    const auto key_bytes = getAt<std::uint64_t>(data, kOffKeyBytes);

    const std::size_t payload_start = align8(
        kHeaderBytes + kSectionCount * kSectionEntryBytes);
    for (std::uint32_t i = 0; i < kSectionCount; ++i) {
        const std::size_t entry =
            kHeaderBytes + i * kSectionEntryBytes;
        Section s;
        s.kind = getAt<std::uint32_t>(data, entry);
        s.offset = getAt<std::uint64_t>(data, entry + 8);
        s.bytes = getAt<std::uint64_t>(data, entry + 16);
        if (s.kind != i + 1)
            fail("section table out of order");
        if (s.offset % 8 != 0 || s.offset < payload_start ||
            s.offset > size || s.bytes > size - s.offset)
            fail("section " + std::to_string(s.kind) +
                 " out of bounds");
        p.sec[s.kind] = s;
    }

    if (p.sec[kSecKey].bytes != key_bytes)
        fail("key section size mismatch");
    p.key.assign(reinterpret_cast<const char *>(p.at(kSecKey)),
                 key_bytes);

    if (p.sec[kSecCandIndex].bytes !=
        p.candRows * kCandIndexEntryBytes)
        fail("candidate index size mismatch");
    if (p.sec[kSecCandBit].bytes % sizeof(std::int32_t) != 0)
        fail("candidate bit section misaligned");
    p.totalCells =
        p.sec[kSecCandBit].bytes / sizeof(std::int32_t);
    for (SectionKind k : {kSecCandThetaH, kSecCandThetaP,
                          kSecCandTauRet})
        if (p.sec[k].bytes != p.totalCells * sizeof(double))
            fail("candidate threshold section size mismatch");
    if (p.sec[kSecCandFlags].bytes != p.totalCells * 2)
        fail("candidate flags section size mismatch");

    if (p.sec[kSecWmIndex].bytes != p.wmRows * kWmIndexEntryBytes)
        fail("word-mask index size mismatch");
    if (p.sec[kSecWmWords].bytes % sizeof(std::uint64_t) != 0)
        fail("word-mask data section misaligned");
    p.totalMaskWords =
        p.sec[kSecWmWords].bytes / sizeof(std::uint64_t);

    // Every directory entry must stay inside its data section.
    for (std::uint64_t r = 0; r < p.candRows; ++r) {
        const std::size_t e = r * kCandIndexEntryBytes;
        const auto cell_off =
            getAt<std::uint64_t>(p.at(kSecCandIndex, e), 8);
        const auto cell_count =
            getAt<std::uint64_t>(p.at(kSecCandIndex, e), 16);
        if (cell_off > p.totalCells ||
            cell_count > p.totalCells - cell_off)
            fail("candidate row entry out of bounds");
    }
    const std::size_t row_words = maskWordsOf(
        1, p.ladderH, p.ladderP, p.ladderR); // per group
    for (std::uint64_t r = 0; r < p.wmRows; ++r) {
        const std::size_t e = r * kWmIndexEntryBytes;
        const auto word_off =
            getAt<std::uint64_t>(p.at(kSecWmIndex, e), 8);
        const auto num_groups =
            getAt<std::uint32_t>(p.at(kSecWmIndex, e), 20);
        const std::uint64_t need =
            std::uint64_t(num_groups) * row_words;
        if (word_off > p.totalMaskWords ||
            need > p.totalMaskWords - word_off)
            fail("word-mask row entry out of bounds");
    }
    return p;
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t seed)
{
    std::uint64_t h = seed;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
invariantsHashOf(const device::ThresholdStore &store)
{
    std::uint64_t h = hashU64(kSnapshotMagic, kBuildMathVersion);
    const auto mix_u = [&h](std::uint64_t v) { h = hashU64(h, v); };
    const auto mix_d = [&mix_u](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        mix_u(bits);
    };

    const device::CellModelParams &p = store.params();
    mix_d(p.muH);
    mix_d(p.sigmaH);
    mix_d(p.sigmaRowH);
    mix_d(p.sigmaWordH);
    mix_d(p.muP);
    mix_d(p.sigmaP);
    mix_d(p.sigmaRowP);
    mix_d(p.sigmaWordP);
    mix_d(p.muRet);
    mix_d(p.sigmaRet);
    mix_d(p.lambdaRp);
    mix_d(p.lambdaRh);
    mix_d(p.kappaDs);
    mix_d(p.rhoWeakSide);
    mix_d(p.gammaRhAggr);
    mix_d(p.gammaRpAggr0);
    mix_d(p.gammaRpAggrT);
    mix_u(std::uint64_t(p.tauOff));
    mix_d(p.offFloor);
    mix_u(std::uint64_t(p.pressOnset));
    mix_d(p.dist2Rh);
    mix_d(p.dist2Rp);
    mix_d(p.dist3Rh);
    mix_d(p.dist3Rp);
    mix_d(p.antiFraction);

    // Bucket ladders: every edge, per mechanism.
    for (const device::BucketLadder *ladder :
         {&store.hammerLadder(), &store.pressLadder(),
          &store.retentionLadder()}) {
        mix_u(ladder->size());
        for (std::size_t k = 0; k < ladder->size(); ++k)
            mix_d(ladder->edge(k));
    }

    // Candidate-tier quantile cap (geometry-dependent constant).
    mix_u(std::uint64_t(store.bitsPerRow()));
    mix_d(store.candidateCapQuantile());

    // Functional probes of the generation math itself: fixed inputs
    // through the real draw/probit/exp pipeline.  Any change to the
    // sequence or expressions moves these outputs.
    const device::CellProps probe =
        device::computeCellProps(p, store.seed(), 0, 1, 2);
    mix_d(probe.thetaH);
    mix_d(probe.thetaP);
    mix_d(probe.tauRet);
    mix_d(probe.uH);
    mix_d(probe.uP);
    const device::RowWordZ z =
        device::computeRowWordZ(store.seed(), 1, 3, 2);
    mix_d(z.rowH);
    mix_d(z.rowP);
    mix_d(z.wordH);
    mix_d(z.wordP);
    mix_d(device::weakQuantileCutoff(1.0, p.muH, p.sigmaH, 0.0));
    return h;
}

std::vector<std::uint8_t>
writeSnapshot(const device::ThresholdStore &store,
              const std::string &key)
{
    const auto rows = store.exportRows();
    const auto masks = store.exportWordMasks();
    const std::size_t ladder_h = store.hammerLadder().size();
    const std::size_t ladder_p = store.pressLadder().size();
    const std::size_t ladder_r = store.retentionLadder().size();

    std::size_t total_cells = 0;
    for (const auto &[row_key, row] : rows) {
        (void)row_key;
        total_cells += row->size();
    }
    std::size_t total_mask_words = 0;
    for (const auto &[row_key, wm] : masks) {
        (void)row_key;
        total_mask_words +=
            maskWordsOf(wm->numGroups, ladder_h, ladder_p, ladder_r);
    }

    // Lay the sections out back to back, 8-byte aligned.
    Section sec[kSectionCount + 1];
    const std::uint64_t sizes[kSectionCount + 1] = {
        0,
        key.size(),
        rows.size() * kCandIndexEntryBytes,
        total_cells * sizeof(std::int32_t),
        total_cells * sizeof(double),
        total_cells * sizeof(double),
        total_cells * sizeof(double),
        total_cells * 2,
        masks.size() * kWmIndexEntryBytes,
        total_mask_words * sizeof(std::uint64_t),
    };
    std::size_t offset = align8(
        kHeaderBytes + kSectionCount * kSectionEntryBytes);
    for (std::uint32_t kind = 1; kind <= kSectionCount; ++kind) {
        sec[kind].kind = kind;
        sec[kind].offset = offset;
        sec[kind].bytes = sizes[kind];
        offset = align8(offset + sizes[kind]);
    }
    const std::size_t file_bytes = offset;

    std::vector<std::uint8_t> out(file_bytes, 0);
    putAt<std::uint64_t>(out, kOffMagic, kSnapshotMagic);
    putAt<std::uint32_t>(out, kOffVersion, kSnapshotFormatVersion);
    putAt<std::uint32_t>(out, kOffHeaderBytes, kHeaderBytes);
    putAt<std::uint64_t>(out, kOffInvariants, invariantsHashOf(store));
    putAt<std::uint64_t>(out, kOffSeed, store.seed());
    putAt<std::uint32_t>(out, kOffBitsPerRow,
                         std::uint32_t(store.bitsPerRow()));
    putAt<std::uint32_t>(out, kOffSectionCount, kSectionCount);
    putAt<std::uint64_t>(out, kOffCandRows, rows.size());
    putAt<std::uint64_t>(out, kOffWmRows, masks.size());
    putAt<std::uint64_t>(out, kOffFileBytes, file_bytes);
    putAt<std::uint32_t>(out, kOffLadderH, std::uint32_t(ladder_h));
    putAt<std::uint32_t>(out, kOffLadderP, std::uint32_t(ladder_p));
    putAt<std::uint32_t>(out, kOffLadderR, std::uint32_t(ladder_r));
    putAt<std::uint64_t>(out, kOffKeyBytes, key.size());
    for (std::uint32_t kind = 1; kind <= kSectionCount; ++kind) {
        const std::size_t entry =
            kHeaderBytes + (kind - 1) * kSectionEntryBytes;
        putAt<std::uint32_t>(out, entry, kind);
        putAt<std::uint64_t>(out, entry + 8, sec[kind].offset);
        putAt<std::uint64_t>(out, entry + 16, sec[kind].bytes);
    }

    std::memcpy(out.data() + sec[kSecKey].offset, key.data(),
                key.size());

    // Candidate tier: directory + field-major concatenated arrays.
    std::size_t cell_off = 0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const auto &[row_key, row] = rows[r];
        const std::size_t e =
            sec[kSecCandIndex].offset + r * kCandIndexEntryBytes;
        putAt<std::uint64_t>(out, e, row_key);
        putAt<std::uint64_t>(out, e + 8, cell_off);
        putAt<std::uint64_t>(out, e + 16, row->size());
        putAt<double>(out, e + 24, row->minThetaH);
        putAt<double>(out, e + 32, row->minThetaP);
        putAt<double>(out, e + 40, row->minTauRet);

        const std::size_t n = row->size();
        std::memcpy(out.data() + sec[kSecCandBit].offset +
                        cell_off * sizeof(std::int32_t),
                    row->bit.data(), n * sizeof(std::int32_t));
        std::memcpy(out.data() + sec[kSecCandThetaH].offset +
                        cell_off * sizeof(double),
                    row->thetaH.data(), n * sizeof(double));
        std::memcpy(out.data() + sec[kSecCandThetaP].offset +
                        cell_off * sizeof(double),
                    row->thetaP.data(), n * sizeof(double));
        std::memcpy(out.data() + sec[kSecCandTauRet].offset +
                        cell_off * sizeof(double),
                    row->tauRet.data(), n * sizeof(double));
        std::uint8_t *flags = out.data() +
                              sec[kSecCandFlags].offset +
                              cell_off * 2;
        for (std::size_t i = 0; i < n; ++i) {
            flags[2 * i] = row->anti[i];
            flags[2 * i + 1] = row->domSide[i];
        }
        cell_off += n;
    }

    // Word-mask tier: directory + per-row (valid, hammer, press,
    // retention) u64 runs.
    std::size_t word_off = 0;
    for (std::size_t r = 0; r < masks.size(); ++r) {
        const auto &[row_key, wm] = masks[r];
        const std::size_t e =
            sec[kSecWmIndex].offset + r * kWmIndexEntryBytes;
        putAt<std::uint64_t>(out, e, row_key);
        putAt<std::uint64_t>(out, e + 8, word_off);
        putAt<std::uint32_t>(out, e + 16,
                             std::uint32_t(wm->numWords));
        putAt<std::uint32_t>(out, e + 20,
                             std::uint32_t(wm->numGroups));
        putAt<double>(out, e + 24, wm->minThetaPLow);
        putAt<double>(out, e + 32, wm->minTauRetLow);

        auto put_words = [&](const std::vector<std::uint64_t> &v) {
            std::memcpy(out.data() + sec[kSecWmWords].offset +
                            word_off * sizeof(std::uint64_t),
                        v.data(), v.size() * sizeof(std::uint64_t));
            word_off += v.size();
        };
        put_words(wm->valid);
        put_words(wm->hammer);
        put_words(wm->press);
        put_words(wm->retention);
    }

    putAt<std::uint64_t>(out, kOffChecksum,
                         checksumOf(out.data(), out.size()));
    return out;
}

LoadCounts
loadSnapshot(const std::uint8_t *data, std::size_t size,
             const std::string &expected_key,
             const device::ThresholdStore &into)
{
    const Parsed p = parse(data, size);
    if (p.key != expected_key)
        fail("content key mismatch (different die/geometry/seed)");
    if (p.seed != into.seed())
        fail("seed mismatch");
    if (int(p.bitsPerRow) != into.bitsPerRow())
        fail("bits-per-row mismatch");
    if (p.invariantsHash != invariantsHashOf(into))
        fail("build-invariants hash mismatch (stale generation math)");
    if (p.ladderH != into.hammerLadder().size() ||
        p.ladderP != into.pressLadder().size() ||
        p.ladderR != into.retentionLadder().size())
        fail("bucket-ladder geometry mismatch");

    const std::size_t expect_words =
        std::size_t(into.bitsPerRow() + 63) / 64;
    const std::size_t expect_groups = (expect_words + 63) / 64;

    LoadCounts counts;
    for (std::uint64_t r = 0; r < p.candRows; ++r) {
        const std::size_t e = r * kCandIndexEntryBytes;
        const auto row_key =
            getAt<std::uint64_t>(p.at(kSecCandIndex, e), 0);
        const auto cell_off =
            getAt<std::uint64_t>(p.at(kSecCandIndex, e), 8);
        const auto n = std::size_t(
            getAt<std::uint64_t>(p.at(kSecCandIndex, e), 16));

        device::RowCandidates row;
        row.minThetaH = getAt<double>(p.at(kSecCandIndex, e), 24);
        row.minThetaP = getAt<double>(p.at(kSecCandIndex, e), 32);
        row.minTauRet = getAt<double>(p.at(kSecCandIndex, e), 40);
        row.bit.resize(n);
        row.thetaH.resize(n);
        row.thetaP.resize(n);
        row.tauRet.resize(n);
        row.anti.resize(n);
        row.domSide.resize(n);
        std::memcpy(row.bit.data(),
                    p.at(kSecCandBit,
                         cell_off * sizeof(std::int32_t)),
                    n * sizeof(std::int32_t));
        std::memcpy(row.thetaH.data(),
                    p.at(kSecCandThetaH, cell_off * sizeof(double)),
                    n * sizeof(double));
        std::memcpy(row.thetaP.data(),
                    p.at(kSecCandThetaP, cell_off * sizeof(double)),
                    n * sizeof(double));
        std::memcpy(row.tauRet.data(),
                    p.at(kSecCandTauRet, cell_off * sizeof(double)),
                    n * sizeof(double));
        const std::uint8_t *flags = p.at(kSecCandFlags, cell_off * 2);
        for (std::size_t i = 0; i < n; ++i) {
            row.anti[i] = flags[2 * i];
            row.domSide[i] = flags[2 * i + 1];
        }
        into.adoptRow(row_key, std::move(row));
        ++counts.candidateRows;
    }

    for (std::uint64_t r = 0; r < p.wmRows; ++r) {
        const std::size_t e = r * kWmIndexEntryBytes;
        const auto row_key =
            getAt<std::uint64_t>(p.at(kSecWmIndex, e), 0);
        auto word_off =
            std::size_t(getAt<std::uint64_t>(p.at(kSecWmIndex, e), 8));
        const auto num_words =
            getAt<std::uint32_t>(p.at(kSecWmIndex, e), 16);
        const auto num_groups =
            getAt<std::uint32_t>(p.at(kSecWmIndex, e), 20);
        if (num_words != expect_words || num_groups != expect_groups)
            fail("word-mask geometry mismatch");

        device::RowWordMasks wm;
        wm.numWords = num_words;
        wm.numGroups = num_groups;
        wm.minThetaPLow = getAt<double>(p.at(kSecWmIndex, e), 24);
        wm.minTauRetLow = getAt<double>(p.at(kSecWmIndex, e), 32);
        auto take = [&](std::vector<std::uint64_t> &v,
                        std::size_t count) {
            v.resize(count);
            std::memcpy(v.data(),
                        p.at(kSecWmWords,
                             word_off * sizeof(std::uint64_t)),
                        count * sizeof(std::uint64_t));
            word_off += count;
        };
        take(wm.valid, num_groups);
        take(wm.hammer, p.ladderH * std::size_t(num_groups));
        take(wm.press, p.ladderP * std::size_t(num_groups));
        take(wm.retention, p.ladderR * std::size_t(num_groups));
        into.adoptWordMasks(row_key, std::move(wm));
        ++counts.wordMaskRows;
    }
    return counts;
}

SnapshotInfo
inspectSnapshot(const std::uint8_t *data, std::size_t size)
{
    SnapshotInfo info;
    info.bytes = size;
    try {
        const Parsed p = parse(data, size);
        info.valid = true;
        info.version = kSnapshotFormatVersion;
        info.invariantsHash = p.invariantsHash;
        info.seed = p.seed;
        info.bitsPerRow = int(p.bitsPerRow);
        info.key = p.key;
        info.dieId = p.key.substr(0, p.key.find('\0'));
        info.candidateRows = std::size_t(p.candRows);
        info.wordMaskRows = std::size_t(p.wmRows);
    } catch (const SnapshotError &e) {
        info.valid = false;
        info.error = e.what();
    }
    return info;
}

} // namespace rp::persist
