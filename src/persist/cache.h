/**
 * @file
 * Shared on-disk warm-start cache of ThresholdStore snapshots.
 *
 * A cache directory (configured per job via `--cache-dir` /
 * `RP_CACHE_DIR`) holds one snapshot file per (die, bits, seed,
 * build-invariants) identity, named by a hash of the content key so
 * every process sharing the directory agrees on the file without
 * coordination.  The lifecycle:
 *
 *  - load: when ThresholdStore::acquire() creates a store, the cache
 *    (via the store's warm-start hook) mmaps the matching snapshot,
 *    validates it (checksum, version, key, invariants hash), and
 *    adopts its tiers.  Any failure — missing file, torn write,
 *    bit-flip, stale format, changed math — logs one warning and
 *    degrades to a cold build.  Loading never throws and never
 *    serves stale math.
 *  - publish: after a job completes, every registered store whose
 *    built tiers grew is serialized to a temp file in the cache
 *    directory and atomically renamed into place, under an advisory
 *    flock and a monotone rule (never replace a snapshot that
 *    already covers at least as many rows), so concurrent serve
 *    processes sharing the directory never observe torn files and
 *    never regress each other's coverage.
 *  - gc: size-capped LRU over file mtimes (a successful load
 *    freshens its file), dropping undecodable files first.
 *
 * Fault points `persist.snapshot.read` / `persist.snapshot.write`
 * plug the chaos harness into both paths.
 */

#ifndef ROWPRESS_PERSIST_CACHE_H
#define ROWPRESS_PERSIST_CACHE_H

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "persist/snapshot.h"

namespace rp::device {
class ThresholdStore;
} // namespace rp::device

namespace rp::persist {

/** Unusable cache directory / rejected import (a user error). */
class CacheError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Disk-cache counters, reported next to the in-memory warm cache. */
struct CacheStats
{
    bool enabled = false;
    std::string dir;
    std::uint64_t hits = 0;      ///< Snapshots adopted into stores.
    std::uint64_t misses = 0;    ///< Loads finding no snapshot file.
    std::uint64_t rejected = 0;  ///< Corrupt/mismatched files skipped.
    std::uint64_t publishes = 0; ///< Snapshot files written.
    std::uint64_t publishSkips = 0;    ///< Disk already current.
    std::uint64_t publishFailures = 0; ///< I/O or injected failures.
    std::uint64_t bytesLoaded = 0;
    std::uint64_t bytesPublished = 0;
};

/** One cache-directory entry (`rowpress cache ls`). */
struct CacheEntry
{
    std::string file;   ///< File name within the directory.
    std::uintmax_t bytes = 0;
    SnapshotInfo info;  ///< Fully verified header summary.
};

/**
 * Process-wide snapshot cache.  configure() arms it (and installs
 * the ThresholdStore warm-start hook); with no directory configured
 * every operation is a cheap no-op.  The mutex guards configuration,
 * counters, and the per-key publication memo only — file I/O and
 * store mutation happen outside it, so loads and publishes of
 * different stores proceed concurrently.
 */
class SnapshotCache
{
  public:
    static SnapshotCache &instance();

    /**
     * Set (or, with "", clear) the cache directory.  Creates the
     * directory if needed; throws CacheError when the path exists
     * but is not a directory or cannot be created — a configuration
     * error surfaced before any job work runs.
     */
    void configure(const std::string &dir);

    bool enabled() const;
    std::string dir() const;
    CacheStats stats() const;

    /**
     * Try to warm @p store from its snapshot file.  Returns whether
     * tiers were adopted; never throws (failures count as misses or
     * rejects and the store builds cold).
     */
    bool tryLoad(const device::ThresholdStore &store);

    /**
     * Serialize every registered store whose built tiers grew since
     * its last publication.  Returns files written; never throws.
     */
    std::size_t publishRegistry();

    /** tryLoad/publishRegistry counter reset (tests). */
    void resetStats();

    /** Canonical snapshot file name of (content key, invariants). */
    static std::string snapshotFileName(const std::string &key,
                                        std::uint64_t invariants_hash);

    // --- directory maintenance (`rowpress cache` verbs); these act
    // on an explicit directory, independent of the configured one ---

    /** Verified listing of @p dir, sorted by file name. */
    static std::vector<CacheEntry> listDir(const std::string &dir);

    struct GcResult
    {
        std::size_t removed = 0;
        std::uintmax_t removedBytes = 0;
        std::uintmax_t keptBytes = 0;
    };

    /**
     * Drop every undecodable snapshot, then the least-recently-used
     * valid ones until the directory holds at most @p max_bytes
     * (SIZE_MAX = invalid-only sweep).
     */
    static GcResult gcDir(const std::string &dir,
                          std::uintmax_t max_bytes);

    /**
     * Validate @p src and install it into @p dir under its canonical
     * name (atomic rename, flock, monotone row-coverage rule).
     * Returns false when the destination already covers it; throws
     * CacheError when @p src is not a valid snapshot.
     */
    static bool installFile(const std::string &src,
                            const std::string &dir);

  private:
    SnapshotCache() = default;

    bool publishStore(const device::ThresholdStore &store,
                      const std::string &dir);
    static void quarantineIfInvalid(const std::string &path);

    mutable core::Mutex mutex_;
    std::string dir_ RP_GUARDED_BY(mutex_);
    CacheStats stats_ RP_GUARDED_BY(mutex_);
    /**
     * Per-content-key (candidateRows, wordMaskRows) as of the last
     * publish/load, so an unchanged store skips serialization on the
     * next sweep.
     */
    struct TierCounts
    {
        std::size_t candidateRows = 0;
        std::size_t wordMaskRows = 0;
    };
    std::map<std::string, TierCounts> published_ RP_GUARDED_BY(mutex_);
};

} // namespace rp::persist

#endif // ROWPRESS_PERSIST_CACHE_H
