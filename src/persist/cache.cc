#include "persist/cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.h"
#include "common/rng.h"
#include "core/fault.h"
#include "device/threshold_store.h"

namespace rp::persist {

namespace fs = std::filesystem;

namespace {

std::string
errnoText(int err)
{
    return std::string(std::strerror(err));
}

/**
 * Read-only mmap of one snapshot file, held under a shared advisory
 * flock for the lifetime of the mapping (the exclusive side is the
 * publisher's side-lock; atomic rename is the primary torn-file
 * guard — a reader that opened the old inode keeps a consistent
 * view regardless).
 */
class MappedFile
{
  public:
    explicit MappedFile(const std::string &path)
    {
        fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd_ < 0) {
            if (errno == ENOENT)
                return; // absent: a miss, not an error
            throw CacheError("open " + path + ": " +
                             errnoText(errno));
        }
        present_ = true;
        if (::flock(fd_, LOCK_SH) != 0)
            throw CacheError("flock " + path + ": " +
                             errnoText(errno));
        struct stat st
        {
        };
        if (::fstat(fd_, &st) != 0)
            throw CacheError("fstat " + path + ": " +
                             errnoText(errno));
        size_ = std::size_t(st.st_size);
        if (size_ > 0) {
            void *map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE,
                               fd_, 0);
            if (map == MAP_FAILED)
                throw CacheError("mmap " + path + ": " +
                                 errnoText(errno));
            map_ = map;
        }
    }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    ~MappedFile()
    {
        if (map_)
            ::munmap(map_, size_);
        if (fd_ >= 0)
            ::close(fd_); // releases the flock
    }

    bool present() const { return present_; }
    const std::uint8_t *data() const
    {
        return static_cast<const std::uint8_t *>(map_);
    }
    std::size_t size() const { return size_; }

  private:
    int fd_ = -1;
    bool present_ = false;
    void *map_ = nullptr;
    std::size_t size_ = 0;
};

/**
 * Exclusive advisory lock on `<snapshot>.lock`, serializing
 * publishers (across threads and processes: flock is per open file
 * description) so the monotone-coverage check and the rename are one
 * critical section.
 */
class PublishLock
{
  public:
    explicit PublishLock(const std::string &snapshot_path)
    {
        const std::string path = snapshot_path + ".lock";
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                     0644);
        if (fd_ < 0)
            throw CacheError("open " + path + ": " +
                             errnoText(errno));
        if (::flock(fd_, LOCK_EX) != 0) {
            const int err = errno;
            ::close(fd_);
            fd_ = -1;
            throw CacheError("flock " + path + ": " + errnoText(err));
        }
    }

    PublishLock(const PublishLock &) = delete;
    PublishLock &operator=(const PublishLock &) = delete;

    ~PublishLock()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

  private:
    int fd_ = -1;
};

/** Tier row counts of an on-disk snapshot's header (monotone rule). */
struct DiskCounts
{
    bool valid = false;
    std::uint64_t candRows = 0;
    std::uint64_t wmRows = 0;
};

DiskCounts
headerCountsOf(const std::string &path)
{
    // The file name already binds (key, invariants), so the header's
    // row counts are all the monotone rule needs; full validation
    // happens at load time.
    DiskCounts out;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return out;
    std::uint8_t header[96];
    const ssize_t n = ::pread(fd, header, sizeof(header), 0);
    ::close(fd);
    if (n != ssize_t(sizeof(header)))
        return out;
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    std::memcpy(&magic, header, 8);
    std::memcpy(&version, header + 8, 4);
    if (magic != kSnapshotMagic || version != kSnapshotFormatVersion)
        return out;
    out.valid = true;
    std::memcpy(&out.candRows, header + 40, 8);
    std::memcpy(&out.wmRows, header + 48, 8);
    return out;
}

/** Write @p blob to @p path via temp file + fsync + atomic rename. */
void
writeAtomically(const std::string &path,
                const std::vector<std::uint8_t> &blob)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        throw CacheError("open " + tmp + ": " + errnoText(errno));
    std::size_t written = 0;
    while (written < blob.size()) {
        const ssize_t n = ::write(fd, blob.data() + written,
                                  blob.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw CacheError("write " + tmp + ": " + errnoText(err));
        }
        written += std::size_t(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw CacheError("fsync " + tmp + ": " + errnoText(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw CacheError("rename " + tmp + ": " + errnoText(err));
    }
}

/** Freshen @p path's mtime (LRU recency on a successful load). */
void
touchFile(const std::string &path)
{
    // utimensat with a null timespec stamps "now" kernel-side; the
    // wall clock never enters the process, so result purity (lint
    // D1) is structurally preserved.
    (void)::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CacheError("open " + path + ": " + errnoText(errno));
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return bytes;
}

/** The warm-start hook ThresholdStore::acquire() calls (never throws). */
void
warmStartHook(const device::ThresholdStore &store)
{
    SnapshotCache::instance().tryLoad(store);
}

/**
 * Install @p blob (already fully validated against @p info) into
 * @p dir under the canonical name, honoring the monotone rule.
 * Returns false when the existing snapshot already covers it.
 */
bool
installBlob(const std::string &dir,
            const std::vector<std::uint8_t> &blob,
            const std::string &key, std::uint64_t invariants_hash,
            std::uint64_t cand_rows, std::uint64_t wm_rows)
{
    const std::string path =
        (fs::path(dir) /
         SnapshotCache::snapshotFileName(key, invariants_hash))
            .string();
    PublishLock lock(path);
    const DiskCounts existing = headerCountsOf(path);
    if (existing.valid && existing.candRows >= cand_rows &&
        existing.wmRows >= wm_rows)
        return false;
    writeAtomically(path, blob);
    return true;
}

} // namespace

SnapshotCache &
SnapshotCache::instance()
{
    static SnapshotCache cache;
    return cache;
}

void
SnapshotCache::configure(const std::string &dir)
{
    if (!dir.empty()) {
        std::error_code ec;
        fs::create_directories(dir, ec);
        if (ec || !fs::is_directory(dir))
            throw CacheError(
                "cache-dir '" + dir + "' is not a usable directory" +
                (ec ? " (" + ec.message() + ")" : ""));
    }
    {
        core::LockGuard lock(mutex_);
        dir_ = dir;
        stats_.enabled = !dir.empty();
        stats_.dir = dir;
    }
    device::ThresholdStore::setWarmStartHook(
        dir.empty() ? nullptr : &warmStartHook);
}

bool
SnapshotCache::enabled() const
{
    core::LockGuard lock(mutex_);
    return !dir_.empty();
}

std::string
SnapshotCache::dir() const
{
    core::LockGuard lock(mutex_);
    return dir_;
}

CacheStats
SnapshotCache::stats() const
{
    core::LockGuard lock(mutex_);
    return stats_;
}

void
SnapshotCache::resetStats()
{
    core::LockGuard lock(mutex_);
    const bool enabled = stats_.enabled;
    const std::string dir = stats_.dir;
    stats_ = CacheStats{};
    stats_.enabled = enabled;
    stats_.dir = dir;
    // Dropping the memo is safe: the next sweep re-checks the disk
    // header and the monotone rule skips already-covered snapshots.
    published_.clear();
}

std::string
SnapshotCache::snapshotFileName(const std::string &key,
                                std::uint64_t invariants_hash)
{
    const std::uint64_t h =
        hashU64(fnv1a(key.data(), key.size()), invariants_hash);
    char name[40];
    std::snprintf(name, sizeof(name), "ts-%016llx",
                  (unsigned long long)h);
    return std::string(name) + kSnapshotExtension;
}

bool
SnapshotCache::tryLoad(const device::ThresholdStore &store)
{
    std::string dir;
    {
        core::LockGuard lock(mutex_);
        dir = dir_;
    }
    if (dir.empty() || store.contentKey().empty())
        return false;

    const std::string path =
        (fs::path(dir) / snapshotFileName(store.contentKey(),
                                          invariantsHashOf(store)))
            .string();
    try {
        if (const int err = core::faultPoint("persist.snapshot.read"))
            throw CacheError("injected snapshot read fault: " +
                             errnoText(err));
        MappedFile map(path);
        if (!map.present()) {
            core::LockGuard lock(mutex_);
            ++stats_.misses;
            return false;
        }
        const LoadCounts counts = loadSnapshot(
            map.data(), map.size(), store.contentKey(), store);
        touchFile(path);
        core::LockGuard lock(mutex_);
        ++stats_.hits;
        stats_.bytesLoaded += map.size();
        TierCounts &memo = published_[store.contentKey()];
        memo.candidateRows =
            std::max(memo.candidateRows, counts.candidateRows);
        memo.wordMaskRows =
            std::max(memo.wordMaskRows, counts.wordMaskRows);
        return true;
    } catch (const std::exception &e) {
        // Corrupt, truncated, stale-math, or fault-injected: one
        // warning, then a clean cold build.  Never fatal.
        warn("snapshot cache: %s: %s (rebuilding)", path.c_str(),
             e.what());
        quarantineIfInvalid(path);
        core::LockGuard lock(mutex_);
        ++stats_.rejected;
        // Forget any publication memo: the disk copy is gone (or
        // untrustworthy), so the next sweep must rewrite it even if
        // the rebuilt tiers end up no larger than before.
        published_.erase(store.contentKey());
        return false;
    }
}

void
SnapshotCache::quarantineIfInvalid(const std::string &path)
{
    // A rejected file with an intact header would otherwise survive
    // forever: the publish-side monotone check reads only header row
    // counts, so the rebuilt store's snapshot never replaces it.
    // Under the publisher lock (so we cannot unlink a good file a
    // concurrent publisher just renamed in), re-verify and delete
    // only if the bytes really are undecodable.  Best effort: any
    // error here just leaves the file for `cache gc`.
    try {
        PublishLock lock(path);
        const std::vector<std::uint8_t> bytes = readFileBytes(path);
        if (!inspectSnapshot(bytes.data(), bytes.size()).valid)
            ::unlink(path.c_str());
    } catch (const std::exception &) {
    }
}

std::size_t
SnapshotCache::publishRegistry()
{
    std::string dir;
    {
        core::LockGuard lock(mutex_);
        dir = dir_;
    }
    if (dir.empty())
        return 0;
    std::size_t written = 0;
    for (const auto &store :
         device::ThresholdStore::registrySnapshot())
        if (publishStore(*store, dir))
            ++written;
    return written;
}

bool
SnapshotCache::publishStore(const device::ThresholdStore &store,
                            const std::string &dir)
{
    const std::string &key = store.contentKey();
    if (key.empty())
        return false;
    const device::ThresholdStoreStats tiers = store.stats();
    if (tiers.candidateRows == 0 && tiers.wordMaskRows == 0)
        return false;
    {
        core::LockGuard lock(mutex_);
        const auto it = published_.find(key);
        if (it != published_.end() &&
            it->second.candidateRows >= tiers.candidateRows &&
            it->second.wordMaskRows >= tiers.wordMaskRows) {
            ++stats_.publishSkips;
            return false;
        }
    }
    try {
        const std::vector<std::uint8_t> blob =
            writeSnapshot(store, key);
        if (const int err =
                core::faultPoint("persist.snapshot.write"))
            throw CacheError("injected snapshot write fault: " +
                             errnoText(err));
        const bool wrote = installBlob(
            dir, blob, key, invariantsHashOf(store),
            tiers.candidateRows, tiers.wordMaskRows);
        core::LockGuard lock(mutex_);
        TierCounts &memo = published_[key];
        memo.candidateRows =
            std::max(memo.candidateRows, tiers.candidateRows);
        memo.wordMaskRows =
            std::max(memo.wordMaskRows, tiers.wordMaskRows);
        if (wrote) {
            ++stats_.publishes;
            stats_.bytesPublished += blob.size();
        } else {
            ++stats_.publishSkips;
        }
        return wrote;
    } catch (const std::exception &e) {
        warn("snapshot cache: publish to %s failed: %s", dir.c_str(),
             e.what());
        core::LockGuard lock(mutex_);
        ++stats_.publishFailures;
        return false;
    }
}

std::vector<CacheEntry>
SnapshotCache::listDir(const std::string &dir)
{
    if (!fs::is_directory(dir))
        throw CacheError("'" + dir + "' is not a directory");
    std::vector<CacheEntry> entries;
    for (const auto &it : fs::directory_iterator(dir)) {
        if (!it.is_regular_file() ||
            it.path().extension() != kSnapshotExtension)
            continue;
        CacheEntry entry;
        entry.file = it.path().filename().string();
        entry.bytes = it.file_size();
        try {
            const auto bytes = readFileBytes(it.path().string());
            entry.info = inspectSnapshot(bytes.data(), bytes.size());
        } catch (const std::exception &e) {
            entry.info.valid = false;
            entry.info.error = e.what();
        }
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const CacheEntry &a, const CacheEntry &b) {
                  return a.file < b.file;
              });
    return entries;
}

SnapshotCache::GcResult
SnapshotCache::gcDir(const std::string &dir, std::uintmax_t max_bytes)
{
    if (!fs::is_directory(dir))
        throw CacheError("'" + dir + "' is not a directory");
    GcResult result;

    struct Candidate
    {
        fs::path path;
        std::uintmax_t bytes = 0;
        fs::file_time_type mtime;
        bool valid = false;
    };
    std::vector<Candidate> files;
    for (const auto &it : fs::directory_iterator(dir)) {
        if (!it.is_regular_file())
            continue;
        const std::string name = it.path().filename().string();
        // Leftover temp files from a crashed publisher are garbage
        // by definition (the rename never happened).
        if (name.find(".tmp.") != std::string::npos) {
            result.removedBytes += it.file_size();
            ++result.removed;
            fs::remove(it.path());
            continue;
        }
        if (it.path().extension() != kSnapshotExtension)
            continue;
        Candidate c;
        c.path = it.path();
        c.bytes = it.file_size();
        c.mtime = fs::last_write_time(it.path());
        try {
            const auto bytes = readFileBytes(it.path().string());
            c.valid =
                inspectSnapshot(bytes.data(), bytes.size()).valid;
        } catch (const std::exception &) {
            c.valid = false;
        }
        files.push_back(std::move(c));
    }

    // Undecodable files go first; then LRU (oldest mtime, name as a
    // deterministic tiebreak) until under the cap.
    std::uintmax_t total = 0;
    std::vector<Candidate> kept;
    for (Candidate &c : files) {
        if (!c.valid) {
            result.removedBytes += c.bytes;
            ++result.removed;
            fs::remove(c.path);
            fs::remove(c.path.string() + ".lock");
            continue;
        }
        total += c.bytes;
        kept.push_back(std::move(c));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });
    for (const Candidate &c : kept) {
        if (total <= max_bytes)
            break;
        result.removedBytes += c.bytes;
        ++result.removed;
        total -= c.bytes;
        fs::remove(c.path);
        fs::remove(c.path.string() + ".lock");
    }
    result.keptBytes = total;
    return result;
}

bool
SnapshotCache::installFile(const std::string &src,
                           const std::string &dir)
{
    const std::vector<std::uint8_t> blob = readFileBytes(src);
    const SnapshotInfo info =
        inspectSnapshot(blob.data(), blob.size());
    if (!info.valid)
        throw CacheError("'" + src + "' is not a valid snapshot: " +
                         info.error);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec || !fs::is_directory(dir))
        throw CacheError("'" + dir + "' is not a usable directory");
    return installBlob(dir, blob, info.key, info.invariantsHash,
                       info.candidateRows, info.wordMaskRows);
}

} // namespace rp::persist
