/**
 * @file
 * Characterize a DRAM module like the paper's testing campaign
 * (sections 4-5): ACmin-vs-tAggON sweep, bitflip directionality,
 * overlap with RowHammer/retention, and tAggONmin at a single
 * activation - for any of the 12 die revisions.
 *
 * Usage: characterize_module [die-id] [temperatureC] [locations]
 *   e.g. characterize_module H-16Gb-A 80 16
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "core/rowpress.h"

using namespace rp;
using namespace rp::literals;

int
main(int argc, char **argv)
{
    const std::string die_id = argc > 1 ? argv[1] : "S-8Gb-B";
    const double temp = argc > 2 ? std::atof(argv[2]) : 50.0;
    const int locations = argc > 3 ? std::atoi(argv[3]) : 10;

    chr::ModuleConfig cfg;
    cfg.die = device::dieById(die_id);
    cfg.numLocations = locations;
    cfg.temperatureC = temp;
    chr::Module module(cfg);

    std::printf("Characterizing %s @ %.0fC (%d locations, bank %d)\n\n",
                cfg.die.name.c_str(), temp, locations, cfg.bank);

    Table sweep("ACmin vs tAggON (single-sided, checkerboard)");
    sweep.header({"tAggON", "mean", "min", "max", "rows w/ flips",
                  "1->0 frac"});
    for (Time t : chr::standardTAggOnSweep()) {
        auto point = chr::acminPoint(module, t,
                                     chr::AccessKind::SingleSided);
        auto s = point.acminSummary();
        if (s.count == 0) {
            sweep.row({formatTime(t), "no bitflip", "-", "-",
                       Table::toCell(point.fractionFlipped()), "-"});
            continue;
        }
        sweep.row({formatTime(t), Table::toCell(s.mean),
                   Table::toCell(s.min), Table::toCell(s.max),
                   Table::toCell(point.fractionFlipped()),
                   Table::toCell(point.fractionOneToZero())});
    }
    sweep.print();

    // Single-activation RowPress (Obsv. 2).
    auto ton = chr::tAggOnMinPoint(module, 1,
                                   chr::AccessKind::SingleSided);
    auto ts = ton.summary();
    if (ts.count) {
        std::printf("\ntAggONmin @ AC=1: mean %.1f ms, min %.1f ms "
                    "(%zu/%zu locations flip with one activation)\n",
                    ts.mean / 1000.0, ts.min / 1000.0, ts.count,
                    ton.locations.size());
    } else {
        std::printf("\nNo single-activation bitflips within the 60 ms "
                    "budget at this temperature.\n");
    }

    // Mechanism separation (section 4.3).
    auto overlap = chr::overlapAtAcmin(module, {7800_ns, 70200_ns},
                                       chr::AccessKind::SingleSided);
    std::printf("\nMechanism overlap (fraction of RowPress cells also "
                "flipped by...):\n");
    for (const auto &r : overlap) {
        std::printf("  tAggON %-8s RowHammer %.4f, retention %.4f "
                    "(%zu cells)\n",
                    formatTime(r.tAggOn).c_str(), r.withRowHammer,
                    r.withRetention, r.rpCells);
    }
    return 0;
}
