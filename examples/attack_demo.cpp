/**
 * @file
 * Real-system RowPress attack demonstration (paper section 6 /
 * Algorithm 1): run the user-level access pattern against a
 * TRR-protected DDR4 system model and compare it with the
 * conventional RowHammer baseline.
 *
 * Usage: attack_demo [NUM_AGGR_ACTS] [NUM_READS] [victims] [iters]
 */

#include <cstdio>
#include <cstdlib>

#include "core/rowpress.h"

using namespace rp;

int
main(int argc, char **argv)
{
    sys::DemoConfig cfg;
    cfg.numAggrActs = argc > 1 ? std::atoi(argv[1]) : 3;
    cfg.numReads = argc > 2 ? std::atoi(argv[2]) : 32;
    cfg.numVictims = argc > 3 ? std::atoi(argv[3]) : 12;
    cfg.numIters = argc > 4 ? std::atoi(argv[4]) : 24000;
    cfg.seed = 3;

    std::printf("Target system: %s module with in-DRAM TRR, adaptive "
                "open-row controller\n",
                cfg.dieId.c_str());
    std::printf("Victims: %d, iterations: %d (paper: 1500 / 800K)\n\n",
                cfg.numVictims, cfg.numIters);

    // Baseline: conventional RowHammer (one cache-block read per
    // activation).
    sys::DemoConfig rh = cfg;
    rh.numReads = 1;
    auto rh_res = sys::runDemo(rh);
    std::printf("RowHammer  (NUM_READS=1):  %llu bitflips in %d rows "
                "(tAggON ~ %.0f ns)\n",
                (unsigned long long)rh_res.totalBitflips,
                rh_res.rowsWithBitflips, rh_res.avgTAggOnNs);

    // RowPress: multiple cache-block reads keep the row open.
    auto rp_res = sys::runDemo(cfg);
    std::printf("RowPress   (NUM_READS=%d): %llu bitflips in %d rows "
                "(tAggON ~ %.0f ns)\n",
                cfg.numReads, (unsigned long long)rp_res.totalBitflips,
                rp_res.rowsWithBitflips, rp_res.avgTAggOnNs);

    // Algorithm 2 (Appendix G): interleave flushes with reads.
    sys::DemoConfig alg2 = cfg;
    alg2.interleavedFlush = true;
    auto a2_res = sys::runDemo(alg2);
    std::printf("Algorithm 2 (interleaved): %llu bitflips in %d rows "
                "(tAggON ~ %.0f ns)\n\n",
                (unsigned long long)a2_res.totalBitflips,
                a2_res.rowsWithBitflips, a2_res.avgTAggOnNs);

    if (rp_res.totalBitflips > rh_res.totalBitflips) {
        std::printf("RowPress induced bitflips where RowHammer "
                    "%s (paper Obsv. 19/20).\n",
                    rh_res.totalBitflips == 0 ? "could not"
                                              : "induced fewer");
    } else {
        std::printf("Tip: flips peak around NUM_READS = 16-32 and "
                    "vanish once the aggressor\nphase outgrows the "
                    "tREFI slot (try different NUM_READS).\n");
    }
    return 0;
}
