/**
 * @file
 * End-to-end mitigation tuning (the paper's section 7.4 methodology):
 *
 *  1. characterize the device's worst-case ACmin-vs-row-open-time
 *     profile;
 *  2. translate a maximum-row-open-time choice (t_mro) into an
 *     adapted RowHammer threshold T'_RH;
 *  3. configure Graphene-RP / PARA-RP and measure their performance
 *     against the unadapted baselines on representative workloads.
 *
 * Usage: mitigation_tuning [die-id] [baseTRH]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/table.h"
#include "core/rowpress.h"
#include "mitigation/defaults.h"

using namespace rp;
using namespace rp::literals;

namespace {

double
runIpc(const workloads::WorkloadParams &w, Time t_mro,
       mitigation::Mitigation *mit)
{
    sim::SystemConfig cfg;
    cfg.core.instrLimit = 60000;
    cfg.workloads = {w};
    cfg.mem.tMro = t_mro;
    cfg.mem.mitigation = mit;
    return sim::runSystem(cfg).ipcOf(0);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string die_id = argc > 1 ? argv[1] : "S-8Gb-B";
    const std::uint32_t base_trh =
        argc > 2 ? std::uint32_t(std::atoi(argv[2])) : 1000;

    // Step 1: measure the device profile (worst case at 80C).
    ProfileOptions opts;
    opts.numLocations = 8;
    opts.temperatures = {80.0};
    auto profile = characterizeProfile(device::dieById(die_id), opts);

    std::printf("Device profile for %s (ACmin ratio vs t_mro):\n",
                die_id.c_str());
    for (const auto &p : profile.points)
        std::printf("  t_mro %-8s ratio %.3f\n",
                    formatTime(p.tAggOn).c_str(), p.acminRatio);
    if (!mitigation::adaptationIsSound(profile, base_trh, opts.tMros))
        std::printf("warning: profile failed the soundness check\n");

    // Steps 2+3: adapt and evaluate at each t_mro.
    std::vector<workloads::WorkloadParams> suite = {
        workloads::workloadByName("429.mcf"),
        workloads::workloadByName("462.libquantum"),
        workloads::workloadByName("h264_encode"),
    };

    mitigation::Graphene g_base(
        mitigation::standardGrapheneFor(base_trh));
    mitigation::Para p_base(mitigation::paraFor(base_trh));

    Table table("Adapted configurations and per-workload slowdown vs "
                "the unadapted baseline");
    table.header({"t_mro", "T'_RH", "workload", "Graphene-RP",
                  "PARA-RP"});
    for (Time t_mro : {96_ns, 636_ns}) {
        const auto a =
            mitigation::adaptThreshold(profile, base_trh, t_mro);
        mitigation::Graphene g_rp(
            mitigation::standardGrapheneFor(a.adaptedTrh));
        mitigation::Para p_rp(mitigation::paraFor(a.adaptedTrh));
        for (const auto &w : suite) {
            const double g0 = runIpc(w, 0, &g_base);
            const double g1 = runIpc(w, t_mro, &g_rp);
            const double p0 = runIpc(w, 0, &p_base);
            const double p1 = runIpc(w, t_mro, &p_rp);
            table.row({formatTime(t_mro), Table::toCell(a.adaptedTrh),
                       w.name,
                       Table::toCell((1.0 - g1 / g0) * 100.0) + "%",
                       Table::toCell((1.0 - p1 / p0) * 100.0) + "%"});
        }
    }
    table.print();
    std::printf("\nBoth adapted mechanisms now cover RowPress as well "
                "as RowHammer: the\ncontroller closes rows after t_mro "
                "and the tracker fires at T'_RH\n(security argument in "
                "paper section 7.4).\n");
    return 0;
}
