/**
 * @file
 * Quickstart: demonstrate the RowPress amplification headline result
 * (paper Fig. 1) in ~40 lines.
 *
 * Builds a simulated DDR4 module, measures the minimum activation
 * count to induce a bitflip (ACmin) for the conventional RowHammer
 * pattern (tAggON = tRAS) and for RowPress row-open times, and prints
 * the amplification factor.
 */

#include <cstdio>

#include "core/rowpress.h"

using namespace rp;
using namespace rp::literals;

int
main()
{
    // One simulated DIMM with Samsung 8Gb B-dies at 80C.
    chr::ModuleConfig cfg;
    cfg.die = device::dieS8GbB();
    cfg.numLocations = 8;
    cfg.temperatureC = 80.0;
    chr::Module module(cfg);

    std::printf("RowPress quickstart: %s @ %.0fC\n",
                module.die().name.c_str(), cfg.temperatureC);
    std::printf("%-10s %-14s %-12s\n", "tAggON", "mean ACmin",
                "vs RowHammer");

    double rowhammer_acmin = 0.0;
    for (Time t_agg_on : {36_ns, 7800_ns, 70200_ns, 30_ms}) {
        auto point = chr::acminPoint(module, t_agg_on,
                                     chr::AccessKind::SingleSided);
        const double acmin = point.meanAcmin();
        if (t_agg_on == 36_ns)
            rowhammer_acmin = acmin;
        if (acmin <= 0.0) {
            std::printf("%-10s %-14s %-12s\n",
                        formatTime(t_agg_on).c_str(), "no bitflip",
                        "-");
            continue;
        }
        std::printf("%-10s %-14.0f %.1fx fewer activations\n",
                    formatTime(t_agg_on).c_str(), acmin,
                    rowhammer_acmin / acmin);
    }

    std::printf("\nKeeping the aggressor row open longer reduces the "
                "activations needed to\ninduce a bitflip by orders of "
                "magnitude (paper Obsv. 1/2).\n");
    return 0;
}
