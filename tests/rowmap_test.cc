/**
 * @file
 * Row-mapping reverse-engineering tests (paper section 3.2): the
 * recovery loop must identify physical neighbors through an unknown
 * in-DRAM scrambler and classify the mapping scheme.
 */

#include <gtest/gtest.h>

#include "chr/rowmap.h"

namespace rp::chr {
namespace {

bender::TestPlatform
makePlatform()
{
    bender::PlatformConfig cfg;
    cfg.die = device::dieById("S-8Gb-D"); // strongly vulnerable die
    cfg.org.rows = 4096;
    cfg.temperatureC = 80.0;
    return bender::TestPlatform(cfg);
}

TEST(RowMap, IdentityMappingYieldsAdjacentLogicalNeighbors)
{
    auto platform = makePlatform();
    dram::RowScrambler identity(dram::RowScrambler::Scheme::None, 4096);
    auto probe = probeNeighbors(platform, identity, 1, 200);
    ASSERT_FALSE(probe.logicalNeighbors.empty());
    for (int n : probe.logicalNeighbors)
        EXPECT_LE(std::abs(n - 200), 2);
    // The distance-1 neighbors must both be present.
    EXPECT_NE(std::find(probe.logicalNeighbors.begin(),
                        probe.logicalNeighbors.end(), 199),
              probe.logicalNeighbors.end());
    EXPECT_NE(std::find(probe.logicalNeighbors.begin(),
                        probe.logicalNeighbors.end(), 201),
              probe.logicalNeighbors.end());
}

TEST(RowMap, FoldedMappingScattersLogicalNeighbors)
{
    auto platform = makePlatform();
    dram::RowScrambler folded(dram::RowScrambler::Scheme::FoldedPair,
                              4096);
    // Logical row 201 maps to physical 202; its physical neighbors
    // 201 and 203 are logical 202 and 203.
    auto probe = probeNeighbors(platform, folded, 1, 201);
    ASSERT_FALSE(probe.logicalNeighbors.empty());
    // Under the identity assumption the neighbors look non-adjacent.
    bool non_adjacent = false;
    for (int n : probe.logicalNeighbors)
        non_adjacent = non_adjacent || std::abs(n - 201) != 1;
    EXPECT_TRUE(non_adjacent);
}

class SchemeInference
    : public ::testing::TestWithParam<dram::RowScrambler::Scheme>
{
};

TEST_P(SchemeInference, RecoversTheTrueScheme)
{
    auto platform = makePlatform();
    dram::RowScrambler truth(GetParam(), 4096);
    auto inferred =
        inferScheme(platform, truth, 1, {129, 257, 513});
    EXPECT_EQ(inferred, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeInference,
    ::testing::Values(dram::RowScrambler::Scheme::None,
                      dram::RowScrambler::Scheme::FoldedPair));

} // namespace
} // namespace rp::chr
