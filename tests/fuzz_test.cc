/**
 * @file
 * Tests of the src/fuzz/ attack-pattern search engine: genome
 * compilation pinned byte-identical to the fixed paper patterns,
 * shared aggressor placement, per-operator mutation validity, search
 * determinism at 1 vs 4 threads, the Graphene-bypass acceptance
 * property, and the fuzz.bypass_matrix CLI smoke path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/cli.h"
#include "chr/export.h"
#include "fuzz/experiments.h"
#include "fuzz/search.h"

namespace rp::fuzz {
namespace {

namespace fs = std::filesystem;
using namespace rp::literals;

/** Register the real fuzz.* experiments for the CLI smoke tests. */
struct RegisterFuzz
{
    RegisterFuzz() { registerFuzzExperiments(); }
};
const RegisterFuzz register_fuzz;

bool
sameNodes(const std::vector<bender::ProgramNode> &a,
          const std::vector<bender::ProgramNode> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto &x = a[i];
        const auto &y = b[i];
        if (x.kind != y.kind || x.cmd != y.cmd || x.bank != y.bank ||
            x.row != y.row || x.column != y.column ||
            x.duration != y.duration || x.count != y.count ||
            !sameNodes(x.body, y.body))
            return false;
    }
    return true;
}

dram::TimingParams
timingOf()
{
    bender::PlatformConfig pc;
    pc.die = device::dieS8GbB();
    return bender::TestPlatform(pc).timing();
}

core::ExperimentEngine::Options
withThreads(int n)
{
    core::ExperimentEngine::Options opts;
    opts.numThreads = n;
    return opts;
}

EvalConfig
tinyEvalConfig(Time budget = 2_ms)
{
    EvalConfig ec;
    ec.module.die = device::dieS8GbB();
    ec.budget = budget;
    return ec;
}

// ---- genome + compilation -------------------------------------------

TEST(FuzzPattern, FixedGenomesMatchPaperLayouts)
{
    const auto ss = fixedSingleSided(1, 64);
    const auto ds = fixedDoubleSided(1, 64);
    const auto lss = chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
    const auto lds = chr::makeLayout(chr::AccessKind::DoubleSided, 1, 64);

    EXPECT_EQ(ss.layout().aggressors, lss.aggressors);
    EXPECT_EQ(ss.layout().victims, lss.victims);
    EXPECT_EQ(ds.layout().aggressors, lds.aggressors);
    EXPECT_EQ(ds.layout().victims, lds.victims);
}

TEST(FuzzPattern, MakeAggressorLayoutMatchesMakeLayout)
{
    for (int row0 : {8, 64, 1000}) {
        const auto a =
            chr::makeLayout(chr::AccessKind::SingleSided, 1, row0);
        const auto b = chr::makeAggressorLayout(1, {row0});
        EXPECT_EQ(a.aggressors, b.aggressors);
        EXPECT_EQ(a.victims, b.victims);

        const auto c =
            chr::makeLayout(chr::AccessKind::DoubleSided, 2, row0);
        const auto d = chr::makeAggressorLayout(2, {row0, row0 + 2});
        EXPECT_EQ(c.aggressors, d.aggressors);
        EXPECT_EQ(c.victims, d.victims);
    }
}

TEST(FuzzPattern, DegenerateGenomesCompileByteIdentical)
{
    const auto timing = timingOf();
    const PatternBuilder builder(timing);
    const Time t_on = dwellGrid()[0];

    // Odd and even totals cover the partial-period tail path.
    for (std::uint64_t total : {1u, 2u, 7u, 64u}) {
        const auto ss = fixedSingleSided(1, 64);
        const auto ref_ss = chr::makePressProgram(
            ss.layout(), t_on, total, timing);
        EXPECT_TRUE(sameNodes(builder.build(ss, total).nodes(),
                              ref_ss.nodes()))
            << "single-sided diverged at total=" << total;

        const auto ds = fixedDoubleSided(1, 64);
        const auto ref_ds = chr::makePressProgram(
            ds.layout(), t_on, total, timing);
        EXPECT_TRUE(sameNodes(builder.build(ds, total).nodes(),
                              ref_ds.nodes()))
            << "double-sided diverged at total=" << total;
    }
}

TEST(FuzzPattern, PeriodActsMatchesDeclaredShape)
{
    PatternSpec spec;
    spec.slots = {
        {0, 1, 0, 2, 0}, // every round, twice
        {2, 4, 1, 1, 3}, // rounds 1, 5 of 4-round period
        {5, 2, 0, 1, 1}, // rounds 0, 2
    };
    ASSERT_TRUE(validPattern(spec));
    EXPECT_EQ(periodRounds(spec), 4);
    const auto acts = periodActs(spec);
    EXPECT_EQ(std::uint64_t(acts.size()), actsPerPeriod(spec));
    // Round 0: slot0 x2, slot2; round 1: slot0 x2, slot1; ...
    const std::vector<int> rows = {
        64, 64, 69,       // round 0
        64, 64, 66,       // round 1
        64, 64, 69,       // round 2
        64, 64,           // round 3
    };
    ASSERT_EQ(acts.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(acts[i].first, rows[i]) << "act " << i;
    EXPECT_EQ(acts[2].second, dwellGrid()[1]);
    EXPECT_EQ(acts[5].second, dwellGrid()[3]);
}

TEST(FuzzPattern, KeyRoundTripsAndHashIsStable)
{
    const auto ds = fixedDoubleSided(1, 64);
    EXPECT_EQ(ds.key(), "b1@64:CB|o0.f1.p0.i1.d0|o2.f1.p0.i1.d0");
    EXPECT_EQ(ds.hash(), fixedDoubleSided(1, 64).hash());
    EXPECT_NE(ds.hash(), fixedSingleSided(1, 64).hash());
}

// ---- random sampling + mutation operators ---------------------------

TEST(FuzzSearch, RandomPatternsAlwaysValid)
{
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(hashU64(42, seed));
        const auto spec = randomPattern(rng, 1, 64);
        EXPECT_TRUE(validPattern(spec)) << spec.key();
    }
}

TEST(FuzzSearch, EveryMutationOperatorPreservesValidity)
{
    for (MutationOp op : allMutationOps()) {
        for (std::uint64_t seed = 0; seed < 100; ++seed) {
            Rng rng(hashU64(7, seed, std::uint64_t(op)));
            auto spec = randomPattern(rng, 1, 64);
            applyMutation(spec, op, rng);
            EXPECT_TRUE(validPattern(spec))
                << "op " << int(op) << " seed " << seed << ": "
                << spec.key();
        }
    }
}

TEST(FuzzSearch, MutationOperatorsReachTheirAxis)
{
    // Sanity that the named operators actually move their own axis at
    // least once over many draws (guards against no-op wirings).
    bool off_changed = false, dwell_changed = false,
         grew = false, shrank = false;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        Rng rng(hashU64(9, seed));
        auto spec = randomPattern(rng, 1, 64);
        auto before = spec;
        applyMutation(spec, MutationOp::RowOffset, rng);
        off_changed |= !(spec == before);
        before = spec;
        applyMutation(spec, MutationOp::Dwell, rng);
        dwell_changed |= !(spec == before);
        before = spec;
        applyMutation(spec, MutationOp::AddSlot, rng);
        grew |= spec.slots.size() > before.slots.size();
        before = spec;
        applyMutation(spec, MutationOp::DropSlot, rng);
        shrank |= spec.slots.size() < before.slots.size();
    }
    EXPECT_TRUE(off_changed);
    EXPECT_TRUE(dwell_changed);
    EXPECT_TRUE(grew);
    EXPECT_TRUE(shrank);
}

// ---- evaluation + search --------------------------------------------

TEST(FuzzEvaluator, UnmitigatedDoubleSidedFlipsWithinBudget)
{
    const Evaluator evaluator(tinyEvalConfig(30_ms),
                              MitigationKind::None);
    // Deep-dwell double-sided: the paper's strongest fixed pattern.
    const auto score =
        evaluator.evaluate(fixedDoubleSided(1, 64, /*dwell_idx=*/4));
    EXPECT_TRUE(score.flipped);
    EXPECT_LT(score.minCostActs, Score::kNoFlip);
    EXPECT_LE(score.minCostActs, score.totalActs);
    EXPECT_GT(score.flipCount, 0u);
    EXPECT_GT(score.rowsCovered, 0);
    EXPECT_EQ(score.preventiveRefreshes, 0u);
}

TEST(FuzzEvaluator, ScoreOrderingIsLexicographic)
{
    Score none;
    Score cheap;
    cheap.flipped = true;
    cheap.minCostActs = 100;
    cheap.flipCount = 1;
    Score costly = cheap;
    costly.minCostActs = 500;
    costly.flipCount = 10;

    EXPECT_TRUE(betterScore(cheap, none));
    EXPECT_TRUE(betterScore(cheap, costly)); // cost beats flip count
    EXPECT_FALSE(betterScore(none, cheap));
    EXPECT_FALSE(betterScore(cheap, cheap));
}

TEST(FuzzSearch, RandomSearchDeterministicAcrossThreadCounts)
{
    const Evaluator evaluator(tinyEvalConfig(), MitigationKind::Trr);
    SearchSpec spec;
    spec.strategy = Strategy::Random;
    spec.trials = 8;
    spec.rootSeed = 3;

    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    const auto a = Searcher(evaluator, serial).run(spec);
    const auto b = Searcher(evaluator, parallel).run(spec);

    EXPECT_EQ(a.spec.key(), b.spec.key());
    EXPECT_EQ(a.score.minCostActs, b.score.minCostActs);
    EXPECT_EQ(a.score.flipCount, b.score.flipCount);
    EXPECT_EQ(a.score.totalActs, b.score.totalActs);
    EXPECT_EQ(a.score.preventiveRefreshes, b.score.preventiveRefreshes);
}

TEST(FuzzSearch, EvolveSearchDeterministicAcrossThreadCounts)
{
    const Evaluator evaluator(tinyEvalConfig(), MitigationKind::Para);
    SearchSpec spec;
    spec.strategy = Strategy::Evolve;
    spec.trials = 12;
    spec.population = 6;
    spec.rootSeed = 5;

    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    const auto a = Searcher(evaluator, serial).run(spec);
    const auto b = Searcher(evaluator, parallel).run(spec);

    EXPECT_EQ(a.spec.key(), b.spec.key());
    EXPECT_EQ(a.score.minCostActs, b.score.minCostActs);
    EXPECT_EQ(a.score.flipCount, b.score.flipCount);
}

TEST(FuzzSearch, SearchedPatternBeatsFixedDoubleSidedUnderGraphene)
{
    // The headline acceptance property: against a Graphene instance
    // sized for the base threshold, a searched pattern reaches a flip
    // at strictly lower activation cost than the paper's fixed 36 ns
    // double-sided pattern (which Graphene keeps refreshing away).
    const Evaluator evaluator(tinyEvalConfig(30_ms),
                              MitigationKind::Graphene);
    const auto ds_base = evaluator.evaluate(fixedDoubleSided(1, 64));

    core::ExperimentEngine engine(withThreads(4));
    SearchSpec spec;
    spec.strategy = Strategy::Random;
    spec.trials = 16;
    spec.rootSeed = 1;
    const auto best = Searcher(evaluator, engine).run(spec);

    EXPECT_TRUE(best.score.flipped) << best.spec.key();
    EXPECT_LT(best.score.minCostActs, ds_base.minCostActs)
        << "searched " << best.spec.key();
}

// ---- CLI smoke -------------------------------------------------------

int
cli(const std::vector<std::string> &args, std::string *out_text = nullptr)
{
    std::ostringstream out, err;
    const int rc = api::runCli(args, out, err);
    if (out_text)
        *out_text = out.str() + err.str();
    return rc;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p);
    std::stringstream body;
    body << in.rdbuf();
    return body.str();
}

TEST(FuzzCli, BypassMatrixSmokeAndThreadCountDeterminism)
{
    const fs::path base =
        fs::path(::testing::TempDir()) / "rp_fuzz_matrix";
    fs::remove_all(base);
    const std::vector<std::string> common = {
        "run",       "fuzz.bypass_matrix",
        "--trials",  "4",
        "--population", "4",
        "--budget",  "2",
        "--seed",    "7",
        "--format",  "csv",
    };

    auto run_with_threads = [&](const std::string &threads) {
        auto args = common;
        args.insert(args.end(), {"--threads", threads, "--out",
                                 (base / ("t" + threads)).string()});
        return cli(args);
    };
    ASSERT_EQ(run_with_threads("1"), 0);
    ASSERT_EQ(run_with_threads("4"), 0);

    const fs::path csv1 = base / "t1" / "fuzz.bypass_matrix" /
                          "table_bypass_resistance.csv";
    const fs::path csv4 = base / "t4" / "fuzz.bypass_matrix" /
                          "table_bypass_resistance.csv";
    ASSERT_TRUE(fs::exists(csv1));
    ASSERT_TRUE(fs::exists(csv4));
    const std::string body = slurp(csv1);
    // Identical artifact bytes at 1 vs 4 threads (also CI-enforced on
    // the real binary).
    EXPECT_EQ(body, slurp(csv4));

    const auto records = chr::parseCsv(body);
    ASSERT_EQ(records.size(), 5u); // header + one row per mitigation
    for (const char *name : {"none", "trr", "graphene", "para"}) {
        EXPECT_NE(body.find(name), std::string::npos) << name;
    }
}

TEST(FuzzCli, RandomAndEvolveRunWithTinyBudgets)
{
    std::string text;
    EXPECT_EQ(cli({"run", "fuzz.random", "--trials", "2", "--budget",
                   "1", "--mitigation", "none", "--threads", "2"},
                  &text),
              0);
    EXPECT_NE(text.find("searched best"), std::string::npos);
    EXPECT_EQ(cli({"run", "fuzz.evolve", "--trials", "4",
                   "--population", "2", "--budget", "1",
                   "--mitigation", "trr", "--threads", "2"},
                  &text),
              0);
    EXPECT_EQ(cli({"run", "fuzz.random", "--mitigation", "bogus",
                   "--trials", "1"}),
              2);
    EXPECT_EQ(cli({"run", "fuzz.bypass_matrix", "--strategy", "bogus",
                   "--trials", "1"}),
              2);
}

} // namespace
} // namespace rp::fuzz
