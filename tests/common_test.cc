/**
 * @file
 * Unit tests for the common utility layer: time units, RNG streams,
 * statistics, and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace rp {
namespace {

TEST(Units, LiteralsProducePicoseconds)
{
    EXPECT_EQ(1_ns, 1000);
    EXPECT_EQ(36_ns, 36000);
    EXPECT_EQ(1_us, 1000000);
    EXPECT_EQ(64_ms, Time(64) * 1000 * 1000 * 1000);
    EXPECT_EQ(Time(7.8_us), 7800000);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(toNs(36_ns), 36.0);
    EXPECT_DOUBLE_EQ(toUs(7800_ns), 7.8);
    EXPECT_DOUBLE_EQ(toMs(30_ms), 30.0);
    EXPECT_DOUBLE_EQ(toSec(4_s), 4.0);
}

TEST(Units, FormatTimePicksHumanUnit)
{
    EXPECT_EQ(formatTime(36_ns), "36ns");
    EXPECT_EQ(formatTime(7800_ns), "7.8us");
    EXPECT_EQ(formatTime(70200_ns), "70.2us");
    EXPECT_EQ(formatTime(30_ms), "30ms");
    EXPECT_EQ(formatTime(500), "500ps");
    EXPECT_EQ(formatTime(2_s), "2s");
}

TEST(Rng, SplitMixAvalanche)
{
    // Single-bit input changes must flip about half the output bits.
    int total = 0;
    for (int bit = 0; bit < 64; ++bit) {
        const std::uint64_t a = splitmix64(0x1234);
        const std::uint64_t b = splitmix64(0x1234 ^ (1ULL << bit));
        total += __builtin_popcountll(a ^ b);
    }
    EXPECT_GT(total / 64, 20);
    EXPECT_LT(total / 64, 44);
}

TEST(Rng, HashIsDeterministic)
{
    EXPECT_EQ(hashU64(1, 2, 3), hashU64(1, 2, 3));
    EXPECT_NE(hashU64(1, 2, 3), hashU64(1, 2, 4));
    EXPECT_NE(hashU64(1, 2, 3), hashU64(1, 3, 2));
}

TEST(Rng, HashRngStreamsAreIndependent)
{
    HashRng rng(42);
    EXPECT_EQ(rng.uniform(7), rng.uniform(7));
    EXPECT_NE(rng.uniform(7), rng.uniform(8));
    EXPECT_GE(rng.uniform(7), 0.0);
    EXPECT_LT(rng.uniform(7), 1.0);
}

TEST(Rng, HashRngUniformMoments)
{
    HashRng rng(9);
    double sum = 0.0, sumsq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform(std::uint64_t(i));
        sum += u;
        sumsq += u * u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_NEAR(sumsq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, HashRngNormalMoments)
{
    HashRng rng(5);
    double sum = 0.0, sumsq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal(std::uint64_t(i) * 3);
        sum += z;
        sumsq += z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, XoshiroSequenceIsReproducible)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs = differs || (a2.next() != c.next());
    EXPECT_TRUE(differs);
}

TEST(Rng, RangeAndBelowBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.below(10);
        EXPECT_LT(v, 10u);
        const auto r = rng.range(-5, 5);
        EXPECT_GE(r, -5);
        EXPECT_LE(r, 5);
    }
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Stats, OnlineStatsMatchesClosedForm)
{
    OnlineStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyOnlineStats)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    // An empty series has no extrema: NaN (rendered as an empty
    // cell), never a fake 0 indistinguishable from a real zero.
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    s.add(-3.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(Stats, BoxSummaryPaperQuartileConvention)
{
    // Paper footnote 2: Q1/Q3 are medians of the ordered halves.
    auto s = summarize({1, 2, 3, 4, 5, 6, 7, 8});
    EXPECT_DOUBLE_EQ(s.q1, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 4.5);
    EXPECT_DOUBLE_EQ(s.q3, 6.5);
    EXPECT_DOUBLE_EQ(s.iqr(), 4.0);

    auto odd = summarize({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(odd.median, 3.0);
    EXPECT_DOUBLE_EQ(odd.q1, 1.5);
    EXPECT_DOUBLE_EQ(odd.q3, 4.5);
}

TEST(Stats, BoxSummaryEdgeCases)
{
    EXPECT_EQ(summarize({}).count, 0u);
    auto one = summarize({42.0});
    EXPECT_DOUBLE_EQ(one.min, 42.0);
    EXPECT_DOUBLE_EQ(one.max, 42.0);
    EXPECT_DOUBLE_EQ(one.median, 42.0);
}

TEST(Stats, HistogramBinningAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(123.0);
    EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
    EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(5), 1.0);
    EXPECT_DOUBLE_EQ(h.count(9), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 6.0);
    EXPECT_NEAR(h.fraction(0), 1.0 / 6.0, 1e-12);
    EXPECT_FALSE(h.render().empty());
}

TEST(Stats, HistogramRoutesNanToOverflow)
{
    // Regression: NaN fails both range guards and used to reach the
    // double -> size_t bin cast (undefined behavior).
    Histogram h(0.0, 10.0, 10);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::quiet_NaN(), 2.5);
    EXPECT_DOUBLE_EQ(h.overflow(), 3.5);
    EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
    for (std::size_t i = 0; i < h.bins(); ++i)
        EXPECT_DOUBLE_EQ(h.count(i), 0.0);
    EXPECT_DOUBLE_EQ(h.total(), 3.5);
}

TEST(Stats, NormCdfInvertsProbit)
{
    for (double p : {0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999})
        EXPECT_NEAR(normCdf(probit(p)), p, 1e-7);
    EXPECT_NEAR(normCdf(0.0), 0.5, 1e-15);
    EXPECT_LT(normCdf(-10.0), 1e-20);
    EXPECT_GT(normCdf(-10.0), 0.0);
}

TEST(Stats, LinearSlopeRecoversLine)
{
    std::vector<double> x, y;
    for (int i = 0; i < 50; ++i) {
        x.push_back(double(i));
        y.push_back(3.0 - 1.02 * double(i));
    }
    EXPECT_NEAR(linearSlope(x, y), -1.02, 1e-9);
    EXPECT_EQ(linearSlope({1.0}, {2.0}), 0.0);
}

TEST(Stats, ProbitMatchesKnownQuantiles)
{
    EXPECT_NEAR(probit(0.5), 0.0, 1e-9);
    EXPECT_NEAR(probit(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(probit(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(probit(1e-5), -4.26489, 1e-3);
    EXPECT_NEAR(probit(0.8413447), 1.0, 1e-4);
    EXPECT_LT(probit(0.0), -30.0);
    EXPECT_GT(probit(1.0), 30.0);
}

TEST(Stats, ProbitIsMonotonic)
{
    double prev = -1e9;
    for (double p = 1e-8; p < 1.0; p *= 1.8) {
        const double z = probit(p);
        EXPECT_GT(z, prev);
        prev = z;
    }
}

TEST(Table, RendersAlignedColumns)
{
    Table t("Title");
    t.header({"a", "long-header", "c"});
    t.rowf("x", 1.5, 42);
    t.rowf("yyyy", "z");
    const std::string out = t.render();
    EXPECT_NE(out.find("== Title =="), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("yyyy"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, CellFormatting)
{
    EXPECT_EQ(Table::toCell(0.0), "0");
    EXPECT_EQ(Table::toCell(12.0), "12");
    EXPECT_EQ(Table::toCell((long long)-5), "-5");
    EXPECT_EQ(Table::toCell(1234567.0), "1.23e+06");
    // NaN ("no value", e.g. OnlineStats::min() of an empty series)
    // renders as an empty cell in table and CSV output.
    EXPECT_EQ(Table::toCell(std::numeric_limits<double>::quiet_NaN()),
              "");
}

} // namespace
} // namespace rp
