/**
 * @file
 * End-to-end smoke checks: the calibrated device model must reproduce
 * the paper's headline characterization numbers to within shape-level
 * tolerances (factor-of-a-few on means, correct orderings and trends).
 */

#include <gtest/gtest.h>

#include "chr/experiments.h"

namespace rp::chr {
namespace {

using namespace rp::literals;

ModuleConfig
smallConfig(const device::DieConfig &die, double temp_c = 50.0)
{
    ModuleConfig cfg;
    cfg.die = die;
    cfg.numLocations = 8;
    cfg.temperatureC = temp_c;
    cfg.seed = 7;
    return cfg;
}

TEST(ChrSmoke, RowHammerAcminMatchesTable5Scale)
{
    Module module(smallConfig(device::dieS8GbB()));
    auto point = acminPoint(module, 36_ns, AccessKind::DoubleSided);
    ASSERT_GT(point.fractionFlipped(), 0.5);
    const double mean = point.meanAcmin();
    // Paper Table 5: mean 279K, min 47K for this die.
    EXPECT_GT(mean, 60e3);
    EXPECT_LT(mean, 1.2e6);
}

TEST(ChrSmoke, RowPressAcminAtRefiMatchesScale)
{
    Module module(smallConfig(device::dieS8GbB()));
    auto point = acminPoint(module, 7800_ns, AccessKind::SingleSided);
    ASSERT_GT(point.fractionFlipped(), 0.2);
    const double mean = point.meanAcmin();
    // Paper: ~6.1K mean at tREFI for this die.
    EXPECT_GT(mean, 1e3);
    EXPECT_LT(mean, 40e3);
}

TEST(ChrSmoke, AcminDecreasesWithTAggOn)
{
    Module module(smallConfig(device::dieS8GbD()));
    auto p36 = acminPoint(module, 36_ns, AccessKind::SingleSided);
    auto p78 = acminPoint(module, 7800_ns, AccessKind::SingleSided);
    auto p702 = acminPoint(module, 70200_ns, AccessKind::SingleSided);
    ASSERT_GT(p78.fractionFlipped(), 0.0);
    ASSERT_GT(p702.fractionFlipped(), 0.0);
    EXPECT_GT(p36.meanAcmin(), p78.meanAcmin());
    EXPECT_GT(p78.meanAcmin(), p702.meanAcmin());
    // Cumulative on-time invariant: ACmin x tAggON roughly constant
    // between tREFI and 9xtREFI (slope ~ -1 in log-log).
    const double d78 = p78.meanAcmin() * 7.8;
    const double d702 = p702.meanAcmin() * 70.2;
    EXPECT_LT(d78 / d702, 2.5);
    EXPECT_GT(d78 / d702, 0.4);
}

TEST(ChrSmoke, SingleActivationFlipsAtThirtyMs)
{
    Module module(smallConfig(device::dieS8GbD(), 80.0));
    auto point = acminPoint(module, 30_ms, AccessKind::SingleSided);
    ASSERT_GT(point.fractionFlipped(), 0.5);
    // Paper Obsv. 2/9: at 80C and tAggON = 30 ms most flipped rows
    // need only a handful of activations, many exactly one.
    EXPECT_LE(point.acminSummary().min, 4.0);
}

TEST(ChrSmoke, RowPressImmuneDieStaysQuietAt50C)
{
    Module module(smallConfig(device::dieById("M-8Gb-B")));
    auto point = acminPoint(module, 7800_ns, AccessKind::SingleSided);
    EXPECT_EQ(point.fractionFlipped(), 0.0);
}

TEST(ChrSmoke, TAggOnMinAtSingleActivationIsTensOfMs)
{
    Module module(smallConfig(device::dieS8GbB()));
    auto point = tAggOnMinPoint(module, 1, AccessKind::SingleSided);
    auto s = point.summary();
    ASSERT_GT(s.count, 0u);
    // Paper Table 5: mean 47.3 ms, min 12.4 ms (values here in us).
    EXPECT_GT(s.min, 3e3);
    EXPECT_LT(s.mean, 70e3);
}

TEST(ChrSmoke, DirectionFlipsFromZeroToOneToOneToZero)
{
    Module module(smallConfig(device::dieS8GbD()));
    auto rh = acminPoint(module, 36_ns, AccessKind::SingleSided);
    auto rp = acminPoint(module, 70200_ns, AccessKind::SingleSided);
    ASSERT_GT(rh.fractionFlipped(), 0.0);
    ASSERT_GT(rp.fractionFlipped(), 0.0);
    EXPECT_LT(rh.fractionOneToZero(), 0.3);  // RowHammer: 0 -> 1.
    EXPECT_GT(rp.fractionOneToZero(), 0.9);  // RowPress: 1 -> 0.
}

} // namespace
} // namespace rp::chr
