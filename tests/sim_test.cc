/**
 * @file
 * Performance-simulator tests: controller scheduling and policies,
 * core window mechanics, workload generator statistics (parameterized
 * over all presets), and system-level metrics.
 */

#include <gtest/gtest.h>

#include "mitigation/para.h"
#include "sim/system.h"

namespace rp::sim {
namespace {

using namespace rp::literals;

TEST(Controller, EnqueueRespectsQueueSize)
{
    ControllerConfig cfg;
    cfg.queueSize = 4;
    Controller mc(cfg);
    Request req;
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(mc.canEnqueue(false));
        mc.enqueue(req);
    }
    EXPECT_FALSE(mc.canEnqueue(false));
    EXPECT_TRUE(mc.canEnqueue(true)); // write queue independent
}

TEST(Controller, ServesReadAndReportsRowHitMiss)
{
    ControllerConfig cfg;
    Controller mc(cfg);
    Request::Slot slot_a, slot_b;

    Request a;
    a.addr.row = 100;
    a.slot = &slot_a;
    mc.enqueue(a);
    Request b = a;
    b.addr.column = 5;
    b.slot = &slot_b;
    mc.enqueue(b);

    Time now = 0;
    for (int i = 0; i < 500 && (slot_a.doneAt < 0 || slot_b.doneAt < 0);
         ++i) {
        mc.tick(now);
        now += cfg.timing.tCK;
    }
    ASSERT_GE(slot_a.doneAt, 0);
    ASSERT_GE(slot_b.doneAt, 0);
    EXPECT_EQ(mc.stats().rowMisses, 1u);
    EXPECT_EQ(mc.stats().rowHits, 1u);
    EXPECT_GT(slot_b.doneAt, slot_a.doneAt - cfg.timing.tCL);
    EXPECT_TRUE(mc.drained());
}

TEST(Controller, RowConflictForcesPrechargeActivate)
{
    ControllerConfig cfg;
    Controller mc(cfg);
    Request::Slot s1, s2;
    Request a;
    a.addr.row = 1;
    a.slot = &s1;
    Request b;
    b.addr.row = 2;
    b.slot = &s2;
    mc.enqueue(a);
    mc.enqueue(b);
    Time now = 0;
    for (int i = 0; i < 2000 && s2.doneAt < 0; ++i) {
        mc.tick(now);
        now += cfg.timing.tCK;
    }
    ASSERT_GE(s2.doneAt, 0);
    EXPECT_EQ(mc.stats().acts, 2u);
    EXPECT_EQ(mc.stats().rowMisses, 2u);
}

TEST(Controller, TMroForcesPrecharge)
{
    ControllerConfig cfg;
    cfg.tMro = cfg.timing.tRAS;
    Controller mc(cfg);
    Request::Slot s1, s2;
    Request a;
    a.addr.row = 1;
    a.slot = &s1;
    mc.enqueue(a);
    Time now = 0;
    for (int i = 0; i < 1000; ++i) {
        mc.tick(now);
        now += cfg.timing.tCK;
    }
    // A row-hit arriving after t_mro expiry becomes a miss.
    Request b = a;
    b.addr.column = 3;
    b.slot = &s2;
    mc.enqueue(b);
    for (int i = 0; i < 1000 && s2.doneAt < 0; ++i) {
        mc.tick(now);
        now += cfg.timing.tCK;
    }
    ASSERT_GE(s2.doneAt, 0);
    EXPECT_GE(mc.stats().forcedPrecharges, 1u);
    EXPECT_EQ(mc.stats().rowMisses, 2u);
    EXPECT_EQ(mc.stats().rowHits, 0u);
}

TEST(Controller, RefreshHappensEveryTrefi)
{
    ControllerConfig cfg;
    Controller mc(cfg);
    Time now = 0;
    const Time horizon = 10 * cfg.timing.tREFI;
    while (now < horizon) {
        mc.tick(now);
        now += cfg.timing.tCK;
    }
    // Two ranks, ~10 tREFI windows each.
    EXPECT_GE(mc.stats().refreshes, 16u);
    EXPECT_LE(mc.stats().refreshes, 22u);
}

TEST(Controller, MitigationVictimsCostPreventiveActs)
{
    mitigation::Para para(mitigation::ParaConfig{1.0, 1}); // always
    ControllerConfig cfg;
    cfg.mitigation = &para;
    Controller mc(cfg);
    Request::Slot slot;
    Request a;
    a.addr.row = 50;
    a.slot = &slot;
    mc.enqueue(a);
    Time now = 0;
    for (int i = 0; i < 3000 && !mc.drained(); ++i) {
        mc.tick(now);
        now += cfg.timing.tCK;
    }
    EXPECT_GE(mc.stats().preventiveActs, 1u);
    // Preventive refreshes never recurse into the mitigation.
    EXPECT_LE(mc.stats().preventiveActs, 2u);
}

TEST(Controller, RowActCountsAreTracked)
{
    ControllerConfig cfg;
    cfg.tMro = cfg.timing.tRAS; // force one ACT per access
    Controller mc(cfg);
    for (int i = 0; i < 3; ++i) {
        Request a;
        a.addr.row = 77;
        a.addr.column = i;
        a.write = true;
        mc.enqueue(a);
        Time now = Time(i) * 200_ns;
        for (int t = 0; t < 400; ++t) {
            mc.tick(now);
            now += cfg.timing.tCK;
        }
    }
    const int flat_bank = dram::Address{}.flatBank(cfg.org);
    EXPECT_EQ(mc.rowActCount(flat_bank, 77), 3u);
    EXPECT_EQ(mc.stats().maxRowActs, 3u);
}

TEST(Core, PureComputeRetiresAtIssueWidth)
{
    // A workload with essentially no memory accesses must retire at
    // ~issueWidth IPC.
    ControllerConfig mem_cfg;
    Controller mc(mem_cfg);
    workloads::WorkloadParams w;
    w.name = "compute";
    w.mpki = 0.01;
    dram::AddressMapper mapper(mem_cfg.org);
    workloads::TraceGen gen(w, mapper, 1);
    CoreConfig cc;
    cc.instrLimit = 50000;
    Core core(0, std::move(gen), mc, cc);

    Time now = 0;
    std::uint64_t cycle = 0;
    while (!core.done() && cycle < 1000000) {
        core.tick(now);
        mc.tick(now);
        now += 250;
        ++cycle;
    }
    EXPECT_TRUE(core.done());
    EXPECT_GT(core.ipc(), 3.5);
}

TEST(Core, MemoryBoundWorkloadIsSlower)
{
    auto run = [](double mpki) {
        ControllerConfig mem_cfg;
        Controller mc(mem_cfg);
        workloads::WorkloadParams w;
        w.mpki = mpki;
        w.rowLocality = 0.2;
        dram::AddressMapper mapper(mem_cfg.org);
        workloads::TraceGen gen(w, mapper, 1);
        CoreConfig cc;
        cc.instrLimit = 30000;
        Core core(0, std::move(gen), mc, cc);
        Time now = 0;
        while (!core.done()) {
            core.tick(now);
            mc.tick(now);
            now += 250;
        }
        return core.ipc();
    };
    EXPECT_GT(run(1.0), 1.5 * run(50.0));
}

class PresetStatistics
    : public ::testing::TestWithParam<workloads::WorkloadParams>
{
};

/** Generator property: emitted streams match the preset's statistics. */
TEST_P(PresetStatistics, MpkiAndLocalityAreRealized)
{
    const auto &w = GetParam();
    dram::Organization org;
    org.ranks = 2;
    dram::AddressMapper mapper(org);
    workloads::TraceGen gen(w, mapper, 5);

    std::uint64_t instrs = 0, rows_same = 0, writes = 0;
    const int n = 20000;
    dram::Address last{};
    bool have_last = false;
    for (int i = 0; i < n; ++i) {
        auto item = gen.next();
        instrs += std::uint64_t(item.bubbles) + 1;
        writes += item.write ? 1 : 0;
        auto a = mapper.decode(item.addr);
        if (have_last && a.row == last.row && a.sameBank(last))
            ++rows_same;
        last = a;
        have_last = true;
    }
    const double mpki = double(n) / double(instrs) * 1000.0;
    EXPECT_NEAR(mpki, w.mpki, w.mpki * 0.25) << w.name;
    const double locality = double(rows_same) / double(n);
    EXPECT_NEAR(locality, w.rowLocality, 0.08) << w.name;
    EXPECT_NEAR(double(writes) / double(n), w.writeFrac, 0.05)
        << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetStatistics,
    ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::WorkloadParams> &info) {
        std::string n = info.param.name;
        for (auto &c : n) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(Workloads, RegistryAndMixes)
{
    EXPECT_GE(workloads::allWorkloads().size(), 40u);
    EXPECT_EQ(workloads::workloadByName("429.mcf").category, 'H');
    EXPECT_FALSE(workloads::highIntensityWorkloads().empty());
    EXPECT_FALSE(workloads::lowIntensityWorkloads().empty());
    auto mix = workloads::makeMix("HHLL", 3);
    ASSERT_EQ(mix.size(), 4u);
    EXPECT_EQ(mix[0].category, 'H');
    EXPECT_EQ(mix[3].category, 'L');
}

TEST(System, RunsToCompletionAndReportsIpc)
{
    SystemConfig cfg;
    cfg.core.instrLimit = 20000;
    cfg.workloads = {workloads::workloadByName("462.libquantum")};
    auto res = runSystem(cfg);
    ASSERT_EQ(res.cores.size(), 1u);
    EXPECT_EQ(res.cores[0].instrs, 20000u);
    EXPECT_GT(res.ipcOf(0), 0.1);
    EXPECT_GT(res.mem.reads, 100u);
    EXPECT_GT(res.mem.rowHitRate(), 0.6); // high-locality preset
}

TEST(System, MinimallyOpenRowHurtsHighLocalityWorkloads)
{
    SystemConfig open_cfg;
    open_cfg.core.instrLimit = 30000;
    open_cfg.workloads = {workloads::workloadByName("462.libquantum")};
    auto open_res = runSystem(open_cfg);

    SystemConfig min_cfg = open_cfg;
    min_cfg.mem.tMro = min_cfg.mem.timing.tRAS;
    auto min_res = runSystem(min_cfg);

    EXPECT_LT(min_res.ipcOf(0), 0.85 * open_res.ipcOf(0));
    EXPECT_GT(min_res.mem.maxRowActs, open_res.mem.maxRowActs);
}

TEST(System, WeightedSpeedupMath)
{
    SystemResult res;
    res.cores = {{"a", 0, 0, 1.0}, {"b", 0, 0, 0.5}};
    EXPECT_DOUBLE_EQ(res.weightedSpeedup({2.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(res.weightedSpeedup({1.0, 1.0}), 1.5);
    EXPECT_DOUBLE_EQ(res.weightedSpeedup({0.0, 1.0}), 0.5);
}

TEST(System, FourCoreMixSharesBandwidth)
{
    const auto w = workloads::workloadByName("429.mcf");
    const double alone =
        aloneIpc(w, ControllerConfig{}, CoreConfig{128, 4, 15000});
    SystemConfig cfg;
    cfg.core.instrLimit = 15000;
    cfg.workloads = std::vector<workloads::WorkloadParams>(4, w);
    auto res = runSystem(cfg);
    for (int i = 0; i < 4; ++i)
        EXPECT_LT(res.ipcOf(std::size_t(i)), alone);
    const double ws = res.weightedSpeedup(
        std::vector<double>(4, alone));
    EXPECT_GT(ws, 1.0);
    EXPECT_LT(ws, 4.0);
}

} // namespace
} // namespace rp::sim
