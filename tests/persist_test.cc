/**
 * @file
 * Persistence suite: ThresholdStore snapshots and the on-disk
 * warm-start cache.
 *
 * The load-bearing invariant is bit-identity: a store warmed from a
 * snapshot must be indistinguishable — byte for byte, tier by tier —
 * from one built cold.  Everything else is failure behavior: corrupt,
 * truncated, stale-version, and stale-math snapshots must rebuild
 * (never crash, never serve wrong thresholds), concurrent processes
 * must be able to share one cache directory, and the fault points
 * must degrade exactly like real I/O failures.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/cli.h"
#include "api/context.h"
#include "api/registry.h"
#include "core/fault.h"
#include "device/cell_model.h"
#include "device/threshold_store.h"
#include "persist/cache.h"
#include "persist/snapshot.h"

#if defined(__unix__) || defined(__APPLE__)
#define RP_TEST_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace rp::persist {
namespace {

namespace fs = std::filesystem;
using device::CellModel;
using device::RowCandidates;
using device::RowWordMasks;
using device::ThresholdStore;
using device::dieS8GbB;

/** Every test leaves the process-wide cache and injector disarmed. */
struct CacheGuard
{
    ~CacheGuard()
    {
        SnapshotCache::instance().configure("");
        SnapshotCache::instance().resetStats();
        core::FaultInjector::instance().disarm();
    }
};

fs::path
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** A private store with some of both tiers built. */
std::shared_ptr<const ThresholdStore>
builtStore(std::uint64_t seed)
{
    CellModel model(dieS8GbB(), 65536, seed);
    auto store =
        ThresholdStore::makePrivate(model.params(), 65536, seed);
    store->row(0, 100);
    store->row(1, 5);
    store->row(3, 4096);
    store->wordMasks(0, 100);
    store->wordMasks(2, 77);
    return store;
}

/** Exact (bitwise, for doubles) equality of two candidate tiers. */
void
expectRowsIdentical(const ThresholdStore &a, const ThresholdStore &b)
{
    const auto ra = a.exportRows();
    const auto rb = b.exportRows();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].first, rb[i].first);
        const RowCandidates &x = *ra[i].second;
        const RowCandidates &y = *rb[i].second;
        EXPECT_EQ(x.bit, y.bit);
        EXPECT_EQ(x.anti, y.anti);
        EXPECT_EQ(x.domSide, y.domSide);
        ASSERT_EQ(x.thetaH.size(), y.thetaH.size());
        EXPECT_EQ(0, std::memcmp(x.thetaH.data(), y.thetaH.data(),
                                 x.thetaH.size() * sizeof(double)));
        EXPECT_EQ(0, std::memcmp(x.thetaP.data(), y.thetaP.data(),
                                 x.thetaP.size() * sizeof(double)));
        EXPECT_EQ(0, std::memcmp(x.tauRet.data(), y.tauRet.data(),
                                 x.tauRet.size() * sizeof(double)));
        EXPECT_EQ(0, std::memcmp(&x.minThetaH, &y.minThetaH,
                                 sizeof(double)));
        EXPECT_EQ(0, std::memcmp(&x.minThetaP, &y.minThetaP,
                                 sizeof(double)));
        EXPECT_EQ(0, std::memcmp(&x.minTauRet, &y.minTauRet,
                                 sizeof(double)));
    }
}

void
expectMasksIdentical(const ThresholdStore &a, const ThresholdStore &b)
{
    const auto ma = a.exportWordMasks();
    const auto mb = b.exportWordMasks();
    ASSERT_EQ(ma.size(), mb.size());
    for (std::size_t i = 0; i < ma.size(); ++i) {
        EXPECT_EQ(ma[i].first, mb[i].first);
        const RowWordMasks &x = *ma[i].second;
        const RowWordMasks &y = *mb[i].second;
        EXPECT_EQ(x.numWords, y.numWords);
        EXPECT_EQ(x.numGroups, y.numGroups);
        EXPECT_EQ(x.valid, y.valid);
        EXPECT_EQ(x.hammer, y.hammer);
        EXPECT_EQ(x.press, y.press);
        EXPECT_EQ(x.retention, y.retention);
        EXPECT_EQ(0, std::memcmp(&x.minThetaPLow, &y.minThetaPLow,
                                 sizeof(double)));
        EXPECT_EQ(0, std::memcmp(&x.minTauRetLow, &y.minTauRetLow,
                                 sizeof(double)));
    }
}

/** Re-stamp the checksum after a test deliberately edits a header. */
void
refixChecksum(std::vector<std::uint8_t> &blob)
{
    static const std::uint8_t zeros[8] = {};
    std::uint64_t h = fnv1a(blob.data(), 64);
    h = fnv1a(zeros, sizeof(zeros), h);
    h = fnv1a(blob.data() + 72, blob.size() - 72, h);
    std::memcpy(blob.data() + 64, &h, 8);
}

const std::string kTestKey = std::string("TESTDIE") +
                             std::string(1, '\0') + "rest-of-key";

// ---------------------------------------------------------------
// Snapshot format: round trips, fixpoints, inspection
// ---------------------------------------------------------------

TEST(PersistSnapshot, RoundTripIsBitIdentical)
{
    const auto a = builtStore(7);
    const std::vector<std::uint8_t> blob = writeSnapshot(*a, kTestKey);

    CellModel model(dieS8GbB(), 65536, 7);
    const auto b =
        ThresholdStore::makePrivate(model.params(), 65536, 7);
    const LoadCounts counts =
        loadSnapshot(blob.data(), blob.size(), kTestKey, *b);
    EXPECT_EQ(counts.candidateRows, 3u);
    EXPECT_EQ(counts.wordMaskRows, 2u);

    expectRowsIdentical(*a, *b);
    expectMasksIdentical(*a, *b);

    // A loaded tier must also equal a freshly *built* one (the rows
    // rebuilt from scratch), not just survive serialization.
    const auto c = builtStore(7);
    expectRowsIdentical(*c, *b);
    expectMasksIdentical(*c, *b);

    // Serialize-load-serialize is a byte fixpoint.
    EXPECT_EQ(blob, writeSnapshot(*b, kTestKey));
}

TEST(PersistSnapshot, InspectReportsIdentity)
{
    const auto a = builtStore(9);
    const std::vector<std::uint8_t> blob = writeSnapshot(*a, kTestKey);
    const SnapshotInfo info =
        inspectSnapshot(blob.data(), blob.size());
    ASSERT_TRUE(info.valid) << info.error;
    EXPECT_EQ(info.version, kSnapshotFormatVersion);
    EXPECT_EQ(info.seed, 9u);
    EXPECT_EQ(info.bitsPerRow, 65536);
    EXPECT_EQ(info.key, kTestKey);
    EXPECT_EQ(info.dieId, "TESTDIE");
    EXPECT_EQ(info.candidateRows, 3u);
    EXPECT_EQ(info.wordMaskRows, 2u);
    EXPECT_EQ(info.bytes, blob.size());
    EXPECT_EQ(info.invariantsHash, invariantsHashOf(*a));
}

TEST(PersistSnapshot, SameTiersDifferentBuildOrderSameBytes)
{
    CellModel model(dieS8GbB(), 65536, 4);
    const auto a =
        ThresholdStore::makePrivate(model.params(), 65536, 4);
    a->row(0, 1);
    a->row(0, 2);
    a->wordMasks(1, 9);
    const auto b =
        ThresholdStore::makePrivate(model.params(), 65536, 4);
    b->wordMasks(1, 9);
    b->row(0, 2);
    b->row(0, 1);
    EXPECT_EQ(writeSnapshot(*a, kTestKey), writeSnapshot(*b, kTestKey));
}

// ---------------------------------------------------------------
// Chaos: every corruption class must reject cleanly, adopt nothing
// ---------------------------------------------------------------

class PersistChaos : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        store_ = builtStore(3);
        blob_ = writeSnapshot(*store_, kTestKey);
    }

    /**
     * The blob must be rejected and the target store untouched.
     * @p inspect_detects: whether store-less inspection can also see
     * the problem (an invariants mismatch needs the target store's
     * expected hash, so inspection alone reports such a blob valid).
     */
    void
    expectRejected(const std::vector<std::uint8_t> &blob,
                   const std::string &why_contains,
                   bool inspect_detects = true)
    {
        CellModel model(dieS8GbB(), 65536, 3);
        const auto into =
            ThresholdStore::makePrivate(model.params(), 65536, 3);
        try {
            loadSnapshot(blob.data(), blob.size(), kTestKey, *into);
            FAIL() << "expected SnapshotError (" << why_contains
                   << ")";
        } catch (const SnapshotError &e) {
            EXPECT_NE(std::string(e.what()).find(why_contains),
                      std::string::npos)
                << e.what();
        }
        // Validation failed, so nothing may have been adopted.
        EXPECT_EQ(into->stats().candidateRows, 0u);
        EXPECT_EQ(into->stats().wordMaskRows, 0u);
        // inspectSnapshot agrees, without throwing.
        if (inspect_detects)
            EXPECT_FALSE(
                inspectSnapshot(blob.data(), blob.size()).valid);
    }

    std::shared_ptr<const ThresholdStore> store_;
    std::vector<std::uint8_t> blob_;
};

TEST_F(PersistChaos, TruncationRejected)
{
    auto blob = blob_;
    blob.resize(blob.size() - 7);
    expectRejected(blob, "");
    blob.resize(40); // shorter than the header
    expectRejected(blob, "");
    expectRejected({}, "");
}

TEST_F(PersistChaos, BitFlipAnywhereRejected)
{
    // Flip one bit at a spread of offsets: header, section table,
    // candidate payload, mask payload, last byte.
    for (const std::size_t at :
         {std::size_t(9), std::size_t(100), std::size_t(400),
          blob_.size() / 2, blob_.size() - 1}) {
        auto blob = blob_;
        blob[at] ^= 0x10;
        expectRejected(blob, "");
    }
}

TEST_F(PersistChaos, WrongMagicAndVersionRejected)
{
    auto blob = blob_;
    blob[0] ^= 0xff;
    refixChecksum(blob);
    expectRejected(blob, "magic");

    blob = blob_;
    const std::uint32_t version = kSnapshotFormatVersion + 1;
    std::memcpy(blob.data() + 8, &version, 4);
    refixChecksum(blob);
    expectRejected(blob, "version");
}

TEST_F(PersistChaos, WrongInvariantsHashRejected)
{
    auto blob = blob_;
    std::uint64_t bogus = 0xdeadbeefdeadbeefULL;
    std::memcpy(blob.data() + 16, &bogus, 8);
    refixChecksum(blob);
    expectRejected(blob, "invariants", /*inspect_detects=*/false);
}

TEST_F(PersistChaos, WrongKeySeedOrGeometryRejected)
{
    CellModel model(dieS8GbB(), 65536, 3);
    const auto into =
        ThresholdStore::makePrivate(model.params(), 65536, 3);
    EXPECT_THROW(loadSnapshot(blob_.data(), blob_.size(),
                              "some-other-key", *into),
                 SnapshotError);

    // A different seed changes the expected-seed check even when the
    // caller passes the snapshot's own key.
    CellModel other(dieS8GbB(), 65536, 4);
    const auto wrong_seed =
        ThresholdStore::makePrivate(other.params(), 65536, 4);
    EXPECT_THROW(loadSnapshot(blob_.data(), blob_.size(), kTestKey,
                              *wrong_seed),
                 SnapshotError);
    EXPECT_EQ(wrong_seed->stats().candidateRows, 0u);
}

// ---------------------------------------------------------------
// The cache: warm start, self-healing, fault injection, sharing
// ---------------------------------------------------------------

/**
 * Acquire the registered (shared) store of (dieS8GbB, 65536, seed)
 * exactly as CellModel construction does.
 */
std::shared_ptr<const ThresholdStore>
acquireShared(std::uint64_t seed)
{
    CellModel model(dieS8GbB(), 65536, seed);
    return ThresholdStore::acquire(dieS8GbB(), model.params(), 65536,
                                   seed);
}

TEST(PersistCache, WarmStartRoundTripThroughDisk)
{
    CacheGuard guard;
    const fs::path dir = freshDir("rp_persist_warm");
    auto &cache = SnapshotCache::instance();
    cache.configure(dir.string());
    cache.resetStats();

    // Cold: build, publish, evict.
    {
        auto store = acquireShared(1001);
        store->row(0, 100);
        store->row(2, 50);
        store->wordMasks(0, 100);
        EXPECT_EQ(cache.publishRegistry(), 1u);
    }
    ThresholdStore::evictRegistry();

    // Warm: re-acquire; the hook must adopt both tiers from disk.
    auto warm = acquireShared(1001);
    const CacheStats stats = cache.stats();
    EXPECT_GE(stats.hits, 1u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(warm->stats().candidateRows, 2u);
    EXPECT_EQ(warm->stats().wordMaskRows, 1u);

    // Bit-identity against a cold build of the same tiers.
    CellModel model(dieS8GbB(), 65536, 1001);
    const auto cold =
        ThresholdStore::makePrivate(model.params(), 65536, 1001);
    cold->row(0, 100);
    cold->row(2, 50);
    cold->wordMasks(0, 100);
    expectRowsIdentical(*cold, *warm);
    expectMasksIdentical(*cold, *warm);

    // An unchanged store publishes nothing new.
    EXPECT_EQ(cache.publishRegistry(), 0u);
    EXPECT_GE(cache.stats().publishSkips, 1u);
    ThresholdStore::evictRegistry();
}

TEST(PersistCache, CorruptSnapshotQuarantinedAndRepublished)
{
    CacheGuard guard;
    const fs::path dir = freshDir("rp_persist_corrupt");
    auto &cache = SnapshotCache::instance();
    cache.configure(dir.string());
    cache.resetStats();
    {
        auto store = acquireShared(1002);
        store->row(0, 7);
        EXPECT_EQ(cache.publishRegistry(), 1u);
    }
    ThresholdStore::evictRegistry();

    // Flip a payload byte of the published file.
    fs::path file;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == kSnapshotExtension)
            file = e.path();
    ASSERT_FALSE(file.empty());
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(300);
        f.put('\x7f');
    }

    // The warm path must reject, quarantine the file, and rebuild.
    cache.resetStats();
    auto rebuilt = acquireShared(1002);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_FALSE(fs::exists(file)) << "corrupt file not quarantined";
    rebuilt->row(0, 7);

    // The next publish sweep heals the cache; the new file loads.
    EXPECT_EQ(cache.publishRegistry(), 1u);
    ThresholdStore::evictRegistry();
    cache.resetStats();
    auto warm = acquireShared(1002);
    EXPECT_GE(cache.stats().hits, 1u);
    EXPECT_EQ(warm->stats().candidateRows, 1u);
    ThresholdStore::evictRegistry();
}

TEST(PersistCache, ReadFaultDegradesToColdBuild)
{
    CacheGuard guard;
    const fs::path dir = freshDir("rp_persist_readfault");
    auto &cache = SnapshotCache::instance();
    cache.configure(dir.string());
    {
        auto store = acquireShared(1003);
        store->row(1, 2);
        EXPECT_EQ(cache.publishRegistry(), 1u);
    }
    ThresholdStore::evictRegistry();

    core::FaultSpec spec;
    spec.point = "persist.snapshot.read";
    spec.kind = core::FaultSpec::Kind::Errno;
    spec.errnoValue = EIO;
    core::FaultInjector::instance().arm(1, {spec});

    cache.resetStats();
    auto store = acquireShared(1003);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().rejected, 1u);
    // The run itself is unaffected: the tier builds cold on demand
    // and matches the published snapshot's content.
    const auto &row = store->row(1, 2);
    EXPECT_GT(row.size(), 0u);
    ThresholdStore::evictRegistry();
}

TEST(PersistCache, WriteFaultNeverFailsTheRun)
{
    CacheGuard guard;
    const fs::path dir = freshDir("rp_persist_writefault");
    auto &cache = SnapshotCache::instance();
    cache.configure(dir.string());
    cache.resetStats();

    core::FaultSpec spec;
    spec.point = "persist.snapshot.write";
    spec.kind = core::FaultSpec::Kind::Throw;
    core::FaultInjector::instance().arm(1, {spec});

    auto store = acquireShared(1004);
    store->row(0, 3);
    EXPECT_EQ(cache.publishRegistry(), 0u); // failed, did not throw
    EXPECT_GE(cache.stats().publishFailures, 1u);
    EXPECT_TRUE(fs::is_empty(dir));

    // Disarmed, the same sweep succeeds (the failure left no memo).
    core::FaultInjector::instance().disarm();
    EXPECT_EQ(cache.publishRegistry(), 1u);
    ThresholdStore::evictRegistry();
}

TEST(PersistCache, GarbageDirectoryRejected)
{
    CacheGuard guard;
    // A path under a regular file can never become a directory.
    const fs::path file = freshDir("rp_persist_badcfg") / "plain";
    std::ofstream(file) << "x";
    EXPECT_THROW(SnapshotCache::instance().configure(
                     (file / "sub").string()),
                 CacheError);
    // And the cache stays disarmed after the failed configure.
    EXPECT_FALSE(SnapshotCache::instance().enabled());
}

TEST(PersistCache, GcDropsInvalidThenLru)
{
    CacheGuard guard;
    const fs::path dir = freshDir("rp_persist_gc");

    // Three valid snapshots (distinct seeds), one garbage file, one
    // leftover temp file.
    std::vector<fs::path> files;
    for (const std::uint64_t seed : {21u, 22u, 23u}) {
        const auto store = builtStore(seed);
        const auto blob = writeSnapshot(*store, kTestKey);
        const fs::path path =
            dir / SnapshotCache::snapshotFileName(
                      kTestKey + char('0' + seed),
                      invariantsHashOf(*store));
        std::ofstream(path, std::ios::binary)
            .write(reinterpret_cast<const char *>(blob.data()),
                   std::streamsize(blob.size()));
        files.push_back(path);
    }
    std::ofstream(dir / "ts-0000000000000bad.rpsnap") << "garbage";
    std::ofstream(dir / ("junk" + std::string(kSnapshotExtension) +
                         ".tmp.123"))
        << "leftover";

    // Age the first file so LRU prefers to drop it.
    fs::last_write_time(files[0], fs::last_write_time(files[1]) -
                                      std::chrono::hours(2));

    // Invalid-only sweep: garbage + temp go, all valid stay.
    auto result =
        SnapshotCache::gcDir(dir.string(), std::uintmax_t(-1));
    EXPECT_EQ(result.removed, 2u);
    EXPECT_TRUE(fs::exists(files[0]));

    // Size cap that fits exactly the two younger snapshots (their
    // sizes differ per seed — candidate counts are seed-dependent):
    // only the aged-out oldest goes.
    const std::uintmax_t two =
        fs::file_size(files[1]) + fs::file_size(files[2]);
    result = SnapshotCache::gcDir(dir.string(), two);
    EXPECT_EQ(result.removed, 1u);
    EXPECT_FALSE(fs::exists(files[0]));
    EXPECT_TRUE(fs::exists(files[1]));
    EXPECT_TRUE(fs::exists(files[2]));
    EXPECT_LE(result.keptBytes, two);
}

TEST(PersistCache, ImportExportRoundTrip)
{
    CacheGuard guard;
    const fs::path src_dir = freshDir("rp_persist_exp_src");
    const fs::path dst_dir = freshDir("rp_persist_exp_dst");

    const auto store = builtStore(31);
    const auto blob = writeSnapshot(*store, kTestKey);
    const fs::path loose = src_dir / "loose-snapshot.bin";
    std::ofstream(loose, std::ios::binary)
        .write(reinterpret_cast<const char *>(blob.data()),
               std::streamsize(blob.size()));

    // Install normalizes the name; a second install is covered.
    EXPECT_TRUE(SnapshotCache::installFile(loose.string(),
                                           dst_dir.string()));
    EXPECT_FALSE(SnapshotCache::installFile(loose.string(),
                                            dst_dir.string()));
    const auto entries = SnapshotCache::listDir(dst_dir.string());
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_TRUE(entries[0].info.valid);
    EXPECT_EQ(entries[0].file,
              SnapshotCache::snapshotFileName(
                  kTestKey, invariantsHashOf(*store)));

    // Garbage import throws (the CLI maps this to exit 2).
    const fs::path bad = src_dir / "bad.rpsnap";
    std::ofstream(bad) << "not a snapshot";
    EXPECT_THROW(SnapshotCache::installFile(bad.string(),
                                            dst_dir.string()),
                 CacheError);
}

#if defined(RP_TEST_HAVE_FORK)
TEST(PersistCache, TwoProcessesShareOneDirectory)
{
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
    GTEST_SKIP() << "fork() is unsupported under TSan";
#endif
#endif
    CacheGuard guard;
    const fs::path dir = freshDir("rp_persist_shared");

    // Two child processes race publish and load on the same key.
    std::vector<pid_t> children;
    for (int i = 0; i < 2; ++i) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            int rc = 0;
            try {
                auto &cache = SnapshotCache::instance();
                cache.configure(dir.string());
                auto store = acquireShared(1005);
                store->row(0, 10 + i); // overlapping but not equal
                store->row(0, 12);
                cache.publishRegistry();
            } catch (...) {
                rc = 1;
            }
            _exit(rc);
        }
        children.push_back(pid);
    }
    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // Whatever interleaving happened, the directory holds exactly one
    // fully valid snapshot of that key.
    const auto entries = SnapshotCache::listDir(dir.string());
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_TRUE(entries[0].info.valid) << entries[0].info.error;
    EXPECT_GE(entries[0].info.candidateRows, 2u);
}
#endif // RP_TEST_HAVE_FORK

// ---------------------------------------------------------------
// CLI verbs and the end-to-end cold/warm flow
// ---------------------------------------------------------------

int
cli(const std::vector<std::string> &args,
    std::string *out_text = nullptr)
{
    std::ostringstream out, err;
    const int rc = api::runCli(args, out, err);
    if (out_text)
        *out_text = out.str() + err.str();
    return rc;
}

/**
 * A probe experiment registered only in this binary: builds both
 * tiers of the shared (dieS8GbB, 65536, seed) store through exactly
 * the path real experiments use, then emits every threshold as an
 * exact %a hex-float plus an FNV over the mask words — so a cold vs
 * warm byte-diff of its CSV is a bit-identity proof, not a
 * close-enough one.
 */
struct RegisterPersistProbe
{
    RegisterPersistProbe()
    {
        api::ExperimentRegistry::instance().add(
            {{"zzzpersist_probe", "Persist warm-start probe", "none",
              "test"},
             nullptr,
             [](api::ExperimentContext &ctx) {
                 CellModel model(dieS8GbB(), 65536, ctx.seed());
                 const auto store = ThresholdStore::acquire(
                     dieS8GbB(), model.params(), 65536, ctx.seed());
                 api::Dataset d("persist probe");
                 d.header({"bank", "row", "min_theta_h",
                           "min_theta_p", "min_tau_ret", "cells",
                           "mask_fnv"});
                 for (const int r : {100, 2000, 40000}) {
                     const RowCandidates &row = store->row(0, r);
                     const RowWordMasks &masks =
                         store->wordMasks(0, r);
                     const std::uint64_t mask_fnv = fnv1a(
                         masks.hammer.data(),
                         masks.hammer.size() * sizeof(std::uint64_t));
                     char h[40], p[40], t[40];
                     std::snprintf(h, sizeof(h), "%a", row.minThetaH);
                     std::snprintf(p, sizeof(p), "%a", row.minThetaP);
                     std::snprintf(t, sizeof(t), "%a", row.minTauRet);
                     d.row({"0", std::to_string(r), h, p, t,
                            std::to_string(row.size()),
                            std::to_string(mask_fnv)});
                 }
                 ctx.emit(d);
             }});
    }
};
const RegisterPersistProbe register_persist_probe;

TEST(PersistCli, CacheVerbs)
{
    CacheGuard guard;
    const fs::path dir = freshDir("rp_persist_cli");
    const auto store = builtStore(41);
    const auto blob = writeSnapshot(*store, kTestKey);
    const fs::path loose = dir / "loose.bin";
    std::ofstream(loose, std::ios::binary)
        .write(reinterpret_cast<const char *>(blob.data()),
               std::streamsize(blob.size()));

    const fs::path cache_dir = freshDir("rp_persist_cli_cache");
    std::string text;
    ASSERT_EQ(cli({"cache", "import", loose.string(), "--cache-dir",
                   cache_dir.string()},
                  &text),
              0);
    EXPECT_NE(text.find("imported 1 snapshot(s)"), std::string::npos);

    ASSERT_EQ(cli({"cache", "ls", "--cache-dir", cache_dir.string()},
                  &text),
              0);
    EXPECT_NE(text.find("1 snapshot(s)"), std::string::npos);
    EXPECT_NE(text.find("TESTDIE"), std::string::npos);

    ASSERT_EQ(cli({"cache", "ls", "--cache-dir", cache_dir.string(),
                   "--format", "json"},
                  &text),
              0);
    EXPECT_NE(text.find("\"valid\": true"), std::string::npos);

    const fs::path export_dir = freshDir("rp_persist_cli_export");
    ASSERT_EQ(cli({"cache", "export", export_dir.string(),
                   "--cache-dir", cache_dir.string()},
                  &text),
              0);
    EXPECT_EQ(SnapshotCache::listDir(export_dir.string()).size(), 1u);

    ASSERT_EQ(cli({"cache", "gc", "--cache-dir", cache_dir.string(),
                   "--max-bytes", "0"},
                  &text),
              0);
    EXPECT_NE(text.find("removed 1 file(s)"), std::string::npos);

    // Error discipline: unknown verb / no dir / bad import exit 2.
    EXPECT_EQ(cli({"cache", "frob", "--cache-dir",
                   cache_dir.string()}),
              2);
    EXPECT_EQ(cli({"cache"}), 2);
    const fs::path bad = dir / "bad.rpsnap";
    std::ofstream(bad) << "zzz";
    EXPECT_EQ(cli({"cache", "import", bad.string(), "--cache-dir",
                   cache_dir.string()}),
              2);
}

TEST(PersistCli, RunColdThenWarmIsByteIdentical)
{
    CacheGuard guard;
    const fs::path cache_dir = freshDir("rp_persist_e2e_cache");
    const fs::path out_cold = freshDir("rp_persist_e2e_cold");
    const fs::path out_warm = freshDir("rp_persist_e2e_warm");

    const std::vector<std::string> common = {
        "run",         "zzzpersist_probe",
        "--format",    "csv",
        "--seed",      "77",
        "--cache-dir", cache_dir.string(),
    };
    auto with_out = [&](const fs::path &out) {
        std::vector<std::string> args = common;
        args.push_back("--out");
        args.push_back(out.string());
        return args;
    };

    std::string text;
    ASSERT_EQ(cli(with_out(out_cold), &text), 0) << text;
    ASSERT_FALSE(fs::is_empty(cache_dir));
    ThresholdStore::evictRegistry();
    ASSERT_EQ(cli(with_out(out_warm), &text), 0) << text;

    // Same artifact set, byte-identical files.
    std::size_t compared = 0;
    for (const auto &e : fs::recursive_directory_iterator(out_cold)) {
        if (!e.is_regular_file())
            continue;
        const fs::path rel = fs::relative(e.path(), out_cold);
        std::ifstream a(e.path(), std::ios::binary);
        std::ifstream b(out_warm / rel, std::ios::binary);
        ASSERT_TRUE(b.good()) << rel;
        std::stringstream sa, sb;
        sa << a.rdbuf();
        sb << b.rdbuf();
        EXPECT_EQ(sa.str(), sb.str()) << rel;
        ++compared;
    }
    EXPECT_GT(compared, 0u);

    // A bad --cache-dir is a config error: exit 2, before any work.
    const fs::path plain = cache_dir / "plainfile";
    std::ofstream(plain) << "x";
    std::vector<std::string> bad = with_out(out_cold);
    bad[bad.size() - 3] = (plain / "sub").string();
    EXPECT_EQ(cli(bad), 2);
    ThresholdStore::evictRegistry();
}

} // namespace
} // namespace rp::persist
