/**
 * @file
 * Bit-exact SECDED(72,64) codec tests (section 7.1): correction and
 * detection guarantees, and the silent-data-corruption failure mode
 * that multi-bit RowPress words trigger.
 */

#include <gtest/gtest.h>

#include <set>

#include "chr/secded.h"
#include "common/rng.h"

namespace rp::chr {
namespace {

TEST(Secded, CleanWordsDecodeOk)
{
    for (std::uint64_t data :
         {0ULL, ~0ULL, 0x5555555555555555ULL, 0xDEADBEEFCAFEF00DULL}) {
        auto w = Secded::encodeWord(data);
        auto r = Secded::decode(w, data);
        EXPECT_EQ(r.status, SecdedStatus::Ok);
        EXPECT_EQ(r.data, data);
    }
}

class SecdedSingleBit : public ::testing::TestWithParam<int>
{
};

TEST_P(SecdedSingleBit, EverySingleBitErrorIsCorrected)
{
    const std::uint64_t data = 0xA5A5F00D12345678ULL;
    auto w = Secded::encodeWord(data);
    Secded::flipBit(w, GetParam());
    auto r = Secded::decode(w, data);
    EXPECT_EQ(r.status, SecdedStatus::Corrected);
    EXPECT_EQ(r.data, data);
}

INSTANTIATE_TEST_SUITE_P(AllBits, SecdedSingleBit,
                         ::testing::Range(0, 72));

TEST(Secded, AllDoubleBitErrorsAreDetected)
{
    const std::uint64_t data = 0x0123456789ABCDEFULL;
    Rng rng(5);
    for (int trial = 0; trial < 2000; ++trial) {
        const int a = int(rng.below(72));
        int b = int(rng.below(72));
        if (a == b)
            b = (b + 1) % 72;
        auto w = Secded::encodeWord(data);
        Secded::flipBit(w, a);
        Secded::flipBit(w, b);
        auto r = Secded::decode(w, data);
        EXPECT_EQ(r.status, SecdedStatus::DetectedDouble)
            << "bits " << a << ", " << b;
    }
}

TEST(Secded, MultiBitRowPressWordsEscapeTheCode)
{
    // Paper section 7.1: words with >= 3 flips (the paper observes up
    // to 25) are beyond SECDED; many decode as Corrected/Ok while the
    // payload is wrong, i.e., silent data corruption.
    const std::uint64_t data = 0x5555555555555555ULL;
    Rng rng(11);
    int silent = 0, detected = 0;
    const int trials = 3000;
    for (int trial = 0; trial < trials; ++trial) {
        auto w = Secded::encodeWord(data);
        std::set<int> bits;
        while (bits.size() < 5)
            bits.insert(int(rng.below(64)));
        for (int b : bits)
            Secded::flipBit(w, b);
        auto r = Secded::decode(w, data);
        if (r.status == SecdedStatus::Miscorrected ||
            (r.status == SecdedStatus::Ok && r.data != data))
            ++silent;
        else if (r.status == SecdedStatus::DetectedDouble)
            ++detected;
        // 5 flipped data bits can never decode back to the truth.
        EXPECT_NE(r.data, data);
    }
    EXPECT_GT(silent, trials / 10); // substantial silent corruption
    EXPECT_GT(detected, 0);
}

TEST(Secded, CheckBitsMakeSyndromeZero)
{
    // encode() is linear: check(a ^ b) == check(a) ^ check(b).
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        EXPECT_EQ(Secded::encode(a ^ b),
                  Secded::encode(a) ^ Secded::encode(b));
    }
    EXPECT_EQ(Secded::encode(0), 0);
}

TEST(Secded, FlipBitTargetsDataAndCheck)
{
    auto w = Secded::encodeWord(0);
    Secded::flipBit(w, 3);
    EXPECT_EQ(w.data, 8u);
    Secded::flipBit(w, 64);
    EXPECT_EQ(w.check, 1u);
    Secded::flipBit(w, 71);
    EXPECT_EQ(w.check, 0x81u);
}

} // namespace
} // namespace rp::chr
