/**
 * @file
 * Determinism regression tests for the engine-parallel experiment
 * drivers: running the same sweep at 1 and at 4 threads must produce
 * bit-identical results, because every task is a pure function of the
 * task description plus its derived seed.
 */

#include <gtest/gtest.h>

#include "core/rowpress.h"

namespace rp {
namespace {

using namespace rp::literals;

core::ExperimentEngine::Options
withThreads(int n)
{
    core::ExperimentEngine::Options opts;
    opts.numThreads = n;
    return opts;
}

ProfileOptions
smallProfileOptions()
{
    ProfileOptions opts;
    opts.numLocations = 2;
    opts.temperatures = {80.0};
    opts.kinds = {chr::AccessKind::SingleSided};
    opts.tMros = {36_ns, 96_ns, 636_ns};
    return opts;
}

TEST(ParallelDeterminism, CharacterizeProfileSerialVsParallel)
{
    const auto opts = smallProfileOptions();
    const auto die = device::dieS8GbB();

    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    auto p1 = characterizeProfile(die, serial, opts);
    auto p4 = characterizeProfile(die, parallel, opts);

    ASSERT_EQ(p1.points.size(), p4.points.size());
    for (std::size_t i = 0; i < p1.points.size(); ++i) {
        EXPECT_EQ(p1.points[i].tAggOn, p4.points[i].tAggOn);
        // Bit-identical, not just approximately equal.
        EXPECT_EQ(p1.points[i].acminRatio, p4.points[i].acminRatio)
            << "profile diverged at point " << i;
    }
}

TEST(ParallelDeterminism, AcminSweepSerialVsParallel)
{
    chr::ModuleConfig mc;
    mc.die = device::dieS8GbB();
    mc.numLocations = 3;
    mc.temperatureC = 80.0;

    const std::vector<Time> sweep = {36_ns, 7800_ns, 70200_ns};

    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    auto a = chr::acminSweep(mc, serial, sweep,
                             chr::AccessKind::SingleSided);
    auto b = chr::acminSweep(mc, parallel, sweep,
                             chr::AccessKind::SingleSided);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t ti = 0; ti < a.size(); ++ti) {
        ASSERT_EQ(a[ti].locations.size(), b[ti].locations.size());
        for (std::size_t li = 0; li < a[ti].locations.size(); ++li) {
            const auto &x = a[ti].locations[li];
            const auto &y = b[ti].locations[li];
            EXPECT_EQ(x.row, y.row);
            EXPECT_EQ(x.flipped, y.flipped);
            EXPECT_EQ(x.acmin, y.acmin);
            ASSERT_EQ(x.flips.size(), y.flips.size());
            for (std::size_t fi = 0; fi < x.flips.size(); ++fi)
                EXPECT_EQ(x.flips[fi].id(), y.flips[fi].id());
        }
    }
}

TEST(ParallelDeterminism, RunSystemsSerialVsParallel)
{
    std::vector<sim::SystemConfig> cfgs;
    for (const char *name : {"429.mcf", "462.libquantum", "470.lbm"}) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 5000;
        cfg.workloads = {workloads::workloadByName(name)};
        cfgs.push_back(cfg);
    }

    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    auto a = sim::runSystems(cfgs, serial);
    auto b = sim::runSystems(cfgs, parallel);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cores.at(0).instrs, b[i].cores.at(0).instrs);
        EXPECT_EQ(a[i].cores.at(0).cycles, b[i].cores.at(0).cycles);
        EXPECT_EQ(a[i].cores.at(0).ipc, b[i].cores.at(0).ipc);
        EXPECT_EQ(a[i].mem.acts, b[i].mem.acts);
        EXPECT_EQ(a[i].mem.rowHits, b[i].mem.rowHits);
    }
}

} // namespace
} // namespace rp
