/**
 * @file
 * Determinism regression tests for the engine-parallel experiment
 * drivers: running the same sweep at 1 and at 4 threads must produce
 * bit-identical results, because every task is a pure function of the
 * task description plus its derived seed.
 */

#include <gtest/gtest.h>

#include "core/rowpress.h"

namespace rp {
namespace {

using namespace rp::literals;

core::ExperimentEngine::Options
withThreads(int n)
{
    core::ExperimentEngine::Options opts;
    opts.numThreads = n;
    return opts;
}

ProfileOptions
smallProfileOptions()
{
    ProfileOptions opts;
    opts.numLocations = 2;
    opts.temperatures = {80.0};
    opts.kinds = {chr::AccessKind::SingleSided};
    opts.tMros = {36_ns, 96_ns, 636_ns};
    return opts;
}

TEST(ParallelDeterminism, CharacterizeProfileSerialVsParallel)
{
    const auto opts = smallProfileOptions();
    const auto die = device::dieS8GbB();

    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    auto p1 = characterizeProfile(die, serial, opts);
    auto p4 = characterizeProfile(die, parallel, opts);

    ASSERT_EQ(p1.points.size(), p4.points.size());
    for (std::size_t i = 0; i < p1.points.size(); ++i) {
        EXPECT_EQ(p1.points[i].tAggOn, p4.points[i].tAggOn);
        // Bit-identical, not just approximately equal.
        EXPECT_EQ(p1.points[i].acminRatio, p4.points[i].acminRatio)
            << "profile diverged at point " << i;
    }
}

TEST(ParallelDeterminism, AcminSweepSerialVsParallel)
{
    chr::ModuleConfig mc;
    mc.die = device::dieS8GbB();
    mc.numLocations = 3;
    mc.temperatureC = 80.0;

    const std::vector<Time> sweep = {36_ns, 7800_ns, 70200_ns};

    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    auto a = chr::acminSweep(mc, serial, sweep,
                             chr::AccessKind::SingleSided);
    auto b = chr::acminSweep(mc, parallel, sweep,
                             chr::AccessKind::SingleSided);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t ti = 0; ti < a.size(); ++ti) {
        ASSERT_EQ(a[ti].locations.size(), b[ti].locations.size());
        for (std::size_t li = 0; li < a[ti].locations.size(); ++li) {
            const auto &x = a[ti].locations[li];
            const auto &y = b[ti].locations[li];
            EXPECT_EQ(x.row, y.row);
            EXPECT_EQ(x.flipped, y.flipped);
            EXPECT_EQ(x.acmin, y.acmin);
            ASSERT_EQ(x.flips.size(), y.flips.size());
            for (std::size_t fi = 0; fi < x.flips.size(); ++fi)
                EXPECT_EQ(x.flips[fi].id(), y.flips[fi].id());
        }
    }
}

TEST(ParallelDeterminism, SharedThresholdStoreThreadCountInvariant)
{
    // The acmin sweep tasks all share one ThresholdStore; lazy row
    // construction order differs between 1 and 4 threads, which must
    // not change any result.
    chr::ModuleConfig mc;
    mc.die = device::dieM16GbF();
    mc.numLocations = 3;
    mc.seed = 11;

    const std::vector<Time> sweep = {36_ns, 7800_ns};
    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    auto a = chr::acminSweep(mc, serial, sweep,
                             chr::AccessKind::DoubleSided);
    auto b = chr::acminSweep(mc, parallel, sweep,
                             chr::AccessKind::DoubleSided);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t ti = 0; ti < a.size(); ++ti) {
        for (std::size_t li = 0; li < a[ti].locations.size(); ++li) {
            EXPECT_EQ(a[ti].locations[li].acmin,
                      b[ti].locations[li].acmin);
            EXPECT_EQ(a[ti].locations[li].flipped,
                      b[ti].locations[li].flipped);
        }
    }
}

TEST(ParallelDeterminism, OverlapAtAcminUnchunkedVsChunked)
{
    // 2 locations + the retention task = 3 coarse tasks: at 1 thread
    // the driver runs one grid task per location (split = 1), at 4 it
    // re-chunks each location's grid into slices (split = 2).  The
    // oracle-backed measurement never mutates the platform, so the
    // chunking must be bit-invisible.
    chr::ModuleConfig mc;
    mc.die = device::dieS8GbB();
    mc.numLocations = 2;
    mc.temperatureC = 80.0;

    const std::vector<Time> sweep = {36_ns, 7800_ns, 70200_ns};
    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    auto a = chr::overlapAtAcmin(mc, serial, sweep,
                                 chr::AccessKind::SingleSided);
    auto b = chr::overlapAtAcmin(mc, parallel, sweep,
                                 chr::AccessKind::SingleSided);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tAggOn, b[i].tAggOn);
        EXPECT_EQ(a[i].rpCells, b[i].rpCells);
        EXPECT_EQ(a[i].withRowHammer, b[i].withRowHammer);
        EXPECT_EQ(a[i].withRetention, b[i].withRetention);
    }
}

TEST(ParallelDeterminism, SharedStoreIdenticalToUnsharedStore)
{
    // Two models acquire the same shared store; a third is detached
    // onto a private (unshared) store via invalidateCaches().  All
    // three must evaluate identically: sharing is a pure cache.
    const auto &die = device::dieS8GbB();
    device::CellModel shared_a(die, 65536, 5);
    device::CellModel shared_b(die, 65536, 5);
    device::CellModel unshared(die, 65536, 5);
    unshared.invalidateCaches(); // detach onto a private store

    device::DoseState dose;
    dose.press[0] = 1e12 * 40.0;
    dose.hammer[0] = dose.hammer[1] = 3e4;
    device::RowContext ctx;
    ctx.dose = &dose;
    ctx.victimFill = 0x55;
    ctx.retentionSeconds = 0.01;
    ctx.noiseSigma = 0.05;
    ctx.noiseNonce = 1234567;

    for (int row = 60; row < 70; ++row) {
        auto fa = shared_a.evaluate(1, row, ctx, false, 50.0);
        auto fb = shared_b.evaluate(1, row, ctx, false, 50.0);
        auto fu = unshared.evaluate(1, row, ctx, false, 50.0);
        ASSERT_EQ(fa.size(), fb.size());
        ASSERT_EQ(fa.size(), fu.size());
        for (std::size_t i = 0; i < fa.size(); ++i) {
            EXPECT_EQ(fa[i].bit, fb[i].bit);
            EXPECT_EQ(fa[i].bit, fu[i].bit);
            EXPECT_EQ(fa[i].oneToZero, fu[i].oneToZero);
        }
        // The shared row candidates are the same object; the private
        // ones are a distinct but identical copy.
        EXPECT_EQ(&shared_a.rowCandidates(1, row),
                  &shared_b.rowCandidates(1, row));
        EXPECT_NE(&shared_a.rowCandidates(1, row),
                  &unshared.rowCandidates(1, row));
        EXPECT_EQ(shared_a.rowCandidates(1, row).minThetaP,
                  unshared.rowCandidates(1, row).minThetaP);
    }
}

TEST(ParallelDeterminism, RunSystemsSerialVsParallel)
{
    std::vector<sim::SystemConfig> cfgs;
    for (const char *name : {"429.mcf", "462.libquantum", "470.lbm"}) {
        sim::SystemConfig cfg;
        cfg.core.instrLimit = 5000;
        cfg.workloads = {workloads::workloadByName(name)};
        cfgs.push_back(cfg);
    }

    core::ExperimentEngine serial(withThreads(1));
    core::ExperimentEngine parallel(withThreads(4));
    auto a = sim::runSystems(cfgs, serial);
    auto b = sim::runSystems(cfgs, parallel);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cores.at(0).instrs, b[i].cores.at(0).instrs);
        EXPECT_EQ(a[i].cores.at(0).cycles, b[i].cores.at(0).cycles);
        EXPECT_EQ(a[i].cores.at(0).ipc, b[i].cores.at(0).ipc);
        EXPECT_EQ(a[i].mem.acts, b[i].mem.acts);
        EXPECT_EQ(a[i].mem.rowHits, b[i].mem.rowHits);
    }
}

} // namespace
} // namespace rp
