# Negative-compile proof for the RP_* thread-safety annotations
# (src/core/thread_annotations.h): compiles each fixture under
# tests/static_analysis/ in try_compile fashion and asserts
#
#   clean.cc                      -> MUST compile
#   guarded_by_violation.cc       -> MUST fail (guarded member, no lock)
#   missing_requires_violation.cc -> MUST fail (REQUIRES not satisfied)
#
# Registered as ctest `static_analysis_test` only when the compiler
# supports -Wthread-safety (clang); GCC expands the macros to nothing,
# so there is nothing to prove there.
#
# Usage (wired by tests/CMakeLists.txt):
#   cmake -DCXX=<compiler> -DINCLUDE_DIR=<repo>/src
#         -DFIXTURE_DIR=<repo>/tests/static_analysis
#         -DWORK_DIR=<build>/static_analysis
#         -P static_analysis_test.cmake

foreach(var CXX INCLUDE_DIR FIXTURE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "static_analysis_test: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(TSA_FLAGS
    -std=c++17 -Wthread-safety
    -Werror=thread-safety-analysis
    -Werror=thread-safety-attributes
    -Werror=thread-safety-precise
    -Werror=thread-safety-reference)

# compile(<fixture.cc> <out-var>): TRUE when the fixture compiles.
function(compile fixture result_var)
  get_filename_component(base "${fixture}" NAME_WE)
  execute_process(
    COMMAND "${CXX}" ${TSA_FLAGS} "-I${INCLUDE_DIR}"
            -c "${FIXTURE_DIR}/${fixture}"
            -o "${WORK_DIR}/${base}.o"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    set(${result_var} TRUE PARENT_SCOPE)
  else()
    set(${result_var} FALSE PARENT_SCOPE)
  endif()
  set(${result_var}_LOG "${out}${err}" PARENT_SCOPE)
endfunction()

set(failures 0)

compile(clean.cc clean_ok)
if(clean_ok)
  message(STATUS "PASS: clean.cc compiles under -Wthread-safety")
else()
  math(EXPR failures "${failures} + 1")
  message(SEND_ERROR
          "FAIL: clean.cc should compile but did not:\n"
          "${clean_ok_LOG}")
endif()

foreach(fixture guarded_by_violation.cc missing_requires_violation.cc)
  compile(${fixture} ok)
  if(ok)
    math(EXPR failures "${failures} + 1")
    message(SEND_ERROR
            "FAIL: ${fixture} compiled, but the seeded thread-safety "
            "violation should have been a hard error — the RP_* "
            "annotations are not biting")
  else()
    message(STATUS
            "PASS: ${fixture} fails to compile (violation caught)")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "static_analysis_test: ${failures} failure(s)")
endif()
